//! Offline stub for `proptest`: the `proptest!` macro, integer-range and
//! `any::<T>()` strategies, and `collection::vec`.
//!
//! Each test runs `ProptestConfig::cases` deterministic cases seeded from
//! the test's module path, so failures reproduce across runs. There is no
//! shrinking: a failure reports the panicking case's inputs via the normal
//! assert message only.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::Rng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }
}

use strategy::Strategy;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the whole domain of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate arbitrary values of `T` (uniform over its domain).
pub fn any<T>() -> Any<T>
where
    T: rand::Standard,
{
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range`.
    #[derive(Debug, Clone)]
    pub struct SizeBounds {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeBounds {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeBounds {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            Self { lo: r.start, hi_excl: r.end }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values; see [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeBounds,
    }

    /// `Vec` strategy with element strategy `elem` and length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_excl);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Support used by the [`proptest!`] expansion; not for direct use.
pub mod test_runner {
    use super::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-case RNG: FNV-1a over the test path, mixed with
    /// the case index. Same binary → same inputs, so failures reproduce.
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` looping over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(__path, __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Common imports: the macros, [`ProptestConfig`], [`any`], [`Strategy`].
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds; vec lengths honour the spec.
        #[test]
        fn strategies_in_bounds(
            x in 3usize..9,
            v in crate::collection::vec(0u64..5, 2..6),
            fixed in crate::collection::vec(1i64..=1, 4),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert_eq!(fixed, vec![1i64; 4]);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 0..10);
        let a: Vec<_> =
            (0..5).map(|c| s.sample(&mut crate::test_runner::case_rng("t", c))).collect();
        let b: Vec<_> =
            (0..5).map(|c| s.sample(&mut crate::test_runner::case_rng("t", c))).collect();
        assert_eq!(a, b);
    }
}
