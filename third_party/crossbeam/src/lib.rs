//! Offline stub for `crossbeam`: the `channel` module only — MPMC
//! channels (clonable senders *and* receivers) with crossbeam's
//! disconnect semantics, built on `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    //! MPMC channels: [`unbounded`] and [`bounded`] constructors.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Woken when data arrives or the last sender leaves.
        readable: Condvar,
        /// Woken when space frees up or the last receiver leaves.
        writable: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug does not expose the payload, so it
    // needs no `T: Debug` bound (callers `.expect()` on non-Debug types).
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half; clonable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; clonable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                self.0.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                self.0.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                match g.cap {
                    Some(cap) if g.queue.len() >= cap => {
                        g = self.0.writable.wait(g).unwrap();
                    }
                    _ => break,
                }
            }
            g.queue.push_back(value);
            drop(g);
            self.0.readable.notify_one();
            Ok(())
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut g = self.0.inner.lock().unwrap();
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = g.cap {
                if g.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            g.queue.push_back(value);
            drop(g);
            self.0.readable.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty.
        /// Fails only when the channel is empty *and* every sender has
        /// been dropped (buffered messages are still delivered).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    drop(g);
                    self.0.writable.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.0.readable.wait(g).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.0.inner.lock().unwrap();
            if let Some(v) = g.queue.pop_front() {
                drop(g);
                self.0.writable.notify_one();
                return Ok(v);
            }
            if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.inner.lock().unwrap().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator over received messages; ends on disconnect.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Channel holding at most `cap` queued messages; `send` blocks when
    /// full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn buffered_messages_survive_sender_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            let h = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_fanin() {
            let (tx, rx) = unbounded();
            let n = 8;
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..n).collect::<Vec<_>>());
            for h in handles {
                h.join().unwrap();
            }
        }
    }
}
