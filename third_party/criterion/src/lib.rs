//! Offline stub for `criterion`: groups, `Bencher::iter`,
//! `bench_function` / `bench_with_input`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a warmup call followed by
//! `sample_size` timed iterations, reporting mean and min wall-clock
//! time per iteration to stdout. No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; one per process.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Printed by `criterion_main!` after all groups run.
    pub fn final_summary(&self) {
        println!("\nbenchmarks complete");
    }
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark; `f` receives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { sample_size: self.sample_size, mean: Duration::ZERO, min: Duration::ZERO };
        f(&mut b);
        println!("{}/{:<40} mean {:>12.3?}   min {:>12.3?}", self.name, id, b.mean, b.min);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
    min: Duration,
}

impl Bencher {
    /// Time `f`: one warmup call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.mean = total / self.sample_size as u32;
        self.min = min;
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.final_summary();
    }
}
