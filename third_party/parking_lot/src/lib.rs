//! Offline stub for `parking_lot`: non-poisoning `Mutex` / `RwLock`
//! built on `std::sync`. Lock poisoning is swallowed (`into_inner`),
//! which matches parking_lot's semantics of never poisoning.

use std::sync::{self, LockResult};

/// Non-poisoning mutex (parking_lot-compatible `lock()` signature).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
