//! Offline stub for `rand` 0.8: `Rng::{gen, gen_range}`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng` backed by SplitMix64.
//!
//! Deterministic under a fixed seed, like the real crate — but the
//! stream differs from upstream's ChaCha-based `StdRng`, so seeded
//! workloads are reproducible within this workspace only.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Marker for element types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {}

/// Ranges samplable uniformly (`rng.gen_range(range)`). Generic over the
/// element type `T` — like upstream rand 0.8 — so integer literals in the
/// range infer their type from the call site's expected output.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods; implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw from `[0, span)`; bias-free via rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes BigCrush-level smoke statistics for the workloads here;
    /// NOT cryptographically secure (neither is upstream's use here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed ^ 0x5DEECE66D };
            // Warm up so nearby seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
