#!/usr/bin/env python3
"""Docs-link checker: every repo-local path the markdown docs mention
must exist.

Checked, in every tracked ``*.md`` outside ``third_party/``:

* markdown links ``[text](target)`` whose target is not a URL or an
  in-page anchor;
* backticked path mentions like ``docs/OPERATIONS.md``,
  ``tests/scale_equivalence.rs``, ``results/BENCH_scale.json``, or
  ``crates/core/src/seq.rs`` — the idiom the prose leans on. Only
  mentions that *look like* repo paths (a known top-level directory, or
  a ``*.md`` file at the root) are checked; type names, globs, and
  shell fragments are not paths and are skipped.

Exits non-zero listing every dangling reference, so CI catches docs
drift the moment a file is renamed without its mentions.
"""

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Directories whose backticked mentions are treated as repo paths.
PATH_ROOTS = ("docs/", "crates/", "tests/", "examples/", "results/", "scripts/", "benches/")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")


def tracked_markdown():
    out = subprocess.run(
        # PAPERS.md / SNIPPETS.md are retrieved reference material, not
        # repo docs — their links point at their original sources.
        ["git", "ls-files", "*.md", ":!:third_party/*", ":!:PAPERS.md", ":!:SNIPPETS.md"],
        cwd=ROOT,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return [ROOT / line for line in out.splitlines() if line]


def candidate_paths(text):
    for m in MD_LINK.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]
    for m in BACKTICK.finditer(text):
        t = m.group(1).strip()
        # Path-like: a known top-level dir, or a root-level markdown file.
        # Reject anything with spaces, globs, or code punctuation.
        if re.search(r"[\s*{}()<>|:\"'=,§]|\.\.", t):
            continue
        if t.startswith(PATH_ROOTS) or re.fullmatch(r"[A-Z_]+\.md", t):
            yield t


def main():
    bad = []
    for md in tracked_markdown():
        text = md.read_text(encoding="utf-8")
        for rel in sorted(set(candidate_paths(text))):
            if not rel or (ROOT / rel).exists():
                continue
            bad.append(f"{md.relative_to(ROOT)}: dangling reference `{rel}`")
    if bad:
        print("\n".join(bad))
        print(f"\n{len(bad)} dangling doc reference(s)", file=sys.stderr)
        return 1
    print(f"ok: all repo-local references in {len(tracked_markdown())} markdown files resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
