//! Quickstart: write a CGM algorithm once, run it everywhere.
//!
//! This sorts 100k keys with the same unmodified `CgmSort` program on
//! all four runners — in-memory sequential, multi-threaded, and the two
//! external-memory simulation engines of the paper — and prints the
//! exact parallel-I/O accounting the EM runs produce.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cgmio_algos::CgmSort;
use cgmio_core::{measure_requirements, EmConfig, ParEmRunner, SeqEmRunner};
use cgmio_data::{block_split, uniform_u64};
use cgmio_model::{DirectRunner, ThreadedRunner};
use cgmio_pdm::DiskTimingModel;

fn main() {
    let n = 100_000;
    let v = 16; // virtual processors of the simulated CGM machine
    let keys = uniform_u64(n, 7);
    let mk_states = || {
        block_split(keys.clone(), v)
            .into_iter()
            .map(|block| (block, Vec::new()))
            .collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::block_distributed();

    // 1. Reference run, in memory.
    let (reference, costs) = DirectRunner::default().run(&prog, mk_states()).unwrap();
    println!("direct:   {} rounds, max h-relation {} items", costs.lambda(), costs.max_h());

    // 2. Real threads (the \"communication\" is real channel traffic).
    let (threaded, rep) = ThreadedRunner::new(4).run(&prog, mk_states()).unwrap();
    assert_eq!(threaded, reference);
    println!("threads:  {} items crossed a thread boundary", rep.cross_thread_items);

    // 3. Algorithm 2: one real processor, D = 4 disks, blocked parallel I/O.
    let (_, _, req) = measure_requirements(&prog, mk_states()).unwrap();
    let cfg = EmConfig::from_requirements(v, 1, 4, 4096, &req);
    let (seq_em, rep) = SeqEmRunner::new(cfg.clone()).run(&prog, mk_states()).unwrap();
    assert_eq!(seq_em, reference);
    let model = DiskTimingModel::nineties_disk();
    println!(
        "seq EM:   {} parallel I/Os ({} ctx + {} msg), {:.0}% of ops used all 4 disks, ~{:.1} s on a 1998 disk",
        rep.breakdown.algorithm_ops(),
        rep.breakdown.ctx_ops,
        rep.breakdown.msg_ops,
        rep.io.parallel_efficiency() * 100.0,
        rep.io_time_us(&model) / 1e6,
    );

    // 4. Algorithm 3: p = 4 real processors, each with its own disks.
    let mut pcfg = cfg;
    pcfg.p = 4;
    let (par_em, rep) = ParEmRunner::new(pcfg).run(&prog, mk_states()).unwrap();
    assert_eq!(par_em, reference);
    println!(
        "par EM:   {:.0} parallel I/Os per processor (p = 4), ~{:.1} s modelled",
        rep.io_ops_per_proc(),
        rep.io_time_us(&model) / 1e6,
    );

    // the output really is sorted
    let flat: Vec<u64> = reference.iter().flat_map(|(b, _)| b.iter().copied()).collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    println!("all four runners agree; output of {} keys is sorted", flat.len());
}
