//! GIS pipeline: the paper's Group B algorithms on one synthetic
//! "map" dataset, all through the external-memory engine.
//!
//! A point cloud is triangulated, its hull and all-nearest-neighbour
//! graph extracted, building footprints (rectangles) are measured for
//! covered area, and a batch of query points is located against a road
//! set — each step an EM-CGM run with exact I/O accounting.
//!
//! ```sh
//! cargo run --release --example gis_pipeline
//! ```

use cgmio_algos::geometry::rects::decode_area;
use cgmio_algos::geometry::{
    CgmAllNearestNeighbors, CgmConvexHull, CgmPointLocation, CgmTriangulate, CgmUnionArea,
};
use cgmio_bench::run_seq_em;
use cgmio_data as data;

fn main() {
    let v = 8;
    let (d, bb) = (2, 2048);
    let n = 20_000;

    // survey points
    let pts = data::random_points(n, 1_000_000, 1);

    // convex hull of the surveyed region
    let mk = || {
        data::block_split(pts.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let (fin, rep) = run_seq_em(&CgmConvexHull, mk, v, d, bb);
    println!(
        "hull:          {:4} vertices               {:6} I/Os, eff {:.2}",
        fin[0].1.len(),
        rep.breakdown.algorithm_ops(),
        rep.io.parallel_efficiency()
    );

    // triangulated terrain model
    let idx: Vec<(u64, (i64, i64))> =
        pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
    let mk = || {
        data::block_split(idx.clone(), v)
            .into_iter()
            .map(|b| ((b, Vec::new()), Vec::new()))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_seq_em(&CgmTriangulate, mk, v, d, bb);
    let tris: usize = fin.iter().map(|(_, t)| t.len()).sum();
    println!(
        "triangulation: {tris:4} triangles              {:6} I/Os, eff {:.2}",
        rep.breakdown.algorithm_ops(),
        rep.io.parallel_efficiency()
    );

    // nearest sensor for every sensor
    let mk = || {
        data::block_split(idx.clone(), v)
            .into_iter()
            .map(|b| ((b, Vec::new()), Vec::new()))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_seq_em(&CgmAllNearestNeighbors, mk, v, d, bb);
    let answered: usize = fin.iter().map(|(_, r)| r.len()).sum();
    println!(
        "all-NN:        {answered:4} pairs             {:9} I/Os, eff {:.2}",
        rep.breakdown.algorithm_ops(),
        rep.io.parallel_efficiency()
    );

    // building footprints: covered area
    let rects: Vec<[i64; 4]> = data::random_rects(n / 2, 500_000, 2)
        .into_iter()
        .map(|r| [r.x1, r.y1, r.x2, r.y2])
        .collect();
    let mk = || {
        data::block_split(rects.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let (fin, rep) = run_seq_em(&CgmUnionArea, mk, v, d, bb);
    println!(
        "union area:    {:e} square units    {:6} I/Os, eff {:.2}",
        decode_area(&fin[0].1) as f64,
        rep.breakdown.algorithm_ops(),
        rep.io.parallel_efficiency()
    );

    // locate queries against a road network (non-crossing segments)
    let roads: Vec<(u64, [i64; 4])> = data::random_segments(n / 8, 1_000_000, 3)
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i as u64, [s.ax, s.ay, s.bx, s.by]))
        .collect();
    let queries: Vec<(u64, i64, i64)> = data::random_points(n, 1_000_000, 4)
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| (i as u64, x, y * 3))
        .collect();
    let mk = || {
        data::block_split(roads.clone(), v)
            .into_iter()
            .zip(data::block_split(queries.clone(), v))
            .map(|(rb, qb)| ((rb, qb), Vec::new()))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_seq_em(&CgmPointLocation, mk, v, d, bb);
    let located: usize =
        fin.iter().flat_map(|(_, a)| a.iter()).filter(|&&(_, s)| s != u64::MAX).count();
    println!(
        "point-loc:     {located:4} of {n} queries hit   {:6} I/Os, eff {:.2}",
        rep.breakdown.algorithm_ops(),
        rep.io.parallel_efficiency()
    );
}
