//! Section 5 of the paper: the same two-level analysis applied to the
//! cache / main-memory interface.
//!
//! The paper observes that if `(M_I/B_I)^c = N`, the logarithmic factor
//! in the block-access lower bounds collapses at the cache level too —
//! so programs structured as coarse-grained parallel algorithms with
//! virtual-processor contexts sized to the cache control their own
//! cache-miss traffic. This example measures exactly that with the LRU
//! paging simulator standing in for a cache.
//!
//! ```sh
//! cargo run --release --example cache_sim
//! ```

use cgmio_baselines::paged_merge_sort;
use cgmio_core::params;
use cgmio_data::uniform_u64;

fn main() {
    // A small "cache": 64-byte lines, 512 lines = 32 KiB.
    let line = 64usize;
    let lines = 512usize;
    println!("cache model: {} lines x {} B = {} KiB\n", lines, line, lines * line / 1024);

    println!("log_(M/B)(N/B) for the cache parameters:");
    let m_items = (lines * line / 8) as f64; // cache capacity in items
    let b_items = (line / 8) as f64; // line size in items
    for n_items in [1usize << 12, 1 << 16, 1 << 20, 1 << 24] {
        let n = n_items as f64;
        // params::log_term assumes M = N/v, so pass v = N/M_I
        let t = params::log_term(n, n / m_items, b_items);
        println!(
            "  N = {:>9} items: log term = {}",
            n_items,
            match t {
                Some(x) => format!("{x:.2}"),
                None => "n/a (fits in cache)".to_string(),
            }
        );
    }

    // Cache-miss traffic of a sort that ignores the cache (paged
    // mergesort ~ cache-oblivious-ish baseline) at growing N: misses
    // per item grow with the number of passes, i.e. with log(N/M).
    println!("\nmisses/item of a cache-ignorant merge sort (LRU-simulated):");
    for n in [1usize << 12, 1 << 14, 1 << 16, 1 << 18] {
        let keys = uniform_u64(n, 3);
        let (_, rep) = paged_merge_sort(&keys, line, lines);
        println!(
            "  N = {:>7}: {:>8} transfers  ({:.2} per item)",
            n,
            rep.stats.transfers(),
            rep.stats.transfers() as f64 / n as f64
        );
    }

    // The paper's prescription: process the data as v virtual
    // processors whose context fits the cache, touching one context at
    // a time (exactly what the EM-CGM simulation does with M and disk —
    // here M_I is the cache). Sorting N items in cache-sized chunks +
    // one merge pass keeps misses/item constant:
    println!("\nmisses/item when the working set is tiled to the cache (chunked runs):");
    for n in [1usize << 12, 1 << 14, 1 << 16, 1 << 18] {
        let keys = uniform_u64(n, 3);
        // chunk = half the cache (leave room for the output stream)
        let chunk = lines * line / 8 / 2;
        let mut transfers = 0u64;
        for c in keys.chunks(chunk) {
            let (_, rep) = paged_merge_sort(c, line, lines);
            transfers += rep.stats.transfers();
        }
        // one final streaming merge pass touches each line once in and once out
        transfers += 2 * (n * 8 / line) as u64;
        println!(
            "  N = {:>7}: {:>8} transfers  ({:.2} per item)",
            n,
            transfers,
            transfers as f64 / n as f64
        );
    }
    println!(
        "\nthe tiled (coarse-grained) structure holds misses/item flat — the Section 5 claim."
    );
}
