//! Pipelined sort: overlap compute with demand I/O end-to-end.
//!
//! The same `CgmSort` run twice on the concurrent I/O engine — once
//! serial (`pipeline_depth = 0`: each virtual processor's context and
//! inbox are read on demand, compute waits) and once software-pipelined
//! (`pipeline_depth = 2`: while vp `i` computes, vp `i+1`'s blocks are
//! already being read and vp `i−1`'s write-backs drain in background).
//! A seeded latency spike models a device with a fixed per-track access
//! latency so the overlap is visible in wall clock; the I/O *accounting*
//! (op counts, breakdowns, final states) is bit-identical at every
//! depth — pipelining is an execution strategy, not a cost-model change.
//!
//! The run also shows the two health signals to tune the knob by:
//! `cgmio_pipeline_stall_us` (time the executor blocked waiting on a
//! pre-issued read — high means the pipeline is too shallow or the
//! drives too slow) and the trace's queue-wait vs service split (queue
//! wait ≫ service means the drives are behind, not slow).
//!
//! ```sh
//! cargo run --release --example pipelined_sort
//! ```

use cgmio_algos::CgmSort;
use cgmio_core::{measure_requirements, BackendSpec, EmConfig, SeqEmRunner};
use cgmio_data::{block_split, uniform_u64};
use cgmio_io::IoEngineOpts;
use cgmio_obs::Obs;
use cgmio_pdm::FaultPlan;

fn main() {
    let n = 200_000;
    let (v, d, bb) = (16usize, 4usize, 32768usize);
    let keys = uniform_u64(n, 7);
    let mk_states = || {
        block_split(keys.clone(), v)
            .into_iter()
            .map(|block| (block, Vec::new()))
            .collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, mk_states()).unwrap();

    let run_at = |depth: usize| {
        let obs = Obs::new();
        let mut cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
        cfg.pipeline_depth = depth;
        cfg.backend = BackendSpec::Concurrent {
            dir: None, // memory-backed drives: pure engine behaviour
            opts: IoEngineOpts { trace: true, ..Default::default() },
        };
        // Simulated device latency: every physical track op sleeps 25 µs
        // (probability 1.0 — deterministic), like a fixed access time.
        cfg.fault =
            Some(FaultPlan { seed: 7, latency_spike: 1.0, spike_us: 25, ..Default::default() });
        cfg.obs = Some(obs.clone());
        let (finals, rep) = SeqEmRunner::new(cfg).run(&prog, mk_states()).unwrap();
        (finals, rep, obs)
    };

    let (serial, rep0, _) = run_at(0);
    let (pipelined, rep2, obs2) = run_at(2);

    // Pipelining must be observably invisible everywhere but the clock.
    assert_eq!(pipelined, serial);
    assert_eq!(rep2.io, rep0.io, "parallel I/O op counts are depth-invariant");
    assert_eq!(rep2.breakdown, rep0.breakdown);
    let flat: Vec<u64> = serial.iter().flat_map(|(b, _)| b.iter().copied()).collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "output is sorted");

    let (w0, w2) = (rep0.wall.as_secs_f64() * 1e3, rep2.wall.as_secs_f64() * 1e3);
    println!("depth 0:  {w0:.1} ms wall, {} parallel I/Os", rep0.io.total_ops());
    println!("depth 2:  {w2:.1} ms wall, {} parallel I/Os (same)", rep2.io.total_ops());
    println!("overlap hides {:.0}% of the wall clock", 100.0 * (1.0 - w2 / w0));

    // Health signals for tuning the depth (see docs/OPERATIONS.md).
    let stall = obs2
        .metrics()
        .histogram("cgmio_pipeline_stall_us", &[("proc", "0".to_string())])
        .snapshot();
    let s = cgmio_io::summarize(&rep2.io_trace);
    println!(
        "depth 2 health: {} waits on pre-issued reads (p50 {} us), \
         reads wait {} us / serve {} us on average, {} stalled reads",
        stall.count,
        stall.p50(),
        s.mean_read_queue_wait_us,
        s.mean_read_service_us,
        s.stalls,
    );
}
