//! The paper's prototype, reproduced: external sorting on a "cluster"
//! (p worker threads, D disks each — here real files on the local
//! filesystem via the file-backed disk array) and the processor/disk
//! scaling behaviour of Figures 3–4.
//!
//! ```sh
//! cargo run --release --example cluster_sort
//! ```

use cgmio_algos::CgmSort;
use cgmio_bench::config_for;
use cgmio_core::{ParEmRunner, SeqEmRunner};
use cgmio_data::{block_split, uniform_u64};
use cgmio_pdm::{DiskArray, DiskGeometry, DiskTimingModel, TrackAddr};

fn main() {
    let n = 200_000;
    let v = 16;
    let keys = uniform_u64(n, 11);
    let mk =
        || block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>();
    let prog = CgmSort::<u64>::by_pivots();
    let model = DiskTimingModel::nineties_disk();

    println!("sorting {n} keys, v = {v} virtual processors\n");
    println!("  p  D   I/Os/proc   modelled-io  wall(sim)");
    for (p, d) in [(1usize, 1usize), (1, 2), (1, 4), (2, 2), (4, 2), (4, 4)] {
        let mut cfg = config_for(&prog, mk(), v, p, d, 4096);
        cfg.p = p;
        let (fin, rep) = ParEmRunner::new(cfg).run(&prog, mk()).unwrap();
        let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "  {p}  {d}  {:9.0}   {:8.2} s   {:?}",
            rep.io_ops_per_proc(),
            rep.io_time_us(&model) / 1e6,
            rep.wall,
        );
    }

    // The same engine against REAL files: the file-backed disk array
    // exercises the identical layout/scheduling code paths through the
    // filesystem (the in-memory backend only replaces the medium).
    let dir = std::env::temp_dir().join(format!("cgmio-cluster-{}", std::process::id()));
    let geom = DiskGeometry::new(2, 4096);
    let mut disks = DiskArray::new_file_backed(geom, &dir).expect("file-backed disks");
    disks
        .parallel_write(&[
            (TrackAddr::new(0, 0), &u64::encode_block(&keys[..512])[..]),
            (TrackAddr::new(1, 0), &u64::encode_block(&keys[512..1024])[..]),
        ])
        .unwrap();
    let back = disks.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(1, 0)]).unwrap();
    assert_eq!(back[0], u64::encode_block(&keys[..512]));
    println!("\nfile-backed array: wrote + verified 2 striped blocks under {}", dir.display());
    std::fs::remove_dir_all(&dir).ok();

    // Run the full sequential EM sort once more for the I/O breakdown.
    let cfg = config_for(&prog, mk(), v, 1, 4, 4096);
    let (_, rep) = SeqEmRunner::new(cfg).run(&prog, mk()).unwrap();
    println!(
        "\nbreakdown (p=1, D=4): setup {} | contexts {} | messages {} | readout {}",
        rep.breakdown.setup_ops,
        rep.breakdown.ctx_ops,
        rep.breakdown.msg_ops,
        rep.breakdown.readout_ops
    );
}

/// Tiny helper: encode a u64 slice as one block payload.
trait EncodeBlock {
    fn encode_block(items: &[u64]) -> Vec<u8>;
}
impl EncodeBlock for u64 {
    fn encode_block(items: &[u64]) -> Vec<u8> {
        use cgmio_pdm::Item;
        u64::encode_slice(items)
    }
}
