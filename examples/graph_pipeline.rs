//! Graph pipeline: the paper's Group C algorithms end to end on the
//! parallel external-memory engine (Algorithm 3, p = 4 real processors).
//!
//! A random forest of roads is analysed: connected components and a
//! spanning forest, then the largest tree is rooted (Euler tour depths),
//! batch-queried for lowest common ancestors, and an expression tree
//! over sensor readings is evaluated.
//!
//! ```sh
//! cargo run --release --example graph_pipeline
//! ```

use cgmio_algos::graphs::{
    contraction::{eval_expression_mod, expr_states},
    CgmBatchedLca, CgmConnectivity, CgmEulerTour, CgmExprEval, CgmListRank,
};
use cgmio_bench::config_for;
use cgmio_core::ParEmRunner;
use cgmio_data as data;
use cgmio_graph::cc_labels;

fn run_par<P: cgmio_model::CgmProgram>(
    prog: &P,
    mk: impl Fn() -> Vec<P::State>,
    v: usize,
) -> (Vec<P::State>, cgmio_core::EmRunReport) {
    let cfg = {
        let mut c = config_for(prog, mk(), v, 4, 2, 2048);
        c.p = 4;
        c
    };
    ParEmRunner::new(cfg).run(prog, mk()).unwrap()
}

fn main() {
    let v = 8;
    let n = 10_000;

    // 1. connected components + spanning forest of a sparse graph
    let edges = data::gnm_edges(n, n + n / 2, 1);
    let mk = || {
        let vb = data::block_split((0..n as u64).collect::<Vec<_>>(), v);
        let eb = data::block_split(edges.clone(), v);
        vb.into_iter()
            .zip(eb)
            .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (edges.len() as u64, ee, Vec::new())))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_par(&CgmConnectivity, mk, v);
    let labels: Vec<u64> = fin.iter().flat_map(|((_, l, _), _)| l.iter().copied()).collect();
    assert_eq!(labels, cc_labels(n, &edges));
    let comps = {
        let mut u = labels.clone();
        u.sort_unstable();
        u.dedup();
        u.len()
    };
    let forest: usize = fin.iter().map(|((_, _, f), _)| f.len()).sum();
    println!(
        "connectivity: {comps} components, {forest} forest edges, {} I/Os/proc",
        rep.io_ops_per_proc() as u64
    );

    // 2. list ranking of a pipeline of processing stages
    let (succ, _) = data::random_list(n, 2);
    let mk = || {
        data::block_split(succ.clone(), v)
            .into_iter()
            .map(|b| (vec![n as u64], b, Vec::new()))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_par(&CgmListRank, mk, v);
    let max_rank = fin.iter().flat_map(|(_, _, r)| r.iter().copied()).max().unwrap();
    println!(
        "list ranking: chain of {} stages ranked in {} rounds, {} I/Os/proc",
        max_rank + 1,
        rep.costs.lambda(),
        rep.io_ops_per_proc() as u64
    );

    // 3. rooted tree analysis: depths via Euler tour
    let parent = data::random_tree_parents(n, 3);
    let mk = || {
        data::block_split(parent.clone(), v)
            .into_iter()
            .map(|b| ((vec![n as u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new())))
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_par(&CgmEulerTour, mk, v);
    let max_depth = fin.iter().flat_map(|((_, _, d), _)| d.iter().copied()).max().unwrap();
    println!(
        "euler tour:   tree height {max_depth}, λ = {}, {} I/Os/proc",
        rep.costs.lambda(),
        rep.io_ops_per_proc() as u64
    );

    // 4. batched LCA queries on the same tree
    let queries: Vec<(u64, u64)> =
        (0..n as u64).map(|i| ((i * 7) % n as u64, (i * 13 + 5) % n as u64)).collect();
    let mk = || {
        data::block_split(parent.clone(), v)
            .into_iter()
            .zip(data::block_split(queries.clone(), v))
            .map(|(pb, qb)| {
                (
                    (n as u64, pb, Vec::new()),
                    (Vec::new(), qb),
                    (Vec::new(), Vec::new(), (Vec::new(), Vec::new())),
                )
            })
            .collect::<Vec<_>>()
    };
    let (fin, rep) = run_par(&CgmBatchedLca, mk, v);
    let answered: usize = fin.iter().map(|(_, _, (qa, _, _))| qa.len()).sum();
    println!(
        "batched LCA:  {answered} queries answered, λ = {}, {} I/Os/proc",
        rep.costs.lambda(),
        rep.io_ops_per_proc() as u64
    );

    // 5. expression tree over sensor readings
    let nodes = data::random_expression(n / 2, 4);
    let want = eval_expression_mod(&nodes);
    let mk = || expr_states(&nodes, v);
    let (fin, rep) = run_par(&CgmExprEval, mk, v);
    let got = fin[0].2 .1[0];
    assert_eq!(got, want);
    println!(
        "expr eval:    value {got} (verified), λ = {}, {} I/Os/proc",
        rep.costs.lambda(),
        rep.io_ops_per_proc() as u64
    );
}
