//! End-to-end integration: the paper's headline claims, measured.

use cgmio_algos::CgmSort;
use cgmio_baselines::{external_merge_sort, paged_merge_sort};
use cgmio_core::{measure_requirements, EmConfig, ParEmRunner, SeqEmRunner};
use cgmio_data as data;
use cgmio_model::demo::AllToOne;
use cgmio_pdm::{DiskGeometry, DiskTimingModel};
use cgmio_routing::Balanced;

fn sort_states(keys: &[u64], v: usize) -> Vec<(Vec<u64>, Vec<u64>)> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

/// Claim 2 of the paper: sorting in `O(N/(pDB))` I/Os — the measured
/// op count divided by `N/(DB)` must not grow with `N`.
#[test]
fn sorting_io_is_linear_in_n() {
    let v = 8;
    let (d, bb) = (2usize, 1024usize);
    let ratio = |n: usize| {
        let keys = data::uniform_u64(n, 1);
        let prog = CgmSort::<u64>::by_pivots();
        let (_, _, req) = measure_requirements(&prog, sort_states(&keys, v)).unwrap();
        let cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
        let (_, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        rep.breakdown.algorithm_ops() as f64 / (n as f64 / (d as f64 * (bb / 8) as f64))
    };
    let small = ratio(1 << 13);
    let large = ratio(1 << 16);
    assert!(
        large <= small * 1.25,
        "I/O per N/(DB) must not grow with N: small = {small:.2}, large = {large:.2}"
    );
}

/// Claim 6: scalability — doubling p halves per-processor I/O.
#[test]
fn parallel_em_scales_with_p() {
    let n = 1 << 15;
    let v = 8;
    let keys = data::uniform_u64(n, 2);
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(&keys, v)).unwrap();
    let ops = |p: usize| {
        let mut cfg = EmConfig::from_requirements(v, p, 2, 1024, &req);
        cfg.p = p;
        let (_, rep) = ParEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        rep.io_ops_per_proc()
    };
    let p1 = ops(1);
    let p2 = ops(2);
    let p4 = ops(4);
    assert!(p2 < 0.6 * p1, "p=2 must halve per-proc I/O: {p2} vs {p1}");
    assert!(p4 < 0.35 * p1, "p=4 must quarter per-proc I/O: {p4} vs {p1}");
}

/// Figure 4: more disks per processor cut I/O ops proportionally.
#[test]
fn multiple_disks_reduce_io() {
    let n = 1 << 15;
    let v = 8;
    let keys = data::uniform_u64(n, 3);
    let prog = CgmSort::<u64>::by_pivots();
    let ops = |d: usize| {
        let (_, _, req) = measure_requirements(&prog, sort_states(&keys, v)).unwrap();
        let cfg = EmConfig::from_requirements(v, 1, d, 1024, &req);
        let (_, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        rep.breakdown.algorithm_ops()
    };
    let d1 = ops(1);
    let d4 = ops(4);
    assert!((d4 as f64) < 0.4 * d1 as f64, "4 disks should cut ops ~4x: d1 = {d1}, d4 = {d4}");
}

/// Figure 3: the EM simulation beats demand paging once the problem
/// leaves memory, on modelled disk time.
#[test]
fn em_beats_virtual_memory_out_of_core() {
    let n = 1 << 16;
    let v = 16;
    let keys = data::uniform_u64(n, 4);
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(&keys, v)).unwrap();
    let cfg = EmConfig::from_requirements(v, 1, 1, 4096, &req);
    let (_, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
    let model = DiskTimingModel::nineties_disk();
    let em_us = rep.io_time_us(&model);
    // VM with 256 KiB of memory for a 512 KiB problem
    let (_, vm) = paged_merge_sort(&keys, 4096, 64);
    let vm_us = vm.io_time_us(&model);
    assert!(
        vm_us > 2.0 * em_us,
        "paging must lose out of core: vm = {vm_us:.0}us, em = {em_us:.0}us"
    );
}

/// Lemma 2 in action: balancing bounds the message slot (and hence the
/// memory the engine must provision per message).
#[test]
fn balancing_shrinks_message_slots() {
    let v = 16;
    let mk = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
    let plain = AllToOne { items_per_proc: 1024 };
    let (_, _, req_plain) = measure_requirements(&plain, mk()).unwrap();
    let bal = Balanced::new(plain);
    let (_, _, req_bal) = measure_requirements(&bal, mk()).unwrap();
    // Unbalanced: one 1024-item message. Balanced: ≤ h/v + (v-1)/2 on
    // the first hop and ≤ 1024 + slack on the second hop... per-message:
    let h = 16 * 1024; // receiver-side h at processor 0
    assert_eq!(req_plain.max_msg_items, 1024);
    assert!(
        req_bal.max_msg_items <= h / v + v,
        "balanced messages must obey Theorem 1: {}",
        req_bal.max_msg_items
    );
}

/// External merge sort's I/O grows with log_{M/B}(N/B) while the
/// simulation's stays linear — the crossover story of Section 1.3.
#[test]
fn merge_sort_pass_count_grows_em_stays_flat() {
    let geom = DiskGeometry::new(2, 1024);
    let n = 1 << 16;
    let keys = data::uniform_u64(n, 5);
    // tiny memory => many passes
    let (_, tight) = external_merge_sort(geom, 512, &keys);
    // big memory => one pass
    let (_, roomy) = external_merge_sort(geom, n / 2, &keys);
    assert!(tight.merge_passes >= 2);
    assert!(roomy.merge_passes <= 1);
    assert!(tight.io.total_ops() > roomy.io.total_ops());
}

/// The whole pipeline also works with states on *file-backed* disks —
/// nothing in the engine depends on the in-memory medium. (Smoke test.)
#[test]
fn file_backed_medium_roundtrip() {
    use cgmio_pdm::{DiskArray, Item, TrackAddr};
    let dir = std::env::temp_dir().join(format!("cgmio-it-{}", std::process::id()));
    let geom = DiskGeometry::new(3, 256);
    let mut disks = DiskArray::new_file_backed(geom, &dir).unwrap();
    let payload: Vec<u64> = (0..32).collect();
    disks.parallel_write(&[(TrackAddr::new(2, 7), &u64::encode_slice(&payload)[..])]).unwrap();
    let back = disks.parallel_read(&[TrackAddr::new(2, 7)]).unwrap();
    assert_eq!(u64::decode_slice(&back[0], 32), payload);
    std::fs::remove_dir_all(&dir).ok();
}
