//! The async submission backend must be *observably invisible*: it may
//! batch, coalesce, and reorder physical transfers behind its per-drive
//! reactors, but final states, `IoStats`, op breakdowns, checkpoint
//! resume, and fault/retry totals have to be bit-identical to every
//! other backend, on both runners. Logical accounting lives above
//! [`cgmio_pdm::TrackStorage`], so any drift here means the backend
//! broke the trait contract, not the bookkeeping.

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, CheckpointManifest, EmConfig, EmRunReport, ParEmRunner,
    RunOutcome, SeqEmRunner,
};
use cgmio_data as data;
use cgmio_io::IoEngineOpts;
use cgmio_model::demo::TokenRing;
use cgmio_pdm::testutil::TempDir;

type SortState = (Vec<u64>, Vec<u64>);

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, 1, d, bb, &req)
}

fn async_backend(dir: std::path::PathBuf) -> BackendSpec {
    BackendSpec::AsyncFile { dir, opts: IoEngineOpts::default() }
}

/// Finals, IoStats, and the op breakdown agree between AsyncFile and
/// every existing backend, for both runners — on a sort workload that
/// actually exercises scatter reads, scatter writes, and coalescible
/// adjacent-track runs.
#[test]
fn async_file_bit_identical_across_backends_and_runners() {
    let keys = data::uniform_u64(4000, 17);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 4, 64);

    let (want, want_rep) =
        SeqEmRunner::new(base.clone()).run(&prog, sort_states(&keys, v)).unwrap();

    let dir = TempDir::new("cgmio-async-eq");
    let backends = [
        BackendSpec::SyncFile { dir: dir.path().join("sync") },
        BackendSpec::Concurrent {
            dir: Some(dir.path().join("conc")),
            opts: IoEngineOpts::default(),
        },
        async_backend(dir.path().join("aio")),
        BackendSpec::AsyncFile {
            dir: dir.path().join("aio-traced"),
            opts: IoEngineOpts { trace: true, ..Default::default() },
        },
    ];
    for backend in backends {
        let mut cfg = base.clone();
        cfg.backend = backend.clone();
        let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        assert_eq!(got, want, "{backend:?}: finals differ");
        assert_eq!(rep.io, want_rep.io, "{backend:?}: IoStats differ");
        assert_eq!(rep.breakdown, want_rep.breakdown, "{backend:?}: breakdown differs");
        assert_eq!(rep.retries, 0, "{backend:?}: phantom retries");
        assert_eq!(rep.deferred_write_errors_dropped, 0, "{backend:?}: phantom drops");
    }

    // Parallel runner: AsyncFile matches the memory backend worker for
    // worker (each real processor owns its own p{t} subdirectory).
    for p in [2usize, 3] {
        let mut mcfg = base.clone();
        mcfg.p = p;
        let (pwant, pwant_rep) = ParEmRunner::new(mcfg).run(&prog, sort_states(&keys, v)).unwrap();
        let dir = TempDir::new("cgmio-async-eq-par");
        let mut acfg = base.clone();
        acfg.p = p;
        acfg.backend = async_backend(dir.path().join("drives"));
        let (got, rep) = ParEmRunner::new(acfg).run(&prog, sort_states(&keys, v)).unwrap();
        assert_eq!(got, pwant, "par p={p}: finals differ");
        assert_eq!(rep.io, pwant_rep.io, "par p={p}: IoStats differ");
        assert_eq!(rep.breakdown, pwant_rep.breakdown, "par p={p}: breakdown differs");
    }
}

/// Crash recovery on the async backend: halt at a barrier, reload the
/// manifest from disk, resume — byte- and counter-identical to the
/// uninterrupted run. The reactors' write-behind must therefore be
/// fully drained and fsynced by the checkpoint flush.
#[test]
fn async_file_checkpoint_resume_is_exact() {
    let (v, rounds) = (6usize, 5usize);
    let prog = TokenRing { rounds };
    let (_, _, req) = measure_requirements(&prog, mk_ring(v)).unwrap();

    for p in [1usize, 3] {
        let base = EmConfig::from_requirements(v, p, 2, 64, &req);
        let run = |cfg: EmConfig| -> (Vec<Vec<u64>>, EmRunReport) {
            if p == 1 {
                SeqEmRunner::new(cfg).run(&prog, mk_ring(v)).unwrap()
            } else {
                ParEmRunner::new(cfg).run(&prog, mk_ring(v)).unwrap()
            }
        };
        let want = run(base.clone());

        for halt in 0..rounds - 1 {
            let dir = TempDir::new("cgmio-async-ckpt");
            let mut cfg = base.clone();
            cfg.backend = async_backend(dir.path().join("drives"));
            let mut hcfg = cfg.clone();
            hcfg.checkpoint_dir = Some(dir.path().to_path_buf());
            hcfg.halt_after_superstep = Some(halt);
            let outcome = if p == 1 {
                SeqEmRunner::new(hcfg).run_until(&prog, mk_ring(v)).unwrap()
            } else {
                ParEmRunner::new(hcfg).run_until(&prog, mk_ring(v)).unwrap()
            };
            match outcome {
                RunOutcome::Interrupted(c) => drop(c), // the "crash"
                RunOutcome::Complete { .. } => panic!("run did not halt at superstep {halt}"),
            }
            let manifest =
                CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
            let got = if p == 1 {
                SeqEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap().expect_complete()
            } else {
                ParEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap().expect_complete()
            };
            assert_eq!(got.0, want.0, "p={p} halt={halt}: finals differ");
            assert_eq!(got.1.io, want.1.io, "p={p} halt={halt}: IoStats differ");
            assert_eq!(got.1.breakdown, want.1.breakdown, "p={p} halt={halt}: breakdown differs");
        }
    }
}

fn mk_ring(v: usize) -> Vec<Vec<u64>> {
    (0..v as u64).map(|i| vec![i]).collect()
}

/// Under the same seeded fault plan, the async backend's layered path
/// presents the injector with the same per-drive demand sequence as the
/// concurrent engine, so fault and retry totals — and everything
/// downstream of them — are identical.
#[test]
fn async_file_fault_and_retry_totals_match_concurrent() {
    let (v, rounds) = (6usize, 4usize);
    let prog = TokenRing { rounds };
    let (_, _, req) = measure_requirements(&prog, mk_ring(v)).unwrap();
    let retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
    let opts = IoEngineOpts { retry, ..Default::default() };

    for p in [1usize, 2] {
        let mut base = EmConfig::from_requirements(v, p, 2, 64, &req);
        base.fault = Some(cgmio_pdm::FaultPlan::transient(11, 0.1));
        base.retry = retry;

        let run = |cfg: EmConfig| -> (Vec<Vec<u64>>, EmRunReport) {
            if p == 1 {
                SeqEmRunner::new(cfg).run(&prog, mk_ring(v)).unwrap()
            } else {
                ParEmRunner::new(cfg).run(&prog, mk_ring(v)).unwrap()
            }
        };

        let cdir = TempDir::new("cgmio-async-fault-conc");
        let mut ccfg = base.clone();
        ccfg.backend =
            BackendSpec::Concurrent { dir: Some(cdir.path().join("drives")), opts: opts.clone() };
        let (cfin, crep) = run(ccfg);

        let adir = TempDir::new("cgmio-async-fault-aio");
        let mut acfg = base.clone();
        acfg.backend =
            BackendSpec::AsyncFile { dir: adir.path().join("drives"), opts: opts.clone() };
        let (afin, arep) = run(acfg);

        let cf = crep.faults.expect("plan set on concurrent");
        let af = arep.faults.expect("plan set on async");
        assert!(cf.total_errors() > 0, "p={p}: seeded plan injected nothing");
        assert_eq!(af, cf, "p={p}: fault counts differ");
        assert_eq!(arep.retries, crep.retries, "p={p}: retry totals differ");
        assert_eq!(afin, cfin, "p={p}: finals differ");
        assert_eq!(arep.io, crep.io, "p={p}: IoStats differ");
    }
}
