//! Property-based checks of the paper's theorems, run across the whole
//! stack (routing → simulation engine).

use proptest::prelude::*;

use cgmio_algos::CgmSort;
use cgmio_core::{measure_requirements, EmConfig, SeqEmRunner};
use cgmio_data as data;
use cgmio_model::{CgmProgram, DirectRunner, RoundCtx, Status};
use cgmio_routing::{bin_sizes, lemma1_feasible, superbin_sizes, Balanced};

/// A one-round h-relation with an arbitrary message-length matrix.
#[derive(Clone)]
struct MatrixExchange {
    lens: Vec<Vec<u8>>,
}

impl CgmProgram for MatrixExchange {
    type Msg = u64;
    type State = Vec<u64>;

    fn round(&self, ctx: &mut RoundCtx<'_, u64>, state: &mut Vec<u64>) -> Status {
        match ctx.round {
            0 => {
                for (dst, &len) in self.lens[ctx.pid].iter().enumerate() {
                    let base = (ctx.pid * ctx.v + dst) as u64 * 1000;
                    ctx.send(dst, (0..len as u64).map(move |k| base + k));
                }
                Status::Continue
            }
            _ => {
                *state = ctx.incoming.flatten();
                Status::Done
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 1 across the full adapter: wrapping ANY one-round
    /// exchange in BalancedRouting preserves the delivered data and
    /// respects the message-size bounds in both balanced rounds.
    #[test]
    fn balanced_adapter_preserves_and_bounds(
        v in 2usize..8,
        flat in proptest::collection::vec(0u8..40, 64),
    ) {
        let lens: Vec<Vec<u8>> =
            (0..v).map(|i| (0..v).map(|j| flat[(i * v + j) % flat.len()]).collect()).collect();
        let prog = MatrixExchange { lens: lens.clone() };
        let mk = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();

        let (want, plain_costs) = DirectRunner::default().run(&prog, mk()).unwrap();
        let (got, bal_costs) =
            DirectRunner::default().run(&Balanced::new(prog.clone()), mk()).unwrap();
        prop_assert_eq!(got, want);
        prop_assert_eq!(bal_costs.lambda(), 2 * plain_costs.lambda());

        // Theorem 1 size bound: v*msg <= h_max + v(v-1)/2 where h_max is
        // the max per-proc volume of the unbalanced round.
        let h = plain_costs.max_h();
        let bound = (h + v * (v - 1) / 2) / v + 1;
        prop_assert!(
            bal_costs.max_message() <= bound,
            "max balanced message {} exceeds bound {}", bal_costs.max_message(), bound
        );
    }

    /// Conservation: BalancedRouting's bins and superbins never lose or
    /// invent items.
    #[test]
    fn routing_conserves_items(
        v in 2usize..10,
        flat in proptest::collection::vec(0usize..100, 100),
    ) {
        let lens: Vec<Vec<usize>> =
            (0..v).map(|i| (0..v).map(|j| flat[(i * v + j) % flat.len()]).collect()).collect();
        // round A conservation, per source
        for (i, row) in lens.iter().enumerate() {
            let bins = bin_sizes(i, v, row);
            prop_assert_eq!(bins.iter().sum::<usize>(), row.iter().sum::<usize>());
        }
        // round B conservation, per destination
        let sb = superbin_sizes(v, &lens);
        for k in 0..v {
            let direct: usize = lens.iter().map(|r| r[k]).sum();
            let via: usize = sb.iter().map(|r| r[k]).sum();
            prop_assert_eq!(direct, via);
        }
    }

    /// Lemma 1 threshold is exact.
    #[test]
    fn lemma1_threshold(v in 2u64..64, b in 1u64..4096) {
        let n = v * v * b + v * v * (v - 1) / 2;
        prop_assert!(lemma1_feasible(n, v, b));
        prop_assert!(!lemma1_feasible(n - 1, v, b));
    }

    /// The EM engine sorts arbitrary key multisets identically to the
    /// in-memory reference (a full-stack property test).
    #[test]
    fn em_sort_equals_direct_sort(
        keys in proptest::collection::vec(any::<u64>(), 0..600),
        v in 2usize..6,
    ) {
        let prog = CgmSort::<u64>::block_distributed();
        let mk = || {
            data::block_split(keys.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (want, _) = DirectRunner::default().run(&prog, mk()).unwrap();
        let (_, _, req) = measure_requirements(&prog, mk()).unwrap();
        let cfg = EmConfig::from_requirements(v, 1, 2, 256, &req);
        let (got, rep) = SeqEmRunner::new(cfg).run(&prog, mk()).unwrap();
        prop_assert_eq!(got, want);
        // the memory audit never exceeds what the measurement promised
        prop_assert!(rep.peak_mem_bytes <= req.max_ctx_bytes
            + 2 * (req.max_proc_recv_bytes.max(req.max_proc_sent_bytes))
            + 64);
    }
}
