//! The pooled zero-copy data path must be *observably invisible*: final
//! states, I/O counters, checkpoint manifests, and trace op counts have
//! to match across every backend and both EM runners, and corrupt
//! on-disk bytes must surface as typed errors — never panics.

use cgmio_algos::CgmSort;
use cgmio_core::context::ContextStore;
use cgmio_core::{
    measure_requirements, BackendSpec, CheckpointManifest, EmConfig, EmError, ParEmRunner,
    RunOutcome, SeqEmRunner,
};
use cgmio_data as data;
use cgmio_model::{Encoder, ProcState};
use cgmio_pdm::{DiskArray, DiskGeometry, IoError, IoErrorKind, IoRequest, Item, SpanDecoder};
use proptest::prelude::*;

type SortState = (Vec<u64>, Vec<u64>);

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, 1, d, bb, &req)
}

/// Final states, IoStats, and the op breakdown agree across Mem,
/// SyncFile, and Concurrent backends, for both runners.
#[test]
fn backends_and_runners_bit_identical() {
    let keys = data::uniform_u64(4000, 11);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    let (want, want_rep) =
        SeqEmRunner::new(base.clone()).run(&prog, sort_states(&keys, v)).unwrap();
    let mut flat: Vec<u64> = want.iter().flat_map(|(s, _)| s.iter().copied()).collect();
    let mut check = keys.clone();
    check.sort_unstable();
    flat.sort_unstable(); // per-vp blocks are sorted; global order depends on pivots
    assert_eq!(flat, check, "sort must actually sort");

    let dir = cgmio_pdm::testutil::TempDir::new("cgmio-zero-copy-eq");
    let backends = [
        BackendSpec::SyncFile { dir: dir.path().join("sync") },
        BackendSpec::Concurrent { dir: None, opts: Default::default() },
        BackendSpec::Concurrent {
            dir: Some(dir.path().join("conc")),
            opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
        },
    ];
    for backend in backends {
        let mut cfg = base.clone();
        cfg.backend = backend.clone();
        let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        assert_eq!(got, want, "{backend:?}: finals differ");
        assert_eq!(rep.io, want_rep.io, "{backend:?}: IoStats differ");
        assert_eq!(rep.breakdown, want_rep.breakdown, "{backend:?}: breakdown differs");
    }

    // Parallel runner: identical finals for several worker counts.
    for p in [2usize, 3] {
        let mut cfg = base.clone();
        cfg.p = p;
        let (got, _) = ParEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
        assert_eq!(got, want, "par p={p}: finals differ");
    }
}

/// Checkpoint manifests written at every superstep barrier are
/// bit-identical across backends — the pooled path must not perturb
/// length tables, I/O counters, or cost accounting.
#[test]
fn checkpoint_manifests_identical_across_backends() {
    let keys = data::uniform_u64(1500, 5);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    let manifest_at = |backend: BackendSpec, halt: usize| -> CheckpointManifest {
        let mut cfg = base.clone();
        cfg.backend = backend;
        cfg.halt_after_superstep = Some(halt);
        match SeqEmRunner::new(cfg).run_until(&prog, sort_states(&keys, v)).unwrap() {
            RunOutcome::Interrupted(c) => c.manifest,
            RunOutcome::Complete { .. } => panic!("expected halt at {halt}"),
        }
    };
    let dir = cgmio_pdm::testutil::TempDir::new("cgmio-zero-copy-ckpt");
    for halt in [0usize, 1] {
        let want = manifest_at(BackendSpec::Mem, halt);
        let sync =
            manifest_at(BackendSpec::SyncFile { dir: dir.path().join(format!("s{halt}")) }, halt);
        let conc =
            manifest_at(BackendSpec::Concurrent { dir: None, opts: Default::default() }, halt);
        assert_eq!(sync, want, "halt={halt}: SyncFile manifest differs");
        assert_eq!(conc, want, "halt={halt}: Concurrent manifest differs");
    }
}

/// Every counted block transfer still appears as exactly one physical
/// trace event after the vectored scatter-gather rewrite.
#[test]
fn trace_op_counts_match_io_stats() {
    let keys = data::uniform_u64(2000, 3);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let mut cfg = sort_config(&keys, v, 2, 64);
    cfg.backend = BackendSpec::Concurrent {
        dir: None,
        opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
    };
    let (_, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
    let summary = cgmio_io::summarize(&rep.io_trace);
    assert_eq!(summary.reads as u64, rep.io.blocks_read);
    assert_eq!(summary.writes as u64, rep.io.blocks_written);
}

/// Corrupt on-disk context bytes surface as a typed
/// `IoErrorKind::Corrupt` fault naming the slot's first block — not a
/// panic from the decoder.
#[test]
fn corrupt_context_block_is_a_typed_error() {
    let geom = DiskGeometry::new(2, 32);
    let mut disks = DiskArray::new(geom);
    let mut store = ContextStore::new(2, 32, 0, 2, 128);
    let state: (Vec<u64>, Vec<u64>) = ((0..10).collect(), vec![99]);
    store.write(&mut disks, 1, &state.to_bytes()).unwrap();

    // Stamp an absurd length prefix over slot 1's first block.
    let addr = store.slot_addr(1);
    let mut evil = Encoder::new();
    evil.u64(u64::MAX / 2);
    disks.write_fifo(&[IoRequest { addr, data: evil.finish() }]).unwrap();

    let bytes = store.read(&mut disks, 1).unwrap();
    let err = <SortState as ProcState>::try_from_bytes(&bytes)
        .expect_err("corrupt length prefix must not decode");
    let mapped = store.corrupt_error(1, err);
    match mapped {
        EmError::Io(IoError::Fault { kind, disk, track, .. }) => {
            assert_eq!(kind, IoErrorKind::Corrupt);
            assert_eq!((disk, track), (addr.disk, addr.track));
        }
        other => panic!("expected a Corrupt fault, got {other:?}"),
    }

    // The untouched slot is unaffected.
    store.write(&mut disks, 0, &state.to_bytes()).unwrap();
    let ok = store.read(&mut disks, 0).unwrap();
    assert_eq!(<SortState as ProcState>::try_from_bytes(&ok).unwrap(), state);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `encode_into` over a pooled buffer is byte-identical to the
    /// allocating `encode_slice`, and `SpanDecoder` over arbitrary block
    /// splits inverts it exactly.
    #[test]
    fn pooled_codec_matches_allocating_codec(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        block in 8usize..64,
    ) {
        let block = block / 8 * 8; // whole items per span boundary not required, but keep blocks sane
        let want = u64::encode_slice(&items);
        let mut buf = vec![0u8; want.len()];
        u64::encode_into(&items, &mut buf).unwrap();
        prop_assert_eq!(&buf, &want);

        let mut dec = SpanDecoder::<u64>::new(items.len());
        for span in buf.chunks(block.max(1)) {
            dec.feed(span);
        }
        prop_assert_eq!(dec.finish().unwrap(), items);
    }

    /// Truncating an encoded `ProcState` anywhere yields `Err`, never a
    /// panic; the full buffer round-trips.
    #[test]
    fn truncated_states_never_panic(
        a in proptest::collection::vec(any::<u64>(), 0..40),
        b in proptest::collection::vec(any::<u64>(), 0..40),
        cut_pct in 0u32..100,
    ) {
        let state: SortState = (a, b);
        let bytes = state.to_bytes();
        prop_assert_eq!(&SortState::try_from_bytes(&bytes).unwrap(), &state);
        let cut = bytes.len() * cut_pct as usize / 100;
        if cut < bytes.len() {
            prop_assert!(SortState::try_from_bytes(&bytes[..cut]).is_err());
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full EM sort gives bit-identical finals and IoStats on Mem
    /// and Concurrent backends for arbitrary inputs.
    #[test]
    fn mem_and_concurrent_agree_on_random_inputs(
        seed in 0u64..1000,
        n in 200usize..800,
    ) {
        let keys = data::uniform_u64(n, seed);
        let v = 4;
        let prog = CgmSort::<u64>::by_pivots();
        let cfg = sort_config(&keys, v, 2, 64);
        let (want, want_rep) =
            SeqEmRunner::new(cfg.clone()).run(&prog, sort_states(&keys, v)).unwrap();
        let mut ccfg = cfg;
        ccfg.backend = BackendSpec::Concurrent { dir: None, opts: Default::default() };
        let (got, rep) = SeqEmRunner::new(ccfg).run(&prog, sort_states(&keys, v)).unwrap();
        prop_assert_eq!(got, want);
        prop_assert_eq!(rep.io, want_rep.io);
    }
}
