//! The large-`v` representations must be *observably invisible*: the
//! sparse message-length table and the paged context-length table
//! ([`cgmio_core::ScaleTuning`]) are memory layouts, not semantics, so
//! final states, `IoStats`, op breakdowns, and checkpoint manifests
//! have to be bit-identical to the dense/resident path — across both
//! EM runners and backends, including a checkpoint taken under one
//! representation and resumed under the other (`ScaleTuning` is
//! excluded from `config_hash` precisely to allow that).

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, CheckpointManifest, EmConfig, ParEmRunner, RunOutcome,
    ScaleTuning, SeqEmRunner,
};
use cgmio_data as data;
use cgmio_model::demo::{AllToOne, TokenRing};
use proptest::prelude::*;

type SortState = (Vec<u64>, Vec<u64>);

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, 1, d, bb, &req)
}

/// Force the dense message table and fully resident context table.
fn dense() -> ScaleTuning {
    ScaleTuning {
        sparse_msg_lens: Some(false),
        paged_ctx_lens: Some(false),
        ..ScaleTuning::default()
    }
}

/// Force the sparse message table and a deliberately tiny paged context
/// table (2-entry pages, 1 hot page) so eviction and reload really
/// happen even at test-sized `v`.
fn sparse() -> ScaleTuning {
    ScaleTuning {
        sparse_msg_lens: Some(true),
        paged_ctx_lens: Some(true),
        ctx_page_entries: 2,
        ctx_resident_pages: 1,
    }
}

/// Finals, IoStats, and op breakdowns agree between representations on
/// both runners and all three backends, for a message-heavy sort.
#[test]
fn representations_invisible_across_backends_and_runners() {
    let keys = data::uniform_u64(3000, 29);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);
    let dir = cgmio_pdm::testutil::TempDir::new("cgmio-scale-eq");

    for p in [1usize, 2] {
        let mut want = None;
        for (tag, tuning) in [("dense", dense()), ("sparse", sparse())] {
            for backend in [
                BackendSpec::Mem,
                BackendSpec::SyncFile { dir: dir.path().join(format!("sync-{p}-{tag}")) },
                BackendSpec::Concurrent { dir: None, opts: Default::default() },
            ] {
                let mut cfg = base.clone();
                cfg.p = p;
                cfg.scale = tuning.clone();
                cfg.backend = backend.clone();
                let (got, rep) = if p == 1 {
                    SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap()
                } else {
                    ParEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap()
                };
                let key = (got, rep.io.clone(), rep.breakdown, rep.costs.clone());
                match &want {
                    None => want = Some(key),
                    Some(w) => {
                        assert_eq!(&key.0, &w.0, "p={p} {tag} {backend:?}: finals differ");
                        assert_eq!(&key.1, &w.1, "p={p} {tag} {backend:?}: IoStats differ");
                        assert_eq!(&key.2, &w.2, "p={p} {tag} {backend:?}: breakdown differs");
                        assert_eq!(&key.3, &w.3, "p={p} {tag} {backend:?}: costs differ");
                    }
                }
            }
        }
    }
}

/// Checkpoint manifests are representation-independent, and a manifest
/// written under one representation resumes under the other with
/// bit-identical finals and cumulative I/O — on both runners.
#[test]
fn manifests_and_resume_cross_representations() {
    let v = 4;
    let prog = TokenRing { rounds: 6 };
    let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
    let (_, _, req) = measure_requirements(&prog, init()).unwrap();

    for p in [1usize, 2] {
        for (take, resume) in [(dense(), sparse()), (sparse(), dense())] {
            let dir = cgmio_pdm::testutil::TempDir::new(&format!("cgmio-scale-resume-{p}"));
            let mut cfg = EmConfig::from_requirements(v, p, 2, 32, &req);
            let run = |c: EmConfig| {
                if p == 1 {
                    SeqEmRunner::new(c).run_until(&prog, init())
                } else {
                    ParEmRunner::new(c).run_until(&prog, init())
                }
            };
            let (want, want_rep) = run(cfg.clone()).unwrap().expect_complete();

            // The manifest itself must not depend on the representation
            // that produced it.
            let manifest_under = |tuning: ScaleTuning, halt: usize| {
                let mut c = cfg.clone();
                c.scale = tuning;
                c.halt_after_superstep = Some(halt);
                match run(c).unwrap() {
                    RunOutcome::Interrupted(ck) => ck.manifest,
                    RunOutcome::Complete { .. } => panic!("expected halt at {halt}"),
                }
            };
            for halt in [0usize, 2] {
                assert_eq!(
                    manifest_under(dense(), halt),
                    manifest_under(sparse(), halt),
                    "p={p} halt={halt}: manifest depends on representation"
                );
            }

            // Crash under `take`, resume under `resume`.
            cfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
            cfg.checkpoint_dir = Some(dir.path().to_path_buf());
            cfg.scale = take;
            cfg.halt_after_superstep = Some(2);
            match run(cfg.clone()).unwrap() {
                RunOutcome::Interrupted(c) => drop(c), // the "crash"
                RunOutcome::Complete { .. } => panic!("expected halt"),
            }
            let manifest =
                CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
            cfg.halt_after_superstep = None;
            cfg.scale = resume;
            let resumed = if p == 1 {
                SeqEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap()
            } else {
                ParEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap()
            };
            let (finals, rep) = resumed.expect_complete();
            assert_eq!(finals, want, "p={p}: cross-representation resume diverged");
            assert_eq!(rep.io, want_rep.io, "p={p}: cumulative I/O diverged");
        }
    }
}

/// Skewed traffic (everything to vp 0) exercises the sparse table's
/// asymmetric rows: one crowded row, all others empty.
#[test]
fn skewed_traffic_identical_across_representations() {
    let v = 8;
    let prog = AllToOne { items_per_proc: 5 };
    let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
    let (_, _, req) = measure_requirements(&prog, init()).unwrap();
    for p in [1usize, 2, 4] {
        let mut cfg = EmConfig::from_requirements(v, p, 2, 32, &req);
        cfg.scale = dense();
        let run = |c: EmConfig| {
            if p == 1 {
                SeqEmRunner::new(c).run(&prog, init()).unwrap()
            } else {
                ParEmRunner::new(c).run(&prog, init()).unwrap()
            }
        };
        let (want, want_rep) = run(cfg.clone());
        cfg.scale = sparse();
        let (got, rep) = run(cfg);
        assert_eq!(got, want, "p={p}: skewed finals differ");
        assert_eq!(rep.io, want_rep.io, "p={p}: skewed IoStats differ");
        assert_eq!(rep.costs, want_rep.costs, "p={p}: skewed costs differ");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary inputs and machine shapes: sparse/paged matches
    /// dense/resident bit-for-bit on both runners.
    #[test]
    fn random_inputs_representation_invariant(
        seed in 0u64..1000,
        n in 200usize..800,
        v in 2usize..8,
        p in 1usize..3,
    ) {
        let p = p.min(v);
        let keys = data::uniform_u64(n, seed);
        let prog = CgmSort::<u64>::by_pivots();
        let mut cfg = sort_config(&keys, v, 2, 64);
        cfg.p = p;
        let run = |c: EmConfig| {
            if p == 1 {
                SeqEmRunner::new(c).run(&prog, sort_states(&keys, v)).unwrap()
            } else {
                ParEmRunner::new(c).run(&prog, sort_states(&keys, v)).unwrap()
            }
        };
        let mut cd = cfg.clone();
        cd.scale = dense();
        let (want, want_rep) = run(cd);
        cfg.scale = sparse();
        let (got, rep) = run(cfg);
        prop_assert_eq!(got, want);
        prop_assert_eq!(rep.io, want_rep.io);
        prop_assert_eq!(rep.breakdown, want_rep.breakdown);
    }
}
