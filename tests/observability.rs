//! Observability must be *free* at the model level: attaching an `Obs`
//! handle (metrics + spans + phase stamping) to any backend and either
//! runner must leave final states, `IoStats`, the op breakdown, and
//! checkpoint manifests bit-identical to an unobserved run — the
//! instrumentation watches the cost model, it never participates in it.
//!
//! Also covered: the span exports (chrome://tracing JSON, folded
//! stacks) are well-formed for a real run, and live metrics round-trip
//! through both exposition formats.

use proptest::prelude::*;

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, EmConfig, ParEmRunner, RunOutcome, SeqEmRunner,
};
use cgmio_data as data;
use cgmio_io::IoEngineOpts;
use cgmio_obs::{chrome_trace_json, folded_stacks, json, Obs};
use cgmio_pdm::testutil::TempDir;

type SortState = (Vec<u64>, Vec<u64>);

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, p: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, p, 2, 64, &req)
}

/// Run `cfg` on the right runner for its `p`, observed or not.
fn run(
    cfg: &EmConfig,
    keys: &[u64],
    v: usize,
    obs: Option<Obs>,
) -> (Vec<SortState>, cgmio_core::EmRunReport) {
    let prog = CgmSort::<u64>::by_pivots();
    let mut cfg = cfg.clone();
    cfg.obs = obs;
    if cfg.p == 1 {
        SeqEmRunner::new(cfg).run(&prog, sort_states(keys, v)).unwrap()
    } else {
        ParEmRunner::new(cfg).run(&prog, sort_states(keys, v)).unwrap()
    }
}

/// Deterministic sweep: every backend × both runners, observed run vs
/// unobserved run.
#[test]
fn obs_is_invisible_on_every_backend_and_runner() {
    let keys = data::uniform_u64(3000, 17);
    let v = 6;
    let dir = TempDir::new("cgmio-obs-invisible");
    let backends = [
        BackendSpec::Mem,
        BackendSpec::SyncFile { dir: dir.path().join("sync") },
        BackendSpec::Concurrent { dir: None, opts: Default::default() },
        BackendSpec::Concurrent {
            dir: Some(dir.path().join("conc")),
            opts: IoEngineOpts { trace: true, ..Default::default() },
        },
    ];
    for p in [1usize, 3] {
        for backend in &backends {
            let mut cfg = sort_config(&keys, v, p);
            cfg.backend = backend.clone();
            let (want, want_rep) = run(&cfg, &keys, v, None);
            let obs = Obs::new();
            let (got, rep) = run(&cfg, &keys, v, Some(obs.clone()));
            let tag = format!("p={p} {backend:?}");
            assert_eq!(got, want, "{tag}: finals differ under observation");
            assert_eq!(rep.io, want_rep.io, "{tag}: IoStats differ under observation");
            assert_eq!(rep.breakdown, want_rep.breakdown, "{tag}: breakdown differs");
            assert!(!obs.spans().is_empty(), "{tag}: observed run recorded no spans");
        }
    }
}

/// Span exports of a real observed run are machine-readable: the chrome
/// trace parses as JSON with one complete event per span, and every
/// folded-stack line is `stack count`.
#[test]
fn span_exports_are_well_formed() {
    let keys = data::uniform_u64(1500, 23);
    let v = 4;
    let cfg = sort_config(&keys, v, 1);
    let obs = Obs::new();
    run(&cfg, &keys, v, Some(obs.clone()));

    let spans = obs.spans();
    let chrome = chrome_trace_json(&spans, "seq");
    let doc = json::parse(&chrome).expect("chrome trace must be valid JSON");
    let events = doc.as_array().expect("chrome trace is an event array");
    assert_eq!(events.len(), spans.len());
    assert!(events.iter().all(|e| e.get("ph").and_then(json::Value::as_str) == Some("X")));

    let folded = folded_stacks(&spans);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line is `stack count`");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("folded count is a number");
    }

    // Live metrics round-trip through both exposition formats.
    let snap = obs.snapshot();
    assert_eq!(cgmio_obs::parse_prometheus(&cgmio_obs::to_prometheus(&snap)).unwrap(), snap);
    assert_eq!(cgmio_obs::parse_json(&cgmio_obs::to_json(&snap)).unwrap(), snap);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for arbitrary inputs, observation changes nothing the
    /// cost model can see — on Mem and the concurrent engine, for both
    /// runners, including the checkpoint manifest written at a barrier.
    #[test]
    fn obs_on_off_bit_identical(
        seed in 0u64..1000,
        n in 200usize..800,
        p in 1usize..4,
        concurrent in any::<bool>(),
    ) {
        let keys = data::uniform_u64(n, seed);
        let v = 4;
        let mut cfg = sort_config(&keys, v, p);
        if concurrent {
            cfg.backend = BackendSpec::Concurrent { dir: None, opts: Default::default() };
        }
        let (want, want_rep) = run(&cfg, &keys, v, None);
        let (got, rep) = run(&cfg, &keys, v, Some(Obs::new()));
        prop_assert_eq!(got, want);
        prop_assert_eq!(rep.io, want_rep.io);
        prop_assert_eq!(rep.breakdown, want_rep.breakdown);

        // Manifest at the first barrier: identical with and without obs.
        let prog = CgmSort::<u64>::by_pivots();
        let manifest_with = |obs: Option<Obs>| {
            let mut hcfg = cfg.clone();
            hcfg.obs = obs;
            hcfg.halt_after_superstep = Some(0);
            let out = if hcfg.p == 1 {
                SeqEmRunner::new(hcfg).run_until(&prog, sort_states(&keys, v)).unwrap()
            } else {
                ParEmRunner::new(hcfg).run_until(&prog, sort_states(&keys, v)).unwrap()
            };
            match out {
                RunOutcome::Interrupted(c) => c.manifest,
                RunOutcome::Complete { .. } => panic!("expected halt at superstep 0"),
            }
        };
        prop_assert_eq!(manifest_with(Some(Obs::new())), manifest_with(None));
    }
}
