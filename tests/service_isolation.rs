//! Multi-tenant isolation on the shared disk-array pool.
//!
//! The service's whole safety argument is that a job running in its
//! own [`BackendSpec::Shared`] track window of one shared
//! [`ConcurrentStorage`] engine is *observably identical* to the same
//! job running alone on a dedicated engine: same finals, same
//! [`IoStats`], same op breakdown. These tests run pairs of jobs
//! concurrently on one pool — under both EM runners, over random
//! inputs — and compare bit-for-bit against solo runs, then regress
//! the deficit round-robin scheduler's starvation guarantee through
//! the full [`JobService`].

use std::sync::Arc;

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, EmConfig, EmRunReport, ParEmRunner, SeqEmRunner,
};
use cgmio_data as data;
use cgmio_io::{ConcurrentStorage, IoEngineOpts};
use cgmio_model::CgmProgram;
use cgmio_pdm::{DiskGeometry, Item, MemStorage, TrackStorage};
use cgmio_svc::{JobService, JobSpec, Priority, ServiceConfig, WorkloadKind};
use proptest::prelude::*;

type SortState = (Vec<u64>, Vec<u64>);

const SORT_MSG_BYTES: usize = <<CgmSort<u64> as CgmProgram>::Msg as Item>::SIZE;

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, p: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, p, d, bb, &req)
}

fn run_sort(cfg: EmConfig, keys: &[u64], v: usize, par: bool) -> (Vec<SortState>, EmRunReport) {
    let prog = CgmSort::<u64>::by_pivots();
    if par {
        ParEmRunner::new(cfg).run(&prog, sort_states(keys, v)).unwrap()
    } else {
        SeqEmRunner::new(cfg).run(&prog, sort_states(keys, v)).unwrap()
    }
}

/// Two sorts run *concurrently* on one shared engine, each in its own
/// track window; both must be bit-identical (finals, IoStats, op
/// breakdown) to solo runs on dedicated engines.
fn assert_pair_isolated(seed: u64, n_a: usize, n_b: usize, v: usize, par: bool) {
    let (d, bb) = (2usize, 64usize);
    let p = if par { 2usize } else { 1 };
    let keys_a = data::uniform_u64(n_a, seed);
    let keys_b = data::uniform_u64(n_b, seed.wrapping_add(1000));
    let cfg_a = sort_config(&keys_a, v, p, d, bb);
    let cfg_b = sort_config(&keys_b, v, p, d, bb);

    // Solo references, each on a dedicated concurrent engine.
    let solo = |cfg: &EmConfig, keys: &[u64]| {
        let mut c = cfg.clone();
        c.backend = BackendSpec::Concurrent { dir: None, opts: IoEngineOpts::default() };
        run_sort(c, keys, v, par)
    };
    let (want_a, want_rep_a) = solo(&cfg_a, &keys_a);
    let (want_b, want_rep_b) = solo(&cfg_b, &keys_b);

    // One shared engine; job windows allocated back to back exactly as
    // the service's track allocator would.
    let geom = DiskGeometry::new(d, bb);
    let pool: Arc<dyn TrackStorage> = Arc::new(ConcurrentStorage::new(
        Arc::new(MemStorage::new(geom)),
        d,
        IoEngineOpts::default(),
    ));
    let span_a = cfg_a.tracks_per_worker(SORT_MSG_BYTES);
    let span_b = cfg_b.tracks_per_worker(SORT_MSG_BYTES);
    let mut sh_a = cfg_a;
    sh_a.backend = BackendSpec::Shared {
        storage: Arc::clone(&pool),
        base_track: 0,
        worker_span_tracks: span_a,
    };
    let mut sh_b = cfg_b;
    sh_b.backend = BackendSpec::Shared {
        storage: Arc::clone(&pool),
        base_track: span_a * p as u64,
        worker_span_tracks: span_b,
    };

    let ka = keys_a.clone();
    let handle = std::thread::spawn(move || run_sort(sh_a, &ka, v, par));
    let (got_b, rep_b) = run_sort(sh_b, &keys_b, v, par);
    let (got_a, rep_a) = handle.join().unwrap();

    assert_eq!(got_a, want_a, "job A finals differ from solo");
    assert_eq!(got_b, want_b, "job B finals differ from solo");
    assert_eq!(rep_a.io, want_rep_a.io, "job A IoStats differ from solo");
    assert_eq!(rep_b.io, want_rep_b.io, "job B IoStats differ from solo");
    assert_eq!(rep_a.breakdown, want_rep_a.breakdown);
    assert_eq!(rep_b.breakdown, want_rep_b.breakdown);
}

#[test]
fn concurrent_jobs_identical_to_solo_seq() {
    assert_pair_isolated(7, 1200, 800, 4, false);
}

#[test]
fn concurrent_jobs_identical_to_solo_par() {
    assert_pair_isolated(8, 1200, 800, 4, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random input sizes and seeds: a concurrent pair on the shared
    /// engine matches solo runs bit-for-bit under the seq runner.
    #[test]
    fn shared_pool_isolation_seq(
        seed in 0u64..500,
        n_a in 300usize..900,
        n_b in 300usize..900,
    ) {
        assert_pair_isolated(seed, n_a, n_b, 4, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same property under the parallel runner (p = 2): worker windows
    /// of both jobs interleave on the pool and must stay disjoint.
    #[test]
    fn shared_pool_isolation_par(
        seed in 0u64..500,
        n_a in 300usize..900,
        n_b in 300usize..900,
    ) {
        assert_pair_isolated(seed, n_a, n_b, 4, true);
    }
}

fn svc_spec(tenant: &str, seed: u64) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        workload: WorkloadKind::Sort,
        n: 1 << 9,
        v: 4,
        block_bytes: 512,
        priority: Priority::Normal,
        deadline_hint_ms: None,
        seed,
    }
}

/// Through the full service: a job's finals hash and measured ops match
/// a solo run of the same spec on a private default (Mem) backend, no
/// matter how many other tenants' jobs share the pool.
#[test]
fn service_jobs_match_solo_runs() {
    let svc = JobService::new(ServiceConfig {
        num_disks: 2,
        block_bytes: 512,
        workers: 3,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut ids = Vec::new();
    for i in 0..12u64 {
        let tenant = ["alpha", "beta", "gamma"][(i % 3) as usize];
        ids.push((svc.submit(svc_spec(tenant, i % 4)).unwrap(), i % 4));
    }
    let records = svc.drain();
    assert_eq!(records.len(), 12);

    // Solo references: same specs, private single-job engines.
    let solo: Vec<(u64, u64, u64)> = (0..4u64)
        .map(|seed| {
            let prepared = cgmio_svc::prepare(&svc_spec("solo", seed), 2).unwrap();
            let cfg = prepared.config.clone();
            let out = prepared.run(cfg).unwrap();
            (seed, out.finals_hash, out.report.breakdown.algorithm_ops())
        })
        .collect();
    for (id, seed) in ids {
        let rec = records.iter().find(|r| r.id == id).unwrap();
        let (_, want_hash, want_ops) = solo.iter().find(|(s, _, _)| *s == seed).unwrap();
        assert!(rec.ok, "{id}: {:?}", rec.error);
        assert_eq!(rec.finals_hash, *want_hash, "{id}: finals differ from solo run");
        assert_eq!(rec.measured_ops, *want_ops, "{id}: IoStats differ from solo run");
    }
}

/// DRR starvation regression through the service: one worker, a tenant
/// flooding 20 equal-cost jobs before a quiet tenant submits 3. Global
/// FIFO would finish the quiet tenant dead last (indices 20..22);
/// deficit round-robin must interleave it near the front.
#[test]
fn drr_prevents_tenant_starvation() {
    let svc = JobService::new(ServiceConfig {
        num_disks: 2,
        block_bytes: 512,
        workers: 1,
        quantum_ops: 64.0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut quiet_ids = Vec::new();
    for i in 0..20u64 {
        svc.submit(svc_spec("flood", i)).unwrap();
    }
    for i in 0..3u64 {
        quiet_ids.push(svc.submit(svc_spec("quiet", 100 + i)).unwrap());
    }
    let records = svc.drain();
    assert_eq!(records.len(), 23);
    // Records are in completion order; the single worker makes the
    // order deterministic up to where the first dispatch happened
    // relative to the quiet submissions — hence the generous bound.
    let quiet_last = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.tenant == "quiet")
        .map(|(i, _)| i)
        .max()
        .unwrap();
    assert!(
        quiet_last < 18,
        "quiet tenant starved: its last job finished {quiet_last} of 23 \
         (order: {:?})",
        records.iter().map(|r| r.tenant.as_str()).collect::<Vec<_>>()
    );
    // All of quiet's jobs completed successfully despite the flood.
    for id in quiet_ids {
        assert!(records.iter().any(|r| r.id == id && r.ok));
    }
}
