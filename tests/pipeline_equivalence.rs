//! The software-pipelined superstep executor must be *observably
//! invisible* at every depth: final states, `IoStats`, op breakdowns,
//! checkpoint manifests, trace op counts, and fault/retry totals have
//! to be bit-identical whether vp reads are demand-issued (depth 0) or
//! pre-issued up to `pipeline_depth` vps ahead — across every backend
//! and both EM runners, including kill-and-resume at a mid-run barrier.

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, CheckpointManifest, EmConfig, ParEmRunner, RunOutcome,
    SeqEmRunner,
};
use cgmio_data as data;
use cgmio_model::demo::TokenRing;
use proptest::prelude::*;

type SortState = (Vec<u64>, Vec<u64>);

const DEPTHS: [usize; 3] = [0, 1, 4];

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, 1, d, bb, &req)
}

fn backends(dir: &cgmio_pdm::testutil::TempDir, tag: &str) -> Vec<BackendSpec> {
    vec![
        BackendSpec::Mem,
        BackendSpec::SyncFile { dir: dir.path().join(format!("sync-{tag}")) },
        BackendSpec::Concurrent { dir: None, opts: Default::default() },
    ]
}

/// Finals, IoStats, and op breakdowns agree across pipeline depths
/// {0, 1, 4} × {Mem, SyncFile, Concurrent} × both runners.
#[test]
fn depths_invisible_across_backends_and_runners() {
    let keys = data::uniform_u64(3000, 17);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);
    let dir = cgmio_pdm::testutil::TempDir::new("cgmio-pipe-eq");

    let (want, want_rep) =
        SeqEmRunner::new(base.clone()).run(&prog, sort_states(&keys, v)).unwrap();
    let par_base = {
        let mut cfg = base.clone();
        cfg.p = 2;
        cfg
    };
    let (pwant, pwant_rep) =
        ParEmRunner::new(par_base.clone()).run(&prog, sort_states(&keys, v)).unwrap();
    assert_eq!(pwant, want, "par and seq must agree before depth enters the picture");

    for (tag, depth) in DEPTHS.into_iter().enumerate() {
        for backend in backends(&dir, &format!("seq{tag}")) {
            let mut cfg = base.clone();
            cfg.pipeline_depth = depth;
            cfg.backend = backend.clone();
            let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
            assert_eq!(got, want, "seq depth={depth} {backend:?}: finals differ");
            assert_eq!(rep.io, want_rep.io, "seq depth={depth} {backend:?}: IoStats differ");
            assert_eq!(
                rep.breakdown, want_rep.breakdown,
                "seq depth={depth} {backend:?}: breakdown differs"
            );
        }
        for backend in backends(&dir, &format!("par{tag}")) {
            let mut cfg = par_base.clone();
            cfg.pipeline_depth = depth;
            cfg.backend = backend.clone();
            let (got, rep) = ParEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
            assert_eq!(got, pwant, "par depth={depth} {backend:?}: finals differ");
            assert_eq!(rep.io, pwant_rep.io, "par depth={depth} {backend:?}: IoStats differ");
            assert_eq!(
                rep.breakdown, pwant_rep.breakdown,
                "par depth={depth} {backend:?}: breakdown differs"
            );
        }
    }
}

/// Checkpoint manifests written at every barrier are bit-identical at
/// every pipeline depth: priming happens strictly after the previous
/// round's barrier and checkpoint decision, so no charge leaks across.
#[test]
fn manifests_identical_across_depths() {
    let keys = data::uniform_u64(1200, 7);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    let manifest_at = |depth: usize, p: usize, halt: usize| -> CheckpointManifest {
        let mut cfg = base.clone();
        cfg.pipeline_depth = depth;
        cfg.p = p;
        cfg.backend = BackendSpec::Concurrent { dir: None, opts: Default::default() };
        cfg.halt_after_superstep = Some(halt);
        let run = if p == 1 {
            SeqEmRunner::new(cfg).run_until(&prog, sort_states(&keys, v)).unwrap()
        } else {
            ParEmRunner::new(cfg).run_until(&prog, sort_states(&keys, v)).unwrap()
        };
        match run {
            RunOutcome::Interrupted(c) => c.manifest,
            RunOutcome::Complete { .. } => panic!("expected halt at {halt}"),
        }
    };
    for p in [1usize, 2] {
        for halt in [0usize, 1] {
            let want = manifest_at(0, p, halt);
            for depth in [1usize, 4] {
                assert_eq!(
                    manifest_at(depth, p, halt),
                    want,
                    "p={p} halt={halt} depth={depth}: manifest differs"
                );
            }
        }
    }
}

/// Injected-fault and retry totals are depth-invariant: the injector
/// keys rolls per (drive, track), and the pipeline preserves per-track
/// access order even when it interleaves tracks.
#[test]
fn fault_and_retry_totals_identical_across_depths() {
    let keys = data::uniform_u64(2000, 23);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    for backend in
        [BackendSpec::Mem, BackendSpec::Concurrent { dir: None, opts: Default::default() }]
    {
        let mut want: Option<_> = None;
        for depth in DEPTHS {
            let mut cfg = base.clone();
            cfg.pipeline_depth = depth;
            cfg.backend = backend.clone();
            cfg.fault = Some(cgmio_pdm::FaultPlan::transient(41, 0.04));
            cfg.retry = cgmio_io::RetryPolicy { max_attempts: 8, base_backoff_us: 0 };
            let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
            let faults = rep.faults.expect("fault plan set => counts reported");
            assert!(faults.total_errors() > 0, "{backend:?}: no faults injected");
            let key = (got, rep.io.clone(), faults, rep.retries);
            match &want {
                None => want = Some(key),
                Some(w) => {
                    assert_eq!(&key.0, &w.0, "{backend:?} depth={depth}: finals differ");
                    assert_eq!(&key.1, &w.1, "{backend:?} depth={depth}: IoStats differ");
                    assert_eq!(&key.2, &w.2, "{backend:?} depth={depth}: fault counts differ");
                    assert_eq!(key.3, w.3, "{backend:?} depth={depth}: retries differ");
                }
            }
        }
    }
}

/// Kill-and-resume at a mid-run barrier replays to the same finals and
/// cumulative I/O as an uninterrupted run, at every depth and on both
/// runners (crash-recovery path: manifest + rebuilt disks).
#[test]
fn kill_and_resume_matches_uninterrupted_at_every_depth() {
    let v = 4;
    let prog = TokenRing { rounds: 6 };
    let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
    let (_, _, req) = measure_requirements(&prog, init()).unwrap();

    for p in [1usize, 2] {
        for depth in DEPTHS {
            let dir = cgmio_pdm::testutil::TempDir::new(&format!("cgmio-pipe-resume-{p}-{depth}"));
            let mut cfg = EmConfig::from_requirements(v, p, 2, 32, &req);
            cfg.pipeline_depth = depth;

            let run = |c: EmConfig| {
                if p == 1 {
                    SeqEmRunner::new(c).run_until(&prog, init())
                } else {
                    ParEmRunner::new(c).run_until(&prog, init())
                }
            };
            let (want, want_rep) = run(cfg.clone()).unwrap().expect_complete();

            cfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
            cfg.checkpoint_dir = Some(dir.path().to_path_buf());
            cfg.halt_after_superstep = Some(2);
            match run(cfg.clone()).unwrap() {
                RunOutcome::Interrupted(c) => drop(c), // the "crash"
                RunOutcome::Complete { .. } => panic!("expected halt"),
            }
            let manifest =
                CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
            assert_eq!(manifest.superstep, 2);
            cfg.halt_after_superstep = None;
            let resumed = if p == 1 {
                SeqEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap()
            } else {
                ParEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap()
            };
            let (finals, rep) = resumed.expect_complete();
            assert_eq!(finals, want, "p={p} depth={depth}: finals differ after resume");
            assert_eq!(rep.io, want_rep.io, "p={p} depth={depth}: IoStats differ after resume");
            assert_eq!(
                rep.breakdown, want_rep.breakdown,
                "p={p} depth={depth}: breakdown differs after resume"
            );
            assert_eq!(rep.costs.lambda(), want_rep.costs.lambda(), "p={p} depth={depth}");
        }
    }
}

/// Every counted block transfer still appears as exactly one demand
/// trace event under deep pipelining (pre-issued reads are demand
/// reads, not prefetches, so the totals must balance exactly).
#[test]
fn trace_op_counts_match_io_stats_at_depth() {
    let keys = data::uniform_u64(1500, 3);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let mut cfg = sort_config(&keys, v, 2, 64);
    cfg.pipeline_depth = 4;
    cfg.backend = BackendSpec::Concurrent {
        dir: None,
        opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
    };
    let (_, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
    let summary = cgmio_io::summarize(&rep.io_trace);
    assert_eq!(summary.reads as u64, rep.io.blocks_read);
    assert_eq!(summary.writes as u64, rep.io.blocks_written);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary inputs: depth 4 matches depth 0 bit-for-bit on both
    /// Mem and Concurrent backends.
    #[test]
    fn random_inputs_depth_invariant(
        seed in 0u64..1000,
        n in 200usize..800,
    ) {
        let keys = data::uniform_u64(n, seed);
        let v = 4;
        let prog = CgmSort::<u64>::by_pivots();
        let cfg = sort_config(&keys, v, 2, 64);
        for backend in
            [BackendSpec::Mem, BackendSpec::Concurrent { dir: None, opts: Default::default() }]
        {
            let mut c0 = cfg.clone();
            c0.backend = backend.clone();
            let (want, want_rep) =
                SeqEmRunner::new(c0).run(&prog, sort_states(&keys, v)).unwrap();
            let mut c4 = cfg.clone();
            c4.backend = backend;
            c4.pipeline_depth = 4;
            let (got, rep) = SeqEmRunner::new(c4).run(&prog, sort_states(&keys, v)).unwrap();
            prop_assert_eq!(got, want);
            prop_assert_eq!(rep.io, want_rep.io);
            prop_assert_eq!(rep.breakdown, want_rep.breakdown);
        }
    }
}
