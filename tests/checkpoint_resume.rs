//! Kill-and-resume property: halting an EM run at *any* superstep
//! barrier and resuming from the checkpoint reproduces the
//! uninterrupted run's final states and exact I/O accounting — across
//! storage backends (in-memory, synchronous files, the concurrent
//! engine) and across both runners (Algorithm 2 and Algorithm 3).
//!
//! This is the correctness contract behind `docs/OPERATIONS.md` §
//! "Resuming an interrupted run": the on-disk contexts and inboxes at a
//! barrier *are* the checkpoint, so no state can be lost between the
//! manifest and the data.

use proptest::prelude::*;

use cgmio_core::{
    measure_requirements, BackendSpec, CheckpointManifest, EmConfig, EmRunReport, ParEmRunner,
    RunOutcome, SeqEmRunner,
};
use cgmio_io::IoEngineOpts;
use cgmio_model::demo::TokenRing;
use cgmio_pdm::testutil::TempDir;

fn mk_states(v: usize) -> Vec<Vec<u64>> {
    (0..v as u64).map(|i| vec![i]).collect()
}

fn config(prog: &TokenRing, v: usize, p: usize) -> EmConfig {
    let (_, _, req) = measure_requirements(prog, mk_states(v)).unwrap();
    EmConfig::from_requirements(v, p, 2, 64, &req)
}

/// Check a resumed run against the uninterrupted reference.
fn assert_same(
    tag: &str,
    (finals, rep): &(Vec<Vec<u64>>, EmRunReport),
    (want, want_rep): &(Vec<Vec<u64>>, EmRunReport),
) {
    assert_eq!(finals, want, "{tag}: final states differ");
    assert_eq!(rep.io, want_rep.io, "{tag}: IoStats differ");
    assert_eq!(rep.breakdown, want_rep.breakdown, "{tag}: I/O breakdown differs");
    assert_eq!(rep.costs.lambda(), want_rep.costs.lambda(), "{tag}: superstep count differs");
}

/// Kill `cfg`'s run at superstep `halt`, resume, and return the result.
/// `persist = true` drops the live checkpoint and resumes from the
/// manifest file alone (crash recovery); `false` resumes the in-process
/// checkpoint (works on any backend, including pure memory).
fn kill_and_resume(
    prog: &TokenRing,
    cfg: &EmConfig,
    v: usize,
    halt: usize,
    persist: Option<&std::path::Path>,
) -> (Vec<Vec<u64>>, EmRunReport) {
    let mut hcfg = cfg.clone();
    hcfg.halt_after_superstep = Some(halt);
    hcfg.checkpoint_dir = persist.map(|d| d.to_path_buf());
    let ckpt = match SeqEmRunner::new(hcfg).run_until(prog, mk_states(v)).unwrap() {
        RunOutcome::Interrupted(c) => c,
        RunOutcome::Complete { .. } => panic!("run did not halt at superstep {halt}"),
    };
    assert_eq!(ckpt.manifest.superstep, halt);
    match persist {
        Some(dir) => {
            drop(ckpt); // the "crash": only the files survive
            let manifest = CheckpointManifest::load(&CheckpointManifest::path_in(dir)).unwrap();
            SeqEmRunner::new(cfg.clone()).resume_from(prog, &manifest).unwrap().expect_complete()
        }
        None => SeqEmRunner::new(cfg.clone()).resume(prog, ckpt).unwrap().expect_complete(),
    }
}

/// Fault and retry totals surface in both runners' final reports, and a
/// crash-recovered run reports the counters of its own window (the
/// pre-crash portion's injector handles die with the crash — resumed
/// runs count from the barrier they restart at).
#[test]
fn fault_and_retry_totals_appear_in_reports() {
    let (v, rounds) = (6usize, 4usize);
    let prog = TokenRing { rounds };
    let retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };

    for p in [1usize, 3] {
        let mut cfg = config(&prog, v, p);
        cfg.fault = Some(cgmio_pdm::FaultPlan::transient(11, 0.1));
        cfg.retry = retry;
        let (_, rep) = if p == 1 {
            SeqEmRunner::new(cfg).run(&prog, mk_states(v)).unwrap()
        } else {
            ParEmRunner::new(cfg).run(&prog, mk_states(v)).unwrap()
        };
        let f = rep.faults.expect("fault plan set, report must carry counts");
        assert!(f.total_errors() > 0, "p={p}: seeded plan injected nothing");
        // On the synchronous backends every healed transient fault is
        // exactly one RetryStorage retry.
        assert_eq!(
            rep.retries,
            f.read_transient + f.write_transient + f.torn_writes,
            "p={p}: retries must match healed transient faults"
        );
    }

    // Crash recovery: the resumed run rebuilds its injectors, so its
    // report counts only the post-resume window — present, not None.
    let dir = TempDir::new("cgmio-ckpt-fault-report");
    let mut fcfg = config(&prog, v, 1);
    fcfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
    fcfg.fault = Some(cgmio_pdm::FaultPlan::transient(11, 0.1));
    fcfg.retry = retry;
    let (_, rep) = kill_and_resume(&prog, &fcfg, v, 1, Some(dir.path()));
    let f = rep.faults.expect("crash recovery rebuilds injectors, counts must be present");
    assert_eq!(rep.retries, f.read_transient + f.write_transient + f.torn_writes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sequential runner (Algorithm 2): kill at an arbitrary superstep
    /// on every backend; the resumed run must be byte- and
    /// counter-identical to the uninterrupted one.
    #[test]
    fn seq_kill_resume_exact_across_backends(
        v in 3usize..7,
        rounds in 3usize..6,
        halt_pick in 0usize..16,
    ) {
        let prog = TokenRing { rounds };
        let halt = halt_pick % (rounds - 1); // any barrier before the last
        let cfg = config(&prog, v, 1);
        let want = SeqEmRunner::new(cfg.clone()).run(&prog, mk_states(v)).unwrap();

        // In-memory backend: in-process resume (nothing persisted).
        let got = kill_and_resume(&prog, &cfg, v, halt, None);
        assert_same("mem", &got, &want);

        // Synchronous files: crash recovery from the manifest alone.
        let dir = TempDir::new("cgmio-ckpt-prop-sync");
        let mut fcfg = cfg.clone();
        fcfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
        let got = kill_and_resume(&prog, &fcfg, v, halt, Some(dir.path()));
        assert_same("sync-file", &got, &want);

        // Concurrent engine over files: crash recovery again.
        let dir = TempDir::new("cgmio-ckpt-prop-conc");
        let mut ccfg = cfg.clone();
        ccfg.backend = BackendSpec::Concurrent {
            dir: Some(dir.path().join("drives")),
            opts: IoEngineOpts::default(),
        };
        let got = kill_and_resume(&prog, &ccfg, v, halt, Some(dir.path()));
        assert_same("concurrent", &got, &want);
    }

    /// Parallel runner (Algorithm 3): same property with p > 1 workers,
    /// each with its own disk array and manifest entry.
    #[test]
    fn par_kill_resume_exact(
        v in 4usize..8,
        p in 2usize..4,
        rounds in 3usize..6,
        halt_pick in 0usize..16,
    ) {
        let prog = TokenRing { rounds };
        let halt = halt_pick % (rounds - 1);
        let cfg = config(&prog, v, p);
        let want = ParEmRunner::new(cfg.clone()).run(&prog, mk_states(v)).unwrap();

        // In-process resume on the memory backend.
        let mut hcfg = cfg.clone();
        hcfg.halt_after_superstep = Some(halt);
        let ckpt = match ParEmRunner::new(hcfg).run_until(&prog, mk_states(v)).unwrap() {
            RunOutcome::Interrupted(c) => c,
            RunOutcome::Complete { .. } => panic!("run did not halt at superstep {halt}"),
        };
        prop_assert_eq!(ckpt.manifest.superstep, halt);
        let got =
            ParEmRunner::new(cfg.clone()).resume(&prog, ckpt).unwrap().expect_complete();
        assert_same("par-mem", &got, &want);

        // Crash recovery from files.
        let dir = TempDir::new("cgmio-ckpt-prop-par");
        let mut fcfg = cfg.clone();
        fcfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
        fcfg.checkpoint_dir = Some(dir.path().to_path_buf());
        fcfg.halt_after_superstep = Some(halt);
        match ParEmRunner::new(fcfg.clone()).run_until(&prog, mk_states(v)).unwrap() {
            RunOutcome::Interrupted(c) => drop(c),
            RunOutcome::Complete { .. } => panic!("run did not halt at superstep {halt}"),
        }
        let manifest =
            CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
        prop_assert_eq!(manifest.workers.len(), p.min(v));
        fcfg.halt_after_superstep = None;
        let got =
            ParEmRunner::new(fcfg).resume_from(&prog, &manifest).unwrap().expect_complete();
        assert_same("par-sync-file", &got, &want);
    }
}
