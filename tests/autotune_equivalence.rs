//! The self-tuning runtime must be *observably invisible* to the
//! accounting: final states, `IoStats`, op breakdowns, checkpoint
//! manifests, and fault/retry totals have to be bit-identical with the
//! feedback tuner on or off — across every backend and both EM runners.
//! The tuner only moves knobs excluded from `config_hash`
//! (`pipeline_depth`, the concurrent engine's prefetch window) and only
//! at drained round boundaries, so wall-clock is the one thing allowed
//! to change.

use cgmio_algos::CgmSort;
use cgmio_core::{
    measure_requirements, BackendSpec, EmConfig, ParEmRunner, RunOutcome, SeqEmRunner,
};
use cgmio_data as data;
use proptest::prelude::*;

type SortState = (Vec<u64>, Vec<u64>);

fn sort_states(keys: &[u64], v: usize) -> Vec<SortState> {
    data::block_split(keys.to_vec(), v).into_iter().map(|b| (b, Vec::new())).collect()
}

fn sort_config(keys: &[u64], v: usize, d: usize, bb: usize) -> EmConfig {
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, sort_states(keys, v)).unwrap();
    EmConfig::from_requirements(v, 1, d, bb, &req)
}

/// A twitchy policy (patience 1, wide depth range) so short test runs
/// actually move the knobs — an inert tuner would vacuously pass.
fn twitchy() -> cgmio_tune::Autotune {
    cgmio_tune::Autotune {
        enabled: true,
        policy: cgmio_tune::TunePolicy {
            patience: 1,
            dominance_ratio: 1.1,
            ..cgmio_tune::TunePolicy::default()
        },
        log: Some(cgmio_tune::DecisionLog::new()),
    }
}

fn backends(dir: &cgmio_pdm::testutil::TempDir, tag: &str) -> Vec<BackendSpec> {
    vec![
        BackendSpec::Mem,
        BackendSpec::SyncFile { dir: dir.path().join(format!("sync-{tag}")) },
        BackendSpec::Concurrent { dir: None, opts: Default::default() },
        BackendSpec::AsyncFile {
            dir: dir.path().join(format!("async-{tag}")),
            opts: Default::default(),
        },
    ]
}

/// Finals, IoStats, and op breakdowns agree tuner-on vs tuner-off on
/// {Mem, SyncFile, Concurrent, AsyncFile} × both runners.
#[test]
fn tuner_invisible_across_backends_and_runners() {
    let keys = data::uniform_u64(3000, 17);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);
    let dir = cgmio_pdm::testutil::TempDir::new("cgmio-tune-eq");

    for p in [1usize, 2] {
        for (tag, backend) in backends(&dir, &format!("p{p}")).into_iter().enumerate() {
            let run = |autotune: cgmio_tune::Autotune, subtag: usize| {
                let mut cfg = base.clone();
                cfg.p = p;
                cfg.autotune = autotune;
                cfg.backend = match &backend {
                    // Fresh drive dirs per run: a file backend would
                    // otherwise see the previous run's tracks.
                    BackendSpec::SyncFile { dir } => {
                        BackendSpec::SyncFile { dir: dir.join(format!("r{subtag}")) }
                    }
                    BackendSpec::AsyncFile { dir, opts } => BackendSpec::AsyncFile {
                        dir: dir.join(format!("r{subtag}")),
                        opts: opts.clone(),
                    },
                    b => b.clone(),
                };
                if p == 1 {
                    SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap()
                } else {
                    ParEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap()
                }
            };
            let (want, want_rep) = run(cgmio_tune::Autotune::default(), 0);
            let tuned = twitchy();
            let log = tuned.log.clone().unwrap();
            let (got, rep) = run(tuned, 1);
            assert_eq!(got, want, "p={p} backend #{tag}: finals differ with tuner on");
            assert_eq!(rep.io, want_rep.io, "p={p} backend #{tag}: IoStats differ with tuner on");
            assert_eq!(
                rep.breakdown, want_rep.breakdown,
                "p={p} backend #{tag}: breakdown differs with tuner on"
            );
            assert!(
                !log.snapshot().is_empty(),
                "p={p} backend #{tag}: tuner never consulted — test is vacuous"
            );
        }
    }
}

/// Checkpoint manifests written at a mid-run barrier are bit-identical
/// tuner-on vs tuner-off: the controller runs strictly after the
/// barrier flush and the checkpoint decision.
#[test]
fn manifests_identical_with_tuner_on() {
    let keys = data::uniform_u64(1200, 7);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    let manifest_at = |autotune: cgmio_tune::Autotune, p: usize, halt: usize| {
        let mut cfg = base.clone();
        cfg.autotune = autotune;
        cfg.p = p;
        cfg.backend = BackendSpec::Concurrent { dir: None, opts: Default::default() };
        cfg.halt_after_superstep = Some(halt);
        let run = if p == 1 {
            SeqEmRunner::new(cfg).run_until(&prog, sort_states(&keys, v)).unwrap()
        } else {
            ParEmRunner::new(cfg).run_until(&prog, sort_states(&keys, v)).unwrap()
        };
        match run {
            RunOutcome::Interrupted(c) => c.manifest,
            RunOutcome::Complete { .. } => panic!("expected halt at {halt}"),
        }
    };
    for p in [1usize, 2] {
        for halt in [0usize, 1] {
            let want = manifest_at(cgmio_tune::Autotune::default(), p, halt);
            assert_eq!(
                manifest_at(twitchy(), p, halt),
                want,
                "p={p} halt={halt}: manifest differs with tuner on"
            );
        }
    }
}

/// Injected-fault and retry totals are tuner-invariant: a FaultPlan
/// forces `ignore_hints`, and depth changes preserve per-track access
/// order, so the injector sees the identical op stream.
#[test]
fn fault_and_retry_totals_identical_with_tuner_on() {
    let keys = data::uniform_u64(2000, 23);
    let v = 6;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    for backend in
        [BackendSpec::Mem, BackendSpec::Concurrent { dir: None, opts: Default::default() }]
    {
        let run = |autotune: cgmio_tune::Autotune| {
            let mut cfg = base.clone();
            cfg.autotune = autotune;
            cfg.backend = backend.clone();
            cfg.fault = Some(cgmio_pdm::FaultPlan::transient(41, 0.04));
            cfg.retry = cgmio_io::RetryPolicy { max_attempts: 8, base_backoff_us: 0 };
            let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
            let faults = rep.faults.expect("fault plan set => counts reported");
            assert!(faults.total_errors() > 0, "{backend:?}: no faults injected");
            (got, rep.io.clone(), faults, rep.retries)
        };
        let want = run(cgmio_tune::Autotune::default());
        let got = run(twitchy());
        assert_eq!(got.0, want.0, "{backend:?}: finals differ with tuner on");
        assert_eq!(got.1, want.1, "{backend:?}: IoStats differ with tuner on");
        assert_eq!(got.2, want.2, "{backend:?}: fault counts differ with tuner on");
        assert_eq!(got.3, want.3, "{backend:?}: retries differ with tuner on");
    }
}

/// The tuner composes with a user-supplied `Obs`: decisions land in the
/// log, the decision counter and knob gauges are exported, and the
/// accounting still matches the untuned run.
#[test]
fn tuner_shares_a_caller_obs_and_exports_decisions() {
    let keys = data::uniform_u64(1500, 3);
    let v = 4;
    let prog = CgmSort::<u64>::by_pivots();
    let base = sort_config(&keys, v, 2, 64);

    let (want, want_rep) =
        SeqEmRunner::new(base.clone()).run(&prog, sort_states(&keys, v)).unwrap();

    let obs = cgmio_obs::Obs::new();
    let mut cfg = base.clone();
    cfg.obs = Some(obs.clone());
    cfg.autotune = twitchy();
    let log = cfg.autotune.log.clone().unwrap();
    cfg.backend = BackendSpec::Concurrent { dir: None, opts: Default::default() };
    let (got, rep) = SeqEmRunner::new(cfg).run(&prog, sort_states(&keys, v)).unwrap();
    assert_eq!(got, want);
    assert_eq!(rep.io, want_rep.io);

    let decisions = log.snapshot();
    assert!(!decisions.is_empty(), "controller never consulted");
    // One decision per completed superstep, knobs within policy bounds.
    for d in &decisions {
        assert!(d.depth <= cgmio_tune::TunePolicy::default().max_depth);
    }
    let snap = obs.snapshot();
    let total: u64 = ["deepen", "back_off", "hold"]
        .into_iter()
        .filter_map(|a| {
            snap.get("cgmio_tune_decisions_total", &[("action", a), ("proc", "0")]).and_then(|s| {
                match s {
                    cgmio_obs::SampleValue::Counter(c) => Some(*c),
                    _ => None,
                }
            })
        })
        .sum();
    assert_eq!(total as usize, decisions.len(), "decision counter must match the audit log");
    assert!(snap.get("cgmio_tune_depth", &[("proc", "0")]).is_some(), "depth gauge not exported");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary inputs: tuner-on matches tuner-off bit-for-bit on both
    /// Mem and Concurrent backends.
    #[test]
    fn random_inputs_tuner_invariant(
        seed in 0u64..1000,
        n in 200usize..800,
    ) {
        let keys = data::uniform_u64(n, seed);
        let v = 4;
        let prog = CgmSort::<u64>::by_pivots();
        let cfg = sort_config(&keys, v, 2, 64);
        for backend in
            [BackendSpec::Mem, BackendSpec::Concurrent { dir: None, opts: Default::default() }]
        {
            let mut off = cfg.clone();
            off.backend = backend.clone();
            let (want, want_rep) =
                SeqEmRunner::new(off).run(&prog, sort_states(&keys, v)).unwrap();
            let mut on = cfg.clone();
            on.backend = backend;
            on.autotune = twitchy();
            let (got, rep) = SeqEmRunner::new(on).run(&prog, sort_states(&keys, v)).unwrap();
            prop_assert_eq!(got, want);
            prop_assert_eq!(rep.io, want_rep.io);
            prop_assert_eq!(rep.breakdown, want_rep.breakdown);
        }
    }
}
