//! Cross-runner equivalence: every CGM program in the catalogue must
//! produce bit-identical final states on the in-memory reference runner,
//! the multi-threaded runner, and both external-memory simulation
//! engines — the paper's central claim made executable.

use cgmio_algos::geometry::{CgmConvexHull, CgmDominance, CgmIntervalStab, CgmUnionArea};
use cgmio_algos::graphs::{CgmConnectivity, CgmEulerTour, CgmListRank};
use cgmio_algos::{CgmPermute, CgmSort, CgmTranspose};
use cgmio_core::{measure_requirements, EmConfig, ParEmRunner, SeqEmRunner};
use cgmio_data as data;
use cgmio_model::{CgmProgram, DirectRunner, ThreadedRunner};

/// Run `prog` on all four runners and demand identical final states.
fn assert_all_runners_agree<P>(prog: &P, mk: impl Fn() -> Vec<P::State>, label: &str)
where
    P: CgmProgram,
    P::State: PartialEq + std::fmt::Debug + Clone,
{
    let v = mk().len();
    let (want, _) = DirectRunner::default().run(prog, mk()).unwrap();

    let (threaded, _) = ThreadedRunner::new(3).run(prog, mk()).unwrap();
    assert_eq!(threaded, want, "{label}: threaded != direct");

    let (_, _, req) = measure_requirements(prog, mk()).unwrap();
    for d in [1usize, 3] {
        let cfg = EmConfig::from_requirements(v, 1, d, 512, &req);
        let (seq_em, rep) = SeqEmRunner::new(cfg).run(prog, mk()).unwrap();
        assert_eq!(seq_em, want, "{label}: seq EM (D={d}) != direct");
        assert!(rep.breakdown.algorithm_ops() > 0 || rep.costs.total_items() == 0);

        let mut cfg = EmConfig::from_requirements(v, 1, d, 512, &req);
        cfg.p = (v / 2).max(2).min(v);
        let (par_em, _) = ParEmRunner::new(cfg).run(prog, mk()).unwrap();
        assert_eq!(par_em, want, "{label}: par EM (D={d}) != direct");
    }
}

#[test]
fn sort_agrees_everywhere() {
    let keys = data::uniform_u64(3000, 1);
    let v = 6;
    assert_all_runners_agree(
        &CgmSort::<u64>::block_distributed(),
        || data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect(),
        "sort",
    );
}

#[test]
fn permute_agrees_everywhere() {
    let n = 2000;
    let v = 5;
    let vals = data::uniform_u64(n, 2);
    let perm = data::random_permutation(n, 3);
    assert_all_runners_agree(
        &CgmPermute,
        || {
            data::block_split(vals.clone(), v)
                .into_iter()
                .zip(data::block_split(perm.clone(), v))
                .map(|(vb, pb)| (vb, pb, n as u64))
                .collect()
        },
        "permute",
    );
}

#[test]
fn transpose_agrees_everywhere() {
    let (k, l) = (40, 30);
    let v = 6;
    let m = data::uniform_u64(k * l, 4);
    assert_all_runners_agree(
        &CgmTranspose,
        || data::block_split(m.clone(), v).into_iter().map(|b| (b, k as u64, l as u64)).collect(),
        "transpose",
    );
}

#[test]
fn convex_hull_agrees_everywhere() {
    let pts = data::random_points(1200, 50_000, 5);
    let v = 6;
    assert_all_runners_agree(
        &CgmConvexHull,
        || data::block_split(pts.clone(), v).into_iter().map(|b| (b, Vec::new())).collect(),
        "hull",
    );
}

#[test]
fn union_area_agrees_everywhere() {
    let rects: Vec<[i64; 4]> =
        data::random_rects(600, 5_000, 6).into_iter().map(|r| [r.x1, r.y1, r.x2, r.y2]).collect();
    let v = 5;
    assert_all_runners_agree(
        &CgmUnionArea,
        || data::block_split(rects.clone(), v).into_iter().map(|b| (b, Vec::new())).collect(),
        "union_area",
    );
}

#[test]
fn interval_stab_agrees_everywhere() {
    let ivs: Vec<[i64; 3]> = data::uniform_u64(800, 7)
        .chunks(2)
        .map(|c| {
            let a = (c[0] % 10_000) as i64;
            [a, a + (c[1] % 500) as i64, 1 + (c[1] % 5) as i64]
        })
        .collect();
    let qs: Vec<(u64, i64)> = (0..400u64).map(|i| (i, (i as i64 * 29) % 10_000)).collect();
    let v = 5;
    assert_all_runners_agree(
        &CgmIntervalStab,
        || {
            data::block_split(ivs.clone(), v)
                .into_iter()
                .zip(data::block_split(qs.clone(), v))
                .map(|(ib, qb)| ((ib, qb), Vec::new()))
                .collect()
        },
        "interval_stab",
    );
}

#[test]
fn dominance_agrees_everywhere() {
    let pts = data::random_points(800, 2_000, 8);
    let rows: Vec<[i64; 4]> =
        pts.iter().enumerate().map(|(i, &(x, y))| [i as i64, x, y, (i % 9) as i64]).collect();
    let v = 5;
    assert_all_runners_agree(
        &CgmDominance,
        || {
            data::block_split(rows.clone(), v)
                .into_iter()
                .map(|b| ((b, Vec::new(), Vec::new()), (Vec::new(), Vec::new()), Vec::new()))
                .collect()
        },
        "dominance",
    );
}

#[test]
fn list_ranking_agrees_everywhere() {
    let (succ, _) = data::random_list(1500, 9);
    let v = 6;
    assert_all_runners_agree(
        &CgmListRank,
        || {
            data::block_split(succ.clone(), v)
                .into_iter()
                .map(|b| (vec![1500u64], b, Vec::new()))
                .collect()
        },
        "list_ranking",
    );
}

#[test]
fn euler_tour_agrees_everywhere() {
    let parent = data::random_tree_parents(1000, 10);
    let v = 5;
    assert_all_runners_agree(
        &CgmEulerTour,
        || {
            data::block_split(parent.clone(), v)
                .into_iter()
                .map(|b| ((vec![1000u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new())))
                .collect()
        },
        "euler_tour",
    );
}

#[test]
fn connectivity_agrees_everywhere() {
    let n = 600;
    let edges = data::gnm_edges(n, 900, 11);
    let v = 5;
    assert_all_runners_agree(
        &CgmConnectivity,
        || {
            let vb = data::block_split((0..n as u64).collect::<Vec<_>>(), v);
            let eb = data::block_split(edges.clone(), v);
            vb.into_iter()
                .zip(eb)
                .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (edges.len() as u64, ee, Vec::new())))
                .collect()
        },
        "connectivity",
    );
}
