//! # cgmio-routing — BalancedRouting (the paper's Algorithm 1)
//!
//! A CGM communication round is an h-relation: every processor sends and
//! receives at most `h = O(N/v)` items — but *individual* messages may
//! have arbitrary sizes, which ruins the disk layout story of the EM
//! simulation (fixed-size message slots, minimum block-size messages).
//!
//! BalancedRouting (after Bader, Helman and JáJá \[10\]) replaces one
//! arbitrary h-relation by **two balanced rounds**:
//!
//! * **Superstep A** — processor `i` deals word `ℓ` of its message to `j`
//!   into local bin `(i + j + ℓ) mod v`, then ships bin `k` to processor
//!   `k`;
//! * **Superstep B** — each processor re-bins what it received by final
//!   destination and delivers.
//!
//! **Theorem 1**: if each processor starts with exactly `n/v` data and no
//! processor receives more than `h`, then every message in round A lies
//! in `[n/v² − (v−1)/2, n/v² + (v−1)/2]` and every message in round B in
//! `[h/v − (v−1)/2, h/v + (v−1)/2]`.
//!
//! This crate provides:
//!
//! * pure analysis functions ([`bin_sizes`], [`superbin_sizes`],
//!   [`theorem1_bounds`]) used by the Figure 1 experiment and the
//!   property-test suite,
//! * parameter checks for Lemma 1 / Lemma 2 ([`lemma1_feasible`],
//!   [`lemma2_feasible`]),
//! * [`Balanced`] — an adapter that wraps **any** [`CgmProgram`](cgmio_model::CgmProgram) and
//!   mechanically rewrites each of its communication rounds into the two
//!   balanced rounds, preserving semantics exactly (same final states).
//!   This is the `λ → 2λ` transformation of Lemma 2.

#![warn(missing_docs)]

pub mod adapter;
pub mod analysis;
pub mod params;

pub use adapter::{Balanced, BalancedState, Routed};
pub use analysis::{bin_sizes, superbin_sizes, theorem1_bounds, BalanceBounds};
pub use params::{lemma1_feasible, lemma2_feasible, min_n_for_block, min_n_for_msg_size};
