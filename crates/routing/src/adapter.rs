//! The Lemma 2 transformation as a program adapter.
//!
//! [`Balanced<P>`] wraps any [`CgmProgram`] `P` and mechanically replaces
//! each of its communication rounds by the two balanced rounds of
//! Algorithm 1. The wrapped program's final states are bit-identical to
//! the original's; the number of rounds doubles (`λ → 2λ`), and every
//! message in every round obeys the Theorem-1 size bounds — which is what
//! lets the EM simulation engine allocate fixed-size message slots and
//! guarantee blocked I/O.
//!
//! Each routed item carries a `(src, final_dst, seq)` tag so the second
//! hop can re-bin it and the final receiver can reassemble messages in
//! exact send order.

use cgmio_model::{CgmProgram, Incoming, Outbox, RoundCtx, Status};
use cgmio_pdm::Item;

/// Wire format of a routed item: `(src, final_dst, seq, payload)`.
pub type Routed<M> = (u32, u32, u64, M);

/// Adapter state — just the inner program's state (the adapter itself is
/// stateless between rounds).
pub type BalancedState<S> = S;

/// Wraps a CGM program, routing all its traffic through Algorithm 1.
#[derive(Debug, Clone)]
pub struct Balanced<P> {
    /// The wrapped program.
    pub inner: P,
}

impl<P> Balanced<P> {
    /// Wrap `inner`.
    pub fn new(inner: P) -> Self {
        Self { inner }
    }
}

/// Largest message Theorem 1 allows in a balanced round where the
/// processor's total send (or receive) volume is `h`:
/// `⌊(h + v(v−1)/2) / v⌋`.
pub fn max_balanced_msg(h: usize, v: usize) -> usize {
    (h + v * (v - 1) / 2) / v
}

impl<P: CgmProgram> CgmProgram for Balanced<P> {
    type Msg = Routed<P::Msg>;
    type State = P::State;

    fn round(&self, ctx: &mut RoundCtx<'_, Self::Msg>, state: &mut Self::State) -> Status {
        let v = ctx.v;
        let pid = ctx.pid;
        if ctx.round % 2 == 1 {
            // Superstep B: re-bin received elements by final destination
            // and deliver (steps (3)–(4) of Algorithm 1).
            for (_intermediate, items) in ctx.incoming.iter() {
                for &(src, fdst, seq, payload) in items {
                    ctx.outbox.push(fdst as usize, (src, fdst, seq, payload));
                }
            }
            return Status::Continue;
        }

        // Superstep A (adapter round 2k = inner round k):
        // 1. reassemble the inner program's inbox from the tagged items
        //    delivered by the previous Superstep B;
        let mut per_src: Vec<Vec<(u64, P::Msg)>> = (0..v).map(|_| Vec::new()).collect();
        for (_intermediate, items) in ctx.incoming.iter() {
            for &(src, _fdst, seq, payload) in items {
                per_src[src as usize].push((seq, payload));
            }
        }
        let per_src: Vec<Vec<P::Msg>> = per_src
            .into_iter()
            .map(|mut msgs| {
                msgs.sort_unstable_by_key(|&(seq, _)| seq);
                debug_assert!(msgs.iter().enumerate().all(|(i, &(s, _))| s == i as u64));
                msgs.into_iter().map(|(_, m)| m).collect()
            })
            .collect();

        // 2. run the inner round;
        let mut inner_out: Outbox<P::Msg> = Outbox::new(v);
        let status = {
            let mut inner_ctx = RoundCtx {
                pid,
                v,
                round: ctx.round / 2,
                incoming: Incoming::new(per_src),
                outbox: &mut inner_out,
            };
            self.inner.round(&mut inner_ctx, state)
        };

        // 3. deal the inner outbox into bins: word ℓ of msg(pid → j) goes
        //    to intermediate (pid + j + ℓ) mod v (step (1) of Alg. 1).
        for (j, msg) in inner_out.into_per_dst().into_iter().enumerate() {
            for (l, payload) in msg.into_iter().enumerate() {
                let bin = (pid + j + l) % v;
                ctx.outbox.push(bin, (pid as u32, j as u32, l as u64, payload));
            }
        }

        match status {
            Status::Done => {
                debug_assert_eq!(
                    ctx.outbox.total(),
                    0,
                    "inner program sent messages in its Done round"
                );
                Status::Done
            }
            Status::Continue => Status::Continue,
        }
    }

    fn rounds_hint(&self, v: usize) -> Option<usize> {
        self.inner.rounds_hint(v).map(|r| 2 * r)
    }
}

// A static guard that the wire format really is a fixed-size Item.
const _: () = {
    const fn assert_item<T: Item>() {}
    assert_item::<Routed<u64>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_model::demo::{AllToAll, AllToOne, PrefixSum, TokenRing};
    use cgmio_model::{DirectRunner, ThreadedRunner};

    #[test]
    fn balanced_all_to_all_matches_plain() {
        let v = 7;
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let plain = AllToAll { items_per_pair: 5 };
        let (want, plain_costs) = DirectRunner::default().run(&plain, init()).unwrap();
        let (got, bal_costs) = DirectRunner::default().run(&Balanced::new(plain), init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(bal_costs.lambda(), 2 * plain_costs.lambda());
    }

    #[test]
    fn balanced_prefix_sum_matches_plain() {
        let v = 5usize;
        let init = || {
            (0..v as u64)
                .map(|i| (vec![i, i + 1, 2 * i], Vec::new()))
                .collect::<Vec<(Vec<u64>, Vec<u64>)>>()
        };
        let (want, _) = DirectRunner::default().run(&PrefixSum, init()).unwrap();
        let (got, _) = DirectRunner::default().run(&Balanced::new(PrefixSum), init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn balanced_token_ring_matches_plain() {
        let v = 6;
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let prog = TokenRing { rounds: 5 };
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        let (got, _) = DirectRunner::default().run(&Balanced::new(prog), init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn skewed_traffic_is_balanced_within_theorem1() {
        // AllToOne: one receiver gets everything. Unbalanced max message
        // = items_per_proc; balanced max message obeys Theorem 1.
        let v = 8;
        let items = 64;
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let plain = AllToOne { items_per_proc: items };

        let (want, plain_costs) = DirectRunner::default().run(&plain, init()).unwrap();
        assert_eq!(plain_costs.max_message(), items);

        let (got, bal_costs) = DirectRunner::default().run(&Balanced::new(plain), init()).unwrap();
        assert_eq!(got, want);
        // Round A: each sender holds `items` data -> messages ≤ items/v + (v−1)/2.
        // Round B: receiver 0's h = v·items -> messages ≤ items + (v−1)/2.
        let bound_b = max_balanced_msg(v * items, v);
        assert!(
            bal_costs.max_message() <= bound_b,
            "max {} > bound {}",
            bal_costs.max_message(),
            bound_b
        );
        // And the balanced max is far below the unbalanced concentration
        // h = v·items at one destination.
        assert!(bal_costs.max_message() < v * items / 2);
    }

    #[test]
    fn balanced_runs_on_threads_too() {
        let v = 9;
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let plain = AllToAll { items_per_pair: 3 };
        let (want, _) = DirectRunner::default().run(&plain, init()).unwrap();
        let (got, _) = ThreadedRunner::new(3).run(&Balanced::new(plain), init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn max_balanced_msg_formula() {
        // h = 100, v = 4: 100/4 + 6/... = (100 + 6)/4 = 26
        assert_eq!(max_balanced_msg(100, 4), 26);
        assert_eq!(max_balanced_msg(0, 4), 1); // only slack
        assert_eq!(max_balanced_msg(7, 1), 7);
    }
}
