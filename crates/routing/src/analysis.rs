//! Pure bin-size analysis for Algorithm 1 (used by the Figure 1
//! experiment and the Theorem-1 property tests).

/// Message-size bounds promised by Theorem 1 for a processor holding
/// `total` items split into `v` bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceBounds {
    /// Lower bound, scaled by `v` to stay in integers:
    /// `v·min_msg ≥ total − v(v−1)/2` ⟺ `min_msg ≥ total/v − (v−1)/2`.
    pub v_times_min: i64,
    /// Upper bound, scaled by `v`: `v·max_msg ≤ total + v(v−1)/2`.
    pub v_times_max: i64,
}

/// Theorem 1 bounds for `total` items at one processor, `v` processors.
pub fn theorem1_bounds(total: usize, v: usize) -> BalanceBounds {
    let slack = (v as i64) * (v as i64 - 1) / 2;
    BalanceBounds { v_times_min: total as i64 - slack, v_times_max: total as i64 + slack }
}

/// Superstep A, step (1): sizes of the `v` local bins at processor `i`
/// after dealing each message `msg_{ij}` (of length `msg_lens[j]`)
/// round-robin starting at bin `(i + j) mod v`.
///
/// `bin_sizes(...)[k]` is also the size of the message `i → k` in the
/// first balanced round.
pub fn bin_sizes(i: usize, v: usize, msg_lens: &[usize]) -> Vec<usize> {
    assert_eq!(msg_lens.len(), v);
    let mut bins = vec![0usize; v];
    for (j, &len) in msg_lens.iter().enumerate() {
        // Message j's words ℓ = 0..len go to bins (i + j + ℓ) mod v:
        // each bin gets ⌊len/v⌋, and the `len mod v` bins starting at
        // (i + j) mod v get one extra.
        let base = len / v;
        let extra = len % v;
        let start = (i + j) % v;
        for (k, b) in bins.iter_mut().enumerate() {
            let offset = (k + v - start) % v;
            *b += base + usize::from(offset < extra);
        }
    }
    bins
}

/// Superstep B, step (4): the size of the message `j → k` in the second
/// balanced round (the *superbin* decomposition of the proof in the
/// paper's appendix), given the full original message-length matrix
/// `lens[i][k]` (= |msg from i to k|).
pub fn superbin_sizes(v: usize, lens: &[Vec<usize>]) -> Vec<Vec<usize>> {
    assert_eq!(lens.len(), v);
    // second_round[j][k] = Σ_i #{ℓ < lens[i][k] : (i + k + ℓ) mod v == j}
    let mut out = vec![vec![0usize; v]; v];
    for (i, row) in lens.iter().enumerate() {
        assert_eq!(row.len(), v);
        for (k, &len) in row.iter().enumerate() {
            let base = len / v;
            let extra = len % v;
            let start = (i + k) % v;
            for (j, o) in out.iter_mut().enumerate() {
                let offset = (j + v - start) % v;
                o[k] += base + usize::from(offset < extra);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_conserve_items() {
        let lens = vec![10, 0, 3, 7];
        let bins = bin_sizes(2, 4, &lens);
        assert_eq!(bins.iter().sum::<usize>(), 20);
    }

    #[test]
    fn single_message_spreads_evenly() {
        // one message of length 10 over v=4 bins: sizes {3,3,2,2}
        let bins = bin_sizes(0, 4, &[10, 0, 0, 0]);
        let mut sorted = bins.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 2, 3, 3]);
    }

    #[test]
    fn observation1_extra_elements_bounded() {
        // Observation 1: bins hold at most v(v−1)/2 extras over v·min.
        let v = 5;
        let lens = vec![13, 1, 0, 22, 4];
        let bins = bin_sizes(3, v, &lens);
        let min = *bins.iter().min().unwrap();
        let total: usize = bins.iter().sum();
        assert!(total - v * min <= v * (v - 1) / 2);
    }

    #[test]
    fn superbins_conserve_per_destination() {
        let v = 4;
        let lens: Vec<Vec<usize>> =
            vec![vec![1, 2, 3, 4], vec![4, 3, 2, 1], vec![0, 0, 9, 0], vec![5, 5, 5, 5]];
        let sb = superbin_sizes(v, &lens);
        for k in 0..v {
            let col_total: usize = lens.iter().map(|r| r[k]).sum();
            let sb_total: usize = sb.iter().map(|r| r[k]).sum();
            assert_eq!(col_total, sb_total, "destination {k}");
        }
    }

    proptest! {
        /// Theorem 1(A): every first-round message within bounds.
        #[test]
        fn round_a_messages_within_theorem1(
            v in 2usize..12,
            seed_lens in proptest::collection::vec(0usize..200, 12),
        ) {
            for i in 0..v {
                let lens: Vec<usize> = seed_lens.iter().take(v).copied().collect();
                let total: usize = lens.iter().sum();
                let bins = bin_sizes(i, v, &lens);
                let b = theorem1_bounds(total, v);
                for &s in &bins {
                    prop_assert!((v as i64) * (s as i64) >= b.v_times_min);
                    prop_assert!((v as i64) * (s as i64) <= b.v_times_max);
                }
            }
        }

        /// Theorem 1(B): second-round messages within bounds relative to
        /// the receiver's total h.
        #[test]
        fn round_b_messages_within_theorem1(
            v in 2usize..10,
            flat in proptest::collection::vec(0usize..60, 100),
        ) {
            let lens: Vec<Vec<usize>> =
                (0..v).map(|i| (0..v).map(|j| flat[i * v + j]).collect()).collect();
            let sb = superbin_sizes(v, &lens);
            for k in 0..v {
                let h_k: usize = lens.iter().map(|r| r[k]).sum();
                let b = theorem1_bounds(h_k, v);
                for (j, row) in sb.iter().enumerate() {
                    let s = row[k] as i64;
                    prop_assert!((v as i64) * s >= b.v_times_min,
                        "v={v} j={j} k={k} s={s} h={h_k}");
                    prop_assert!((v as i64) * s <= b.v_times_max);
                }
            }
        }

        /// Max-min spread of round-A bins is at most v (each message
        /// contributes a spread of ≤ 1).
        #[test]
        fn round_a_spread_at_most_v(
            v in 2usize..12,
            seed_lens in proptest::collection::vec(0usize..500, 12),
        ) {
            let lens: Vec<usize> = seed_lens.iter().take(v).copied().collect();
            let bins = bin_sizes(0, v, &lens);
            let max = *bins.iter().max().unwrap();
            let min = *bins.iter().min().unwrap();
            prop_assert!(max - min <= v);
        }
    }
}
