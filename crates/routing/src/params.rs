//! Parameter-feasibility checks for Lemma 1 and Lemma 2.

/// Lemma 1: a minimum message size of `b_min` items can be guaranteed by
/// balancing iff `N ≥ v²·b_min + v²(v−1)/2`.
pub fn lemma1_feasible(n: u64, v: u64, b_min: u64) -> bool {
    n >= min_n_for_msg_size(v, b_min)
}

/// Smallest `N` for which Lemma 1 guarantees minimum message size
/// `b_min`.
pub fn min_n_for_msg_size(v: u64, b_min: u64) -> u64 {
    v * v * b_min + v * v * (v - 1) / 2
}

/// Lemma 2: the λ communication rounds of a CGM algorithm can be replaced
/// by 2λ balanced rounds with minimum message size `Ω(B)` and maximum
/// message size `2N/v²`, provided `N ≥ v²B + v²(v−1)/2`.
pub fn lemma2_feasible(n: u64, v: u64, block_items: u64) -> bool {
    n >= min_n_for_block(v, block_items)
}

/// Smallest `N` satisfying Lemma 2 for block size `B` (in items).
pub fn min_n_for_block(v: u64, block_items: u64) -> u64 {
    min_n_for_msg_size(v, block_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_threshold_exact() {
        let v = 8;
        let b = 16;
        let n = min_n_for_msg_size(v, b);
        assert_eq!(n, 64 * 16 + 64 * 7 / 2);
        assert!(lemma1_feasible(n, v, b));
        assert!(!lemma1_feasible(n - 1, v, b));
    }

    #[test]
    fn lemma2_equals_lemma1_at_block_size() {
        assert_eq!(min_n_for_block(10, 128), min_n_for_msg_size(10, 128));
        assert!(lemma2_feasible(1 << 20, 10, 128));
    }

    #[test]
    fn single_proc_degenerate() {
        // v = 1: no communication, any N works for any b_min = N.
        assert!(lemma1_feasible(100, 1, 100));
        assert!(!lemma1_feasible(99, 1, 100));
    }
}
