//! Structured spans: which phase of which compound superstep a worker
//! is in, and how long it stayed there.
//!
//! A [`SpanScope`] is an RAII guard: entering publishes the
//! `(superstep, phase)` pair into the owning [`Obs`]'s [`PhaseCell`]
//! (so the io layer can stamp in-flight operations) and dropping
//! records a [`SpanRecord`] into a bounded ring buffer. The ring keeps
//! the *most recent* `capacity` spans — for long runs the tail is what
//! a post-mortem wants, and memory stays bounded.
//!
//! [`Obs`]: crate::Obs

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// EM execution phase, the span/metric taxonomy shared by both runners
/// and the io engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum Phase {
    /// Outside any instrumented phase.
    #[default]
    None = 0,
    /// Initial data distribution / input write.
    Setup = 1,
    /// Phase (a)/(e): reading or writing a virtual processor's context.
    CtxLoad = 2,
    /// Phase (b): reading the message-matrix column addressed to a vp.
    MatrixRead = 3,
    /// Phase (c): local computation rounds of the simulated algorithm.
    Rounds = 4,
    /// Message exchange/arrangement between workers (parallel runner).
    Route = 5,
    /// Phase (d): writing the message-matrix row produced by a vp.
    MatrixWrite = 6,
    /// End-of-superstep flush/synchronisation.
    Barrier = 7,
    /// Writing a checkpoint manifest.
    Checkpoint = 8,
    /// Final result readout.
    Readout = 9,
    /// Auto-tuner decision at a barrier (reading windowed metric
    /// deltas, choosing the next superstep's pipeline depth/prefetch).
    Tune = 10,
}

impl Phase {
    /// All phases in declaration order.
    pub const ALL: [Phase; 11] = [
        Phase::None,
        Phase::Setup,
        Phase::CtxLoad,
        Phase::MatrixRead,
        Phase::Rounds,
        Phase::Route,
        Phase::MatrixWrite,
        Phase::Barrier,
        Phase::Checkpoint,
        Phase::Readout,
        Phase::Tune,
    ];

    /// Stable snake_case name used in exports and trace files.
    pub fn name(self) -> &'static str {
        match self {
            Phase::None => "none",
            Phase::Setup => "setup",
            Phase::CtxLoad => "ctx_load",
            Phase::MatrixRead => "matrix_read",
            Phase::Rounds => "rounds",
            Phase::Route => "route",
            Phase::MatrixWrite => "matrix_write",
            Phase::Barrier => "barrier",
            Phase::Checkpoint => "checkpoint",
            Phase::Readout => "readout",
            Phase::Tune => "tune",
        }
    }

    /// Inverse of [`Phase::name`]; `None` for unknown strings.
    pub fn from_name(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }

    fn from_id(id: u8) -> Phase {
        Phase::ALL.get(id as usize).copied().unwrap_or(Phase::None)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free cell publishing the currently-active `(superstep, phase)`.
///
/// Packed as `superstep << 8 | phase_id` in one `AtomicU64`, so readers
/// on the io hot path pay a single relaxed load. Supersteps are capped
/// at `2^56 - 1`, far beyond any realistic run.
#[derive(Debug, Default)]
pub struct PhaseCell(AtomicU64);

impl PhaseCell {
    /// Publish a new active pair, returning the previous packed value
    /// (pass back to [`PhaseCell::restore`] when a scope ends).
    pub fn set(&self, superstep: u64, phase: Phase) -> u64 {
        self.0.swap(superstep << 8 | phase as u64, Ordering::Relaxed)
    }

    /// Restore a packed value returned by [`PhaseCell::set`].
    pub fn restore(&self, packed: u64) {
        self.0.store(packed, Ordering::Relaxed);
    }

    /// Read the active pair.
    pub fn get(&self) -> (u64, Phase) {
        let v = self.0.load(Ordering::Relaxed);
        (v >> 8, Phase::from_id((v & 0xFF) as u8))
    }
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Worker index — a virtual-processor id at large `v` must not be
    /// truncated, so this is as wide as the vp address space
    /// (`u64::MAX` marks the coordinator; see [`crate::COORD_PROC`]).
    pub proc: u64,
    /// Compound superstep the span belongs to.
    pub superstep: u64,
    /// Phase taxonomy label.
    pub phase: Phase,
    /// Start, microseconds since the owning registry's epoch.
    pub start_us: u64,
    /// End, microseconds since the owning registry's epoch.
    pub end_us: u64,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Bounded MPSC ring of completed spans; keeps the most recent
/// `capacity` records.
#[derive(Debug)]
pub struct SpanRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    buf: Vec<SpanRecord>,
    /// Next write position once the buffer has wrapped.
    head: usize,
    /// Total spans ever recorded (including overwritten ones).
    total: u64,
}

impl SpanRing {
    /// A ring keeping at most `capacity` spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { inner: Mutex::new(RingInner { buf: Vec::new(), head: 0, total: 0 }), capacity }
    }

    /// Record one completed span (overwrites the oldest when full).
    pub fn push(&self, rec: SpanRecord) {
        let mut g = self.inner.lock().unwrap();
        g.total += 1;
        if g.buf.len() < self.capacity {
            g.buf.push(rec);
        } else {
            let head = g.head;
            g.buf[head] = rec;
            g.head = (head + 1) % self.capacity;
        }
    }

    /// The retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let g = self.inner.lock().unwrap();
        let mut out = Vec::with_capacity(g.buf.len());
        out.extend_from_slice(&g.buf[g.head..]);
        out.extend_from_slice(&g.buf[..g.head]);
        out
    }

    /// Total spans ever pushed, including ones the ring has dropped.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap().total
    }

    /// Number of spans dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.total - g.buf.len() as u64
    }
}

/// Serialise spans as a chrome://tracing "complete event" array
/// (load via `chrome://tracing` or <https://ui.perfetto.dev>). `pid` is
/// the run label, `tid` the worker, and each event carries its
/// superstep as an argument.
pub fn chrome_trace_json(spans: &[SpanRecord], pid: &str) -> String {
    let mut out = String::from("[\n");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\":\"{}\",\"cat\":\"em\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":\"{}\",\"tid\":{},\"args\":{{\"superstep\":{}}}}}",
            s.phase.name(),
            s.start_us,
            s.duration_us(),
            pid,
            s.proc,
            s.superstep,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Serialise spans as folded stacks (`proc;superstep;phase count`),
/// one line per distinct stack, durations in microseconds — ready for
/// `flamegraph.pl` or speedscope's "folded" importer.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let mut agg: std::collections::BTreeMap<(u64, u64, Phase), u64> =
        std::collections::BTreeMap::new();
    for s in spans {
        *agg.entry((s.proc, s.superstep, s.phase)).or_insert(0) += s.duration_us();
    }
    let mut out = String::new();
    for ((proc, superstep, phase), us) in agg {
        out.push_str(&format!("proc{proc};superstep{superstep};{} {us}\n", phase.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(proc: u64, superstep: u64, phase: Phase, start: u64, end: u64) -> SpanRecord {
        SpanRecord { proc, superstep, phase, start_us: start, end_us: end }
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("bogus"), None);
    }

    #[test]
    fn phase_cell_packs_and_restores() {
        let c = PhaseCell::default();
        assert_eq!(c.get(), (0, Phase::None));
        let prev = c.set(7, Phase::MatrixRead);
        assert_eq!(c.get(), (7, Phase::MatrixRead));
        let prev2 = c.set(7, Phase::Rounds);
        assert_eq!(c.get(), (7, Phase::Rounds));
        c.restore(prev2);
        assert_eq!(c.get(), (7, Phase::MatrixRead));
        c.restore(prev);
        assert_eq!(c.get(), (0, Phase::None));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = SpanRing::new(3);
        for i in 0..5u64 {
            ring.push(rec(0, i, Phase::Rounds, i * 10, i * 10 + 5));
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans.iter().map(|s| s.superstep).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn chrome_trace_lists_all_events() {
        let spans = vec![rec(0, 1, Phase::CtxLoad, 0, 10), rec(1, 1, Phase::Barrier, 10, 30)];
        let json = chrome_trace_json(&spans, "seq");
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"ctx_load\""));
        assert!(json.contains("\"dur\":20"));
        assert!(json.contains("\"superstep\":1"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn folded_stacks_aggregate_durations() {
        let spans = vec![
            rec(0, 1, Phase::Rounds, 0, 10),
            rec(0, 1, Phase::Rounds, 20, 35),
            rec(0, 2, Phase::Barrier, 40, 41),
        ];
        let folded = folded_stacks(&spans);
        assert!(folded.contains("proc0;superstep1;rounds 25\n"));
        assert!(folded.contains("proc0;superstep2;barrier 1\n"));
        assert_eq!(folded.lines().count(), 2);
    }
}
