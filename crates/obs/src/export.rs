//! Snapshot serialisation: Prometheus text exposition format and JSON,
//! each with a matching parser so exports can be verified round-trip.
//!
//! Both formats are hand-rolled (the crate takes no dependencies) and
//! intentionally small: the Prometheus writer emits only what the
//! scrape format requires (`# TYPE` lines, cumulative `_bucket`
//! samples with `le`, `_sum`/`_count`), and the JSON writer emits one
//! object per series with derived quantiles included for human
//! consumption. Parsers accept exactly what the writers produce plus
//! reasonable whitespace slack — they exist for tests and for the
//! `reproduce observe` lint, not as general scrapers.

use crate::metrics::{
    bucket_index, bucket_upper_bound, HistogramSnapshot, Labels, MetricSample, SampleValue,
    Snapshot, HIST_BUCKETS,
};

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4). Histograms follow the `_bucket`/`_sum`/`_count`
/// convention with cumulative `le` buckets; the histogram maximum is
/// exported as a companion `<name>_max` gauge. Only non-empty buckets
/// are listed (plus the mandatory `+Inf`), keeping the file small.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type_line: Option<String> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if last_type_line.as_deref() != Some(&line) {
            out.push_str(&line);
            last_type_line = Some(line);
        }
    };
    for s in &snap.samples {
        match &s.value {
            SampleValue::Counter(v) => {
                type_line(&mut out, &s.name, "counter");
                out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
            }
            SampleValue::Gauge(v) => {
                type_line(&mut out, &s.name, "gauge");
                out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
            }
            SampleValue::Histogram(h) => {
                type_line(&mut out, &s.name, "histogram");
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    cum += c;
                    let le = if i == HIST_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        bucket_upper_bound(i).to_string()
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        s.name,
                        label_block(&s.labels, Some(("le", &le)))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_max{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    h.max
                ));
            }
        }
    }
    out
}

fn split_name_labels(line: &str) -> Option<(String, Labels, String)> {
    let line = line.trim();
    let (series, value) = line.rsplit_once(' ')?;
    let (name, labels) = match series.find('{') {
        Some(b) => {
            let name = &series[..b];
            let inner = series[b + 1..].strip_suffix('}')?;
            let mut labels = Labels::new();
            // Split on commas outside quotes.
            let mut rest = inner;
            while !rest.is_empty() {
                let eq = rest.find('=')?;
                let key = rest[..eq].to_string();
                let after = &rest[eq + 1..];
                let after = after.strip_prefix('"')?;
                // Find closing unescaped quote.
                let mut end = None;
                let mut escaped = false;
                for (i, c) in after.char_indices() {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    }
                }
                let end = end?;
                labels.push((key, unescape_label(&after[..end])));
                rest = after[end + 1..].strip_prefix(',').unwrap_or(&after[end + 1..]);
            }
            (name.to_string(), labels)
        }
        None => (series.to_string(), Labels::new()),
    };
    Some((name, labels, value.to_string()))
}

/// Parse text produced by [`to_prometheus`] back into a [`Snapshot`].
///
/// Returns `Err` with a line-numbered message on anything malformed.
/// Histogram buckets are reconstructed exactly from the cumulative
/// `le` samples, so `parse_prometheus(&to_prometheus(s)) == Ok(s)`.
pub fn parse_prometheus(text: &str) -> Result<Snapshot, String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut plain: Vec<MetricSample> = Vec::new();
    // (name, labels-without-le) -> partial histogram
    #[derive(Default)]
    struct PartialHist {
        cum: Vec<(usize, u64)>,
        sum: u64,
        count: u64,
        max: u64,
    }
    let mut hists: BTreeMap<(String, Labels), PartialHist> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| format!("line {}: {msg}: {raw}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| err("missing name"))?;
            let kind = it.next().ok_or_else(|| err("missing kind"))?;
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, mut labels, value) =
            split_name_labels(line).ok_or_else(|| err("unparseable sample"))?;
        // Histogram component?
        let base = ["_bucket", "_sum", "_count", "_max"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf).map(|b| (b.to_string(), *suf)))
            .filter(|(b, _)| types.get(b).map(String::as_str) == Some("histogram"));
        if let Some((base, suffix)) = base {
            let le = if suffix == "_bucket" {
                let pos = labels
                    .iter()
                    .position(|(k, _)| k == "le")
                    .ok_or_else(|| err("bucket without le"))?;
                Some(labels.remove(pos).1)
            } else {
                None
            };
            labels.sort();
            let h = hists.entry((base, labels)).or_default();
            let v: u64 = value.parse().map_err(|_| err("bad u64"))?;
            match suffix {
                "_bucket" => {
                    let le = le.unwrap();
                    let idx = if le == "+Inf" {
                        HIST_BUCKETS - 1
                    } else {
                        bucket_index(le.parse::<u64>().map_err(|_| err("bad le"))?)
                    };
                    h.cum.push((idx, v));
                }
                "_sum" => h.sum = v,
                "_count" => h.count = v,
                "_max" => h.max = v,
                _ => unreachable!(),
            }
            continue;
        }
        labels.sort();
        let sample_value = match types.get(&name).map(String::as_str) {
            Some("counter") => SampleValue::Counter(value.parse().map_err(|_| err("bad u64"))?),
            Some("gauge") => SampleValue::Gauge(value.parse().map_err(|_| err("bad i64"))?),
            other => return Err(err(&format!("unknown metric type {other:?}"))),
        };
        plain.push(MetricSample { name, labels, value: sample_value });
    }

    for ((name, labels), ph) in hists {
        let mut snap = HistogramSnapshot::empty();
        let mut prev_cum = 0u64;
        let mut cum = ph.cum;
        cum.sort();
        cum.dedup();
        for (idx, c) in cum {
            snap.buckets[idx] = c.saturating_sub(prev_cum);
            prev_cum = c;
        }
        snap.sum = ph.sum;
        snap.count = ph.count;
        snap.max = ph.max;
        plain.push(MetricSample { name, labels, value: SampleValue::Histogram(snap) });
    }
    plain.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    Ok(Snapshot { samples: plain })
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Escape a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn labels_json(labels: &Labels) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Render a snapshot as a JSON document:
/// `{"metrics":[{"name":…,"labels":{…},"type":…,…}]}`. Histogram
/// entries carry exact state (`buckets` as `[index,count]` pairs,
/// `sum`, `count`, `max`) plus derived `p50`/`p95`/`p99` for readers
/// that don't want to re-derive quantiles.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"metrics\":[\n");
    for (i, s) in snap.samples.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let head = format!(
            "  {{\"name\":\"{}\",\"labels\":{},",
            json_escape(&s.name),
            labels_json(&s.labels)
        );
        out.push_str(&head);
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("\"type\":\"counter\",\"value\":{v}}}"));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}}}"));
            }
            SampleValue::Histogram(h) => {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(|(i, &c)| format!("[{i},{c}]"))
                    .collect();
                out.push_str(&format!(
                    "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    buckets.join(",")
                ));
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Parse a document produced by [`to_json`] back into a [`Snapshot`]
/// (inverse up to derived fields): `parse_json(&to_json(s)) == Ok(s)`.
pub fn parse_json(text: &str) -> Result<Snapshot, String> {
    let v = json::parse(text)?;
    let metrics = v.get("metrics").and_then(json::Value::as_array).ok_or("missing metrics")?;
    let mut samples = Vec::with_capacity(metrics.len());
    for m in metrics {
        let name =
            m.get("name").and_then(json::Value::as_str).ok_or("metric missing name")?.to_string();
        let mut labels: Labels = m
            .get("labels")
            .and_then(json::Value::as_object)
            .ok_or("metric missing labels")?
            .iter()
            .map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())).ok_or("non-string label"))
            .collect::<Result<_, _>>()?;
        labels.sort();
        let kind = m.get("type").and_then(json::Value::as_str).ok_or("metric missing type")?;
        let value = match kind {
            "counter" => SampleValue::Counter(
                m.get("value").and_then(json::Value::as_u64).ok_or("bad counter value")?,
            ),
            "gauge" => SampleValue::Gauge(
                m.get("value").and_then(json::Value::as_i64).ok_or("bad gauge value")?,
            ),
            "histogram" => {
                let mut h = HistogramSnapshot::empty();
                h.count = m.get("count").and_then(json::Value::as_u64).ok_or("bad hist count")?;
                h.sum = m.get("sum").and_then(json::Value::as_u64).ok_or("bad hist sum")?;
                h.max = m.get("max").and_then(json::Value::as_u64).ok_or("bad hist max")?;
                let buckets =
                    m.get("buckets").and_then(json::Value::as_array).ok_or("bad hist buckets")?;
                for pair in buckets {
                    let pair = pair.as_array().ok_or("bad bucket pair")?;
                    let idx =
                        pair.first().and_then(json::Value::as_u64).ok_or("bad bucket index")?
                            as usize;
                    let c = pair.get(1).and_then(json::Value::as_u64).ok_or("bad bucket count")?;
                    if idx >= HIST_BUCKETS {
                        return Err(format!("bucket index {idx} out of range"));
                    }
                    h.buckets[idx] = c;
                }
                SampleValue::Histogram(h)
            }
            other => return Err(format!("unknown metric type {other:?}")),
        };
        samples.push(MetricSample { name, labels, value });
    }
    samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    Ok(Snapshot { samples })
}

/// Minimal JSON value model and recursive-descent parser — enough to
/// read back this crate's own exports (and the run report) in tests.
/// Numbers keep their raw text so `u64::MAX` survives untouched.
pub mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number, kept as its raw source text for exactness.
        Num(String),
        /// A string (unescaped).
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// String payload, if a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Array payload, if an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// Object payload, if an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }

        /// Number as `u64`, if exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// Number as `i64`, if exactly representable.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// Number as `f64`.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(s) => s.parse().ok(),
                _ => None,
            }
        }

        /// A number value from anything displayable as one (the raw
        /// text is kept verbatim, so `u64::MAX` survives).
        pub fn num(n: impl std::fmt::Display) -> Value {
            Value::Num(n.to_string())
        }

        /// A string value.
        pub fn str(s: impl Into<String>) -> Value {
            Value::Str(s.into())
        }

        /// Serialise back to JSON text (inverse of [`parse`]; numbers
        /// round-trip exactly because they are kept as source text).
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(s) => out.push_str(s),
                Value::Str(s) => {
                    out.push('"');
                    out.push_str(&super::json_escape(s));
                    out.push('"');
                }
                Value::Arr(items) => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        v.render_into(out);
                    }
                    out.push(']');
                }
                Value::Obj(members) => {
                    out.push('{');
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('"');
                        out.push_str(&super::json_escape(k));
                        out.push_str("\":");
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b.get(self.i).copied().ok_or_else(|| "unexpected end".to_string())
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at offset {}", c as char, self.i))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.lit("true", Value::Bool(true)),
                b'f' => self.lit("false", Value::Bool(false)),
                b'n' => self.lit("null", Value::Null),
                _ => self.number(),
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at offset {}", self.i))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            while self.i < self.b.len()
                && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.i += 1;
            }
            if self.i == start {
                return Err(format!("expected number at offset {start}"));
            }
            let raw = std::str::from_utf8(&self.b[start..self.i]).unwrap().to_string();
            raw.parse::<f64>().map_err(|_| format!("bad number {raw:?}"))?;
            Ok(Value::Num(raw))
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self.b.get(self.i).ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let e =
                            *self.b.get(self.i).ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or_else(|| "short \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                self.i += 4;
                                out.push(
                                    char::from_u32(code).unwrap_or(char::REPLACEMENT_CHARACTER),
                                );
                            }
                            other => {
                                return Err(format!("bad escape \\{}", other as char));
                            }
                        }
                    }
                    _ => {
                        // Re-sync to char boundary for multi-byte UTF-8.
                        let s = &self.b[self.i - 1..];
                        let ch_len = utf8_len(c);
                        let chunk = s.get(..ch_len).ok_or_else(|| "truncated utf-8".to_string())?;
                        out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        self.i += ch_len - 1;
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.eat(b'[')?;
            let mut out = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Arr(out));
                    }
                    c => return Err(format!("expected ',' or ']' got '{}'", c as char)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.eat(b'{')?;
            let mut out = Vec::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.eat(b':')?;
                out.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Obj(out));
                    }
                    c => return Err(format!("expected ',' or '}}' got '{}'", c as char)),
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let r = MetricsRegistry::with_base_labels(&[("run", "seq")]);
        r.counter("cgmio_io_retries_total", &[("proc", "0".into())]).add(7);
        r.gauge("cgmio_io_queue_depth", &[("proc", "0".into()), ("drive", "1".into())]).set(-3);
        let h = r.histogram(
            "cgmio_io_service_us",
            &[("proc", "0".into()), ("drive", "0".into()), ("kind", "read".into())],
        );
        h.observe(0);
        h.observe(5);
        h.observe(5);
        h.observe(4096);
        h.observe(u64::MAX);
        r.snapshot()
    }

    #[test]
    fn prometheus_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let back = parse_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_text_shape() {
        let text = to_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE cgmio_io_retries_total counter\n"));
        assert!(text.contains("# TYPE cgmio_io_service_us histogram\n"));
        assert!(text.contains("cgmio_io_retries_total{proc=\"0\",run=\"seq\"} 7\n"));
        assert!(text.contains("le=\"+Inf\"} 5\n"));
        assert!(text.contains("cgmio_io_service_us_count{"));
        // Every non-comment line is `series value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(split_name_labels(line).is_some(), "bad line: {line}");
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = to_json(&snap);
        let back = parse_json(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_escapes_awkward_labels() {
        let r = MetricsRegistry::new();
        r.counter("weird", &[("path", "a\"b\\c\nd".into())]).inc();
        let snap = r.snapshot();
        assert_eq!(parse_json(&to_json(&snap)).unwrap(), snap);
        assert_eq!(parse_prometheus(&to_prometheus(&snap)).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(parse_prometheus(&to_prometheus(&snap)).unwrap(), snap);
        assert_eq!(parse_json(&to_json(&snap)).unwrap(), snap);
    }

    #[test]
    fn merge_keeps_sorted_order() {
        let a = sample_snapshot();
        let r = MetricsRegistry::with_base_labels(&[("run", "par")]);
        r.counter("cgmio_io_retries_total", &[("proc", "1".into())]).add(2);
        let mut merged = a.clone();
        merged.merge(&r.snapshot());
        assert_eq!(merged.samples.len(), a.samples.len() + 1);
        let text = to_prometheus(&merged);
        let back = parse_prometheus(&text).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn json_value_render_round_trips() {
        use json::Value;
        let v = Value::Obj(vec![
            ("runner".into(), Value::str("seq")),
            ("max".into(), Value::num(u64::MAX)),
            ("spans".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("label".into(), Value::str("a\"b\\c\nd")),
        ]);
        let text = v.render();
        assert_eq!(json::parse(&text).unwrap(), v);
        assert!(text.contains("\"max\":18446744073709551615"));
    }

    #[test]
    fn json_parser_handles_nested_values() {
        let v = json::parse("{\"a\": [1, 2.5, {\"b\": \"x\\u0041\", \"c\": null}], \"d\": true}")
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].get("b").unwrap().as_str(),
            Some("xA")
        );
        assert_eq!(v.get("d"), Some(&json::Value::Bool(true)));
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2]extra").is_err());
    }
}
