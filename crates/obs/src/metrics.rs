//! Atomic counters, gauges, and log-bucketed latency histograms behind a
//! shared [`MetricsRegistry`], with snapshot export to the Prometheus
//! text exposition format and to JSON.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cheapness.** A metric handle is an `Arc` around one (or
//!    a few) atomics; recording is a relaxed `fetch_add`. Name/label
//!    resolution happens once, at registration — callers resolve their
//!    handles up front (the io engine resolves per-drive handles when a
//!    worker is spawned) and never touch the registry map again.
//! 2. **No dependencies.** Export is hand-rolled; the histogram uses
//!    power-of-two buckets so quantile estimation needs no sample
//!    storage.
//! 3. **Shareability.** Handles are `Clone` and usable *detached* from
//!    any registry (e.g. [`Counter::detached`]) so a layer can count
//!    unconditionally and only pay for export when observability is on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (`1 ≤ i ≤ 64`) holds values in `[2^(i-1), 2^i - 1]` — so bucket 64's
/// upper bound is `u64::MAX` and every `u64` has a bucket.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`; the quantile estimate for any
/// value landing in the bucket.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Monotonic counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere — counts are still shared
    /// across clones, but never exported. Lets a layer count
    /// unconditionally and surface the number through its own report.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Log-bucketed histogram of `u64` samples (typically microseconds).
///
/// Buckets are powers of two (see [`bucket_index`]); quantiles are
/// estimated as the upper bound of the bucket the quantile's rank lands
/// in, clamped to the observed maximum — so `p99 ≤ max` always, and a
/// histogram fed a single value reports that exact value at every
/// quantile.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    /// A histogram not registered anywhere (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the buckets and summary stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples observed.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (used when reconstructing from exports).
    pub fn empty() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Estimate the `q`-quantile (`0 < q ≤ 1`): the upper bound of the
    /// bucket containing the `ceil(q·count)`-th smallest sample, clamped
    /// to [`Self::max`]. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the observed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The window of samples recorded between `earlier` and `self`
    /// (both snapshots of the *same* live histogram, `earlier` taken
    /// first): per-bucket counts, `count`, and `sum` subtract.
    ///
    /// `max` is special: the live histogram only tracks the running
    /// maximum, which never resets, so the true maximum *within* the
    /// window is not recoverable. The delta reports the tightest bound
    /// available — the upper bound of the highest bucket that gained a
    /// sample, clamped to the overall running max — which keeps
    /// [`Self::quantile`]'s `p ≤ max` invariant intact for the window.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: [u64; HIST_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i]));
        let top = buckets.iter().rposition(|&c| c > 0);
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: top.map_or(0, |i| bucket_upper_bound(i).min(self.max)),
        }
    }

    /// Fold `other`'s buckets into `self` (for aggregating several
    /// series — e.g. per-drive queue-wait histograms — into one view).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Sorted `key=value` label set identifying one series of a metric.
pub type Labels = Vec<(String, String)>;

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct RegistryInner {
    base_labels: Labels,
    metrics: Mutex<BTreeMap<(String, Labels), Metric>>,
}

/// Shared, thread-safe registry of named metrics.
///
/// Handles returned by [`MetricsRegistry::counter`] /
/// [`MetricsRegistry::gauge`] / [`MetricsRegistry::histogram`] stay valid
/// for the registry's lifetime; re-registering the same name + labels
/// returns a handle onto the *same* underlying series.
#[derive(Clone)]
pub struct MetricsRegistry(Arc<RegistryInner>);

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.0.metrics.lock().unwrap().len();
        f.debug_struct("MetricsRegistry").field("series", &n).finish()
    }
}

fn norm_labels(labels: &[(&str, String)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, val)| (k.to_string(), val.clone())).collect();
    v.sort();
    v
}

impl MetricsRegistry {
    /// An empty registry with no base labels.
    pub fn new() -> Self {
        Self::with_base_labels(&[])
    }

    /// An empty registry whose every exported series carries the given
    /// constant labels (e.g. `run="seq"`), letting snapshots from
    /// several registries merge into one valid Prometheus exposition.
    pub fn with_base_labels(base: &[(&str, &str)]) -> Self {
        let mut base_labels: Labels =
            base.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        base_labels.sort();
        Self(Arc::new(RegistryInner { base_labels, metrics: Mutex::new(BTreeMap::new()) }))
    }

    fn entry<T: Clone>(
        &self,
        name: &str,
        labels: &[(&str, String)],
        make: impl FnOnce() -> (T, Metric),
        get: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        let key = (name.to_string(), norm_labels(labels));
        let mut map = self.0.metrics.lock().unwrap();
        if let Some(m) = map.get(&key) {
            return get(m).unwrap_or_else(|| {
                panic!("metric {name} already registered with a different type")
            });
        }
        let (handle, metric) = make();
        map.insert(key, metric);
        handle
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> Counter {
        self.entry(
            name,
            labels,
            || {
                let c = Counter::default();
                (c.clone(), Metric::Counter(c))
            },
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> Gauge {
        self.entry(
            name,
            labels,
            || {
                let g = Gauge::default();
                (g.clone(), Metric::Gauge(g))
            },
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, String)]) -> Histogram {
        self.entry(
            name,
            labels,
            || {
                let h = Histogram::default();
                (h.clone(), Metric::Histogram(h))
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Point-in-time snapshot of every registered series, with the
    /// registry's base labels folded in. Samples are sorted by
    /// `(name, labels)`, so equal registry contents export identically.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.0.metrics.lock().unwrap();
        let mut samples = Vec::with_capacity(map.len());
        for ((name, labels), metric) in map.iter() {
            let mut all = self.0.base_labels.clone();
            all.extend(labels.iter().cloned());
            all.sort();
            let value = match metric {
                Metric::Counter(c) => SampleValue::Counter(c.get()),
                Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
            };
            samples.push(MetricSample { name: name.clone(), labels: all, value });
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { samples }
    }
}

/// Value of one exported series.
///
/// The histogram variant carries its full 65-bucket state inline; a
/// snapshot is a short-lived export value, so the size skew between
/// variants is not worth an allocation per sample.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum SampleValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(i64),
    /// Full bucket state.
    Histogram(HistogramSnapshot),
}

/// One exported series: name, labels, value.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Metric name (Prometheus-legal: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label set.
    pub labels: Labels,
    /// The observed value.
    pub value: SampleValue,
}

/// Point-in-time export of a whole registry (see
/// [`MetricsRegistry::snapshot`]); serialisable to Prometheus text and
/// JSON, and parseable back for round-trip verification.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All series, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl Snapshot {
    /// Append all samples of `other` (for merging per-run registries
    /// into one exposition; caller guarantees disjoint label sets, e.g.
    /// via distinct base labels).
    pub fn merge(&mut self, other: &Snapshot) {
        self.samples.extend(other.samples.iter().cloned());
        self.samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Look up a series by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let mut want: Labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.samples.iter().find(|s| s.name == name && s.labels == want).map(|s| &s.value)
    }

    /// The windowed delta between two snapshots of the *same* registry
    /// (`earlier` taken first): counters subtract, histograms diff via
    /// [`HistogramSnapshot::delta_since`], gauges pass through their
    /// current value (a gauge is a level, not a flow). Series that
    /// appeared after `earlier` diff against zero; series that vanished
    /// (registries never remove series, but merged snapshots can) are
    /// dropped. This is what the per-superstep tuner and dashboards use
    /// instead of re-diffing raw buckets by hand.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let prev = earlier
                    .samples
                    .iter()
                    .find(|e| e.name == s.name && e.labels == s.labels)
                    .map(|e| &e.value);
                let value = match (&s.value, prev) {
                    (SampleValue::Counter(now), Some(SampleValue::Counter(was))) => {
                        SampleValue::Counter(now.saturating_sub(*was))
                    }
                    (SampleValue::Histogram(now), Some(SampleValue::Histogram(was))) => {
                        SampleValue::Histogram(now.delta_since(was))
                    }
                    // Gauge, or a series with no earlier incarnation
                    // (including the type-confusion case, which the
                    // registry itself forbids): current value stands.
                    (v, _) => v.clone(),
                };
                MetricSample { name: s.name.clone(), labels: s.labels.clone(), value }
            })
            .collect();
        Snapshot { samples }
    }

    /// Aggregate every histogram series named `name` whose labels
    /// include all of `required` into one merged
    /// [`HistogramSnapshot`] (e.g. a processor's queue-wait across all
    /// drives: `required = [("proc", "3"), ("kind", "read")]`).
    pub fn histogram_sum(&self, name: &str, required: &[(&str, &str)]) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in &self.samples {
            if s.name != name {
                continue;
            }
            let matches =
                required.iter().all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v));
            if !matches {
                continue;
            }
            if let SampleValue::Histogram(h) = &s.value {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_edge_values_land_and_quantile_clamps() {
        let h = Histogram::detached();
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), u64::MAX);
        // sum wrapped: 0 + MAX = MAX
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn histogram_bucket_seams() {
        // Values at 2^k-1 and 2^k must land in adjacent buckets.
        for k in 1..63usize {
            let lo = (1u64 << k) - 1;
            let hi = 1u64 << k;
            assert_eq!(bucket_index(lo) + 1, bucket_index(hi), "seam at 2^{k}");
            assert!(bucket_upper_bound(bucket_index(lo)) == lo);
        }
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::detached();
        h.observe(123_456);
        let s = h.snapshot();
        // Upper bound of the bucket would be 131071; the clamp to max
        // makes every quantile exact for a single sample.
        assert_eq!(s.p50(), 123_456);
        assert_eq!(s.p99(), 123_456);
        assert_eq!(s.max, 123_456);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::detached();
        for _ in 0..90 {
            h.observe(10); // bucket 4, ub 15
        }
        for _ in 0..10 {
            h.observe(1000); // bucket 10, ub 1023
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 15);
        assert_eq!(s.quantile(0.90), 15);
        assert_eq!(s.p95(), 1000); // ub 1023 clamped to max 1000
        assert_eq!(s.p99(), 1000);
        assert!((s.mean() - (90.0 * 10.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::detached().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_returns_same_series_for_same_key() {
        let r = MetricsRegistry::new();
        let a = r.counter("ops", &[("drive", "0".into())]);
        let b = r.counter("ops", &[("drive", "0".into())]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let other = r.counter("ops", &[("drive", "1".into())]);
        assert_eq!(other.get(), 0);
        assert_eq!(r.snapshot().samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_type_confusion() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x", &[]);
        let _ = r.gauge("x", &[]);
    }

    #[test]
    fn base_labels_fold_into_snapshot() {
        let r = MetricsRegistry::with_base_labels(&[("run", "seq")]);
        r.counter("ops", &[("drive", "0".into())]).inc();
        let snap = r.snapshot();
        assert_eq!(
            snap.get("ops", &[("run", "seq"), ("drive", "0")]),
            Some(&SampleValue::Counter(1))
        );
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::detached();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_delta_isolates_the_window() {
        let h = Histogram::detached();
        h.observe(1000);
        h.observe(2000);
        let before = h.snapshot();
        h.observe(10);
        h.observe(12);
        h.observe(14);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 36);
        // Only the window's bucket is populated; quantiles describe the
        // window, not the lifetime.
        assert_eq!(d.buckets[bucket_index(10)], 3);
        assert_eq!(d.buckets[bucket_index(1000)], 0);
        assert_eq!(d.p50(), bucket_upper_bound(bucket_index(12)));
        assert!(d.max <= before.max, "window max bound clamps to running max");
        // An empty window is all zero.
        let e = h.snapshot().delta_since(&h.snapshot());
        assert_eq!(e.count, 0);
        assert_eq!(e.max, 0);
        assert_eq!(e.quantile(0.99), 0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = Histogram::detached();
        a.observe(5);
        let b = Histogram::detached();
        b.observe(500);
        b.observe(700);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1205);
        assert_eq!(m.max, 700);
    }

    #[test]
    fn snapshot_delta_windows_counters_and_histograms() {
        let r = MetricsRegistry::new();
        let c = r.counter("ops", &[]);
        let g = r.gauge("depth", &[]);
        let h = r.histogram("wait_us", &[("drive", "0".into())]);
        c.add(10);
        g.set(2);
        h.observe(100);
        let before = r.snapshot();
        c.add(5);
        g.set(4);
        h.observe(200);
        // A series born inside the window diffs against zero.
        r.counter("late", &[]).add(7);
        let d = r.snapshot().delta_since(&before);
        assert_eq!(d.get("ops", &[]), Some(&SampleValue::Counter(5)));
        assert_eq!(d.get("late", &[]), Some(&SampleValue::Counter(7)));
        // Gauges are levels: the delta carries the current value.
        assert_eq!(d.get("depth", &[]), Some(&SampleValue::Gauge(4)));
        match d.get("wait_us", &[("drive", "0")]) {
            Some(SampleValue::Histogram(hs)) => {
                assert_eq!(hs.count, 1);
                assert_eq!(hs.sum, 200);
            }
            other => panic!("expected histogram delta, got {other:?}"),
        }
    }

    #[test]
    fn histogram_sum_filters_by_labels() {
        let r = MetricsRegistry::new();
        for (drive, proc, v) in [("0", "1", 10u64), ("1", "1", 20), ("0", "2", 999)] {
            r.histogram("wait_us", &[("drive", drive.into()), ("proc", proc.into())]).observe(v);
        }
        let s = r.snapshot();
        let sum = s.histogram_sum("wait_us", &[("proc", "1")]);
        assert_eq!(sum.count, 2);
        assert_eq!(sum.sum, 30);
        let all = s.histogram_sum("wait_us", &[]);
        assert_eq!(all.count, 3);
        assert_eq!(s.histogram_sum("nope", &[]).count, 0);
    }
}
