//! cgmio-obs: zero-dependency observability substrate for the EM stack.
//!
//! One [`Obs`] handle per run bundles everything the rest of the
//! workspace needs to describe itself:
//!
//! - a [`MetricsRegistry`] of atomic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s, exportable to Prometheus text
//!   ([`to_prometheus`]) and JSON ([`to_json`]) with round-trip
//!   parsers for both;
//! - structured [`SpanScope`] spans labelled `(proc, superstep,
//!   [`Phase`])`, kept in a bounded ring and exportable as
//!   chrome://tracing JSON ([`chrome_trace_json`]) or folded stacks
//!   ([`folded_stacks`]);
//! - a [`PhaseCell`] correlating the two: runners publish the active
//!   superstep/phase as they enter spans, and the io layer stamps that
//!   pair onto every trace event and metric it records.
//!
//! Everything is opt-in: layers accept an `Option<Obs>`, and with
//! `None` they fall back to detached handles whose updates are a
//! relaxed atomic add — cheap enough that `IoStats` and on-disk bytes
//! stay bit-identical either way (property-tested in
//! `tests/observability.rs`).
//!
//! ```
//! use cgmio_obs::{Obs, Phase};
//!
//! let obs = Obs::new();
//! {
//!     let _span = obs.span(0, 3, Phase::MatrixRead);
//!     // … superstep 3's matrix read happens here …
//!     assert_eq!(obs.phase_cell(0).get(), (3, Phase::MatrixRead));
//! }
//! let spans = obs.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].phase, Phase::MatrixRead);
//! let prom = cgmio_obs::to_prometheus(&obs.snapshot());
//! assert!(prom.contains("cgmio_phase_us"));
//! ```
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod metrics;
mod span;

pub use export::{json, json_escape, parse_json, parse_prometheus, to_json, to_prometheus};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, Labels,
    MetricSample, MetricsRegistry, SampleValue, Snapshot, HIST_BUCKETS,
};
pub use span::{chrome_trace_json, folded_stacks, Phase, PhaseCell, SpanRecord, SpanRing};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// `proc` label used for coordinator-side spans (checkpoint writes,
/// readout) that belong to no worker.
pub const COORD_PROC: u64 = u64::MAX;

/// Default span-ring capacity: enough for every phase of tens of
/// thousands of supersteps while bounding memory at a few MiB.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct ObsInner {
    epoch: Instant,
    metrics: MetricsRegistry,
    spans: SpanRing,
    /// One phase cell per real processor: the parallel runner's workers
    /// progress through phases independently, so a single shared cell
    /// would let them clobber each other's stamps.
    phases: Mutex<BTreeMap<u64, Arc<PhaseCell>>>,
}

/// Shared observability handle for one run (cheap to clone — all
/// clones view the same registry, span ring, and phase cell).
#[derive(Clone, Debug)]
pub struct Obs(Arc<ObsInner>);

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A fresh handle with default span capacity and no base labels.
    pub fn new() -> Self {
        Self::with_options(DEFAULT_SPAN_CAPACITY, &[])
    }

    /// A fresh handle with explicit span-ring capacity and constant
    /// labels added to every exported metric series (e.g.
    /// `&[("run", "seq")]` so seq and par snapshots merge cleanly).
    pub fn with_options(span_capacity: usize, base_labels: &[(&str, &str)]) -> Self {
        Self(Arc::new(ObsInner {
            epoch: Instant::now(),
            metrics: MetricsRegistry::with_base_labels(base_labels),
            spans: SpanRing::new(span_capacity),
            phases: Mutex::new(BTreeMap::new()),
        }))
    }

    /// Microseconds elapsed since this handle was created; the shared
    /// timebase for spans and (when no event trace is attached)
    /// service-time histograms.
    pub fn now_us(&self) -> u64 {
        self.0.epoch.elapsed().as_micros() as u64
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.0.metrics
    }

    /// The cell publishing real processor `proc`'s currently-active
    /// `(superstep, phase)`. Cells are created on first use; resolve
    /// once and keep the `Arc` on hot paths (the io engine does this at
    /// construction).
    pub fn phase_cell(&self, proc: u64) -> Arc<PhaseCell> {
        Arc::clone(self.0.phases.lock().unwrap().entry(proc).or_default())
    }

    /// Enter a span: publishes `(superstep, phase)` to `proc`'s phase
    /// cell and, when the returned guard drops, records the span and
    /// its duration (into the `cgmio_phase_us{phase=…}` histogram).
    pub fn span(&self, proc: u64, superstep: u64, phase: Phase) -> SpanScope {
        let cell = self.phase_cell(proc);
        let prev = cell.set(superstep, phase);
        SpanScope { obs: self.clone(), cell, proc, superstep, phase, start_us: self.now_us(), prev }
    }

    /// Completed spans currently retained by the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.0.spans.snapshot()
    }

    /// Spans dropped because the ring filled (0 in healthy runs).
    pub fn spans_dropped(&self) -> u64 {
        self.0.spans.dropped()
    }

    /// Point-in-time export of every metric.
    pub fn snapshot(&self) -> Snapshot {
        self.0.metrics.snapshot()
    }

    /// The `n` longest retained spans, longest first — the "slowest
    /// spans" table of the run report.
    pub fn top_spans(&self, n: usize) -> Vec<SpanRecord> {
        let mut spans = self.spans();
        spans.sort_by_key(|s| std::cmp::Reverse(s.duration_us()));
        spans.truncate(n);
        spans
    }
}

/// RAII guard returned by [`Obs::span`]; records the span when dropped
/// and restores the previously-active phase (spans nest).
#[derive(Debug)]
pub struct SpanScope {
    obs: Obs,
    cell: Arc<PhaseCell>,
    proc: u64,
    superstep: u64,
    phase: Phase,
    start_us: u64,
    prev: u64,
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        let end_us = self.obs.now_us();
        self.obs.0.spans.push(SpanRecord {
            proc: self.proc,
            superstep: self.superstep,
            phase: self.phase,
            start_us: self.start_us,
            end_us,
        });
        self.obs
            .0
            .metrics
            .histogram("cgmio_phase_us", &[("phase", self.phase.name().to_string())])
            .observe(end_us.saturating_sub(self.start_us));
        self.cell.restore(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_scope_publishes_and_restores_phase() {
        let obs = Obs::new();
        assert_eq!(obs.phase_cell(2).get(), (0, Phase::None));
        {
            let _outer = obs.span(2, 5, Phase::Rounds);
            assert_eq!(obs.phase_cell(2).get(), (5, Phase::Rounds));
            {
                let _inner = obs.span(2, 5, Phase::Route);
                assert_eq!(obs.phase_cell(2).get(), (5, Phase::Route));
            }
            assert_eq!(obs.phase_cell(2).get(), (5, Phase::Rounds));
        }
        assert_eq!(obs.phase_cell(2).get(), (0, Phase::None));
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Route); // inner dropped first
        assert_eq!(spans[1].phase, Phase::Rounds);
    }

    #[test]
    fn span_durations_feed_phase_histogram() {
        let obs = Obs::new();
        drop(obs.span(0, 1, Phase::Barrier));
        let snap = obs.snapshot();
        match snap.get("cgmio_phase_us", &[("phase", "barrier")]) {
            Some(SampleValue::Histogram(h)) => assert_eq!(h.count, 1),
            other => panic!("missing phase histogram: {other:?}"),
        }
    }

    #[test]
    fn top_spans_sorted_by_duration() {
        let obs = Obs::new();
        // Fabricate spans through the ring via scopes of increasing
        // (non-deterministic but ordered-enough) durations is flaky;
        // instead check ordering logic on zero-duration spans by count.
        for i in 0..5 {
            drop(obs.span(0, i, Phase::Rounds));
        }
        assert_eq!(obs.top_spans(3).len(), 3);
        assert_eq!(obs.top_spans(100).len(), 5);
    }

    #[test]
    fn phase_cells_are_independent_per_proc() {
        let obs = Obs::new();
        let _a = obs.span(0, 4, Phase::CtxLoad);
        let _b = obs.span(1, 7, Phase::MatrixWrite);
        assert_eq!(obs.phase_cell(0).get(), (4, Phase::CtxLoad));
        assert_eq!(obs.phase_cell(1).get(), (7, Phase::MatrixWrite));
        assert_eq!(obs.phase_cell(2).get(), (0, Phase::None));
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::with_options(16, &[("run", "seq")]);
        let clone = obs.clone();
        clone.metrics().counter("c", &[]).inc();
        assert_eq!(obs.snapshot().get("c", &[("run", "seq")]), Some(&SampleValue::Counter(1)));
        drop(clone.span(1, 2, Phase::CtxLoad));
        assert_eq!(obs.spans().len(), 1);
    }
}
