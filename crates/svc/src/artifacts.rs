//! Durable per-job artifact directories.
//!
//! Every accepted job gets a directory `<root>/job-XXXXXX/` holding
//! small JSON files an operator (or a later session) can inspect
//! without the service running:
//!
//! * `spec.json` — the tenant's request, verbatim.
//! * `status.json` — the lifecycle record: `pending` → `running` →
//!   `done`/`failed`, with queue-wait and latency once known.
//! * `report.json` — the full [`EmRunReport`] accounting (I/O counts,
//!   λ/h/μ, wall time) plus the finals digest; written only on `done`.
//!
//! Writes are atomic per file: contents go to a `.tmp` sibling first
//! and are `rename`d into place, so a reader never observes a torn
//! JSON document (each job directory has exactly one writer — the
//! worker running the job — so the fixed temp name cannot race).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cgmio_core::EmRunReport;
use cgmio_obs::json::Value;

use crate::spec::{JobId, JobSpec};

/// Lifecycle states recorded in `status.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and queued; not yet dispatched.
    Pending,
    /// Dispatched onto a worker; I/O in flight.
    Running,
    /// Finished successfully; `report.json` exists.
    Done,
    /// Finished with an error (recorded in the status).
    Failed,
}

impl JobState {
    /// Stable lowercase name used in `status.json` and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// One `status.json` snapshot.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current lifecycle state.
    pub state: JobState,
    /// Owning tenant (duplicated from the spec for one-file triage).
    pub tenant: String,
    /// Theorem 2 predicted parallel I/O ops (the admission price).
    pub predicted_ops: f64,
    /// Microseconds from submission to dispatch, once dispatched.
    pub queue_wait_us: Option<u64>,
    /// Microseconds from submission to completion, once finished.
    pub latency_us: Option<u64>,
    /// Error message, for `failed` jobs.
    pub error: Option<String>,
}

impl JobStatus {
    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("state".into(), Value::str(self.state.name())),
            ("tenant".into(), Value::str(self.tenant.clone())),
            ("predicted_ops".into(), Value::num(self.predicted_ops)),
            ("queue_wait_us".into(), self.queue_wait_us.map_or(Value::Null, Value::num)),
            ("latency_us".into(), self.latency_us.map_or(Value::Null, Value::num)),
            ("error".into(), self.error.clone().map_or(Value::Null, Value::str)),
        ])
    }
}

/// JSON form of a run report, shared by `report.json` and the service
/// experiment's per-job records.
pub fn report_to_json(rep: &EmRunReport, finals_hash: u64) -> Value {
    Value::Obj(vec![
        ("lambda".into(), Value::num(rep.costs.lambda())),
        ("max_ctx_bytes".into(), Value::num(rep.costs.max_context_bytes)),
        ("io_ops".into(), Value::num(rep.io.total_ops())),
        ("io_blocks".into(), Value::num(rep.io.total_blocks())),
        ("algorithm_ops".into(), Value::num(rep.breakdown.algorithm_ops())),
        ("setup_ops".into(), Value::num(rep.breakdown.setup_ops)),
        ("readout_ops".into(), Value::num(rep.breakdown.readout_ops)),
        ("parallel_efficiency".into(), Value::num(rep.io.parallel_efficiency())),
        ("peak_mem_bytes".into(), Value::num(rep.peak_mem_bytes)),
        ("wall_us".into(), Value::num(rep.wall.as_micros())),
        ("finals_hash".into(), Value::str(format!("{finals_hash:016x}"))),
    ])
}

/// The on-disk artifact root and its write helpers.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Open (creating if needed) an artifact root directory.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The artifact directory of one job (not necessarily created yet).
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.root.join(id.to_string())
    }

    fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, path)
    }

    fn write_json(&self, id: JobId, file: &str, value: &Value) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        Self::write_atomic(&dir.join(file), &(value.render() + "\n"))
    }

    /// Write `spec.json` (once, at acceptance).
    pub fn write_spec(&self, id: JobId, spec: &JobSpec) -> io::Result<()> {
        self.write_json(id, "spec.json", &spec.to_json())
    }

    /// Write (or atomically overwrite) `status.json`.
    pub fn write_status(&self, id: JobId, status: &JobStatus) -> io::Result<()> {
        self.write_json(id, "status.json", &status.to_json())
    }

    /// Write `plan.json` — the static planner's knob choices for this
    /// job (planned B/depth/prefetch plus what actually executes).
    pub fn write_plan(&self, id: JobId, plan: &Value) -> io::Result<()> {
        self.write_json(id, "plan.json", plan)
    }

    /// Write `report.json` for a completed job.
    pub fn write_report(&self, id: JobId, rep: &EmRunReport, finals_hash: u64) -> io::Result<()> {
        self.write_json(id, "report.json", &report_to_json(rep, finals_hash))
    }

    /// Parse one of the job's artifact files back (test/triage helper).
    pub fn read_json(&self, id: JobId, file: &str) -> io::Result<Value> {
        let text = fs::read_to_string(self.job_dir(id).join(file))?;
        cgmio_obs::json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Priority, WorkloadKind};

    fn spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            workload: WorkloadKind::Permute,
            n: 1024,
            v: 4,
            block_bytes: 512,
            priority: Priority::Batch,
            deadline_hint_ms: None,
            seed: 1,
        }
    }

    #[test]
    fn lifecycle_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("cgmio-artifacts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new(&dir).unwrap();
        let id = JobId(7);
        store.write_spec(id, &spec()).unwrap();
        let mut status = JobStatus {
            state: JobState::Pending,
            tenant: "acme".into(),
            predicted_ops: 12.5,
            queue_wait_us: None,
            latency_us: None,
            error: None,
        };
        store.write_status(id, &status).unwrap();
        let v = store.read_json(id, "status.json").unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("pending"));
        assert!(v.get("latency_us").unwrap().as_u64().is_none());

        status.state = JobState::Done;
        status.queue_wait_us = Some(10);
        status.latency_us = Some(250);
        store.write_status(id, &status).unwrap();
        let v = store.read_json(id, "status.json").unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(v.get("latency_us").unwrap().as_u64(), Some(250));
        // Spec is still intact beside it.
        let s = store.read_json(id, "spec.json").unwrap();
        assert_eq!(s.get("workload").unwrap().as_str(), Some("permute"));
        // No .tmp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(store.job_dir(id))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_shape() {
        use cgmio_model::CommCosts;
        use cgmio_pdm::{DiskGeometry, IoStats};
        let rep = EmRunReport {
            costs: CommCosts::default(),
            io: IoStats::new(2),
            breakdown: Default::default(),
            geometry: DiskGeometry::new(2, 512),
            p: 1,
            v: 4,
            peak_mem_bytes: 100,
            cross_thread_items: 0,
            wall: std::time::Duration::from_micros(42),
            io_trace: Vec::new(),
            faults: None,
            retries: 0,
            deferred_write_errors_dropped: 0,
        };
        let j = report_to_json(&rep, 0xdead_beef);
        assert_eq!(j.get("wall_us").unwrap().as_u64(), Some(42));
        assert_eq!(j.get("finals_hash").unwrap().as_str(), Some("00000000deadbeef"));
        cgmio_obs::json::parse(&j.render()).unwrap();
    }
}
