//! From [`JobSpec`] to a runnable, priced job.
//!
//! Preparation dry-runs the program in memory
//! ([`cgmio_core::measure_requirements`]) to obtain the quantities the
//! simulation theorems — and therefore the admission controller — are
//! stated in: `λ` (rounds), `μ` (largest context), and the message
//! maxima that size the [`EmConfig`] slots. The predicted I/O demand is
//! Theorem 2's `λ·v·μ/(D·B)`
//! ([`cgmio_model::theorem2_predicted_ops`]), and the track reservation
//! is the exact per-worker span of the runners' disk layout
//! ([`EmConfig::tracks_per_worker`]).
//!
//! The program/state types are erased behind a boxed closure so the
//! service can queue and execute heterogeneous workloads uniformly.

use cgmio_core::{measure_requirements, EmConfig, EmError, EmRunReport, SeqEmRunner};
use cgmio_model::{CgmProgram, CommCosts, ProcState};
use cgmio_pdm::Item;

use crate::spec::{JobSpec, WorkloadKind};

/// What a finished job hands back to the service.
#[derive(Debug)]
pub struct JobOutcome {
    /// The full EM run report (exact I/O counts, λ/h/μ accounting).
    pub report: EmRunReport,
    /// FNV-1a digest of every final context's encoded bytes, in
    /// processor order with length framing — the value the isolation
    /// tests compare against a solo run of the same spec.
    pub finals_hash: u64,
}

/// A priced, sized, ready-to-dispatch job.
pub struct PreparedJob {
    /// Dry-run cost accounting (`λ`, `μ`, per-round h-relations).
    pub costs: CommCosts,
    /// Theorem 2 predicted parallel I/O operations for the whole run.
    pub predicted_ops: f64,
    /// Per-drive tracks this job's (single-worker) run occupies.
    pub span_tracks: u64,
    /// The static planner's knob proposal for this job, from the
    /// dry-run costs and the reference disk timing model. The planned
    /// `pipeline_depth` is already applied to [`Self::config`]; the
    /// planned `block_bytes` is advisory only — the shared pool's
    /// geometry fixes `B` at admission (a mismatched request is
    /// rejected), so it is recorded in the job artifacts rather than
    /// executed.
    pub plan: cgmio_tune::Plan,
    /// Machine config sized from the dry run, with the planner's
    /// per-job `pipeline_depth` applied (replacing the service-wide
    /// default). `backend` is left at the default; the dispatcher
    /// overrides it with the pool window.
    pub config: EmConfig,
    runner: Box<dyn FnOnce(EmConfig) -> Result<JobOutcome, EmError> + Send>,
}

impl PreparedJob {
    /// Execute the job under `config` (the prepared [`Self::config`]
    /// with the backend swapped for the dispatcher's pool window).
    pub fn run(self, config: EmConfig) -> Result<JobOutcome, EmError> {
        (self.runner)(config)
    }
}

impl std::fmt::Debug for PreparedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedJob")
            .field("predicted_ops", &self.predicted_ops)
            .field("span_tracks", &self.span_tracks)
            .finish_non_exhaustive()
    }
}

/// FNV-1a over the encoded finals, with per-state length framing so
/// `["ab","c"]` and `["a","bc"]` differ.
pub fn hash_finals<S: ProcState>(finals: &[S]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for s in finals {
        let bytes = s.to_bytes();
        eat(&(bytes.len() as u64).to_le_bytes());
        eat(&bytes);
    }
    h
}

fn prep<P>(
    prog: P,
    states: Vec<P::State>,
    mk: impl Fn() -> Vec<P::State> + Send + 'static,
    spec: &JobSpec,
    num_disks: usize,
) -> Result<PreparedJob, String>
where
    P: CgmProgram + 'static,
{
    let (_, mut costs, req) =
        measure_requirements(&prog, states).map_err(|e| format!("dry run failed: {e}"))?;
    // The in-memory dry run never encodes contexts, so its CommCosts
    // carry μ = 0; the measuring wrapper put the real μ in `req`.
    costs.max_context_bytes = req.max_ctx_bytes;
    let mut config = EmConfig::from_requirements(spec.v, 1, num_disks, spec.block_bytes, &req);
    // Cost-model planning: per-job initial knobs from the dry-run λ/μ
    // and the reference disk timing model. The pool's geometry fixes B
    // (see PreparedJob::plan), so only the pipeline depth is executed.
    let plan =
        cgmio_tune::plan(&costs, spec.v, num_disks, &cgmio_pdm::DiskTimingModel::nineties_disk());
    config.pipeline_depth = plan.pipeline_depth.min(spec.v);
    let predicted_ops = costs.predicted_ops(spec.v, num_disks, spec.block_bytes);
    let span_tracks = config.tracks_per_worker(<P::Msg as Item>::SIZE);
    let runner = Box::new(move |cfg: EmConfig| {
        let (finals, report) = SeqEmRunner::new(cfg).run(&prog, mk())?;
        Ok(JobOutcome { report, finals_hash: hash_finals(&finals) })
    });
    Ok(PreparedJob { costs, predicted_ops, span_tracks, plan, config, runner })
}

/// Dry-run, size, and price `spec` for a pool of `num_disks` drives.
///
/// Errors are tenant mistakes (invalid spec, program refusing the
/// input), reported as admission rejects — never panics.
pub fn prepare(spec: &JobSpec, num_disks: usize) -> Result<PreparedJob, String> {
    spec.validate()?;
    let (n, v, seed) = (spec.n, spec.v, spec.seed);
    match spec.workload {
        WorkloadKind::Sort => {
            let keys = cgmio_data::uniform_u64(n, seed);
            let mk = move || {
                cgmio_data::block_split(keys.clone(), v)
                    .into_iter()
                    .map(|b| (b, Vec::new()))
                    .collect::<Vec<_>>()
            };
            prep(cgmio_algos::CgmSort::<u64>::by_pivots(), mk(), mk, spec, num_disks)
        }
        WorkloadKind::Permute => {
            let vals = cgmio_data::uniform_u64(n, seed);
            let perm = cgmio_data::random_permutation(n, seed.wrapping_add(1));
            let mk = move || {
                cgmio_data::block_split(vals.clone(), v)
                    .into_iter()
                    .zip(cgmio_data::block_split(perm.clone(), v))
                    .map(|(vb, pb)| (vb, pb, n as u64))
                    .collect::<Vec<_>>()
            };
            prep(cgmio_algos::CgmPermute, mk(), mk, spec, num_disks)
        }
        WorkloadKind::Transpose => {
            let (k, l) = (v, n / v);
            let m = cgmio_data::uniform_u64(n, seed);
            let mk = move || {
                cgmio_data::block_split(m.clone(), v)
                    .into_iter()
                    .map(|b| (b, k as u64, l as u64))
                    .collect::<Vec<_>>()
            };
            prep(cgmio_algos::CgmTranspose, mk(), mk, spec, num_disks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Priority;

    fn spec(workload: WorkloadKind) -> JobSpec {
        JobSpec {
            tenant: "t".into(),
            workload,
            n: 1 << 10,
            v: 4,
            block_bytes: 512,
            priority: Priority::Normal,
            deadline_hint_ms: None,
            seed: 11,
        }
    }

    #[test]
    fn prepare_prices_and_sizes_all_workloads() {
        for w in [WorkloadKind::Sort, WorkloadKind::Permute, WorkloadKind::Transpose] {
            let p = prepare(&spec(w), 2).unwrap();
            assert!(p.predicted_ops > 0.0, "{w:?} predicted no I/O");
            assert!(p.span_tracks > 0);
            assert_eq!(p.config.v, 4);
            // Prediction matches the exported formula on the dry-run λ/μ.
            let want = cgmio_model::theorem2_predicted_ops(
                p.costs.lambda(),
                4,
                p.costs.max_context_bytes,
                2,
                512,
            );
            assert_eq!(p.predicted_ops, want);
        }
    }

    #[test]
    fn prepared_job_runs_and_fits_its_span() {
        use cgmio_core::BackendSpec;
        use cgmio_pdm::{DiskGeometry, MemStorage, TrackStorage};
        use std::sync::Arc;
        for w in [WorkloadKind::Sort, WorkloadKind::Permute, WorkloadKind::Transpose] {
            let p = prepare(&spec(w), 2).unwrap();
            let span = p.span_tracks;
            let pool: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(DiskGeometry::new(2, 512)));
            let mut cfg = p.config.clone();
            cfg.backend = BackendSpec::Shared {
                storage: Arc::clone(&pool),
                base_track: 0,
                worker_span_tracks: span,
            };
            let out = p.run(cfg).unwrap();
            assert!(out.report.io.total_ops() > 0);
            // The reservation formula really bounds the runner's layout:
            // the run never touched a track at or past its span.
            for (d, &used) in pool.tracks_used().iter().enumerate() {
                assert!(used <= span, "{w:?}: drive {d} used {used} of {span} tracks");
            }
        }
    }

    #[test]
    fn planner_depth_is_applied_to_the_job_config() {
        for w in [WorkloadKind::Sort, WorkloadKind::Permute, WorkloadKind::Transpose] {
            let p = prepare(&spec(w), 2).unwrap();
            assert_eq!(
                p.config.pipeline_depth,
                p.plan.pipeline_depth.min(4),
                "{w:?}: executed depth must be the planned depth clamped to v"
            );
            assert!(p.plan.predicted_ops > 0.0);
            // The plan renders to valid JSON for the artifact store.
            cgmio_obs::json::parse(&p.plan.to_json().render()).unwrap();
        }
    }

    #[test]
    fn same_seed_same_hash_different_seed_differs() {
        let s = spec(WorkloadKind::Sort);
        let a = prepare(&s, 2).unwrap();
        let cfg = a.config.clone();
        let ha = a.run(cfg).unwrap().finals_hash;
        let b = prepare(&s, 2).unwrap();
        let cfg = b.config.clone();
        assert_eq!(ha, b.run(cfg).unwrap().finals_hash, "deterministic by seed");
        let mut s2 = spec(WorkloadKind::Sort);
        s2.seed = 12;
        let c = prepare(&s2, 2).unwrap();
        let cfg = c.config.clone();
        assert_ne!(ha, c.run(cfg).unwrap().finals_hash);
    }

    #[test]
    fn hash_framing_distinguishes_boundaries() {
        // Vec<u8> is not a ProcState; use the sort state type instead.
        let a: Vec<(Vec<u64>, Vec<u64>)> = vec![(vec![1, 2], vec![]), (vec![3], vec![])];
        let b: Vec<(Vec<u64>, Vec<u64>)> = vec![(vec![1], vec![]), (vec![2, 3], vec![])];
        assert_ne!(hash_finals(&a), hash_finals(&b));
    }
}
