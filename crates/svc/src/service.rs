//! The job service: admission → queue → dispatch → artifacts.
//!
//! One [`JobService`] owns one shared [`ConcurrentStorage`] engine over
//! a disk-array pool and a bounded pool of worker threads. Submission
//! prices the job (dry run + Theorem 2), screens it against the I/O
//! budget, records its artifacts, and enqueues it with the
//! [`DrrScheduler`]; workers pull fairly from the queue, gate each
//! dispatch through the [`AdmissionController`]'s headroom, carve a
//! private track window out of the pool ([`BackendSpec::Shared`]), run
//! the job, and write its report.
//!
//! **Isolation.** Track windows come from a [`TrackPool`]: live jobs
//! never share a track, and when a job completes its window is
//! *discarded* (`TrackStorage::discard` — caches dropped, backing
//! freed, tracks read as zeros again) and recycled for a later job of
//! the same span. A recycled window is therefore indistinguishable
//! from a fresh one, which is why a job's finals and `IoStats` are
//! bit-identical to a solo run (see `tests/service_isolation.rs`).
//! If the backend cannot reclaim (`discard` returns `Ok(false)` or
//! errors) the window is leaked and allocation falls back to the
//! monotonic bump — correctness is kept either way, only pool
//! high-water suffers. The engine's sticky write-error is the one
//! engine-global piece of state: the service runs the pool fault-free
//! (no fault plan is ever attached), so it stays clear.
//!
//! **No per-job runner observability.** The shared engine publishes its
//! drive metrics through the service's [`Obs`]; per-job runner spans
//! would all publish `(superstep, phase)` for "processor 0" into the
//! same cell and clobber each other, so job configs keep `obs: None`
//! and the service reports job-level metrics itself (queue wait,
//! latency, outcome counters — all labelled by tenant).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use cgmio_core::{BackendSpec, EmConfig};
use cgmio_io::{ConcurrentStorage, IoEngineOpts};
use cgmio_obs::json::Value;
use cgmio_obs::Obs;
use cgmio_pdm::{DiskGeometry, MemStorage, TrackStorage};

use crate::admission::{AdmissionController, RejectReason};
use crate::artifacts::{ArtifactStore, JobState, JobStatus};
use crate::scheduler::{DrrScheduler, Entry};
use crate::spec::{JobId, JobSpec};
use crate::workload::{prepare, PreparedJob};

/// Everything configurable about a [`JobService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Drives in the shared pool.
    pub num_disks: usize,
    /// Pool block size; jobs must request the same `B`.
    pub block_bytes: usize,
    /// Worker threads (concurrent jobs). At least 1.
    pub workers: usize,
    /// Admission budget: predicted parallel I/O ops allowed in flight.
    pub budget_ops: f64,
    /// DRR quantum: predicted ops granted per tenant per visit.
    pub quantum_ops: f64,
    /// Root for per-job artifact directories; `None` disables artifacts.
    pub artifacts_dir: Option<PathBuf>,
    /// Tuning for the shared engine (its `obs` field is overwritten
    /// with [`Self::obs`]).
    pub engine: IoEngineOpts,
    /// Observability handle for service and engine metrics.
    pub obs: Option<Obs>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            num_disks: 4,
            block_bytes: 4096,
            workers: 2,
            budget_ops: 1e6,
            quantum_ops: 256.0,
            artifacts_dir: None,
            engine: IoEngineOpts::default(),
            obs: None,
        }
    }
}

/// What the service remembers about one finished job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Service-assigned id.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Workload name (`sort`/`permute`/`transpose`).
    pub workload: &'static str,
    /// Priority name (`batch`/`normal`/`interactive`).
    pub priority: &'static str,
    /// Whether the run succeeded.
    pub ok: bool,
    /// Error message for failed runs.
    pub error: Option<String>,
    /// Theorem 2 predicted parallel I/O ops (the admission price).
    pub predicted_ops: f64,
    /// Measured algorithm I/O ops (0 for failed runs).
    pub measured_ops: u64,
    /// Microseconds spent queued before dispatch.
    pub queue_wait_us: u64,
    /// Microseconds from submission to completion.
    pub latency_us: u64,
    /// Digest of the final contexts (0 for failed runs).
    pub finals_hash: u64,
    /// Whether the job finished past its advisory deadline (`None`
    /// when no hint was given).
    pub deadline_missed: Option<bool>,
}

impl JobRecord {
    /// JSON form used by the service experiment's per-job dump.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::str(self.id.to_string())),
            ("tenant".into(), Value::str(self.tenant.clone())),
            ("workload".into(), Value::str(self.workload)),
            ("priority".into(), Value::str(self.priority)),
            ("ok".into(), Value::num(self.ok as u8)),
            ("error".into(), self.error.clone().map_or(Value::Null, Value::str)),
            ("predicted_ops".into(), Value::num(self.predicted_ops)),
            ("measured_ops".into(), Value::num(self.measured_ops)),
            ("queue_wait_us".into(), Value::num(self.queue_wait_us)),
            ("latency_us".into(), Value::num(self.latency_us)),
            ("finals_hash".into(), Value::str(format!("{:016x}", self.finals_hash))),
            (
                "deadline_missed".into(),
                self.deadline_missed.map_or(Value::Null, |m| Value::num(m as u8)),
            ),
        ])
    }
}

/// A queued, priced job travelling through the scheduler.
#[derive(Debug)]
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    prepared: PreparedJob,
    submitted_us: u64,
}

#[derive(Debug)]
struct SchedState {
    queue: DrrScheduler<QueuedJob>,
    running: usize,
    closed: bool,
    records: Vec<JobRecord>,
}

/// Track-window allocator for the shared pool: exact-span free lists
/// over a monotonic bump pointer.
///
/// `alloc` prefers a previously released window of the *same* span —
/// exact-fit only, so a recycled window can never straddle tracks still
/// owned by a neighbour — and bumps `next` otherwise. `release` is only
/// called after the window's tracks were successfully discarded, so
/// every window handed out reads as zeros. Without reclamation a
/// long-running service's pool footprint grows with every job ever run;
/// with it, the high-water mark is bounded by the peak *concurrent*
/// span (see `long_job_stream_reuses_pool_windows`).
#[derive(Debug, Default)]
struct TrackPool {
    inner: Mutex<TrackPoolInner>,
}

#[derive(Debug, Default)]
struct TrackPoolInner {
    next: u64,
    /// span → bases of discarded windows of exactly that span.
    free: HashMap<u64, Vec<u64>>,
}

impl TrackPool {
    fn alloc(&self, span: u64) -> u64 {
        let mut g = self.inner.lock().unwrap();
        if let Some(base) = g.free.get_mut(&span).and_then(Vec::pop) {
            return base;
        }
        let base = g.next;
        g.next += span;
        base
    }

    fn release(&self, base: u64, span: u64) {
        self.inner.lock().unwrap().free.entry(span).or_default().push(base);
    }

    /// One past the highest track ever allocated (per drive).
    fn high_water(&self) -> u64 {
        self.inner.lock().unwrap().next
    }
}

struct Shared {
    num_disks: usize,
    block_bytes: usize,
    pool: Arc<ConcurrentStorage>,
    tracks: TrackPool,
    admission: AdmissionController,
    state: Mutex<SchedState>,
    cv: Condvar,
    artifacts: Option<ArtifactStore>,
    obs: Option<Obs>,
    epoch: Instant,
    next_id: AtomicU64,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn note_reject(&self, tenant: &str, reason: &RejectReason) {
        if let Some(o) = &self.obs {
            o.metrics()
                .counter(
                    "cgmio_svc_admission_rejects_total",
                    &[("tenant", tenant.to_string()), ("reason", reason.label().to_string())],
                )
                .inc();
        }
    }

    fn note_outcome(&self, rec: &JobRecord) {
        if let Some(o) = &self.obs {
            let m = o.metrics();
            let outcome = if rec.ok { "done" } else { "failed" };
            m.counter(
                "cgmio_svc_jobs_total",
                &[("tenant", rec.tenant.clone()), ("outcome", outcome.to_string())],
            )
            .inc();
            m.histogram("cgmio_svc_queue_wait_us", &[("tenant", rec.tenant.clone())])
                .observe(rec.queue_wait_us);
            m.histogram("cgmio_svc_job_latency_us", &[("tenant", rec.tenant.clone())])
                .observe(rec.latency_us);
        }
    }

    fn set_gauges(&self, queued: usize) {
        if let Some(o) = &self.obs {
            let m = o.metrics();
            m.gauge("cgmio_svc_queue_depth", &[]).set(queued as i64);
            m.gauge("cgmio_svc_inflight_predicted_ops", &[])
                .set(self.admission.in_flight_ops() as i64);
            m.gauge("cgmio_svc_pool_high_water_tracks", &[]).set(self.tracks.high_water() as i64);
        }
    }

    fn write_status(&self, id: JobId, status: &JobStatus) {
        if let Some(store) = &self.artifacts {
            // Artifact I/O failures must not take the service down; the
            // job's own result is still reported through its record.
            let _ = store.write_status(id, status);
        }
    }

    /// Execute one dispatched job on its own pool window.
    fn run_job(&self, job: QueuedJob) -> JobRecord {
        let QueuedJob { id, spec, prepared, submitted_us } = job;
        let queue_wait_us = self.now_us().saturating_sub(submitted_us);
        let predicted_ops = prepared.predicted_ops;
        let span = prepared.span_tracks;
        let base = self.tracks.alloc(span);
        let mut status = JobStatus {
            state: JobState::Running,
            tenant: spec.tenant.clone(),
            predicted_ops,
            queue_wait_us: Some(queue_wait_us),
            latency_us: None,
            error: None,
        };
        self.write_status(id, &status);

        let mut cfg: EmConfig = prepared.config.clone();
        cfg.backend = BackendSpec::Shared {
            storage: Arc::clone(&self.pool) as Arc<dyn TrackStorage>,
            base_track: base,
            worker_span_tracks: span,
        };
        let result = prepared.run(cfg);
        // Reclaim the window (failed runs included — their writes are
        // garbage either way). The engine queues the discard behind the
        // job's in-flight writes and drops its caches for the range, so
        // recycling is race-free. Any drive that cannot reclaim leaks
        // the whole window back to the bump allocator.
        let mut reclaimed = true;
        for disk in 0..self.num_disks {
            if !matches!(self.pool.discard(disk, base..base + span), Ok(true)) {
                reclaimed = false;
            }
        }
        if reclaimed {
            self.tracks.release(base, span);
        }
        let latency_us = self.now_us().saturating_sub(submitted_us);
        let deadline_missed = spec.deadline_hint_ms.map(|ms| latency_us > ms.saturating_mul(1000));
        let rec = match result {
            Ok(outcome) => {
                if let Some(store) = &self.artifacts {
                    let _ = store.write_report(id, &outcome.report, outcome.finals_hash);
                }
                status.state = JobState::Done;
                JobRecord {
                    id,
                    tenant: spec.tenant.clone(),
                    workload: spec.workload.name(),
                    priority: spec.priority.name(),
                    ok: true,
                    error: None,
                    predicted_ops,
                    measured_ops: outcome.report.breakdown.algorithm_ops(),
                    queue_wait_us,
                    latency_us,
                    finals_hash: outcome.finals_hash,
                    deadline_missed,
                }
            }
            Err(e) => {
                status.state = JobState::Failed;
                status.error = Some(e.to_string());
                JobRecord {
                    id,
                    tenant: spec.tenant.clone(),
                    workload: spec.workload.name(),
                    priority: spec.priority.name(),
                    ok: false,
                    error: Some(e.to_string()),
                    predicted_ops,
                    measured_ops: 0,
                    queue_wait_us,
                    latency_us,
                    finals_hash: 0,
                    deadline_missed,
                }
            }
        };
        status.latency_us = Some(latency_us);
        self.write_status(id, &status);
        self.note_outcome(&rec);
        rec
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let entry = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if let Some((_tenant, entry)) =
                    st.queue.next(&mut |cost| sh.admission.try_reserve(cost))
                {
                    st.running += 1;
                    break entry;
                }
                if st.closed && st.queue.is_empty() && st.running == 0 {
                    return;
                }
                // Either every queue is empty or the budget is full;
                // both resolve on the next submit/completion notify.
                st = sh.cv.wait(st).unwrap();
            }
        };
        let cost = entry.cost_ops;
        let record = sh.run_job(entry.payload);
        sh.admission.release(cost);
        let queued = {
            let mut st = sh.state.lock().unwrap();
            st.running -= 1;
            st.records.push(record);
            st.queue.len()
        };
        sh.set_gauges(queued);
        // Wake peers: budget headroom opened and/or drain may complete.
        sh.cv.notify_all();
    }
}

/// A multi-tenant EM-CGM job service over one shared disk-array pool.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// A service over a fresh in-memory pool.
    pub fn new(cfg: ServiceConfig) -> std::io::Result<Self> {
        let geom = DiskGeometry::new(cfg.num_disks, cfg.block_bytes);
        let backing: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(geom));
        Self::with_pool(cfg, backing)
    }

    /// A service over caller-provided backing storage (e.g. file-backed
    /// drives). `backing` must match `cfg.num_disks`/`cfg.block_bytes`.
    pub fn with_pool(cfg: ServiceConfig, backing: Arc<dyn TrackStorage>) -> std::io::Result<Self> {
        let artifacts = cfg.artifacts_dir.clone().map(ArtifactStore::new).transpose()?;
        let mut engine_opts = cfg.engine.clone();
        engine_opts.obs = cfg.obs.clone();
        let pool = Arc::new(ConcurrentStorage::new(backing, cfg.num_disks, engine_opts));
        let shared = Arc::new(Shared {
            num_disks: cfg.num_disks,
            block_bytes: cfg.block_bytes,
            pool,
            tracks: TrackPool::default(),
            admission: AdmissionController::new(cfg.budget_ops),
            state: Mutex::new(SchedState {
                queue: DrrScheduler::new(cfg.quantum_ops),
                running: 0,
                closed: false,
                records: Vec::new(),
            }),
            cv: Condvar::new(),
            artifacts,
            obs: cfg.obs.clone(),
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cgmio-svc-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Self { shared, workers })
    }

    /// Price, screen, and enqueue a job. `Ok` means the job *will* run
    /// (queued or dispatched); `Err` is an admission reject and nothing
    /// was queued.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, RejectReason> {
        let sh = &*self.shared;
        if spec.block_bytes != sh.block_bytes {
            let r = RejectReason::GeometryMismatch {
                job_block_bytes: spec.block_bytes,
                pool_block_bytes: sh.block_bytes,
            };
            sh.note_reject(&spec.tenant, &r);
            return Err(r);
        }
        let prepared = match prepare(&spec, sh.num_disks) {
            Ok(p) => p,
            Err(e) => {
                let r = RejectReason::BadSpec(e);
                sh.note_reject(&spec.tenant, &r);
                return Err(r);
            }
        };
        if let Err(r) = sh.admission.screen(prepared.predicted_ops) {
            sh.note_reject(&spec.tenant, &r);
            return Err(r);
        }
        let id = JobId(sh.next_id.fetch_add(1, Ordering::Relaxed));
        if let Some(store) = &sh.artifacts {
            let _ = store.write_spec(id, &spec);
            // The planner's proposal, plus what actually executes: the
            // pool geometry pins B, the planned depth is applied.
            let _ = store.write_plan(
                id,
                &Value::Obj(vec![
                    ("planned".into(), prepared.plan.to_json()),
                    ("executed_block_bytes".into(), Value::num(spec.block_bytes)),
                    ("executed_pipeline_depth".into(), Value::num(prepared.config.pipeline_depth)),
                ]),
            );
        }
        sh.write_status(
            id,
            &JobStatus {
                state: JobState::Pending,
                tenant: spec.tenant.clone(),
                predicted_ops: prepared.predicted_ops,
                queue_wait_us: None,
                latency_us: None,
                error: None,
            },
        );
        let tenant = spec.tenant.clone();
        let submitted_us = sh.now_us();
        let entry = Entry {
            cost_ops: prepared.predicted_ops,
            weight: spec.priority.weight(),
            // The advisory deadline also steers intra-tenant order:
            // earliest absolute deadline first (see DrrScheduler docs).
            deadline_us: spec
                .deadline_hint_ms
                .map(|ms| submitted_us.saturating_add(ms.saturating_mul(1000))),
            payload: QueuedJob { id, spec, prepared, submitted_us },
        };
        let queued = {
            let mut st = sh.state.lock().unwrap();
            if st.closed {
                let r = RejectReason::BadSpec("service is draining".into());
                sh.note_reject(&tenant, &r);
                return Err(r);
            }
            st.queue.push(&tenant, entry);
            st.queue.len()
        };
        sh.set_gauges(queued);
        sh.cv.notify_one();
        Ok(id)
    }

    /// Jobs queued (not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Predicted ops currently reserved by running jobs.
    pub fn in_flight_ops(&self) -> f64 {
        self.shared.admission.in_flight_ops()
    }

    /// Pool high-water mark: one past the highest track (per drive)
    /// ever carved out of the shared pool. With a reclaiming backend
    /// this is bounded by the peak *concurrent* window span, not by the
    /// number of jobs ever run.
    pub fn pool_high_water_tracks(&self) -> u64 {
        self.shared.tracks.high_water()
    }

    /// The artifact directory of a job, when artifacts are enabled.
    pub fn job_dir(&self, id: JobId) -> Option<PathBuf> {
        self.shared.artifacts.as_ref().map(|a| a.job_dir(id))
    }

    /// Stop accepting jobs, run the queue dry, join the workers, and
    /// return every finished job's record **in completion order**.
    pub fn drain(mut self) -> Vec<JobRecord> {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.closed = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("service worker panicked");
        }
        let mut st = self.shared.state.lock().unwrap();
        std::mem::take(&mut st.records)
    }
}

impl Drop for JobService {
    /// Dropping without [`Self::drain`] still shuts down cleanly (runs
    /// the queue dry, joins workers) — the records are discarded.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            st.closed = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Priority, WorkloadKind};

    fn spec(tenant: &str, seed: u64) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            workload: WorkloadKind::Sort,
            n: 1 << 10,
            v: 4,
            block_bytes: 512,
            priority: Priority::Normal,
            deadline_hint_ms: None,
            seed,
        }
    }

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            num_disks: 2,
            block_bytes: 512,
            workers: 2,
            budget_ops: 1e6,
            quantum_ops: 64.0,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submits_run_and_drain_returns_records() {
        let svc = JobService::new(cfg()).unwrap();
        let mut ids = Vec::new();
        for i in 0..6u64 {
            let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
            ids.push(svc.submit(spec(tenant, i / 2)).unwrap());
        }
        let records = svc.drain();
        assert_eq!(records.len(), 6);
        assert!(records.iter().all(|r| r.ok), "{records:?}");
        assert!(records.iter().all(|r| r.measured_ops > 0));
        // Every submitted id came back exactly once.
        let mut got: Vec<u64> = records.iter().map(|r| r.id.0).collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
        // Ids 0 and 1 share a seed: same finals hash regardless of
        // scheduling or which pool window each landed in.
        let by_id = |id: u64| records.iter().find(|r| r.id.0 == id).unwrap();
        assert_eq!(by_id(0).finals_hash, by_id(1).finals_hash);
        assert_ne!(by_id(0).finals_hash, by_id(2).finals_hash, "different seed");
    }

    #[test]
    fn long_job_stream_reuses_pool_windows() {
        let c = cfg();
        let (num_disks, workers) = (c.num_disks, c.workers);
        let svc = JobService::new(c).unwrap();
        let one = prepare(&spec("t", 0), num_disks).unwrap().span_tracks;
        let sh = Arc::clone(&svc.shared);
        // Same spec throughout ⇒ same window span ⇒ the exact-fit free
        // list must recycle (differently-sized windows recycle too, but
        // only among jobs of their own span).
        for _ in 0..24u64 {
            svc.submit(spec("t", 0)).unwrap();
        }
        let records = svc.drain();
        assert_eq!(records.len(), 24);
        assert!(records.iter().all(|r| r.ok), "{records:?}");
        // Windows are recycled on completion, so the pool footprint is
        // bounded by the concurrent window span — it must NOT scale
        // with the 24 jobs the stream pushed through.
        let hw = sh.tracks.high_water();
        assert!(
            hw <= workers as u64 * one,
            "pool high-water {hw} tracks exceeds {workers} concurrent windows of {one}"
        );
        // And determinism survives reuse: same seed ⇒ same finals even
        // when the second run lands in a recycled window.
        let again = JobService::new(cfg()).unwrap();
        again.submit(spec("t", 7)).unwrap();
        again.submit(spec("t", 7)).unwrap();
        let rs = again.drain();
        assert_eq!(rs[0].finals_hash, rs[1].finals_hash);
    }

    #[test]
    fn geometry_and_bad_specs_rejected_up_front() {
        let svc = JobService::new(cfg()).unwrap();
        let mut s = spec("t", 0);
        s.block_bytes = 1024;
        assert_eq!(svc.submit(s).unwrap_err().label(), "geometry_mismatch");
        let mut s = spec("t", 0);
        s.tenant = String::new();
        assert_eq!(svc.submit(s).unwrap_err().label(), "bad_spec");
        assert_eq!(svc.queue_len(), 0);
        assert!(svc.drain().is_empty());
    }

    #[test]
    fn budget_screen_rejects_oversized_jobs() {
        let mut c = cfg();
        c.budget_ops = 0.5; // below any real job's prediction
        let svc = JobService::new(c).unwrap();
        assert_eq!(svc.submit(spec("t", 0)).unwrap_err().label(), "exceeds_budget");
    }

    #[test]
    fn artifacts_record_the_lifecycle() {
        let dir = std::env::temp_dir().join(format!("cgmio-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = cfg();
        c.artifacts_dir = Some(dir.clone());
        let svc = JobService::new(c).unwrap();
        let id = svc.submit(spec("acme", 3)).unwrap();
        let job_dir = svc.job_dir(id).unwrap();
        let records = svc.drain();
        assert!(records[0].ok);
        let status = std::fs::read_to_string(job_dir.join("status.json")).unwrap();
        let v = cgmio_obs::json::parse(&status).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert!(v.get("latency_us").unwrap().as_u64().is_some());
        let report = std::fs::read_to_string(job_dir.join("report.json")).unwrap();
        let r = cgmio_obs::json::parse(&report).unwrap();
        assert_eq!(
            r.get("finals_hash").unwrap().as_str().unwrap(),
            format!("{:016x}", records[0].finals_hash)
        );
        assert!(job_dir.join("spec.json").exists());
        // The planner's choice travels with the job: plan.json records
        // the proposal and the executed knobs.
        let plan = std::fs::read_to_string(job_dir.join("plan.json")).unwrap();
        let p = cgmio_obs::json::parse(&plan).unwrap();
        assert_eq!(p.get("executed_block_bytes").unwrap().as_u64(), Some(512));
        let planned = p.get("planned").unwrap();
        assert!(planned.get("pipeline_depth").unwrap().as_u64().is_some());
        assert_eq!(
            p.get("executed_pipeline_depth").unwrap().as_u64(),
            planned.get("pipeline_depth").unwrap().as_u64().map(|d| d.min(4)),
            "executed depth is the planned depth clamped to v"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_metrics_flow_through_obs() {
        let obs = Obs::new();
        let mut c = cfg();
        c.obs = Some(obs.clone());
        let svc = JobService::new(c).unwrap();
        svc.submit(spec("alpha", 1)).unwrap();
        svc.submit(spec("beta", 2)).unwrap();
        let mut bad = spec("beta", 3);
        bad.block_bytes = 64;
        let _ = svc.submit(bad);
        let records = svc.drain();
        assert_eq!(records.len(), 2);
        let snap = obs.snapshot();
        let counter = |name: &str, labels: &[(&str, &str)]| match snap.get(name, labels) {
            Some(cgmio_obs::SampleValue::Counter(c)) => Some(*c),
            _ => None,
        };
        let done = |t: &str| counter("cgmio_svc_jobs_total", &[("tenant", t), ("outcome", "done")]);
        assert_eq!(done("alpha"), Some(1));
        assert_eq!(done("beta"), Some(1));
        let rejects = counter(
            "cgmio_svc_admission_rejects_total",
            &[("tenant", "beta"), ("reason", "geometry_mismatch")],
        );
        assert_eq!(rejects, Some(1));
    }
}
