//! cgmio-svc — a multi-tenant EM-CGM job service over one shared
//! disk-array pool.
//!
//! The rest of the workspace answers "how cheaply can *one* CGM
//! algorithm run from external memory?". This crate answers the
//! operational question that follows: how do *many* such jobs, from
//! different tenants, share one disk array safely and fairly — using
//! the paper's own cost model as the resource currency.
//!
//! The pipeline, in submission order:
//!
//! 1. **Spec** ([`JobSpec`]): what to run (workload, `n`, `v`, `B`),
//!    who is asking (tenant), how urgently ([`Priority`], deadline
//!    hint).
//! 2. **Pricing** ([`workload::prepare`]): an in-memory dry run
//!    measures `λ` and `μ`; Theorem 2's `λ·v·μ/(D·B)` prices the job
//!    in predicted parallel I/O operations, and the exact runner
//!    layout sizes its track reservation.
//! 3. **Admission** ([`AdmissionController`]): jobs priced above the
//!    whole budget are rejected; others queue until the in-flight
//!    reservation window has headroom.
//! 4. **Scheduling** ([`DrrScheduler`]): deficit round-robin over
//!    per-tenant FIFOs, quantum scaled by priority — a flooding tenant
//!    cannot starve a quiet one.
//! 5. **Dispatch** ([`JobService`]): a worker carves a private track
//!    window out of the shared [`cgmio_io::ConcurrentStorage`] pool
//!    ([`cgmio_core::BackendSpec::Shared`]) and runs the job; windows
//!    are never reused, so every job sees the moral equivalent of a
//!    fresh disk array and its results are bit-identical to a solo run.
//! 6. **Artifacts** ([`ArtifactStore`]): `spec.json`, `status.json`
//!    (`pending` → `running` → `done`/`failed`), and `report.json`
//!    written atomically under a per-job directory.
//!
//! Per-tenant observability (job counters, queue-wait and latency
//! histograms, admission-reject counters, queue/in-flight gauges)
//! flows through [`cgmio_obs::Obs`] when one is attached.

#![deny(missing_docs)]

pub mod admission;
pub mod artifacts;
pub mod scheduler;
pub mod spec;
pub mod workload;

mod service;

pub use admission::{AdmissionController, RejectReason};
pub use artifacts::{ArtifactStore, JobState, JobStatus};
pub use scheduler::DrrScheduler;
pub use service::{JobRecord, JobService, ServiceConfig};
pub use spec::{JobId, JobSpec, Priority, WorkloadKind};
pub use workload::{hash_finals, prepare, JobOutcome, PreparedJob};
