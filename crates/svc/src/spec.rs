//! Typed job descriptions and identifiers.
//!
//! A [`JobSpec`] is everything a tenant says about a job: what to run
//! (workload kind, problem size `n`, virtual machine width `v`, block
//! size `B`), who is asking (`tenant`), and how urgently
//! ([`Priority`], an optional deadline hint). Everything else — the
//! measured `λ`/`μ`, the predicted I/O demand, the track reservation —
//! is derived by the service, never supplied by the tenant.

use std::fmt;

use cgmio_obs::json::Value;

/// Which CGM algorithm a job runs (all from `cgmio-algos`, all
/// property-tested against in-memory runners).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// `CgmSort<u64>` by deterministic regular sampling.
    Sort,
    /// `CgmPermute`: route `n` items to seeded random destinations.
    Permute,
    /// `CgmTranspose` of a `v × (n/v)` matrix (requires `v | n`).
    Transpose,
}

impl WorkloadKind {
    /// Stable lowercase name used in JSON artifacts and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Sort => "sort",
            WorkloadKind::Permute => "permute",
            WorkloadKind::Transpose => "transpose",
        }
    }
}

/// Dispatch urgency. Priorities scale the tenant's deficit round-robin
/// quantum while a job of that priority is at the head of its queue —
/// they shift *latency* between tenants' heads, never admission (the
/// I/O budget applies identically to every priority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work; base quantum.
    Batch,
    /// The default; 2× quantum.
    Normal,
    /// Latency-sensitive; 4× quantum.
    Interactive,
}

impl Priority {
    /// Quantum multiplier applied by the DRR scheduler.
    pub fn weight(&self) -> f64 {
        match self {
            Priority::Batch => 1.0,
            Priority::Normal => 2.0,
            Priority::Interactive => 4.0,
        }
    }

    /// Stable lowercase name used in JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Normal => "normal",
            Priority::Interactive => "interactive",
        }
    }
}

/// A tenant's job request.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Owning tenant (metric label and fairness domain; non-empty).
    pub tenant: String,
    /// Algorithm to run.
    pub workload: WorkloadKind,
    /// Problem size in items.
    pub n: usize,
    /// Virtual processors of the simulated CGM machine.
    pub v: usize,
    /// Block size in bytes; must match the shared pool's geometry
    /// (jobs with a different `B` are rejected at admission — one
    /// engine has one track size).
    pub block_bytes: usize,
    /// Dispatch urgency.
    pub priority: Priority,
    /// Advisory completion deadline, milliseconds from submission.
    /// Recorded in artifacts and reports so operators can audit misses;
    /// the scheduler does not preempt on it.
    pub deadline_hint_ms: Option<u64>,
    /// Seed for the job's input data (same seed ⇒ bit-identical run).
    pub seed: u64,
}

impl JobSpec {
    /// Structural validation (cheap; no dry run).
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("tenant must be non-empty".into());
        }
        if self.tenant.contains(|c: char| c == '"' || c == '\\' || c.is_control()) {
            return Err("tenant must be a plain label (no quotes or control chars)".into());
        }
        if self.v < 2 {
            return Err(format!("v must be at least 2, got {}", self.v));
        }
        if self.n < self.v {
            return Err(format!("need n >= v, got n={} v={}", self.n, self.v));
        }
        if self.block_bytes == 0 {
            return Err("block_bytes must be positive".into());
        }
        if self.workload == WorkloadKind::Transpose && !self.n.is_multiple_of(self.v) {
            return Err(format!("transpose needs v | n, got n={} v={}", self.n, self.v));
        }
        Ok(())
    }

    /// JSON form written to the job's `spec.json` artifact.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("tenant".into(), Value::str(self.tenant.clone())),
            ("workload".into(), Value::str(self.workload.name())),
            ("n".into(), Value::num(self.n)),
            ("v".into(), Value::num(self.v)),
            ("block_bytes".into(), Value::num(self.block_bytes)),
            ("priority".into(), Value::str(self.priority.name())),
            ("deadline_hint_ms".into(), self.deadline_hint_ms.map_or(Value::Null, Value::num)),
            ("seed".into(), Value::num(self.seed)),
        ])
    }
}

/// Service-assigned job identifier (dense, monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            tenant: "acme".into(),
            workload: WorkloadKind::Sort,
            n: 4096,
            v: 8,
            block_bytes: 1024,
            priority: Priority::Normal,
            deadline_hint_ms: Some(500),
            seed: 7,
        }
    }

    #[test]
    fn valid_spec_passes_and_serialises() {
        let s = spec();
        s.validate().unwrap();
        let j = s.to_json();
        assert_eq!(j.get("tenant").unwrap().as_str(), Some("acme"));
        assert_eq!(j.get("workload").unwrap().as_str(), Some("sort"));
        assert_eq!(j.get("deadline_hint_ms").unwrap().as_u64(), Some(500));
        // Round-trips through the parser.
        let back = cgmio_obs::json::parse(&j.render()).unwrap();
        assert_eq!(back.get("n").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn bad_specs_rejected() {
        let mut s = spec();
        s.tenant = String::new();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.tenant = "a\"b".into();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.n = 4;
        assert!(s.validate().is_err(), "n < v");
        let mut s = spec();
        s.workload = WorkloadKind::Transpose;
        s.n = 4097;
        assert!(s.validate().is_err(), "transpose needs v | n");
    }

    #[test]
    fn job_id_formats_densely() {
        assert_eq!(JobId(3).to_string(), "job-000003");
        assert_eq!(JobId(123_456).to_string(), "job-123456");
    }

    #[test]
    fn priority_weights_order() {
        assert!(Priority::Interactive.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Batch.weight());
    }
}
