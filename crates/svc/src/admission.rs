//! Cost-model-driven admission control.
//!
//! The controller holds a configurable budget of *predicted in-flight
//! parallel I/O operations*. Every job is priced before any disk is
//! touched — Theorem 2's `λ·v·μ/(D·B)` on the dry-run measurement
//! (see [`crate::workload::prepare`]) — and three things can happen:
//!
//! * the price exceeds the whole budget → **rejected** outright (it
//!   could never dispatch),
//! * the price fits the budget but not the current headroom → the job
//!   stays **queued**; the scheduler retries as running jobs release
//!   their reservations,
//! * the price fits the headroom → **admitted**: the reservation is
//!   taken and the job may dispatch.
//!
//! Reservations are released when the job finishes (success or
//! failure), making the budget a sliding window over the pool's
//! predicted demand rather than a hard partition.

use std::sync::Mutex;

/// Why a job was refused at submission.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// Predicted demand exceeds the *entire* budget; resubmitting
    /// later cannot help.
    ExceedsBudget {
        /// Theorem 2 predicted parallel I/O ops for the job.
        predicted_ops: f64,
        /// The pool's total budget.
        budget_ops: f64,
    },
    /// The job's block size differs from the shared pool's geometry.
    GeometryMismatch {
        /// Block size the job asked for.
        job_block_bytes: usize,
        /// Block size the pool is formatted with.
        pool_block_bytes: usize,
    },
    /// The spec failed validation or its dry run failed.
    BadSpec(
        /// Human-readable cause.
        String,
    ),
}

impl RejectReason {
    /// Stable label for the `cgmio_svc_admission_rejects_total{reason}`
    /// counter.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::ExceedsBudget { .. } => "exceeds_budget",
            RejectReason::GeometryMismatch { .. } => "geometry_mismatch",
            RejectReason::BadSpec(_) => "bad_spec",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::ExceedsBudget { predicted_ops, budget_ops } => write!(
                f,
                "predicted {predicted_ops:.0} parallel I/O ops exceed the pool budget of \
                 {budget_ops:.0}"
            ),
            RejectReason::GeometryMismatch { job_block_bytes, pool_block_bytes } => write!(
                f,
                "job block size {job_block_bytes} B differs from the pool's \
                 {pool_block_bytes} B"
            ),
            RejectReason::BadSpec(s) => write!(f, "bad spec: {s}"),
        }
    }
}

/// The in-flight I/O budget and its current reservations.
#[derive(Debug)]
pub struct AdmissionController {
    budget_ops: f64,
    in_flight_ops: Mutex<f64>,
}

impl AdmissionController {
    /// A controller with `budget_ops` of predicted parallel I/O
    /// operations allowed in flight at once.
    pub fn new(budget_ops: f64) -> Self {
        assert!(budget_ops > 0.0, "budget must be positive");
        Self { budget_ops, in_flight_ops: Mutex::new(0.0) }
    }

    /// The total budget.
    pub fn budget_ops(&self) -> f64 {
        self.budget_ops
    }

    /// Currently reserved predicted ops.
    pub fn in_flight_ops(&self) -> f64 {
        *self.in_flight_ops.lock().unwrap()
    }

    /// Submission-time screen: can this job *ever* dispatch?
    pub fn screen(&self, predicted_ops: f64) -> Result<(), RejectReason> {
        if predicted_ops > self.budget_ops {
            return Err(RejectReason::ExceedsBudget { predicted_ops, budget_ops: self.budget_ops });
        }
        Ok(())
    }

    /// Dispatch-time gate: reserve `predicted_ops` if the headroom
    /// allows, atomically. Returns whether the reservation was taken.
    pub fn try_reserve(&self, predicted_ops: f64) -> bool {
        let mut in_flight = self.in_flight_ops.lock().unwrap();
        if *in_flight + predicted_ops > self.budget_ops {
            return false;
        }
        *in_flight += predicted_ops;
        true
    }

    /// Release a reservation taken by [`Self::try_reserve`] (job
    /// finished, successfully or not).
    pub fn release(&self, predicted_ops: f64) {
        let mut in_flight = self.in_flight_ops.lock().unwrap();
        *in_flight = (*in_flight - predicted_ops).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screen_rejects_only_impossible_jobs() {
        let a = AdmissionController::new(100.0);
        a.screen(100.0).unwrap();
        let err = a.screen(100.1).unwrap_err();
        assert_eq!(err.label(), "exceeds_budget");
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn reserve_respects_headroom_and_release_restores_it() {
        let a = AdmissionController::new(100.0);
        assert!(a.try_reserve(60.0));
        assert!(!a.try_reserve(50.0), "60 + 50 > 100");
        assert!(a.try_reserve(40.0));
        assert_eq!(a.in_flight_ops(), 100.0);
        a.release(60.0);
        assert!(a.try_reserve(50.0));
        a.release(40.0);
        a.release(50.0);
        a.release(1.0); // over-release clamps at zero, never goes negative
        assert_eq!(a.in_flight_ops(), 0.0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        use std::sync::Arc;
        let a = Arc::new(AdmissionController::new(10.0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut taken = 0u32;
                    for _ in 0..1000 {
                        if a.try_reserve(1.0) {
                            taken += 1;
                            assert!(a.in_flight_ops() <= 10.0);
                            a.release(1.0);
                        }
                    }
                    taken
                })
            })
            .collect();
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        assert_eq!(a.in_flight_ops(), 0.0);
    }
}
