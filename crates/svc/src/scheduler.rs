//! Deficit round-robin over per-tenant FIFO queues.
//!
//! Classic DRR (Shreedhar & Varghese) with the job's predicted I/O
//! operations as the "packet size": each visit to a non-empty tenant
//! adds one quantum (scaled by the head job's [`crate::Priority`]
//! weight) to the tenant's deficit counter, and the head job dispatches
//! once the deficit covers its predicted cost. Cheap jobs from a
//! flooding tenant therefore cannot starve another tenant's queue: over
//! any window, every tenant with backlog receives within one maximal
//! job cost of its quantum share of predicted I/O (the standard DRR
//! fairness bound) — regression-tested in
//! `tests/service_isolation.rs`.
//!
//! Dispatch is additionally gated by the caller (the admission
//! controller's in-flight budget): a gate refusal returns `None`
//! *without* minting deficit, so a saturated pool does not let idle
//! tenants accumulate unbounded credit.
//!
//! Within one tenant, jobs carrying an absolute deadline are served
//! earliest-deadline-first; deadline-less jobs sort after every
//! deadline and keep FIFO order among themselves. This reorders only
//! the tenant's own queue — cost accounting, and therefore the
//! cross-tenant DRR fairness bound, is unchanged — so a tenant can
//! fast-track a tight job without buying extra share.

use std::collections::{BTreeMap, VecDeque};

/// One queued job, priced for the scheduler.
#[derive(Debug)]
pub struct Entry<T> {
    /// Predicted parallel I/O operations (the DRR cost unit).
    pub cost_ops: f64,
    /// Priority weight multiplying the tenant's per-visit quantum
    /// while this job heads the queue (see [`crate::Priority::weight`]).
    pub weight: f64,
    /// Absolute deadline on the service clock, microseconds. Within the
    /// owning tenant's queue the earliest deadline dispatches first, at
    /// equal deficit; `None` sorts after every deadline (FIFO among
    /// deadline-less jobs).
    pub deadline_us: Option<u64>,
    /// Caller payload.
    pub payload: T,
}

#[derive(Debug)]
struct Tenant<T> {
    deficit: f64,
    queue: VecDeque<Entry<T>>,
}

impl<T> Default for Tenant<T> {
    fn default() -> Self {
        Self { deficit: 0.0, queue: VecDeque::new() }
    }
}

/// Index of the entry a tenant serves next: earliest deadline first,
/// deadline-less entries after every deadline, submission order as the
/// tie-break (so a queue without deadlines is plain FIFO).
fn serve_idx<T>(queue: &VecDeque<Entry<T>>) -> Option<usize> {
    (0..queue.len()).min_by_key(|&i| (queue[i].deadline_us.unwrap_or(u64::MAX), i))
}

/// The scheduler: per-tenant FIFO queues drained fairly by deficit
/// round-robin.
#[derive(Debug)]
pub struct DrrScheduler<T> {
    quantum_ops: f64,
    tenants: BTreeMap<String, Tenant<T>>,
    /// Round-robin visit order (first-submission order).
    order: Vec<String>,
    cursor: usize,
    /// Whether the tenant under the cursor was already charged its
    /// quantum for the current visit (spans calls, so a budget-blocked
    /// pool cannot re-charge on every poll).
    charged: bool,
    len: usize,
}

impl<T> DrrScheduler<T> {
    /// A scheduler granting `quantum_ops` predicted I/O operations per
    /// tenant per round-robin visit.
    pub fn new(quantum_ops: f64) -> Self {
        assert!(quantum_ops > 0.0, "quantum must be positive");
        Self {
            quantum_ops,
            tenants: BTreeMap::new(),
            order: Vec::new(),
            cursor: 0,
            charged: false,
            len: 0,
        }
    }

    /// Queued jobs across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No jobs queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backlog of one tenant.
    pub fn tenant_backlog(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// Enqueue at the tail of `tenant`'s FIFO.
    pub fn push(&mut self, tenant: &str, entry: Entry<T>) {
        if !self.tenants.contains_key(tenant) {
            self.order.push(tenant.to_string());
        }
        self.tenants.entry(tenant.to_string()).or_default().queue.push_back(entry);
        self.len += 1;
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.order.len().max(1);
        self.charged = false;
    }

    /// Pick the next job to dispatch. `gate(cost_ops)` is the admission
    /// controller's reservation attempt: returning `true` commits the
    /// reservation and the job is handed out; `false` means the pool
    /// has no headroom and `next` returns `None` (call again after a
    /// release). `None` with the gate never called means every queue is
    /// empty.
    pub fn next(&mut self, gate: &mut dyn FnMut(f64) -> bool) -> Option<(String, Entry<T>)> {
        if self.len == 0 {
            return None;
        }
        let n = self.order.len();
        // Termination: every full cycle charges every non-empty tenant
        // at least `quantum_ops`, so within `ceil(max_head_cost /
        // quantum)` cycles some head becomes dispatchable (then either
        // dispatches or the gate refuses — both exits).
        let max_cost = self
            .tenants
            .values()
            .filter_map(|t| serve_idx(&t.queue).map(|i| t.queue[i].cost_ops))
            .fold(0.0f64, f64::max);
        let cycles = (max_cost / self.quantum_ops).ceil() as usize + 2;
        for _ in 0..cycles * n {
            let name = &self.order[self.cursor % n];
            let t = self.tenants.get_mut(name).expect("order entries have queues");
            let Some(idx) = serve_idx(&t.queue) else {
                // Idle tenants forfeit their deficit (standard DRR).
                t.deficit = 0.0;
                self.advance();
                continue;
            };
            let head = &t.queue[idx];
            if !self.charged {
                t.deficit += self.quantum_ops * head.weight;
                self.charged = true;
            }
            if head.cost_ops <= t.deficit {
                if gate(head.cost_ops) {
                    let name = name.clone();
                    let e = t.queue.remove(idx).expect("head exists");
                    t.deficit -= e.cost_ops;
                    if t.queue.is_empty() {
                        t.deficit = 0.0;
                    }
                    self.len -= 1;
                    // Keep the cursor (and `charged`) on this tenant:
                    // it may drain further jobs while deficit lasts.
                    return Some((name, e));
                }
                // Pool saturated. `charged` stays true, so polling a
                // blocked scheduler mints no deficit.
                return None;
            }
            self.advance();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(cost: f64) -> Entry<u32> {
        Entry { cost_ops: cost, weight: 1.0, deadline_us: None, payload: 0 }
    }

    fn drain_order(s: &mut DrrScheduler<u32>) -> Vec<String> {
        let mut out = Vec::new();
        while let Some((t, _)) = s.next(&mut |_| true) {
            out.push(t);
        }
        out
    }

    #[test]
    fn flooding_tenant_cannot_starve_the_other() {
        let mut s = DrrScheduler::new(10.0);
        for _ in 0..50 {
            s.push("flood", job(10.0));
        }
        for _ in 0..5 {
            s.push("quiet", job(10.0));
        }
        let order = drain_order(&mut s);
        assert_eq!(order.len(), 55);
        // Equal costs and weights ⇒ strict alternation while both have
        // backlog: quiet's 5 jobs all dispatch within the first 10.
        let quiet_last = order.iter().rposition(|t| t == "quiet").unwrap();
        assert!(quiet_last <= 10, "quiet tenant starved: last dispatch at {quiet_last}");
    }

    #[test]
    fn cheap_jobs_share_by_cost_not_count() {
        let mut s = DrrScheduler::new(10.0);
        for _ in 0..40 {
            s.push("cheap", job(1.0)); // 10 jobs per visit
        }
        for _ in 0..4 {
            s.push("dear", job(10.0)); // 1 job per visit
        }
        let order = drain_order(&mut s);
        // After both tenants' first 2 visits (~20 cheap + 2 dear), the
        // dear tenant must already have dispatched twice: cost-fair.
        let dear_by_22 = order.iter().take(22).filter(|t| *t == "dear").count();
        assert!(dear_by_22 >= 2, "dear got {dear_by_22} of the first 22 dispatches");
    }

    #[test]
    fn priority_weight_speeds_up_the_head() {
        let mut s = DrrScheduler::new(5.0);
        for _ in 0..8 {
            s.push(
                "batch",
                Entry { cost_ops: 10.0, weight: 1.0, deadline_us: None, payload: 0u32 },
            );
            s.push(
                "inter",
                Entry { cost_ops: 10.0, weight: 4.0, deadline_us: None, payload: 0u32 },
            );
        }
        let order = drain_order(&mut s);
        // weight 4 ⇒ quantum 20 per visit vs 5: the interactive tenant
        // dispatches on every visit, batch every other.
        let inter_first_4 = order.iter().take(4).filter(|t| *t == "inter").count();
        assert!(inter_first_4 >= 2, "{order:?}");
        assert_eq!(order.iter().filter(|t| *t == "inter").count(), 8);
    }

    #[test]
    fn gate_refusal_returns_none_without_minting_deficit() {
        let mut s = DrrScheduler::new(10.0);
        s.push("a", job(10.0));
        // Blocked pool: many polls, gate always refuses.
        for _ in 0..100 {
            assert!(s.next(&mut |_| false).is_none());
        }
        // One release later, exactly one job dispatches; the 100 polls
        // minted no extra deficit (the next job still waits a visit).
        s.push("a", job(30.0));
        let mut calls = 0;
        let got = s.next(&mut |_| {
            calls += 1;
            true
        });
        assert!(got.is_some());
        assert_eq!(calls, 1);
        // Head cost 30 > remaining deficit: needs more visits, not zero.
        assert!(s.next(&mut |_| true).is_some(), "eventually dispatches");
        assert!(s.is_empty());
    }

    #[test]
    fn tight_deadline_overtakes_loose_within_a_tenant() {
        let mut s = DrrScheduler::new(10.0);
        // FIFO order: loose deadline first, tight second, none last —
        // equal cost and weight, so at equal deficit FIFO alone would
        // dispatch in push order.
        s.push("a", Entry { cost_ops: 5.0, weight: 1.0, deadline_us: Some(9_000), payload: 1u32 });
        s.push("a", Entry { cost_ops: 5.0, weight: 1.0, deadline_us: Some(1_000), payload: 2u32 });
        s.push("a", Entry { cost_ops: 5.0, weight: 1.0, deadline_us: None, payload: 3u32 });
        let order: Vec<u32> =
            std::iter::from_fn(|| s.next(&mut |_| true).map(|(_, e)| e.payload)).collect();
        assert_eq!(order, vec![2, 1, 3], "EDF within the tenant, deadline-less last");
    }

    #[test]
    fn deadlines_do_not_buy_cross_tenant_share() {
        let mut s = DrrScheduler::new(10.0);
        for i in 0..10 {
            // A tenant stamping tight deadlines on everything…
            s.push(
                "pushy",
                Entry { cost_ops: 10.0, weight: 1.0, deadline_us: Some(i), payload: 0u32 },
            );
            // …gets no more throughput than one that stamps nothing.
            s.push("calm", job(10.0));
        }
        let order = drain_order(&mut s);
        let pushy_first_10 = order.iter().take(10).filter(|t| *t == "pushy").count();
        assert_eq!(pushy_first_10, 5, "strict alternation despite deadlines: {order:?}");
    }

    #[test]
    fn empty_scheduler_never_calls_gate() {
        let mut s: DrrScheduler<u32> = DrrScheduler::new(1.0);
        assert!(s.next(&mut |_| panic!("gate called on empty scheduler")).is_none());
        s.push("a", job(1.0));
        let _ = s.next(&mut |_| true).unwrap();
        assert!(s.next(&mut |_| panic!("gate called on empty scheduler")).is_none());
    }
}
