//! cgmio-tune: self-tuning for the EM-CGM runtime.
//!
//! Two cooperating pieces close the loop from the paper's cost model
//! and the runtime's observability back to the execution knobs:
//!
//! * A **static planner** ([`plan`]) that, before superstep 0, derives
//!   initial values for block size `B`, `pipeline_depth`, and the
//!   concurrent engine's prefetch window from Theorem 2's predicted
//!   operation count ([`cgmio_model::theorem2_predicted_ops`]) plus the
//!   measured per-workload `μ` (largest context) and a
//!   [`DiskTimingModel`]. The planner only *proposes*: callers that are
//!   pinned to a pool geometry (the job service — one engine has one
//!   track size) keep their `B` and take the depth/prefetch proposal.
//! * A **feedback controller** ([`Controller`]) consulted at every
//!   superstep barrier with the *windowed* delta of two signals the
//!   runtime already exports — `cgmio_pipeline_stall_us` (time the
//!   executor waited on a pre-issued read) and `cgmio_io_queue_wait_us`
//!   (time requests sat in drive queues before service). Stall-dominated
//!   windows mean the pipeline is too shallow (deepen); queue-wait-
//!   dominated windows mean requests pile up faster than drives serve
//!   them (back off). Hysteresis — a dominance ratio plus a patience
//!   streak — prevents oscillation on noisy or alternating windows.
//!
//! Every knob the tuner touches (`pipeline_depth`, the engine prefetch
//! window) is excluded from `EmConfig::config_hash` and proven
//! accounting-invariant by the pipeline-equivalence property tests:
//! tuning changes wall-clock only, never finals, `IoStats`, checkpoint
//! manifests, or fault/retry totals.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

use cgmio_model::CommCosts;
use cgmio_obs::Snapshot;
use cgmio_pdm::DiskTimingModel;

/// Bounds and hysteresis constants for the feedback controller.
#[derive(Clone, Debug, PartialEq)]
pub struct TunePolicy {
    /// Smallest pipeline depth the controller may choose (0 = demand
    /// reads with prefetch hints).
    pub min_depth: usize,
    /// Largest pipeline depth the controller may choose.
    pub max_depth: usize,
    /// Smallest prefetch window (blocks per drive worker).
    pub min_prefetch_blocks: usize,
    /// Largest prefetch window (blocks per drive worker).
    pub max_prefetch_blocks: usize,
    /// A signal must exceed the opposing signal by this factor before a
    /// window counts toward a move; windows inside the dead band reset
    /// the streak.
    pub dominance_ratio: f64,
    /// Consecutive dominated windows required before the controller
    /// acts (and again before it acts the next time).
    pub patience: u32,
}

impl Default for TunePolicy {
    fn default() -> Self {
        Self {
            min_depth: 0,
            max_depth: 8,
            min_prefetch_blocks: 4,
            max_prefetch_blocks: 64,
            dominance_ratio: 1.5,
            patience: 2,
        }
    }
}

/// What the controller did with one window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneAction {
    /// Stall-dominated long enough: pipeline depth increased.
    Deepen,
    /// Queue-wait-dominated long enough: pipeline depth decreased.
    BackOff,
    /// Dead band, patience not yet met, or already at a bound.
    Hold,
}

impl TuneAction {
    /// Stable snake_case name used in metric labels and CSV exports.
    pub fn name(self) -> &'static str {
        match self {
            TuneAction::Deepen => "deepen",
            TuneAction::BackOff => "back_off",
            TuneAction::Hold => "hold",
        }
    }
}

/// The two opposing signals of one barrier-to-barrier window, already
/// aggregated over drives/kinds for one real processor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSignals {
    /// Total microseconds the executor stalled waiting on pre-issued
    /// reads (`cgmio_pipeline_stall_us{proc}` window sum).
    pub stall_us: u64,
    /// Stall events in the window.
    pub stall_count: u64,
    /// Total microseconds requests waited in drive queues before
    /// service (`cgmio_io_queue_wait_us{proc,…}` window sum, all drives
    /// and kinds).
    pub queue_wait_us: u64,
    /// Queued operations in the window.
    pub queue_wait_count: u64,
}

impl WindowSignals {
    /// Extract the signals for real processor `proc` from a windowed
    /// metrics delta (see `Snapshot::delta_since` in `cgmio-obs`).
    pub fn from_delta(delta: &Snapshot, proc: u64) -> Self {
        let proc = proc.to_string();
        let stall = delta.histogram_sum("cgmio_pipeline_stall_us", &[("proc", &proc)]);
        let qwait = delta.histogram_sum("cgmio_io_queue_wait_us", &[("proc", &proc)]);
        Self {
            stall_us: stall.sum,
            stall_count: stall.count,
            queue_wait_us: qwait.sum,
            queue_wait_count: qwait.count,
        }
    }
}

/// One audited controller decision (also a row of
/// `autotune_decisions.csv`).
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Real processor the controller instance belongs to.
    pub proc: u64,
    /// Superstep whose window was just observed; the chosen knobs apply
    /// from the next superstep on.
    pub superstep: u64,
    /// The observed window.
    pub signals: WindowSignals,
    /// What the controller did.
    pub action: TuneAction,
    /// Pipeline depth in effect for the next superstep.
    pub depth: usize,
    /// Prefetch window (blocks) in effect for the next superstep.
    pub prefetch_blocks: usize,
}

/// Shared, clone-cheap log of controller decisions, threaded through
/// `EmConfig` so benches and tests can audit every adjustment after the
/// run without touching the accounting path.
#[derive(Clone, Debug, Default)]
pub struct DecisionLog(Arc<Mutex<Vec<Decision>>>);

impl DecisionLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one decision.
    pub fn push(&self, d: Decision) {
        self.0.lock().unwrap().push(d);
    }

    /// All decisions recorded so far, in push order.
    pub fn snapshot(&self) -> Vec<Decision> {
        self.0.lock().unwrap().clone()
    }
}

/// Barrier-time feedback controller for one real processor.
///
/// Feed it one [`WindowSignals`] per superstep via
/// [`Controller::observe`]; read the knobs to apply to the *next*
/// superstep from [`Controller::depth`] /
/// [`Controller::prefetch_blocks`]. Hysteresis: a move requires
/// `patience` consecutive windows dominated in the same direction, the
/// streak resets on any dead-band or opposing window *and* after every
/// move — so an alternating stall/queue-wait trace never oscillates.
#[derive(Clone, Debug)]
pub struct Controller {
    policy: TunePolicy,
    depth: usize,
    prefetch_blocks: usize,
    deepen_streak: u32,
    backoff_streak: u32,
}

impl Controller {
    /// A controller starting from `initial_depth`/`initial_prefetch`
    /// (both clamped into the policy's bounds).
    pub fn new(policy: TunePolicy, initial_depth: usize, initial_prefetch: usize) -> Self {
        let depth = initial_depth.clamp(policy.min_depth, policy.max_depth);
        let prefetch_blocks =
            initial_prefetch.clamp(policy.min_prefetch_blocks, policy.max_prefetch_blocks);
        Self { policy, depth, prefetch_blocks, deepen_streak: 0, backoff_streak: 0 }
    }

    /// Pipeline depth to use for the next superstep.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Prefetch window (blocks per drive worker) for the next superstep.
    pub fn prefetch_blocks(&self) -> usize {
        self.prefetch_blocks
    }

    /// Consume one window and maybe move the knobs one step.
    pub fn observe(&mut self, w: &WindowSignals) -> TuneAction {
        let r = self.policy.dominance_ratio;
        let stall_dominated = w.stall_us > 0 && w.stall_us as f64 > r * w.queue_wait_us as f64;
        let qwait_dominated = w.queue_wait_us > 0 && w.queue_wait_us as f64 > r * w.stall_us as f64;
        if stall_dominated {
            self.backoff_streak = 0;
            self.deepen_streak += 1;
            if self.deepen_streak >= self.policy.patience && self.depth < self.policy.max_depth {
                self.deepen_streak = 0;
                self.depth += 1;
                self.prefetch_blocks =
                    (self.prefetch_blocks * 2).min(self.policy.max_prefetch_blocks);
                return TuneAction::Deepen;
            }
        } else if qwait_dominated {
            self.deepen_streak = 0;
            self.backoff_streak += 1;
            if self.backoff_streak >= self.policy.patience && self.depth > self.policy.min_depth {
                self.backoff_streak = 0;
                self.depth -= 1;
                self.prefetch_blocks =
                    (self.prefetch_blocks / 2).max(self.policy.min_prefetch_blocks);
                return TuneAction::BackOff;
            }
        } else {
            // Dead band: neither signal dominates — a balanced pipeline.
            self.deepen_streak = 0;
            self.backoff_streak = 0;
        }
        TuneAction::Hold
    }
}

/// The planner's proposal for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// Proposed block size `B` (bytes). Callers bound to a fixed pool
    /// geometry ignore this and keep their own `B`.
    pub block_bytes: usize,
    /// Initial pipeline depth.
    pub pipeline_depth: usize,
    /// Initial prefetch window (blocks per drive worker).
    pub prefetch_blocks: usize,
    /// Theorem 2 predicted parallel I/O operations at the *planned* `B`
    /// (ceil-based per-context transfer count, so it is finite and has
    /// a real optimum, unlike the asymptotic `λ·v·μ/(D·B)` form).
    pub predicted_ops: f64,
}

impl Plan {
    /// JSON object recorded in job artifacts (`cgmio_obs::json`).
    pub fn to_json(&self) -> cgmio_obs::json::Value {
        use cgmio_obs::json::Value;
        Value::Obj(vec![
            ("block_bytes".into(), Value::num(self.block_bytes)),
            ("pipeline_depth".into(), Value::num(self.pipeline_depth)),
            ("prefetch_blocks".into(), Value::num(self.prefetch_blocks)),
            ("predicted_ops".into(), Value::num(format!("{:.1}", self.predicted_ops))),
        ])
    }
}

/// Ceil-based variant of the Theorem 2 operation count: each of the
/// `λ·v` context transfers moves `ceil(μ/B)` blocks, spread over `D`
/// drives. Unlike the asymptotic `λ·v·μ/(D·B)`, this stops improving
/// once `B ≥ μ` — the regime where growing `B` only pads transfers.
pub fn predicted_ops_ceil(
    lambda: usize,
    v: usize,
    max_ctx_bytes: usize,
    num_disks: usize,
    block_bytes: usize,
) -> f64 {
    let blocks_per_ctx = max_ctx_bytes.div_ceil(block_bytes.max(1)).max(1);
    (lambda as f64) * (v as f64) * (blocks_per_ctx as f64) / (num_disks.max(1) as f64)
}

/// Pick initial knobs for a workload from its dry-run [`CommCosts`]
/// (`λ` and the measured `μ` in `max_context_bytes`), the machine shape
/// (`v` virtual processors, `D` drives), and a device timing model.
///
/// * **`B`**: the power-of-two block size minimizing the modelled wall
///   time `ops(B) · (position + B/bandwidth)` with the ceil-based op
///   count — small `B` pays positioning per extra block, large `B` pays
///   padded transfer time. Swept over `[512, 1 MiB]`.
/// * **`pipeline_depth`**: one in-flight virtual processor per drive
///   worker (`min(D, v)`), the shallowest depth that can keep every
///   drive busy while one vp computes; the feedback controller refines
///   it from there.
/// * **`prefetch_blocks`**: enough window for the in-flight vps'
///   context blocks on each drive, at least the engine default of 16.
pub fn plan(costs: &CommCosts, v: usize, num_disks: usize, model: &DiskTimingModel) -> Plan {
    let lambda = costs.lambda();
    let mu = costs.max_context_bytes;
    let mut best: Option<(f64, usize)> = None;
    let mut bb = 512usize;
    while bb <= 1 << 20 {
        let ops = predicted_ops_ceil(lambda, v, mu, num_disks, bb);
        let wall = ops * model.op_time_us(bb);
        if best.is_none_or(|(w, _)| wall < w) {
            best = Some((wall, bb));
        }
        bb *= 2;
    }
    let (_, block_bytes) = best.expect("non-empty candidate sweep");
    let pipeline_depth = num_disks.min(v).max(1);
    let blocks_per_ctx = mu.div_ceil(block_bytes.max(1)).max(1);
    let prefetch_blocks = (pipeline_depth * blocks_per_ctx).div_ceil(num_disks.max(1)).max(16);
    Plan {
        block_bytes,
        pipeline_depth,
        prefetch_blocks,
        predicted_ops: predicted_ops_ceil(lambda, v, mu, num_disks, block_bytes),
    }
}

/// Runtime tuning switch carried on the runners' config. Off by
/// default; everything it controls is excluded from `config_hash` and
/// accounting-invariant.
#[derive(Clone, Debug, Default)]
pub struct Autotune {
    /// Master switch: when false the runners behave exactly as before.
    pub enabled: bool,
    /// Controller bounds and hysteresis.
    pub policy: TunePolicy,
    /// Optional audit log receiving every [`Decision`].
    pub log: Option<DecisionLog>,
}

impl Autotune {
    /// Tuning on, default policy, no log.
    pub fn on() -> Self {
        Self { enabled: true, ..Self::default() }
    }

    /// Tuning on with an audit log attached.
    pub fn with_log(log: DecisionLog) -> Self {
        Self { enabled: true, policy: TunePolicy::default(), log: Some(log) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(stall_us: u64, queue_wait_us: u64) -> WindowSignals {
        WindowSignals {
            stall_us,
            stall_count: u64::from(stall_us > 0),
            queue_wait_us,
            queue_wait_count: u64::from(queue_wait_us > 0),
        }
    }

    fn ctl(depth: usize) -> Controller {
        Controller::new(TunePolicy::default(), depth, 16)
    }

    #[test]
    fn stall_domination_deepens_after_patience() {
        let mut c = ctl(1);
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Hold, "patience 2: first window holds");
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Deepen);
        assert_eq!(c.depth(), 2);
        assert_eq!(c.prefetch_blocks(), 32, "prefetch window scales with depth");
        // Patience must be re-earned after a move.
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Hold);
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Deepen);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn queue_wait_domination_backs_off() {
        let mut c = ctl(4);
        assert_eq!(c.observe(&w(10, 1000)), TuneAction::Hold);
        assert_eq!(c.observe(&w(10, 1000)), TuneAction::BackOff);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.prefetch_blocks(), 8);
    }

    #[test]
    fn bounds_are_hard() {
        let p = TunePolicy { min_depth: 1, max_depth: 2, patience: 1, ..TunePolicy::default() };
        let mut c = Controller::new(p.clone(), 2, 64);
        assert_eq!(c.observe(&w(1000, 0)), TuneAction::Hold, "at max: deepen refused");
        assert_eq!(c.depth(), 2);
        let mut c = Controller::new(p, 1, 4);
        assert_eq!(c.observe(&w(0, 1000)), TuneAction::Hold, "at min: back off refused");
        assert_eq!(c.depth(), 1);
        // Initial values clamp into bounds.
        let p = TunePolicy { min_depth: 1, max_depth: 3, ..TunePolicy::default() };
        assert_eq!(Controller::new(p, 9, 16).depth(), 3);
    }

    /// The satellite-3 anti-oscillation test: a synthetic trace that
    /// alternates stall-dominated and queue-wait-dominated windows every
    /// superstep must leave the knobs exactly where they started —
    /// each reversal resets the opposing streak before patience is met.
    #[test]
    fn hysteresis_prevents_oscillation_on_alternating_trace() {
        let mut c = ctl(2);
        for i in 0..40 {
            let win = if i % 2 == 0 { w(1000, 10) } else { w(10, 1000) };
            assert_eq!(c.observe(&win), TuneAction::Hold, "window {i} must not move the knobs");
        }
        assert_eq!(c.depth(), 2);
        assert_eq!(c.prefetch_blocks(), 16);
    }

    #[test]
    fn dead_band_resets_streaks() {
        let mut c = ctl(2);
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Hold);
        // Balanced window (within the dominance ratio) wipes progress.
        assert_eq!(c.observe(&w(500, 400)), TuneAction::Hold);
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Hold, "streak restarted");
        assert_eq!(c.observe(&w(1000, 10)), TuneAction::Deepen);
    }

    #[test]
    fn quiet_windows_hold() {
        let mut c = ctl(3);
        for _ in 0..10 {
            assert_eq!(c.observe(&w(0, 0)), TuneAction::Hold);
        }
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn signals_extract_from_windowed_delta() {
        let obs = cgmio_obs::Obs::new();
        let m = obs.metrics();
        m.histogram("cgmio_pipeline_stall_us", &[("proc", "0".into())]).observe(500);
        let before = obs.snapshot();
        m.histogram("cgmio_pipeline_stall_us", &[("proc", "0".into())]).observe(100);
        m.histogram(
            "cgmio_io_queue_wait_us",
            &[("proc", "0".into()), ("drive", "1".into()), ("kind", "read".into())],
        )
        .observe(40);
        m.histogram(
            "cgmio_io_queue_wait_us",
            &[("proc", "0".into()), ("drive", "0".into()), ("kind", "write".into())],
        )
        .observe(2);
        // Another proc's signals must not bleed in.
        m.histogram("cgmio_pipeline_stall_us", &[("proc", "7".into())]).observe(9999);
        let delta = obs.snapshot().delta_since(&before);
        let s = WindowSignals::from_delta(&delta, 0);
        assert_eq!(s.stall_us, 100, "window excludes pre-window samples");
        assert_eq!(s.stall_count, 1);
        assert_eq!(s.queue_wait_us, 42, "sums across drives and kinds");
        assert_eq!(s.queue_wait_count, 2);
    }

    #[test]
    fn decision_log_is_shared_across_clones() {
        let log = DecisionLog::new();
        let clone = log.clone();
        clone.push(Decision {
            proc: 0,
            superstep: 1,
            signals: w(10, 0),
            action: TuneAction::Hold,
            depth: 2,
            prefetch_blocks: 16,
        });
        assert_eq!(log.snapshot().len(), 1);
        assert_eq!(log.snapshot()[0].superstep, 1);
    }

    #[test]
    fn ceil_ops_floor_at_one_block_per_context() {
        // μ smaller than B: ops stop shrinking as B grows.
        let at = |bb| predicted_ops_ceil(3, 8, 1000, 4, bb);
        assert_eq!(at(512), 3.0 * 8.0 * 2.0 / 4.0);
        assert_eq!(at(1024), 3.0 * 8.0 / 4.0);
        assert_eq!(at(1 << 20), at(1024), "B beyond μ buys nothing");
    }

    #[test]
    fn planner_picks_a_cost_optimal_block_size() {
        let mut costs = CommCosts { max_context_bytes: 256 * 1024, ..CommCosts::default() }; // μ = 256 KiB
        costs.rounds.push(cgmio_model::RoundCost::default()); // λ = 1
        let model = DiskTimingModel::nineties_disk();
        let p = plan(&costs, 16, 4, &model);
        // With ~12 ms positioning per op and 8 B/us bandwidth, padding a
        // block costs far less than an extra op: the optimum is a large
        // block, but never beyond what μ can fill (ops floor at B ≥ μ,
        // so the smallest such B wins — larger only pads).
        assert_eq!(p.block_bytes, 256 * 1024);
        assert_eq!(p.pipeline_depth, 4, "one in-flight vp per drive");
        assert!(p.prefetch_blocks >= 16);
        assert!(p.predicted_ops > 0.0);
        // A fast device with cheap positioning prefers smaller blocks
        // than the optimum-fill point… still never below one that the
        // sweep's wall model justifies.
        let fast = DiskTimingModel { position_us: 1.0, bandwidth_bytes_per_us: 1000.0 };
        let pf = plan(&costs, 16, 4, &fast);
        assert!(pf.block_bytes <= p.block_bytes);
    }

    #[test]
    fn plan_serialises_for_artifacts() {
        let p = Plan {
            block_bytes: 32768,
            pipeline_depth: 4,
            prefetch_blocks: 16,
            predicted_ops: 1010.0,
        };
        let j = p.to_json();
        assert_eq!(j.get("block_bytes").unwrap().as_u64(), Some(32768));
        assert_eq!(j.get("pipeline_depth").unwrap().as_u64(), Some(4));
        let back = cgmio_obs::json::parse(&j.render()).unwrap();
        assert_eq!(back.get("prefetch_blocks").unwrap().as_u64(), Some(16));
    }

    #[test]
    fn action_names_are_stable() {
        assert_eq!(TuneAction::Deepen.name(), "deepen");
        assert_eq!(TuneAction::BackOff.name(), "back_off");
        assert_eq!(TuneAction::Hold.name(), "hold");
    }
}
