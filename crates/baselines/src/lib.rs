//! # cgmio-baselines — classical PDM algorithms for comparison
//!
//! The paper's Figure 5 compares its simulated EM-CGM algorithms against
//! the classical single-machine external-memory algorithms; its Figure 3
//! compares against a CGM program left to the operating system's virtual
//! memory. This crate implements those baselines:
//!
//! * [`external_merge_sort`] — the textbook `Θ((N/DB)·log_{M/B}(N/B))`
//!   multiway merge sort over a [`cgmio_pdm::DiskArray`], with exact
//!   I/O accounting;
//! * [`naive_permutation`] — the direct one-item-at-a-time permutation
//!   (the `Θ(N)` side of the PDM permutation bound);
//! * [`sort_based_permutation`] / [`sort_based_transpose`] — the
//!   sort-reduction side of the bound;
//! * [`paged`] — mergesort over an LRU-paged store standing in for the
//!   "CGM algorithm using virtual memory" baseline of Figure 3.

#![warn(missing_docs)]

pub mod mergesort;
pub mod paged;
pub mod permute;

pub use mergesort::{external_merge_sort, ExternalSortReport};
pub use paged::{paged_merge_sort, PagedSortReport};
pub use permute::{naive_permutation, sort_based_permutation, sort_based_transpose};
