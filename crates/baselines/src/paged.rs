//! The "virtual memory" baseline of the paper's Figure 3: the same
//! sorting work, but performed through an OS-style demand-paged memory
//! instead of explicit blocked I/O. Every page fault is a single-page,
//! single-disk transfer — no blocking, no disk parallelism — which is
//! exactly why this curve leaves the linear regime once the working set
//! exceeds memory.

use cgmio_pdm::paged::{PageStats, PagedStore};
use cgmio_pdm::DiskTimingModel;

/// Outcome of a paged sort.
#[derive(Debug, Clone)]
pub struct PagedSortReport {
    /// Paging counters.
    pub stats: PageStats,
    /// Page size used (bytes).
    pub page_bytes: usize,
}

impl PagedSortReport {
    /// Modelled wall time: each fault/writeback is one single-disk
    /// positioning + one page transfer.
    pub fn io_time_us(&self, model: &DiskTimingModel) -> f64 {
        self.stats.transfers() as f64 * model.op_time_us(self.page_bytes)
    }
}

/// Bottom-up merge sort over a demand-paged array of `u64`s with
/// `frames` resident pages of `page_bytes`. Returns the sorted keys and
/// the paging report.
pub fn paged_merge_sort(
    keys: &[u64],
    page_bytes: usize,
    frames: usize,
) -> (Vec<u64>, PagedSortReport) {
    let n = keys.len();
    let mut store = PagedStore::new(page_bytes, frames);
    // regions: A at 0, B after n items
    let offset = |region: usize, i: usize| (region * n + i) as u64 * 8;
    for (i, &k) in keys.iter().enumerate() {
        store.write(offset(0, i), &k.to_le_bytes());
    }
    // don't charge the input load against the sort: the EM-CGM runs
    // also receive their input pre-distributed
    store.reset_stats();

    let mut width = 1usize;
    let mut cur = 0usize;
    while width < n {
        let (src, dst) = (cur, 1 - cur);
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j, mut o) = (lo, mid, lo);
            while i < mid || j < hi {
                let take_left = if i >= mid {
                    false
                } else if j >= hi {
                    true
                } else {
                    store.read_u64(offset(src, i)) <= store.read_u64(offset(src, j))
                };
                let v = if take_left {
                    let v = store.read_u64(offset(src, i));
                    i += 1;
                    v
                } else {
                    let v = store.read_u64(offset(src, j));
                    j += 1;
                    v
                };
                store.write_u64(offset(dst, o), v);
                o += 1;
            }
            lo = hi;
        }
        cur = 1 - cur;
        width *= 2;
    }
    let out: Vec<u64> = (0..n).map(|i| store.read_u64(offset(cur, i))).collect();
    (out, PagedSortReport { stats: store.stats().clone(), page_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::uniform_u64;

    #[test]
    fn sorts_correctly() {
        for n in [0usize, 1, 2, 100, 1000] {
            let keys = uniform_u64(n, n as u64 + 1);
            let (sorted, _) = paged_merge_sort(&keys, 256, 16);
            let mut want = keys.clone();
            want.sort_unstable();
            assert_eq!(sorted, want, "n = {n}");
        }
    }

    #[test]
    fn no_faults_when_everything_fits() {
        let keys = uniform_u64(128, 1);
        // 2 regions * 128 u64 = 2048 bytes = 8 pages of 256
        let (_, rep) = paged_merge_sort(&keys, 256, 64);
        assert_eq!(rep.stats.writebacks, 0);
        // only cold faults for the working set
        assert!(rep.stats.faults <= 16, "faults = {}", rep.stats.faults);
    }

    #[test]
    fn thrashing_when_memory_is_tight() {
        let keys = uniform_u64(4096, 2);
        let (_, small) = paged_merge_sort(&keys, 256, 8);
        let (_, large) = paged_merge_sort(&keys, 256, 1024);
        assert!(
            small.stats.transfers() > 10 * large.stats.transfers().max(1),
            "small = {} large = {}",
            small.stats.transfers(),
            large.stats.transfers()
        );
    }

    #[test]
    fn io_time_reflects_page_size() {
        let keys = uniform_u64(1024, 3);
        let (_, rep) = paged_merge_sort(&keys, 256, 8);
        let m = DiskTimingModel::nineties_disk();
        assert!(rep.io_time_us(&m) > 0.0);
    }
}
