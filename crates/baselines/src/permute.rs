//! PDM permutation and transpose baselines.
//!
//! The PDM permutation bound is
//! `Θ(min(N/D, (N/DB)·log_{M/B}(N/B)))`: either move each item
//! individually ([`naive_permutation`]) or sort by destination
//! ([`sort_based_permutation`]). Matrix transpose reduces to the same
//! sort ([`sort_based_transpose`]).

use cgmio_pdm::{DiskArray, DiskGeometry, IoStats, Item, Layout, SpanDecoder, TrackAddr};

use crate::mergesort::external_merge_sort;

/// Permute by writing each item directly into its destination block:
/// a read-modify-write per item (with a one-block cache for consecutive
/// hits) — the `Θ(N/D)`-ish side of the PDM bound, dreadful for random
/// permutations. Returns the permuted vector and the I/O counters.
pub fn naive_permutation(geom: DiskGeometry, values: &[u64], perm: &[u64]) -> (Vec<u64>, IoStats) {
    assert_eq!(values.len(), perm.len());
    let mut disks = DiskArray::new(geom);
    let per = (geom.block_bytes / 8).max(1);
    let layout = Layout { num_disks: geom.num_disks, base_track: 0 };

    // one-block write cache
    let mut cached_block: Option<(u64, Vec<u64>)> = None;
    let flush = |disks: &mut DiskArray, cached: &mut Option<(u64, Vec<u64>)>| {
        if let Some((b, buf)) = cached.take() {
            let mut block = disks.pool().checkout(buf.len() * 8);
            u64::encode_into(&buf, &mut block).expect("block sized to the buffer");
            disks.write_gather(&[(layout.addr(b), &block[..])]).expect("flush");
        }
    };
    for (i, &dst) in perm.iter().enumerate() {
        let b = dst / per as u64;
        let off = (dst % per as u64) as usize;
        match &mut cached_block {
            Some((cb, buf)) if *cb == b => buf[off] = values[i],
            _ => {
                flush(&mut disks, &mut cached_block);
                let mut buf: Vec<u64> = Vec::with_capacity(per);
                disks
                    .read_gather_with(&[layout.addr(b)], &mut |_, block| {
                        buf.extend(block[..per * 8].chunks_exact(8).map(u64::read_from));
                    })
                    .expect("read");
                buf[off] = values[i];
                cached_block = Some((b, buf));
            }
        }
    }
    flush(&mut disks, &mut cached_block);

    // read the result back (counted: output must land in readable form)
    let nblocks = values.len().div_ceil(per);
    let addrs: Vec<TrackAddr> = (0..nblocks as u64).map(|q| layout.addr(q)).collect();
    let mut dec = SpanDecoder::new(values.len());
    disks.read_gather_with(&addrs, &mut |_, b| dec.feed(b)).expect("readout");
    (dec.finish().expect("readout truncated"), disks.stats().clone())
}

/// Permute by external-sorting `(destination, value)` pairs — the
/// `Θ((N/DB)·log_{M/B}(N/B))` side of the bound.
pub fn sort_based_permutation(
    geom: DiskGeometry,
    mem_items: usize,
    values: &[u64],
    perm: &[u64],
) -> (Vec<u64>, IoStats) {
    let pairs: Vec<(u64, u64)> = perm.iter().zip(values).map(|(&d, &v)| (d, v)).collect();
    let (sorted, rep) = external_merge_sort(geom, mem_items, &pairs);
    (sorted.into_iter().map(|(_, v)| v).collect(), rep.io)
}

/// Transpose a row-major `k × ℓ` matrix by sorting on destination
/// position.
pub fn sort_based_transpose(
    geom: DiskGeometry,
    mem_items: usize,
    m: &[u64],
    k: usize,
    l: usize,
) -> (Vec<u64>, IoStats) {
    assert_eq!(m.len(), k * l);
    let perm: Vec<u64> = (0..m.len() as u64)
        .map(|g| {
            let (r, c) = (g / l as u64, g % l as u64);
            c * k as u64 + r
        })
        .collect();
    sort_based_permutation(geom, mem_items, m, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{random_permutation, uniform_u64};

    fn check_perm(values: &[u64], perm: &[u64], got: &[u64]) {
        let mut want = vec![0u64; values.len()];
        for (i, &p) in perm.iter().enumerate() {
            want[p as usize] = values[i];
        }
        assert_eq!(got, want);
    }

    #[test]
    fn naive_permutation_is_correct_but_io_heavy() {
        let n = 512;
        let g = DiskGeometry::new(2, 64); // 8 items per block
        let values = uniform_u64(n, 1);
        let perm = random_permutation(n, 2);
        let (got, io) = naive_permutation(g, &values, &perm);
        check_perm(&values, &perm, &got);
        // random destinations: nearly one op per item (vs N/(DB) blocked)
        assert!(io.total_ops() as usize > n / 2, "ops = {}", io.total_ops());
    }

    #[test]
    fn naive_permutation_identity_is_cheap() {
        let n = 512;
        let g = DiskGeometry::new(2, 64);
        let values = uniform_u64(n, 3);
        let ident: Vec<u64> = (0..n as u64).collect();
        let (got, io) = naive_permutation(g, &values, &ident);
        assert_eq!(got, values);
        // sequential destinations hit the block cache
        assert!((io.total_ops() as usize) < n / 2);
    }

    #[test]
    fn sort_based_permutation_correct() {
        let n = 2000;
        let g = DiskGeometry::new(2, 64);
        let values = uniform_u64(n, 5);
        let perm = random_permutation(n, 6);
        let (got, io) = sort_based_permutation(g, 128, &values, &perm);
        check_perm(&values, &perm, &got);
        assert!(io.total_ops() > 0);
    }

    #[test]
    fn transpose_matches_reference() {
        let (k, l) = (24, 17);
        let g = DiskGeometry::new(2, 64);
        let m = uniform_u64(k * l, 7);
        let (got, _) = sort_based_transpose(g, 64, &m, k, l);
        let mut want = vec![0u64; k * l];
        for r in 0..k {
            for c in 0..l {
                want[c * k + r] = m[r * l + c];
            }
        }
        assert_eq!(got, want);
    }
}
