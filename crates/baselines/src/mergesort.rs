//! External multiway merge sort on the Parallel Disk Model — the
//! classical `Θ((N/DB)·log_{M/B}(N/B))` algorithm the paper's Group A
//! rows are compared against.
//!
//! Run formation reads memory-sized chunks with fully parallel striped
//! I/O; each merge pass merges up to `M/B − 1` runs with one block
//! buffer per run, batching buffer refills into parallel operations
//! whenever the needed blocks fall on distinct disks.

use cgmio_pdm::{DiskArray, DiskGeometry, IoStats, Item, Layout, SpanDecoder, TrackAddr};

/// Outcome of an external sort.
#[derive(Debug, Clone)]
pub struct ExternalSortReport {
    /// Exact I/O counters.
    pub io: IoStats,
    /// Number of merge passes performed (0 when one run sufficed).
    pub merge_passes: usize,
    /// Number of initial runs.
    pub initial_runs: usize,
    /// The predicted pass count `⌈log_{M/B}(N/M)⌉` for reference.
    pub predicted_passes: usize,
}

fn items_per_block<K: Item>(geom: DiskGeometry) -> usize {
    (geom.block_bytes / K::SIZE).max(1)
}

/// Write `items` as consecutive blocks starting at `base_track`,
/// fully parallel.
fn write_stream<K: Item>(
    disks: &mut DiskArray,
    base_track: u64,
    start_block: u64,
    items: &[K],
) -> u64 {
    let geom = disks.geometry();
    let per = items_per_block::<K>(geom);
    let layout = Layout { num_disks: geom.num_disks, base_track };
    let nblocks = items.len().div_ceil(per);
    // Stage the whole stream in one pooled buffer (each block's chunk at
    // a block-aligned offset) and submit a single gather write.
    let mut staging = disks.pool().checkout(nblocks * geom.block_bytes);
    for (q, chunk) in items.chunks(per).enumerate() {
        let off = q * geom.block_bytes;
        K::encode_into(chunk, &mut staging[off..off + chunk.len() * K::SIZE])
            .expect("staging sized to the stream");
    }
    let writes: Vec<(TrackAddr, &[u8])> = items
        .chunks(per)
        .enumerate()
        .map(|(q, chunk)| {
            let off = q * geom.block_bytes;
            (layout.addr(start_block + q as u64), &staging[off..off + chunk.len() * K::SIZE])
        })
        .collect();
    disks.write_gather(&writes).expect("baseline write");
    nblocks as u64
}

/// Read `n_items` from consecutive blocks at `base_track`/`start_block`.
fn read_stream<K: Item>(
    disks: &mut DiskArray,
    base_track: u64,
    start_block: u64,
    n_items: usize,
) -> Vec<K> {
    let geom = disks.geometry();
    let per = items_per_block::<K>(geom);
    let layout = Layout { num_disks: geom.num_disks, base_track };
    let nblocks = n_items.div_ceil(per);
    let addrs: Vec<TrackAddr> = (0..nblocks as u64).map(|q| layout.addr(start_block + q)).collect();
    // Decode straight from the storage's block views — no reassembly copy.
    let mut dec = SpanDecoder::new(n_items);
    disks.read_gather_with(&addrs, &mut |_, b| dec.feed(b)).expect("baseline read");
    dec.finish().expect("baseline stream truncated")
}

/// Sort `input` externally with memory for `mem_items` items. Returns
/// the sorted data and the I/O report; the disks end up holding the
/// sorted stream (region A or B depending on pass parity).
pub fn external_merge_sort<K: Item + Ord>(
    geom: DiskGeometry,
    mem_items: usize,
    input: &[K],
) -> (Vec<K>, ExternalSortReport) {
    assert!(mem_items >= 2 * items_per_block::<K>(geom), "memory must hold at least two blocks");
    if input.is_empty() {
        return (
            Vec::new(),
            ExternalSortReport {
                io: IoStats::new(geom.num_disks),
                merge_passes: 0,
                initial_runs: 0,
                predicted_passes: 0,
            },
        );
    }
    let mut disks = DiskArray::new(geom);
    let per = items_per_block::<K>(geom);
    let n = input.len();
    let total_blocks = (n.div_ceil(per) as u64).max(1);
    // Two ping-pong regions, far enough apart.
    let region = |which: usize| which as u64 * (total_blocks.div_ceil(geom.num_disks as u64) + 2);

    // Run formation.
    let mut runs: Vec<(u64, usize)> = Vec::new(); // (start block, items)
    {
        let mut start_block = 0u64;
        for chunk in input.chunks(mem_items.max(1)) {
            let mut buf = chunk.to_vec();
            buf.sort_unstable();
            let blocks = write_stream(&mut disks, region(0), start_block, &buf);
            runs.push((start_block, buf.len()));
            start_block += blocks;
        }
    }
    let initial_runs = runs.len();

    // Merge passes.
    let fan_in = (mem_items / per).saturating_sub(1).max(2);
    let mut pass = 0usize;
    let mut cur_region = 0usize;
    while runs.len() > 1 {
        let mut next_runs: Vec<(u64, usize)> = Vec::new();
        let mut out_block = 0u64;
        for group in runs.chunks(fan_in) {
            let (blocks_used, items) = merge_group::<K>(
                &mut disks,
                region(cur_region),
                region(1 - cur_region),
                out_block,
                group,
            );
            next_runs.push((out_block, items));
            out_block += blocks_used;
        }
        runs = next_runs;
        cur_region = 1 - cur_region;
        pass += 1;
    }

    let (start, items) = runs[0];
    let sorted = if items == 0 {
        Vec::new()
    } else {
        read_stream::<K>(&mut disks, region(cur_region), start, items)
    };
    // exclude the final verification read from the algorithm cost? No —
    // the paper's sorting cost includes writing/reading the output once;
    // we keep all counted operations.
    let mb = mem_items / per;
    let nb = n.div_ceil(per).max(1);
    let predicted = if mb <= 1 || nb <= mem_items / per {
        initial_runs.max(1).ilog2() as usize
    } else {
        (initial_runs as f64).log((mb - 1).max(2) as f64).ceil() as usize
    };
    let report = ExternalSortReport {
        io: disks.stats().clone(),
        merge_passes: pass,
        initial_runs,
        predicted_passes: predicted.max(usize::from(initial_runs > 1)),
    };
    (sorted, report)
}

/// Merge one group of runs from `src_region` into `dst_region` at
/// `out_block`; returns (blocks written, items written).
fn merge_group<K: Item + Ord>(
    disks: &mut DiskArray,
    src_region: u64,
    dst_region: u64,
    out_block: u64,
    group: &[(u64, usize)],
) -> (u64, usize) {
    let geom = disks.geometry();
    let per = items_per_block::<K>(geom);
    let src_layout = Layout { num_disks: geom.num_disks, base_track: src_region };
    let dst_layout = Layout { num_disks: geom.num_disks, base_track: dst_region };

    struct RunCursor<K> {
        next_block: u64,
        blocks_left: u64,
        items_left: usize,
        buf: std::collections::VecDeque<K>,
    }
    let mut cursors: Vec<RunCursor<K>> = group
        .iter()
        .map(|&(start, items)| RunCursor {
            next_block: start,
            blocks_left: items.div_ceil(per) as u64,
            items_left: items,
            buf: std::collections::VecDeque::new(),
        })
        .collect();

    let total_items: usize = group.iter().map(|&(_, it)| it).sum();
    let mut out_buf: Vec<K> = Vec::with_capacity(per);
    let mut written_blocks = 0u64;
    let mut produced = 0usize;

    while produced < total_items {
        // Refill every empty, non-exhausted cursor in one batched wave.
        let need: Vec<usize> = cursors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.buf.is_empty() && c.blocks_left > 0)
            .map(|(i, _)| i)
            .collect();
        if !need.is_empty() {
            let addrs: Vec<_> =
                need.iter().map(|&i| src_layout.addr(cursors[i].next_block)).collect();
            // Decode each refilled block straight into its cursor's
            // deque — no per-block vectors.
            disks
                .read_gather_with(&addrs, &mut |j, block| {
                    let c = &mut cursors[need[j]];
                    let take = c.items_left.min(per);
                    c.buf.extend(block[..take * K::SIZE].chunks_exact(K::SIZE).map(K::read_from));
                    c.items_left -= take;
                    c.next_block += 1;
                    c.blocks_left -= 1;
                })
                .expect("merge read");
        }
        // Pop the global minimum among cursor fronts.
        let (best, _) = cursors
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.buf.front().map(|k| (i, *k)))
            .min_by_key(|&(i, k)| (k, i))
            .expect("some cursor must have data");
        let k = cursors[best].buf.pop_front().unwrap();
        out_buf.push(k);
        produced += 1;
        if out_buf.len() == per || produced == total_items {
            let mut block = disks.pool().checkout(out_buf.len() * K::SIZE);
            K::encode_into(&out_buf, &mut block).expect("block sized to the buffer");
            disks
                .write_gather(&[(dst_layout.addr(out_block + written_blocks), &block[..])])
                .expect("merge write");
            written_blocks += 1;
            out_buf.clear();
        }
    }
    (written_blocks, total_items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{few_distinct_u64, reverse_sorted_u64, uniform_u64};

    fn geom(d: usize, bb: usize) -> DiskGeometry {
        DiskGeometry::new(d, bb)
    }

    #[test]
    fn sorts_correctly() {
        for (n, mem, d) in [(1000usize, 64usize, 2usize), (5000, 256, 4), (100, 32, 1)] {
            let keys = uniform_u64(n, n as u64);
            let (sorted, rep) = external_merge_sort(geom(d, 64), mem, &keys);
            let mut want = keys.clone();
            want.sort_unstable();
            assert_eq!(sorted, want, "n={n} mem={mem}");
            assert!(rep.io.total_ops() > 0);
        }
    }

    #[test]
    fn adversarial_inputs() {
        let g = geom(2, 64);
        for keys in [reverse_sorted_u64(777), few_distinct_u64(500, 2, 1), vec![], vec![42]] {
            let (sorted, _) = external_merge_sort(g, 64, &keys);
            let mut want = keys.clone();
            want.sort_unstable();
            assert_eq!(sorted, want);
        }
    }

    #[test]
    fn io_grows_with_passes() {
        // Small memory forces more passes and therefore more I/O per item.
        let keys = uniform_u64(4096, 7);
        let (_, small_mem) = external_merge_sort(geom(2, 64), 32, &keys);
        let (_, big_mem) = external_merge_sort(geom(2, 64), 2048, &keys);
        assert!(small_mem.merge_passes > big_mem.merge_passes);
        assert!(small_mem.io.total_ops() > big_mem.io.total_ops());
    }

    #[test]
    fn run_formation_is_fully_parallel() {
        let keys = uniform_u64(1024, 3);
        let (_, rep) = external_merge_sort(geom(4, 64), 1024, &keys);
        // single run: one striped write + final read; everything full ops
        assert_eq!(rep.merge_passes, 0);
        assert!(rep.io.parallel_efficiency() > 0.9, "eff = {}", rep.io.parallel_efficiency());
    }

    #[test]
    fn pass_count_matches_theory_shape() {
        // N/M runs merged with fan-in M/B-1: passes ≈ log_{M/B}(N/M).
        let keys = uniform_u64(8192, 9);
        let (_, rep) = external_merge_sort(geom(1, 64), 128, &keys); // per=8, fan_in=15
        assert_eq!(rep.initial_runs, 64);
        assert_eq!(rep.merge_passes, 2); // 64 -> 5 -> 1
    }
}
