//! Superstep-granular checkpoint manifests for the EM runners.
//!
//! The insight that makes checkpointing nearly free: at every compound
//! superstep barrier, the contexts and the next round's message matrix
//! are *already on disk* — the superstep loop is an external-memory
//! algorithm, so its entire working set lives in the disk arrays. The
//! only state living in memory is metadata: the superstep index, the
//! per-slot length tables (contexts are variable-length inside fixed
//! slots), and the accounting counters that make a resumed run's final
//! report *exactly* equal to an uninterrupted one.
//!
//! A [`CheckpointManifest`] captures that metadata. Resuming
//! ([`crate::SeqEmRunner::resume_from`] /
//! [`crate::ParEmRunner::resume_from`]) rebuilds the disk arrays from the
//! same [`crate::EmConfig`] (which must point at the persisted backend
//! directory), restores the length tables and counters, and re-enters the
//! loop at `superstep + 1`. Final states and `IoStats` are byte-identical
//! to the uninterrupted run (property-tested in
//! `tests/checkpoint_resume.rs`).
//!
//! The manifest is a versioned plain-text file, written atomically
//! (temp file + rename) *after* the barrier flush, so a crash between
//! superstep `r` and `r+1` always leaves a consistent pair (disks at
//! barrier `r`, manifest at `r` or `r−1` — both resumable).

use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use cgmio_io::TraceHandle;
use cgmio_model::cost::RoundCost;
use cgmio_pdm::{DiskArray, IoStats};

use crate::report::{EmRunReport, IoBreakdown};

/// File-format version tag (first line of every manifest). `v2`
/// switched the per-worker length tables to compact encodings —
/// run-length context lengths and sparse inbox rows — so a manifest
/// stays kilobytes at `v = 10^6` instead of the dense `v × v` table
/// that dominated `v1`. `v1` manifests are rejected (re-checkpoint from
/// a fresh run).
const MAGIC: &str = "cgmio-checkpoint v2";

/// Per-real-processor state captured at a superstep barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerCheckpoint {
    /// Real-processor index (0 for the sequential runner).
    pub worker: usize,
    /// Encoded byte length of each local context slot, run-length
    /// encoded as `(run, length)` pairs covering the slots in order
    /// (the encoding of [`crate::context::ContextStore::lens_rle`]).
    pub ctx_lens: Vec<(u64, u64)>,
    /// Length table of the *next* round's inbox matrix, one row per
    /// local destination of sorted `(src, items)` pairs — non-empty
    /// slots only (the encoding of
    /// [`crate::msgmatrix::MessageMatrix::sparse_lens`]).
    pub inbox_lens: Vec<Vec<(u64, u32)>>,
    /// Cumulative I/O counters of this worker's array at the barrier.
    pub io: IoStats,
    /// Cumulative per-purpose op breakdown at the barrier.
    pub breakdown: IoBreakdown,
    /// Peak internal memory observed so far, bytes.
    pub peak_mem: usize,
}

/// Everything needed to resume a run from a superstep barrier (plus the
/// data already sitting on the disks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// Hash of the layout-relevant [`crate::EmConfig`] fields; resume
    /// refuses a manifest written under a different configuration.
    pub config_hash: u64,
    /// Virtual processors of the run.
    pub v: usize,
    /// Real processors of the run.
    pub p: usize,
    /// Index of the last *completed* superstep; resume re-enters the
    /// loop at `superstep + 1`.
    pub superstep: usize,
    /// Largest encoded context observed so far, bytes (`μ`).
    pub max_ctx_bytes_seen: usize,
    /// Items that crossed a real-processor boundary so far.
    pub cross_items: u64,
    /// Per-round communication costs accumulated so far.
    pub rounds: Vec<RoundCost>,
    /// One entry per real processor, ordered by worker index.
    pub workers: Vec<WorkerCheckpoint>,
}

impl CheckpointManifest {
    /// Canonical manifest path inside a checkpoint directory.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join("checkpoint.manifest")
    }

    /// Serialise to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC}");
        let _ = writeln!(s, "config_hash {}", self.config_hash);
        let _ = writeln!(s, "v {}", self.v);
        let _ = writeln!(s, "p {}", self.p);
        let _ = writeln!(s, "superstep {}", self.superstep);
        let _ = writeln!(s, "max_ctx_bytes_seen {}", self.max_ctx_bytes_seen);
        let _ = writeln!(s, "cross_items {}", self.cross_items);
        let _ = writeln!(s, "rounds {}", self.rounds.len());
        for r in &self.rounds {
            let _ = writeln!(
                s,
                "round {} {} {} {} {}",
                r.max_sent, r.max_received, r.total_items, r.max_message, r.min_message
            );
        }
        let _ = writeln!(s, "workers {}", self.workers.len());
        for w in &self.workers {
            let _ = writeln!(s, "worker {}", w.worker);
            let _ = writeln!(s, "peak_mem {}", w.peak_mem);
            let _ = writeln!(
                s,
                "io {} {} {} {} {}",
                w.io.read_ops, w.io.write_ops, w.io.blocks_read, w.io.blocks_written, w.io.full_ops
            );
            let _ = write!(s, "per_disk_blocks");
            for b in &w.io.per_disk_blocks {
                let _ = write!(s, " {b}");
            }
            let _ = writeln!(s);
            let _ = writeln!(
                s,
                "breakdown {} {} {} {}",
                w.breakdown.setup_ops,
                w.breakdown.ctx_ops,
                w.breakdown.msg_ops,
                w.breakdown.readout_ops
            );
            let _ = write!(s, "ctx_lens_rle");
            for (run, len) in &w.ctx_lens {
                let _ = write!(s, " {run} {len}");
            }
            let _ = writeln!(s);
            let _ = writeln!(s, "inbox_rows {}", w.inbox_lens.len());
            for row in &w.inbox_lens {
                let _ = write!(s, "row");
                for (src, len) in row {
                    let _ = write!(s, " {src} {len}");
                }
                let _ = writeln!(s);
            }
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parse the text format back (inverse of [`Self::to_text`]).
    pub fn from_text(text: &str) -> io::Result<Self> {
        let mut lines = text.lines();
        let bad =
            |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {msg}"));
        if lines.next() != Some(MAGIC) {
            return Err(bad("missing or unsupported version header"));
        }
        // Each metadata line is "key value..."; read them in fixed order.
        let mut field = |key: &str| -> io::Result<Vec<u64>> {
            let line = lines.next().ok_or_else(|| bad("truncated"))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some(key) {
                return Err(bad(&format!("expected field `{key}` in line `{line}`")));
            }
            parts
                .map(|x| x.parse::<u64>().map_err(|_| bad(&format!("bad number in `{line}`"))))
                .collect()
        };
        let one = |vals: Vec<u64>, key: &str| -> io::Result<u64> {
            if vals.len() == 1 {
                Ok(vals[0])
            } else {
                Err(bad(&format!("field `{key}` needs exactly one value")))
            }
        };
        let config_hash = one(field("config_hash")?, "config_hash")?;
        let v = one(field("v")?, "v")? as usize;
        let p = one(field("p")?, "p")? as usize;
        let superstep = one(field("superstep")?, "superstep")? as usize;
        let max_ctx_bytes_seen = one(field("max_ctx_bytes_seen")?, "max_ctx_bytes_seen")? as usize;
        let cross_items = one(field("cross_items")?, "cross_items")?;
        let n_rounds = one(field("rounds")?, "rounds")? as usize;
        let mut rounds = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            let vals = field("round")?;
            if vals.len() != 5 {
                return Err(bad("round needs 5 values"));
            }
            rounds.push(RoundCost {
                max_sent: vals[0] as usize,
                max_received: vals[1] as usize,
                total_items: vals[2] as usize,
                max_message: vals[3] as usize,
                min_message: vals[4] as usize,
            });
        }
        let n_workers = one(field("workers")?, "workers")? as usize;
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let worker = one(field("worker")?, "worker")? as usize;
            let peak_mem = one(field("peak_mem")?, "peak_mem")? as usize;
            let io_vals = field("io")?;
            if io_vals.len() != 5 {
                return Err(bad("io needs 5 values"));
            }
            let per_disk_blocks = field("per_disk_blocks")?;
            let io = IoStats {
                read_ops: io_vals[0],
                write_ops: io_vals[1],
                blocks_read: io_vals[2],
                blocks_written: io_vals[3],
                full_ops: io_vals[4],
                per_disk_blocks,
            };
            let bd = field("breakdown")?;
            if bd.len() != 4 {
                return Err(bad("breakdown needs 4 values"));
            }
            let breakdown = IoBreakdown {
                setup_ops: bd[0],
                ctx_ops: bd[1],
                msg_ops: bd[2],
                readout_ops: bd[3],
            };
            let pairs = |vals: Vec<u64>, key: &str| -> io::Result<Vec<(u64, u64)>> {
                if !vals.len().is_multiple_of(2) {
                    return Err(bad(&format!("field `{key}` needs an even pair count")));
                }
                Ok(vals.chunks_exact(2).map(|c| (c[0], c[1])).collect())
            };
            let ctx_lens = pairs(field("ctx_lens_rle")?, "ctx_lens_rle")?;
            let n_rows = one(field("inbox_rows")?, "inbox_rows")? as usize;
            let mut inbox_lens = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                inbox_lens.push(
                    pairs(field("row")?, "row")?
                        .into_iter()
                        .map(|(src, len)| (src, len as u32))
                        .collect(),
                );
            }
            workers.push(WorkerCheckpoint {
                worker,
                ctx_lens,
                inbox_lens,
                io,
                breakdown,
                peak_mem,
            });
        }
        if lines.next() != Some("end") {
            return Err(bad("missing end marker"));
        }
        Ok(Self { config_hash, v, p, superstep, max_ctx_bytes_seen, cross_items, rounds, workers })
    }

    /// Write the manifest atomically: temp file in the same directory,
    /// fsync, rename over the destination.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Load a manifest previously written with [`Self::save`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        Self::from_text(&text)
    }

    /// Aggregate the per-worker I/O counters (merged across workers).
    pub fn total_io(&self, num_disks: usize) -> IoStats {
        let mut io = IoStats::new(num_disks);
        for w in &self.workers {
            io.merge(&w.io);
        }
        io
    }
}

/// An in-process checkpoint: the manifest plus the live disk arrays it
/// describes. Produced by `run_until` when
/// [`crate::EmConfig::halt_after_superstep`] triggers; consumed by
/// `resume`, which continues on the same arrays (this is what makes
/// kill-and-resume testable on the non-persistent `Mem` backend).
pub struct Checkpoint {
    /// The barrier metadata (also written to
    /// [`crate::EmConfig::checkpoint_dir`] when one is configured).
    pub manifest: CheckpointManifest,
    /// Live disk arrays (and trace handles), one per real processor, in
    /// worker order.
    pub(crate) disks: Vec<(DiskArray, Option<TraceHandle>)>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("manifest", &self.manifest)
            .field("disks", &self.disks.len())
            .finish()
    }
}

/// Result of `run_until`: either the run finished, or it was interrupted
/// at a superstep barrier (per
/// [`crate::EmConfig::halt_after_superstep`]).
#[derive(Debug)]
pub enum RunOutcome<S> {
    /// The program ran to completion.
    Complete {
        /// Final states of the `v` virtual processors.
        finals: Vec<S>,
        /// The full run report.
        report: EmRunReport,
    },
    /// The run halted at a superstep barrier; resume with
    /// `resume` (in-process, any backend) or `resume_from` (from the
    /// manifest, persistent backends).
    Interrupted(Checkpoint),
}

impl<S> RunOutcome<S> {
    /// Unwrap a completed run (panics on `Interrupted`) — convenience
    /// for tests and examples.
    pub fn expect_complete(self) -> (Vec<S>, EmRunReport) {
        match self {
            RunOutcome::Complete { finals, report } => (finals, report),
            RunOutcome::Interrupted(c) => {
                panic!("run was interrupted after superstep {}", c.manifest.superstep)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> CheckpointManifest {
        CheckpointManifest {
            config_hash: 0xDEAD_BEEF,
            v: 6,
            p: 2,
            superstep: 3,
            max_ctx_bytes_seen: 480,
            cross_items: 17,
            rounds: vec![
                RoundCost {
                    max_sent: 4,
                    max_received: 5,
                    total_items: 20,
                    max_message: 3,
                    min_message: 1,
                },
                RoundCost::default(),
            ],
            workers: vec![
                WorkerCheckpoint {
                    worker: 0,
                    ctx_lens: vec![(1, 16), (1, 0), (1, 24)],
                    inbox_lens: vec![vec![(1, 2), (3, 1)], vec![(0, 3), (5, 9)]],
                    io: IoStats {
                        read_ops: 10,
                        write_ops: 11,
                        blocks_read: 20,
                        blocks_written: 22,
                        full_ops: 9,
                        per_disk_blocks: vec![21, 21],
                    },
                    breakdown: IoBreakdown {
                        setup_ops: 2,
                        ctx_ops: 10,
                        msg_ops: 8,
                        readout_ops: 0,
                    },
                    peak_mem: 512,
                },
                WorkerCheckpoint {
                    worker: 1,
                    ctx_lens: vec![(3, 8)],
                    inbox_lens: vec![vec![]],
                    io: IoStats::new(2),
                    breakdown: IoBreakdown::default(),
                    peak_mem: 64,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let m = manifest();
        let parsed = CheckpointManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-ckpt");
        let path = CheckpointManifest::path_in(dir.path());
        let m = manifest();
        m.save(&path).unwrap();
        assert_eq!(CheckpointManifest::load(&path).unwrap(), m);
        // Overwrite is atomic and idempotent.
        m.save(&path).unwrap();
        assert_eq!(CheckpointManifest::load(&path).unwrap(), m);
    }

    #[test]
    fn corrupt_manifests_are_rejected() {
        assert!(CheckpointManifest::from_text("").is_err());
        assert!(CheckpointManifest::from_text("not a manifest\n").is_err());
        let text = manifest().to_text();
        // Drop the end marker.
        let truncated = text.replace("\nend\n", "\n");
        assert!(CheckpointManifest::from_text(&truncated).is_err());
        // Corrupt a number.
        let garbled = text.replace("superstep 3", "superstep x");
        assert!(CheckpointManifest::from_text(&garbled).is_err());
        // v1 manifests (dense tables) are not resumable under v2.
        let v1 = text.replace("cgmio-checkpoint v2", "cgmio-checkpoint v1");
        assert!(CheckpointManifest::from_text(&v1).is_err());
        // RLE/sparse fields must hold whole pairs.
        let odd = text.replace("ctx_lens_rle 1 16 1 0 1 24", "ctx_lens_rle 1 16 1");
        assert!(CheckpointManifest::from_text(&odd).is_err());
    }

    #[test]
    fn total_io_merges_workers() {
        let m = manifest();
        let io = m.total_io(2);
        assert_eq!(io.read_ops, 10);
        assert_eq!(io.per_disk_blocks, vec![21, 21]);
    }
}
