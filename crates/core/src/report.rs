//! Run reports: the measured quantities the paper's theorems and
//! experiments are stated in.

use std::time::Duration;

use cgmio_io::TraceEvent;
use cgmio_model::CommCosts;
use cgmio_pdm::{DiskGeometry, DiskTimingModel, FaultCounts, IoStats};

/// Parallel-I/O operation counts split by purpose.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoBreakdown {
    /// Operations spent loading the initial contexts onto the disks
    /// (input distribution — not charged to the algorithm, reported
    /// separately like the paper's input assumption).
    pub setup_ops: u64,
    /// Context swap operations (steps (a)/(e)).
    pub ctx_ops: u64,
    /// Message matrix operations (steps (b)/(d)).
    pub msg_ops: u64,
    /// Operations to read the final contexts back.
    pub readout_ops: u64,
}

impl IoBreakdown {
    /// Operations charged to the algorithm proper (excluding input
    /// distribution and final readout).
    pub fn algorithm_ops(&self) -> u64 {
        self.ctx_ops + self.msg_ops
    }
}

/// Full report of an EM-CGM run.
#[derive(Debug, Clone)]
pub struct EmRunReport {
    /// h-relation accounting (identical in shape to the in-memory
    /// runners').
    pub costs: CommCosts,
    /// Aggregated disk counters over all real processors.
    pub io: IoStats,
    /// Operation counts by purpose (aggregated).
    pub breakdown: IoBreakdown,
    /// Disk geometry per real processor.
    pub geometry: DiskGeometry,
    /// Real processors used.
    pub p: usize,
    /// Virtual processors simulated.
    pub v: usize,
    /// Peak internal memory used to simulate any single virtual
    /// processor: context + inbox + outbox bytes.
    pub peak_mem_bytes: usize,
    /// Items that crossed a real-processor boundary (0 for Algorithm 2).
    pub cross_thread_items: u64,
    /// Wall-clock time of the superstep loop.
    pub wall: Duration,
    /// Physical I/O event trace, when the run used a
    /// `BackendSpec::Concurrent` backend with `opts.trace` set (empty
    /// otherwise). For `p > 1` the traces of all real processors are
    /// concatenated; `TraceEvent::proc` tells them apart.
    pub io_trace: Vec<TraceEvent>,
    /// Faults injected during this run, aggregated over all real
    /// processors' injectors — present iff `EmConfig::fault` was set.
    /// `None` also for the portion of a run executed before an
    /// in-process resume (the handles do not travel with checkpoints).
    pub faults: Option<FaultCounts>,
    /// Transient-fault retries performed by the storage stack during
    /// this run (drive workers and `RetryStorage` combined). Recovery
    /// traffic only — never part of [`Self::io`].
    pub retries: u64,
    /// Deferred write-behind errors the concurrent engine discarded
    /// because its bounded retained-error list was already full. The
    /// run still fails with the first retained error; a non-zero count
    /// here means the full failure set was wider than what the error
    /// message enumerates (each drop also leaves a `write_error_dropped`
    /// event in [`Self::io_trace`]). Always zero for sync backends.
    pub deferred_write_errors_dropped: u64,
}

impl EmRunReport {
    /// Per-real-processor parallel I/O count — the paper's I/O
    /// complexity measure (`t_io / G`). Operations are aggregated over
    /// real processors and divided by `p`, since the `p` arrays operate
    /// concurrently.
    pub fn io_ops_per_proc(&self) -> f64 {
        self.breakdown.algorithm_ops() as f64 / self.p as f64
    }

    /// Modelled I/O wall-time in microseconds for a given disk timing
    /// model (`G` times the op count, with the `p` processors' disk
    /// arrays operating concurrently).
    pub fn io_time_us(&self, model: &DiskTimingModel) -> f64 {
        self.io_ops_per_proc() * model.op_time_us(self.geometry.block_bytes)
    }

    /// The paper's headline prediction for one round of simulated
    /// h-relation: `O(N/(pDB))` parallel I/Os. Returns the measured
    /// ratio `io_ops_per_proc / (total_items·item_bytes/(p·D·B))` — a
    /// constant (independent of N, D, B, p) when the simulation achieves
    /// its bound.
    pub fn ops_vs_linear_bound(&self, total_items: u64, item_bytes: usize) -> f64 {
        let linear = (total_items as f64 * item_bytes as f64)
            / (self.p as f64 * self.geometry.num_disks as f64 * self.geometry.block_bytes as f64);
        if linear == 0.0 {
            f64::INFINITY
        } else {
            self.io_ops_per_proc() / linear
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EmRunReport {
        EmRunReport {
            costs: CommCosts::default(),
            io: IoStats::new(2),
            breakdown: IoBreakdown { setup_ops: 10, ctx_ops: 30, msg_ops: 50, readout_ops: 5 },
            geometry: DiskGeometry::new(2, 100),
            p: 2,
            v: 8,
            peak_mem_bytes: 1234,
            cross_thread_items: 0,
            wall: Duration::ZERO,
            io_trace: Vec::new(),
            faults: None,
            retries: 0,
            deferred_write_errors_dropped: 0,
        }
    }

    #[test]
    fn algorithm_ops_excludes_setup_and_readout() {
        let r = report();
        assert_eq!(r.breakdown.algorithm_ops(), 80);
        assert_eq!(r.io_ops_per_proc(), 40.0);
    }

    #[test]
    fn linear_bound_ratio() {
        let r = report();
        // N = 1000 items of 8 bytes: linear = 8000/(2*2*100) = 20 ops
        let ratio = r.ops_vs_linear_bound(1000, 8);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn io_time_uses_model() {
        let r = report();
        let m = DiskTimingModel { position_us: 0.0, bandwidth_bytes_per_us: 100.0 };
        assert!((r.io_time_us(&m) - 40.0 * 1.0).abs() < 1e-9);
    }
}
