//! Context swapping — steps (a) and (e) of Algorithm 2.
//!
//! The contexts of the virtual processors are stored in fixed-size slots
//! in one *consecutive-format* stream: block `q` of the stream lives on
//! disk `q mod D`, so reading or writing any context (a contiguous block
//! range) is a sequence of fully parallel I/O operations. This is the
//! paper's deterministic context distribution: "we split the context
//! `V_j` into blocks of size `B` and store the `i`-th block of `V_j` on
//! disk `(i + j·(μ/B)) mod D`".

use cgmio_pdm::{CodecError, DiskArray, IoError, IoErrorKind, Layout, TrackAddr};

use crate::EmError;

/// Fixed-slot context store over one disk array.
pub struct ContextStore {
    layout: Layout,
    slot_blocks: u64,
    block_bytes: usize,
    cap_bytes: usize,
    lens: Vec<usize>,
}

impl ContextStore {
    /// A store for `count` contexts of up to `cap_bytes` bytes each,
    /// placed at `base_track` of an array with `num_disks` drives.
    pub fn new(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        count: usize,
        cap_bytes: usize,
    ) -> Self {
        let slot_blocks = (cap_bytes as u64).div_ceil(block_bytes as u64).max(1);
        Self {
            layout: Layout { num_disks, base_track },
            slot_blocks,
            block_bytes,
            cap_bytes,
            lens: vec![0; count],
        }
    }

    /// Tracks this store occupies per drive.
    pub fn total_tracks(&self) -> u64 {
        self.layout.tracks_for(self.lens.len() as u64 * self.slot_blocks) + 1
    }

    /// Current encoded length of context `slot` (0 when never written).
    pub fn len(&self, slot: usize) -> usize {
        self.lens[slot]
    }

    /// True if no context was ever written.
    pub fn is_empty(&self) -> bool {
        self.lens.iter().all(|&l| l == 0)
    }

    /// The full per-slot length table (for checkpoint manifests).
    pub fn lens(&self) -> &[usize] {
        &self.lens
    }

    /// Restore the per-slot length table from a checkpoint manifest.
    /// The on-disk slot contents must match (they do when the array was
    /// flushed at the barrier the manifest describes).
    pub fn set_lens(&mut self, lens: Vec<usize>) -> Result<(), EmError> {
        if lens.len() != self.lens.len() {
            return Err(EmError::BadConfig(format!(
                "checkpoint has {} context slots, store has {}",
                lens.len(),
                self.lens.len()
            )));
        }
        if let Some(&l) = lens.iter().find(|&&l| l > self.cap_bytes) {
            return Err(EmError::BadConfig(format!(
                "checkpoint context length {l} exceeds slot capacity {}",
                self.cap_bytes
            )));
        }
        self.lens = lens;
        Ok(())
    }

    /// Write context `slot`. Uses `⌈len/B⌉` blocks in consecutive format
    /// (fully parallel via the FIFO scheduler).
    pub fn write(
        &mut self,
        disks: &mut DiskArray,
        slot: usize,
        bytes: &[u8],
    ) -> Result<(), EmError> {
        if bytes.len() > self.cap_bytes {
            return Err(EmError::CtxSlotOverflow {
                pid: slot,
                len: bytes.len(),
                cap: self.cap_bytes,
            });
        }
        let base = slot as u64 * self.slot_blocks;
        // Gather write straight from the caller's encoded buffer — the
        // chunks borrow `bytes`, so no per-block staging copies.
        let writes: Vec<(TrackAddr, &[u8])> = bytes
            .chunks(self.block_bytes)
            .enumerate()
            .map(|(q, chunk)| (self.layout.addr(base + q as u64), chunk))
            .collect();
        disks.write_gather(&writes)?;
        self.lens[slot] = bytes.len();
        Ok(())
    }

    /// First track address of `slot` (used to anchor error reports).
    pub fn slot_addr(&self, slot: usize) -> TrackAddr {
        self.layout.addr(slot as u64 * self.slot_blocks)
    }

    /// Map a context decode failure to a typed corrupt-I/O error anchored
    /// at the slot's first on-disk block, so callers see *where* the bad
    /// bytes live rather than a panic deep in the decoder.
    pub fn corrupt_error(&self, slot: usize, e: CodecError) -> EmError {
        let a = self.slot_addr(slot);
        EmError::Io(IoError::Fault {
            kind: IoErrorKind::Corrupt,
            disk: a.disk,
            track: a.track,
            detail: format!("context {slot} failed to decode: {e}"),
        })
    }

    /// Track addresses a `read(slot)` would touch right now — used as a
    /// prefetch hint for asynchronous backends (never counted as I/O).
    pub fn read_addrs(&self, slot: usize) -> Vec<cgmio_pdm::TrackAddr> {
        let len = self.lens[slot];
        let nblocks = (len as u64).div_ceil(self.block_bytes as u64);
        let base = slot as u64 * self.slot_blocks;
        (0..nblocks).map(|q| self.layout.addr(base + q)).collect()
    }

    /// Read context `slot` back (exactly the bytes last written).
    pub fn read(&mut self, disks: &mut DiskArray, slot: usize) -> Result<Vec<u8>, EmError> {
        let mut out = Vec::new();
        self.read_into(disks, slot, &mut out)?;
        Ok(out)
    }

    /// Read context `slot` into a reused buffer (cleared first). Blocks
    /// are appended directly from the storage's block views — no
    /// intermediate per-block vectors — and the buffer's capacity is
    /// kept across supersteps, so the steady-state read path allocates
    /// nothing.
    ///
    /// This is [`Self::read_submit`] followed immediately by
    /// [`Self::read_finish`]: the serial path and the pipelined path are
    /// the same code with a different gap between the two halves.
    pub fn read_into(
        &mut self,
        disks: &mut DiskArray,
        slot: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), EmError> {
        let t = self.read_submit(disks, slot)?;
        self.read_finish(disks, t, out)
    }

    /// Begin an asynchronous read of context `slot`: captures the slot's
    /// current addresses and length, submits the gather read (charged to
    /// the cost model now), and returns the ticket to redeem with
    /// [`Self::read_finish`]. The slot must not be rewritten between the
    /// two calls — the pipelined runners guarantee this because a vp's
    /// context is only written by its own step (e), which runs after its
    /// own read completes.
    pub fn read_submit(
        &self,
        disks: &mut DiskArray,
        slot: usize,
    ) -> Result<CtxReadTicket, EmError> {
        let len = self.lens[slot];
        let nblocks = (len as u64).div_ceil(self.block_bytes as u64);
        let base = slot as u64 * self.slot_blocks;
        let addrs: Vec<TrackAddr> = (0..nblocks).map(|q| self.layout.addr(base + q)).collect();
        let ticket = disks.read_gather_submit(&addrs)?;
        Ok(CtxReadTicket { len, addrs, ticket })
    }

    /// Complete a read begun with [`Self::read_submit`], filling `out`
    /// (cleared first) with exactly the bytes last written to the slot.
    /// Charges nothing — the submit already did.
    pub fn read_finish(
        &self,
        disks: &mut DiskArray,
        t: CtxReadTicket,
        out: &mut Vec<u8>,
    ) -> Result<(), EmError> {
        out.clear();
        out.reserve(t.addrs.len() * self.block_bytes);
        disks.read_gather_finish(t.ticket, &t.addrs, &mut |_, b| out.extend_from_slice(b))?;
        out.truncate(t.len);
        Ok(())
    }
}

/// Completion handle for an in-flight context read (see
/// [`ContextStore::read_submit`]). Captures the slot's addresses and
/// encoded length at submit time, so the finish decodes exactly the
/// bytes that were current when the read was issued.
pub struct CtxReadTicket {
    len: usize,
    addrs: Vec<TrackAddr>,
    ticket: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::DiskGeometry;

    #[test]
    fn roundtrip_varied_lengths() {
        let mut disks = DiskArray::new(DiskGeometry::new(3, 16));
        let mut store = ContextStore::new(3, 16, 0, 4, 100);
        let payloads: Vec<Vec<u8>> = vec![vec![1; 100], vec![2; 1], vec![], (0..77).collect()];
        for (i, p) in payloads.iter().enumerate() {
            store.write(&mut disks, i, p).unwrap();
        }
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&store.read(&mut disks, i).unwrap(), p);
        }
    }

    #[test]
    fn rewrite_shrinks_and_grows() {
        let mut disks = DiskArray::new(DiskGeometry::new(2, 8));
        let mut store = ContextStore::new(2, 8, 5, 2, 64);
        store.write(&mut disks, 0, &[7; 60]).unwrap();
        store.write(&mut disks, 0, &[9; 3]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![9; 3]);
        store.write(&mut disks, 0, &[4; 64]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![4; 64]);
    }

    #[test]
    fn overflow_rejected() {
        let mut disks = DiskArray::new(DiskGeometry::new(1, 8));
        let mut store = ContextStore::new(1, 8, 0, 1, 10);
        let e = store.write(&mut disks, 0, &[0; 11]).unwrap_err();
        assert!(matches!(e, EmError::CtxSlotOverflow { pid: 0, len: 11, cap: 10 }));
    }

    #[test]
    fn io_is_fully_parallel() {
        let d = 4;
        let mut disks = DiskArray::new(DiskGeometry::new(d, 8));
        let mut store = ContextStore::new(d, 8, 0, 2, 8 * 8);
        // 8 blocks per context, D = 4 -> 2 ops per write, all full.
        store.write(&mut disks, 0, &[1; 64]).unwrap();
        store.write(&mut disks, 1, &[2; 64]).unwrap();
        assert_eq!(disks.stats().write_ops, 4);
        assert_eq!(disks.stats().full_ops, 4);
        store.read(&mut disks, 1).unwrap();
        assert_eq!(disks.stats().read_ops, 2);
        assert_eq!(disks.stats().full_ops, 6);
    }

    #[test]
    fn slots_do_not_collide() {
        let mut disks = DiskArray::new(DiskGeometry::new(2, 4));
        let mut store = ContextStore::new(2, 4, 0, 3, 12);
        store.write(&mut disks, 0, &[1; 12]).unwrap();
        store.write(&mut disks, 1, &[2; 12]).unwrap();
        store.write(&mut disks, 2, &[3; 12]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![1; 12]);
        assert_eq!(store.read(&mut disks, 1).unwrap(), vec![2; 12]);
        assert_eq!(store.read(&mut disks, 2).unwrap(), vec![3; 12]);
    }
}
