//! Context swapping — steps (a) and (e) of Algorithm 2.
//!
//! The contexts of the virtual processors are stored in fixed-size slots
//! in one *consecutive-format* stream: block `q` of the stream lives on
//! disk `q mod D`, so reading or writing any context (a contiguous block
//! range) is a sequence of fully parallel I/O operations. This is the
//! paper's deterministic context distribution: "we split the context
//! `V_j` into blocks of size `B` and store the `i`-th block of `V_j` on
//! disk `(i + j·(μ/B)) mod D`".
//!
//! # The length table at scale
//!
//! The context *bytes* were always disk-resident; the per-slot length
//! table was not. A resident `Vec<usize>` is 8 MB at `v = 10^6` per
//! worker — small next to the dense message table it used to sit
//! beside, but still linear state the runner holds for the whole run
//! while only ever touching the pipeline window of it. [`CtxPaging`]
//! therefore offers a paged table: lengths live in fixed pages of
//! `page_entries` `u64`s, at most `resident_pages` of which are hot
//! (LRU); evicted dirty pages spill through a **private side
//! [`TrackStorage`]** (one `MemStorage` "drive", one track per page,
//! staged through a [`BlockPool`]) and fault back in on demand. The
//! side store is deliberately *not* the run's [`DiskArray`]: spills are
//! bookkeeping, not simulation I/O, and must never perturb `IoStats` —
//! paged and resident tables are bit-identical in every observable
//! (tested below and in `tests/scale_equivalence.rs`). Spill/reload
//! traffic is observable instead through the `cgmio_ctx_*` metric
//! series (see `docs/OPERATIONS.md`).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};

use cgmio_obs::{Counter, Gauge, Obs};
use cgmio_pdm::{
    BlockPool, CodecError, DiskArray, DiskGeometry, IoError, IoErrorKind, Layout, MemStorage,
    TrackAddr, TrackStorage,
};

use crate::EmError;

/// Residency policy for a [`ContextStore`]'s per-slot length table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtxPaging {
    /// Keep the whole table resident (a `Vec<usize>` — the original
    /// layout; right for small `v`).
    Resident,
    /// Page the table: fixed pages of `page_entries` lengths, at most
    /// `resident_pages` resident, the rest spilled to a private side
    /// track store.
    Paged {
        /// Lengths per page (each page is one side-store track of
        /// `8 * page_entries` bytes).
        page_entries: usize,
        /// Maximum hot pages (LRU). Resident table memory is bounded by
        /// `resident_pages * page_entries * 8` bytes regardless of `v`.
        resident_pages: usize,
    },
}

/// Per-slot length table: resident vector or LRU-paged (see module
/// docs).
enum CtxLens {
    Resident(Vec<usize>),
    Paged(PagedLens),
}

/// The paged table. Interior mutability (`RefCell`) because reads of the
/// store (`len`, `read_submit`) take `&self` but may fault pages; the
/// store is owned by a single worker thread, never shared.
struct PagedLens {
    count: usize,
    page_entries: usize,
    resident_pages: usize,
    inner: RefCell<PagedInner>,
    spills: Counter,
    loads: Counter,
    resident: Gauge,
}

struct PagedInner {
    /// Hot pages: page index → decoded lengths.
    hot: HashMap<usize, Box<[u64]>>,
    /// LRU order of hot pages, least-recent first.
    lru: VecDeque<usize>,
    /// Hot pages modified since their last spill.
    dirty: HashSet<usize>,
    /// Spill target: one "drive", one track per page. Unwritten tracks
    /// read as zeros — exactly the table's initial state.
    side: MemStorage,
    /// Staging buffer pool for page encodes.
    pool: BlockPool,
}

impl PagedLens {
    fn new(count: usize, page_entries: usize, resident_pages: usize) -> Self {
        assert!(
            page_entries >= 1 && resident_pages >= 1,
            "paging needs at least one resident page"
        );
        Self {
            count,
            page_entries,
            resident_pages,
            inner: RefCell::new(PagedInner {
                hot: HashMap::new(),
                lru: VecDeque::new(),
                dirty: HashSet::new(),
                side: MemStorage::new(DiskGeometry::new(1, page_entries * 8)),
                pool: BlockPool::with_max_free(2),
            }),
            spills: Counter::detached(),
            loads: Counter::detached(),
            resident: Gauge::detached(),
        }
    }

    fn decode_page(&self, bytes: &[u8]) -> Box<[u64]> {
        let mut page = vec![0u64; self.page_entries].into_boxed_slice();
        for (i, chunk) in bytes.chunks_exact(8).take(self.page_entries).enumerate() {
            page[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        page
    }

    /// Fault `page` in (evicting the LRU page if over budget) and run
    /// `f` against its entries.
    fn with_page<R>(&self, page: usize, f: impl FnOnce(&mut Box<[u64]>) -> R) -> R {
        let inner = &mut *self.inner.borrow_mut();
        if inner.hot.contains_key(&page) {
            if inner.lru.back() != Some(&page) {
                inner.lru.retain(|&p| p != page);
                inner.lru.push_back(page);
            }
        } else {
            if inner.lru.len() >= self.resident_pages {
                let victim = inner.lru.pop_front().expect("resident_pages >= 1");
                let data = inner.hot.remove(&victim).expect("lru tracks hot");
                if inner.dirty.remove(&victim) {
                    let mut buf = inner.pool.checkout(self.page_entries * 8);
                    for (i, &l) in data.iter().enumerate() {
                        buf[i * 8..i * 8 + 8].copy_from_slice(&l.to_le_bytes());
                    }
                    inner
                        .side
                        .write_track(0, victim as u64, &buf)
                        .expect("private side store never faults");
                    self.spills.inc();
                }
            }
            let bytes =
                inner.side.read_track(0, page as u64).expect("private side store never faults");
            let data = self.decode_page(&bytes);
            inner.hot.insert(page, data);
            inner.lru.push_back(page);
            self.loads.inc();
            self.resident.set(inner.lru.len() as i64);
        }
        f(inner.hot.get_mut(&page).expect("just faulted in"))
    }

    fn get(&self, slot: usize) -> usize {
        let (page, k) = (slot / self.page_entries, slot % self.page_entries);
        self.with_page(page, |p| p[k] as usize)
    }

    fn set(&self, slot: usize, len: usize) {
        let (page, k) = (slot / self.page_entries, slot % self.page_entries);
        self.with_page(page, |p| p[k] = len as u64);
        self.inner.borrow_mut().dirty.insert(page);
    }

    /// Visit every slot in order *without* disturbing the LRU — cold
    /// pages are decoded straight from the side store. Used by the
    /// checkpoint/RLE paths, which scan all `v` slots once.
    fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        let inner = self.inner.borrow();
        let n_pages = self.count.div_ceil(self.page_entries);
        for page in 0..n_pages {
            let cold;
            let data: &[u64] = match inner.hot.get(&page) {
                Some(hot) => hot,
                None => {
                    let bytes = inner
                        .side
                        .read_track(0, page as u64)
                        .expect("private side store never faults");
                    cold = self.decode_page(&bytes);
                    &cold
                }
            };
            let base = page * self.page_entries;
            for (k, &l) in data.iter().enumerate() {
                let slot = base + k;
                if slot >= self.count {
                    break;
                }
                f(slot, l as usize);
            }
        }
    }
}

/// Fixed-slot context store over one disk array.
pub struct ContextStore {
    layout: Layout,
    slot_blocks: u64,
    block_bytes: usize,
    cap_bytes: usize,
    count: usize,
    lens: CtxLens,
}

impl ContextStore {
    /// A store for `count` contexts of up to `cap_bytes` bytes each,
    /// placed at `base_track` of an array with `num_disks` drives, with
    /// a fully resident length table. See [`Self::new_with`] for the
    /// paged variant.
    pub fn new(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        count: usize,
        cap_bytes: usize,
    ) -> Self {
        Self::new_with(num_disks, block_bytes, base_track, count, cap_bytes, &CtxPaging::Resident)
    }

    /// [`Self::new`] with an explicit length-table residency policy.
    /// Both policies are observationally identical (lengths, I/O,
    /// [`Self::lens_rle`]); paging bounds the runner-held table memory
    /// at large `v`.
    pub fn new_with(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        count: usize,
        cap_bytes: usize,
        paging: &CtxPaging,
    ) -> Self {
        let slot_blocks = (cap_bytes as u64).div_ceil(block_bytes as u64).max(1);
        let lens = match *paging {
            CtxPaging::Resident => CtxLens::Resident(vec![0; count]),
            CtxPaging::Paged { page_entries, resident_pages } => {
                CtxLens::Paged(PagedLens::new(count, page_entries, resident_pages))
            }
        };
        Self {
            layout: Layout { num_disks, base_track },
            slot_blocks,
            block_bytes,
            cap_bytes,
            count,
            lens,
        }
    }

    /// Register this store's paging metrics (`cgmio_ctx_page_spills_total`,
    /// `cgmio_ctx_page_loads_total`, `cgmio_ctx_resident_pages`) with an
    /// observability pipeline, labelled by real processor. No-op for a
    /// resident table.
    pub fn attach_obs(&mut self, obs: &Obs, proc: usize) {
        if let CtxLens::Paged(p) = &mut self.lens {
            let labels = [("proc", proc.to_string())];
            p.spills = obs.metrics().counter("cgmio_ctx_page_spills_total", &labels);
            p.loads = obs.metrics().counter("cgmio_ctx_page_loads_total", &labels);
            p.resident = obs.metrics().gauge("cgmio_ctx_resident_pages", &labels);
        }
    }

    /// `(spills, loads)` of the paged length table so far, `None` for a
    /// resident table. The same numbers flow to the `cgmio_ctx_*`
    /// series when an [`Obs`] is attached.
    pub fn paging_stats(&self) -> Option<(u64, u64)> {
        match &self.lens {
            CtxLens::Resident(_) => None,
            CtxLens::Paged(p) => Some((p.spills.get(), p.loads.get())),
        }
    }

    /// Tracks this store occupies per drive.
    pub fn total_tracks(&self) -> u64 {
        self.layout.tracks_for(self.count as u64 * self.slot_blocks) + 1
    }

    /// Current encoded length of context `slot` (0 when never written).
    pub fn len(&self, slot: usize) -> usize {
        match &self.lens {
            CtxLens::Resident(lens) => lens[slot],
            CtxLens::Paged(p) => {
                assert!(slot < self.count, "slot {slot} out of range ({})", self.count);
                p.get(slot)
            }
        }
    }

    fn set_len(&mut self, slot: usize, len: usize) {
        match &mut self.lens {
            CtxLens::Resident(lens) => lens[slot] = len,
            CtxLens::Paged(p) => {
                assert!(slot < self.count, "slot {slot} out of range ({})", self.count);
                p.set(slot, len);
            }
        }
    }

    /// True if no context was ever written.
    pub fn is_empty(&self) -> bool {
        match &self.lens {
            CtxLens::Resident(lens) => lens.iter().all(|&l| l == 0),
            CtxLens::Paged(p) => {
                let mut empty = true;
                p.for_each(|_, l| empty &= l == 0);
                empty
            }
        }
    }

    /// The per-slot length table, run-length encoded as `(run, length)`
    /// pairs covering slots `0..count` in order — the compact form
    /// checkpoint manifests persist. Identical for both residency
    /// policies; a fresh store encodes to a single `(count, 0)` run.
    pub fn lens_rle(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut push = |l: usize| match out.last_mut() {
            Some((run, v)) if *v == l as u64 => *run += 1,
            _ => out.push((1, l as u64)),
        };
        match &self.lens {
            CtxLens::Resident(lens) => lens.iter().for_each(|&l| push(l)),
            CtxLens::Paged(p) => p.for_each(|_, l| push(l)),
        }
        out
    }

    /// Restore the per-slot length table from a checkpoint manifest (the
    /// encoding of [`Self::lens_rle`]). The on-disk slot contents must
    /// match (they do when the array was flushed at the barrier the
    /// manifest describes).
    pub fn set_lens_rle(&mut self, rle: &[(u64, u64)]) -> Result<(), EmError> {
        let total: u64 = rle.iter().map(|&(run, _)| run).sum();
        if total != self.count as u64 || rle.iter().any(|&(run, _)| run == 0) {
            return Err(EmError::BadConfig(format!(
                "checkpoint context table covers {total} slots, store has {}",
                self.count
            )));
        }
        if let Some(&(_, l)) = rle.iter().find(|&&(_, l)| l > self.cap_bytes as u64) {
            return Err(EmError::BadConfig(format!(
                "checkpoint context length {l} exceeds slot capacity {}",
                self.cap_bytes
            )));
        }
        let mut slot = 0usize;
        for &(run, l) in rle {
            for _ in 0..run {
                self.set_len(slot, l as usize);
                slot += 1;
            }
        }
        Ok(())
    }

    /// Write context `slot`. Uses `⌈len/B⌉` blocks in consecutive format
    /// (fully parallel via the FIFO scheduler).
    pub fn write(
        &mut self,
        disks: &mut DiskArray,
        slot: usize,
        bytes: &[u8],
    ) -> Result<(), EmError> {
        if bytes.len() > self.cap_bytes {
            return Err(EmError::CtxSlotOverflow {
                pid: slot,
                len: bytes.len(),
                cap: self.cap_bytes,
            });
        }
        let base = slot as u64 * self.slot_blocks;
        // Gather write straight from the caller's encoded buffer — the
        // chunks borrow `bytes`, so no per-block staging copies.
        let writes: Vec<(TrackAddr, &[u8])> = bytes
            .chunks(self.block_bytes)
            .enumerate()
            .map(|(q, chunk)| (self.layout.addr(base + q as u64), chunk))
            .collect();
        disks.write_gather(&writes)?;
        self.set_len(slot, bytes.len());
        Ok(())
    }

    /// First track address of `slot` (used to anchor error reports).
    pub fn slot_addr(&self, slot: usize) -> TrackAddr {
        self.layout.addr(slot as u64 * self.slot_blocks)
    }

    /// Map a context decode failure to a typed corrupt-I/O error anchored
    /// at the slot's first on-disk block, so callers see *where* the bad
    /// bytes live rather than a panic deep in the decoder.
    pub fn corrupt_error(&self, slot: usize, e: CodecError) -> EmError {
        let a = self.slot_addr(slot);
        EmError::Io(IoError::Fault {
            kind: IoErrorKind::Corrupt,
            disk: a.disk,
            track: a.track,
            detail: format!("context {slot} failed to decode: {e}"),
        })
    }

    /// Track addresses a `read(slot)` would touch right now — used as a
    /// prefetch hint for asynchronous backends (never counted as I/O).
    pub fn read_addrs(&self, slot: usize) -> Vec<cgmio_pdm::TrackAddr> {
        let len = self.len(slot);
        let nblocks = (len as u64).div_ceil(self.block_bytes as u64);
        let base = slot as u64 * self.slot_blocks;
        (0..nblocks).map(|q| self.layout.addr(base + q)).collect()
    }

    /// Read context `slot` back (exactly the bytes last written).
    pub fn read(&mut self, disks: &mut DiskArray, slot: usize) -> Result<Vec<u8>, EmError> {
        let mut out = Vec::new();
        self.read_into(disks, slot, &mut out)?;
        Ok(out)
    }

    /// Read context `slot` into a reused buffer (cleared first). Blocks
    /// are appended directly from the storage's block views — no
    /// intermediate per-block vectors — and the buffer's capacity is
    /// kept across supersteps, so the steady-state read path allocates
    /// nothing.
    ///
    /// This is [`Self::read_submit`] followed immediately by
    /// [`Self::read_finish`]: the serial path and the pipelined path are
    /// the same code with a different gap between the two halves.
    pub fn read_into(
        &mut self,
        disks: &mut DiskArray,
        slot: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), EmError> {
        let t = self.read_submit(disks, slot)?;
        self.read_finish(disks, t, out)
    }

    /// Begin an asynchronous read of context `slot`: captures the slot's
    /// current addresses and length, submits the gather read (charged to
    /// the cost model now), and returns the ticket to redeem with
    /// [`Self::read_finish`]. The slot must not be rewritten between the
    /// two calls — the pipelined runners guarantee this because a vp's
    /// context is only written by its own step (e), which runs after its
    /// own read completes.
    pub fn read_submit(
        &self,
        disks: &mut DiskArray,
        slot: usize,
    ) -> Result<CtxReadTicket, EmError> {
        let len = self.len(slot);
        let nblocks = (len as u64).div_ceil(self.block_bytes as u64);
        let base = slot as u64 * self.slot_blocks;
        let addrs: Vec<TrackAddr> = (0..nblocks).map(|q| self.layout.addr(base + q)).collect();
        let ticket = disks.read_gather_submit(&addrs)?;
        Ok(CtxReadTicket { len, addrs, ticket })
    }

    /// Complete a read begun with [`Self::read_submit`], filling `out`
    /// (cleared first) with exactly the bytes last written to the slot.
    /// Charges nothing — the submit already did.
    pub fn read_finish(
        &self,
        disks: &mut DiskArray,
        t: CtxReadTicket,
        out: &mut Vec<u8>,
    ) -> Result<(), EmError> {
        out.clear();
        out.reserve(t.addrs.len() * self.block_bytes);
        disks.read_gather_finish(t.ticket, &t.addrs, &mut |_, b| out.extend_from_slice(b))?;
        out.truncate(t.len);
        Ok(())
    }
}

/// Completion handle for an in-flight context read (see
/// [`ContextStore::read_submit`]). Captures the slot's addresses and
/// encoded length at submit time, so the finish decodes exactly the
/// bytes that were current when the read was issued.
pub struct CtxReadTicket {
    len: usize,
    addrs: Vec<TrackAddr>,
    ticket: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::DiskGeometry;

    #[test]
    fn roundtrip_varied_lengths() {
        let mut disks = DiskArray::new(DiskGeometry::new(3, 16));
        let mut store = ContextStore::new(3, 16, 0, 4, 100);
        let payloads: Vec<Vec<u8>> = vec![vec![1; 100], vec![2; 1], vec![], (0..77).collect()];
        for (i, p) in payloads.iter().enumerate() {
            store.write(&mut disks, i, p).unwrap();
        }
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&store.read(&mut disks, i).unwrap(), p);
        }
    }

    #[test]
    fn rewrite_shrinks_and_grows() {
        let mut disks = DiskArray::new(DiskGeometry::new(2, 8));
        let mut store = ContextStore::new(2, 8, 5, 2, 64);
        store.write(&mut disks, 0, &[7; 60]).unwrap();
        store.write(&mut disks, 0, &[9; 3]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![9; 3]);
        store.write(&mut disks, 0, &[4; 64]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![4; 64]);
    }

    #[test]
    fn overflow_rejected() {
        let mut disks = DiskArray::new(DiskGeometry::new(1, 8));
        let mut store = ContextStore::new(1, 8, 0, 1, 10);
        let e = store.write(&mut disks, 0, &[0; 11]).unwrap_err();
        assert!(matches!(e, EmError::CtxSlotOverflow { pid: 0, len: 11, cap: 10 }));
    }

    #[test]
    fn io_is_fully_parallel() {
        let d = 4;
        let mut disks = DiskArray::new(DiskGeometry::new(d, 8));
        let mut store = ContextStore::new(d, 8, 0, 2, 8 * 8);
        // 8 blocks per context, D = 4 -> 2 ops per write, all full.
        store.write(&mut disks, 0, &[1; 64]).unwrap();
        store.write(&mut disks, 1, &[2; 64]).unwrap();
        assert_eq!(disks.stats().write_ops, 4);
        assert_eq!(disks.stats().full_ops, 4);
        store.read(&mut disks, 1).unwrap();
        assert_eq!(disks.stats().read_ops, 2);
        assert_eq!(disks.stats().full_ops, 6);
    }

    #[test]
    fn slots_do_not_collide() {
        let mut disks = DiskArray::new(DiskGeometry::new(2, 4));
        let mut store = ContextStore::new(2, 4, 0, 3, 12);
        store.write(&mut disks, 0, &[1; 12]).unwrap();
        store.write(&mut disks, 1, &[2; 12]).unwrap();
        store.write(&mut disks, 2, &[3; 12]).unwrap();
        assert_eq!(store.read(&mut disks, 0).unwrap(), vec![1; 12]);
        assert_eq!(store.read(&mut disks, 1).unwrap(), vec![2; 12]);
        assert_eq!(store.read(&mut disks, 2).unwrap(), vec![3; 12]);
    }

    #[test]
    fn paged_table_matches_resident_exactly() {
        let n = 23;
        let paging = CtxPaging::Paged { page_entries: 4, resident_pages: 2 };
        let run = |p: &CtxPaging| {
            let mut disks = DiskArray::new(DiskGeometry::new(3, 16));
            let mut store = ContextStore::new_with(3, 16, 0, n, 64, p);
            for slot in 0..n {
                store.write(&mut disks, slot, &vec![slot as u8; (7 * slot) % 64]).unwrap();
            }
            // Touch slots in a paging-hostile order.
            let reads: Vec<Vec<u8>> =
                (0..n).rev().map(|slot| store.read(&mut disks, slot).unwrap()).collect();
            (reads, store.lens_rle(), disks.stats().clone())
        };
        let (res_reads, res_rle, res_io) = run(&CtxPaging::Resident);
        let (pag_reads, pag_rle, pag_io) = run(&paging);
        assert_eq!(res_reads, pag_reads);
        assert_eq!(res_rle, pag_rle);
        assert_eq!(res_io, pag_io, "side-store spills must not leak into IoStats");
    }

    #[test]
    fn paged_table_spills_and_reloads() {
        let mut disks = DiskArray::new(DiskGeometry::new(1, 8));
        let paging = CtxPaging::Paged { page_entries: 2, resident_pages: 1 };
        let mut store = ContextStore::new_with(1, 8, 0, 8, 8, &paging);
        for slot in 0..8 {
            store.write(&mut disks, slot, &[slot as u8; 5]).unwrap();
        }
        // 4 pages through a 1-page window: every page was evicted dirty.
        let (spills, loads) = store.paging_stats().unwrap();
        assert!(spills >= 3, "spills = {spills}");
        assert!(loads >= 4, "loads = {loads}");
        for slot in (0..8).rev() {
            assert_eq!(store.len(slot), 5, "length survives spill/reload");
        }
        let (spills2, loads2) = store.paging_stats().unwrap();
        assert!(spills2 > spills && loads2 > loads, "reverse scan faults again");
    }

    #[test]
    fn lens_rle_roundtrip() {
        let mut disks = DiskArray::new(DiskGeometry::new(2, 8));
        let mut store = ContextStore::new(2, 8, 0, 6, 32);
        assert_eq!(store.lens_rle(), vec![(6, 0)], "fresh store is one zero run");
        store.write(&mut disks, 0, &[1; 16]).unwrap();
        store.write(&mut disks, 1, &[1; 16]).unwrap();
        store.write(&mut disks, 4, &[1; 3]).unwrap();
        let rle = store.lens_rle();
        assert_eq!(rle, vec![(2, 16), (2, 0), (1, 3), (1, 0)]);
        let paging = CtxPaging::Paged { page_entries: 2, resident_pages: 1 };
        let mut other = ContextStore::new_with(2, 8, 0, 6, 32, &paging);
        other.set_lens_rle(&rle).unwrap();
        assert_eq!(other.lens_rle(), rle);
        // Wrong slot count and over-capacity lengths are rejected.
        assert!(other.set_lens_rle(&[(5, 0)]).is_err());
        assert!(other.set_lens_rle(&[(6, 999)]).is_err());
    }
}
