//! Shared plumbing for the software-pipelined compound superstep.
//!
//! Both runners drive the same three-stage pipeline per virtual
//! processor: **load** (steps (a)+(b), submitted up to
//! [`crate::EmConfig::pipeline_depth`] vps ahead of the one computing),
//! **compute** (step (c)), and **store** (steps (d)+(e), drained by the
//! backend's write-behind). This module holds the one piece both
//! runners share: submitting a vp's reads with cost-model charging and
//! span attribution identical to the serial demand path, so `IoStats`,
//! the op breakdown, and checkpoint manifests stay bit-identical at
//! every pipeline depth.
//!
//! Why pre-issuing inside a superstep is safe: vp `k`'s context slot is
//! only rewritten by vp `k`'s own step (e), which runs strictly after
//! its step (a) read completes; and the inbox matrix of the current
//! superstep was fully written (and barrier-flushed) last superstep,
//! while this superstep's sends go to the other matrix of the ping-pong
//! pair. Per-drive FIFO submission in the concurrent backend then gives
//! read-after-write coherence for everything older.

use std::collections::VecDeque;

use cgmio_obs::{Obs, Phase};
use cgmio_pdm::{DiskArray, Item};

use crate::context::{ContextStore, CtxReadTicket};
use crate::msgmatrix::{InboxTicket, MessageMatrix};
use crate::report::IoBreakdown;
use crate::EmError;

/// In-flight step (a)+(b) tickets; the front entry belongs to the next
/// vp to compute. Holds at most `pipeline_depth` entries.
pub(crate) type InflightReads = VecDeque<(CtxReadTicket, InboxTicket)>;

/// Submit one vp's step (a) context read and step (b) inbox read.
///
/// `ctx_slot` is the vp's local context slot, `dst` its global pid (the
/// two coincide on the sequential runner; parallel workers address the
/// context store locally and the message matrix globally).
///
/// Charges the cost model *now* — with exactly the increments, phase
/// spans, and breakdown buckets the serial demand path uses — and
/// returns the completion tickets to redeem when that vp is next to
/// compute. Redemption charges nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn submit_vp_reads<M: Item>(
    obs: Option<&Obs>,
    proc: u64,
    round: usize,
    disks: &mut DiskArray,
    ctx_store: &ContextStore,
    mat_cur: &MessageMatrix<M>,
    breakdown: &mut IoBreakdown,
    ctx_slot: usize,
    dst: usize,
) -> Result<(CtxReadTicket, InboxTicket), EmError> {
    let g = obs.map(|o| o.span(proc, round as u64, Phase::CtxLoad));
    let ops0 = disks.stats().total_ops();
    let ctx_t = ctx_store.read_submit(disks, ctx_slot)?;
    breakdown.ctx_ops += disks.stats().total_ops() - ops0;
    drop(g);

    let g = obs.map(|o| o.span(proc, round as u64, Phase::MatrixRead));
    let ops0 = disks.stats().total_ops();
    let inbox_t = mat_cur.read_for_dst_submit(disks, dst)?;
    breakdown.msg_ops += disks.stats().total_ops() - ops0;
    drop(g);
    Ok((ctx_t, inbox_t))
}
