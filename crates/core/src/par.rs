//! Algorithm 3 — *ParCompoundSuperstep*: simulating a `v`-processor CGM
//! on a `p`-processor EM-CGM.
//!
//! Each real processor (an OS thread here) owns its own `D`-disk array
//! and simulates a contiguous block of `v/p` virtual processors. Per
//! compound superstep it:
//!
//! * **(a)/(b)** reads each local virtual processor's context and inbox
//!   from its *local* disks,
//! * **(c)** simulates the computation,
//! * **(d)** ships the generated messages over the real interconnect to
//!   the destination's owner, which arranges them in memory and writes
//!   them to *its* disks in the staggered format (exactly the paper's
//!   step (d)).
//!
//! Arrivals are written in sorted `(src, dst)` order, making both the
//! final states and the I/O operation counts fully deterministic
//! regardless of thread scheduling.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use cgmio_io::{TraceEvent, TraceHandle};
use cgmio_model::cost::{CommCosts, RoundCost};
use cgmio_model::threaded::{block_range, owner_of};
use cgmio_model::{CgmProgram, Incoming, ModelError, Outbox, ProcState, RoundCtx, Status};
use cgmio_obs::{Counter, Phase, COORD_PROC};
use cgmio_pdm::{DiskArray, FaultCounts, FaultStats, IoError, IoStats, Item};

use crate::checkpoint::{Checkpoint, CheckpointManifest, RunOutcome, WorkerCheckpoint};
use crate::config::EmConfig;
use crate::context::ContextStore;
use crate::msgmatrix::MessageMatrix;
use crate::pipeline;
use crate::report::{EmRunReport, IoBreakdown};
use crate::EmError;

/// Multi-processor external-memory runner (Algorithm 3).
#[derive(Debug, Clone)]
pub struct ParEmRunner {
    /// Machine configuration (`p` real processors, each with its own
    /// disk array).
    pub config: EmConfig,
}

type Packet<M> = Vec<(usize, usize, Vec<M>)>;

struct RoundCtl {
    n_done: usize,
    sent_total: usize,
    max_sent: usize,
    max_received: usize,
    max_message: usize,
    min_message: usize,
    cross_items: u64,
    max_ctx: usize,
    /// Barrier snapshot, attached when a checkpoint (or halt) is due
    /// this round.
    ckpt: Option<WorkerCheckpoint>,
}

enum Decision {
    Continue,
    Stop,
    /// Stop at this barrier and hand the live disks back through
    /// `WorkerOut::handoff` (the coordinator has the manifest).
    Halt,
    Fail(EmError),
}

impl Decision {
    fn dup(&self) -> Decision {
        match self {
            Decision::Continue => Decision::Continue,
            Decision::Stop => Decision::Stop,
            Decision::Halt => Decision::Halt,
            Decision::Fail(e) => Decision::Fail(e.clone()),
        }
    }
}

struct WorkerOut<S> {
    finals: Vec<S>,
    io: IoStats,
    breakdown: IoBreakdown,
    peak_mem: usize,
    trace: Vec<TraceEvent>,
    /// Retries this worker's storage stack performed.
    retries: u64,
    /// Deferred write errors this worker's engine discarded on a full
    /// retained-error list.
    deferred_drops: u64,
    /// This worker's injected-fault counters. Workers may share one
    /// `FaultStats` (a user-supplied observer); the coordinator dedups
    /// by pointer before summing.
    faults: Option<Arc<FaultStats>>,
    /// Live disks handed back on `Decision::Halt` (trace events not yet
    /// drained — the handle travels with the disks so an in-process
    /// resume keeps one continuous trace).
    handoff: Option<(DiskArray, Option<TraceHandle>)>,
}

/// Per-worker start mode (mirrors the sequential runner's `Start`).
struct WorkerInit<S> {
    /// Initial states of the local virtual processors (empty on resume).
    states: Vec<S>,
    /// Barrier snapshot to restore, if resuming.
    restore: Option<WorkerCheckpoint>,
    /// Live disks from an in-process checkpoint (`None`: build from
    /// config).
    disks: Option<(DiskArray, Option<TraceHandle>)>,
    /// First round to execute (`superstep + 1` on resume).
    start_round: usize,
}

impl ParEmRunner {
    /// Create a runner for the given configuration.
    pub fn new(config: EmConfig) -> Self {
        Self { config }
    }

    /// Run `prog` from the given initial states across `p` real
    /// processors. Semantics and final states are identical to
    /// [`crate::SeqEmRunner`] and the in-memory runners.
    ///
    /// If [`EmConfig::halt_after_superstep`] is set this returns
    /// [`EmError::Interrupted`]; use [`Self::run_until`] to receive the
    /// checkpoint instead.
    pub fn run<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, EmRunReport), EmError> {
        match self.run_until(prog, states)? {
            RunOutcome::Complete { finals, report } => Ok((finals, report)),
            RunOutcome::Interrupted(c) => {
                Err(EmError::Interrupted { superstep: c.manifest.superstep })
            }
        }
    }

    /// Like [`Self::run`], but an [`EmConfig::halt_after_superstep`]
    /// interruption is a normal outcome carrying the checkpoint (with
    /// all `p` live disk arrays).
    pub fn run_until<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunOutcome<P::State>, EmError> {
        let cfg = &self.config;
        cfg.validate()?;
        let v = cfg.v;
        if states.len() != v {
            return Err(EmError::BadConfig(format!(
                "config.v = {v} but {} initial states were given",
                states.len()
            )));
        }
        let p = cfg.p.min(v);
        let mut inits = Vec::with_capacity(p);
        let mut it = states.into_iter();
        for t in 0..p {
            let r = block_range(v, p, t);
            inits.push(WorkerInit {
                states: it.by_ref().take(r.len()).collect(),
                restore: None,
                disks: None,
                start_round: 0,
            });
        }
        self.drive(prog, inits, None)
    }

    /// Resume an interrupted run in-process: each worker continues on
    /// the live disk array the checkpoint carries. Works with every
    /// backend, including the non-persistent `Mem` one.
    pub fn resume<P: CgmProgram>(
        &self,
        prog: &P,
        ckpt: Checkpoint,
    ) -> Result<RunOutcome<P::State>, EmError> {
        self.check_manifest(&ckpt.manifest)?;
        if ckpt.disks.len() != ckpt.manifest.workers.len() {
            return Err(EmError::BadConfig(format!(
                "checkpoint carries {} disk arrays for {} workers",
                ckpt.disks.len(),
                ckpt.manifest.workers.len()
            )));
        }
        let manifest = ckpt.manifest;
        let start_round = manifest.superstep + 1;
        let inits = manifest
            .workers
            .iter()
            .cloned()
            .zip(ckpt.disks)
            .map(|(wc, disks)| WorkerInit {
                states: Vec::new(),
                restore: Some(wc),
                disks: Some(disks),
                start_round,
            })
            .collect();
        self.drive(prog, inits, Some(&manifest))
    }

    /// Resume from a saved manifest, rebuilding each worker's disk array
    /// from [`Self::config`] — the crash-recovery path. The config must
    /// address the same persistent backend directories the interrupted
    /// run used; final states and aggregate I/O counts are identical to
    /// an uninterrupted run.
    pub fn resume_from<P: CgmProgram>(
        &self,
        prog: &P,
        manifest: &CheckpointManifest,
    ) -> Result<RunOutcome<P::State>, EmError> {
        self.check_manifest(manifest)?;
        let start_round = manifest.superstep + 1;
        let inits = manifest
            .workers
            .iter()
            .cloned()
            .map(|wc| WorkerInit {
                states: Vec::new(),
                restore: Some(wc),
                disks: None,
                start_round,
            })
            .collect();
        self.drive(prog, inits, Some(manifest))
    }

    /// Resume requires the manifest to describe this exact machine.
    fn check_manifest(&self, m: &CheckpointManifest) -> Result<(), EmError> {
        let cfg = &self.config;
        let p = cfg.p.min(cfg.v);
        if m.config_hash != cfg.config_hash() {
            return Err(EmError::BadConfig(format!(
                "checkpoint config hash {:#x} does not match this config ({:#x})",
                m.config_hash,
                cfg.config_hash()
            )));
        }
        if m.v != cfg.v || m.p != p || m.workers.len() != p {
            return Err(EmError::BadConfig(format!(
                "checkpoint shape (v={}, p={}, {} workers) does not fit this config \
                 (v={}, p={p})",
                m.v,
                m.p,
                m.workers.len(),
                cfg.v
            )));
        }
        if m.workers.iter().enumerate().any(|(i, w)| w.worker != i) {
            return Err(EmError::BadConfig("checkpoint workers out of order".into()));
        }
        Ok(())
    }

    fn drive<P: CgmProgram>(
        &self,
        prog: &P,
        inits: Vec<WorkerInit<P::State>>,
        resume: Option<&CheckpointManifest>,
    ) -> Result<RunOutcome<P::State>, EmError> {
        // The feedback tuner reads the stall/queue-wait histograms,
        // which only register when an Obs handle is attached — inject a
        // private one when the caller enabled tuning without
        // observability (accounting-invariant; see SeqEmRunner::drive).
        if self.config.autotune.enabled && self.config.obs.is_none() {
            let mut cfg = self.config.clone();
            cfg.obs = Some(cgmio_obs::Obs::new());
            return ParEmRunner::new(cfg).drive(prog, inits, resume);
        }
        let cfg = &self.config;
        cfg.validate()?;
        let v = cfg.v;
        let p = inits.len();
        let start_round = resume.map(|m| m.superstep + 1).unwrap_or(0);

        // Interconnect plumbing (same topology as the threaded runner).
        let mut data_tx: Vec<Vec<Sender<Packet<P::Msg>>>> = (0..p).map(|_| Vec::new()).collect();
        let mut data_rx: Vec<Receiver<Packet<P::Msg>>> = Vec::with_capacity(p);
        {
            let mut txs_per_dst: Vec<Vec<Sender<Packet<P::Msg>>>> =
                (0..p).map(|_| Vec::new()).collect();
            for txs in txs_per_dst.iter_mut() {
                let (tx, rx) = unbounded();
                data_rx.push(rx);
                for _ in 0..p {
                    txs.push(tx.clone());
                }
            }
            for (i, row) in data_tx.iter_mut().enumerate() {
                for txs in txs_per_dst.iter() {
                    row.push(txs[i].clone());
                }
            }
        }
        let (ctrl_tx, ctrl_rx) = unbounded::<(usize, Result<RoundCtl, EmError>)>();
        let mut dec_tx: Vec<Sender<Decision>> = Vec::with_capacity(p);
        let mut dec_rx: Vec<Receiver<Decision>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            dec_tx.push(tx);
            dec_rx.push(rx);
        }

        // A user-supplied fault observer is shared by every worker (and
        // possibly by earlier runs on the same plan); snapshot it now so
        // the report attributes counts to this run only.
        let user_faults = cfg.fault.as_ref().and_then(|pl| pl.observer.clone());
        let fault_base = user_faults.as_ref().map(|s| s.counts()).unwrap_or_default();

        let start = Instant::now();
        let mut costs = CommCosts::default();
        let mut cross_total = 0u64;
        let mut run_error: Option<EmError> = None;
        let mut max_ctx_seen = 0usize;
        let mut halt_manifest: Option<CheckpointManifest> = None;
        if let Some(m) = resume {
            costs.rounds = m.rounds.clone();
            cross_total = m.cross_items;
            max_ctx_seen = m.max_ctx_bytes_seen;
        }
        let mut outs: Vec<Option<WorkerOut<P::State>>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (t, init) in inits.into_iter().enumerate() {
                let my_tx = std::mem::take(&mut data_tx[t]);
                let my_rx = data_rx[t].clone();
                let my_ctrl = ctrl_tx.clone();
                let my_dec = dec_rx[t].clone();
                let cfg = cfg.clone();
                handles.push(scope.spawn(move || {
                    worker::<P>(prog, &cfg, t, v, p, init, my_tx, my_rx, my_ctrl, my_dec)
                }));
            }
            drop(ctrl_tx);

            for round in start_round..=cfg.round_limit {
                let mut n_done = 0usize;
                let mut rc = RoundCost { min_message: usize::MAX, ..RoundCost::default() };
                let mut cross = 0u64;
                let mut err: Option<EmError> = None;
                let mut ckpts: Vec<Option<WorkerCheckpoint>> = (0..p).map(|_| None).collect();
                for _ in 0..p {
                    match ctrl_rx.recv().expect("worker died") {
                        (t, Ok(c)) => {
                            n_done += c.n_done;
                            rc.total_items += c.sent_total;
                            rc.max_sent = rc.max_sent.max(c.max_sent);
                            rc.max_received = rc.max_received.max(c.max_received);
                            rc.max_message = rc.max_message.max(c.max_message);
                            if c.min_message > 0 {
                                rc.min_message = rc.min_message.min(c.min_message);
                            }
                            cross += c.cross_items;
                            max_ctx_seen = max_ctx_seen.max(c.max_ctx);
                            ckpts[t] = c.ckpt;
                        }
                        (_t, Err(e)) => err = Some(e),
                    }
                }
                if rc.min_message == usize::MAX {
                    rc.min_message = 0;
                }
                cross_total += cross;
                let sent_any = rc.total_items > 0;
                if err.is_none() && (sent_any || n_done < v) {
                    costs.rounds.push(rc);
                }
                let mut decision = if let Some(e) = err {
                    Decision::Fail(e)
                } else if n_done == v {
                    if sent_any {
                        Decision::Fail(ModelError::MessagesAfterDone.into())
                    } else {
                        Decision::Stop
                    }
                } else if n_done != 0 {
                    Decision::Fail(ModelError::StatusDisagreement { round }.into())
                } else if round == cfg.round_limit {
                    Decision::Fail(ModelError::RoundLimit(cfg.round_limit).into())
                } else if cfg.halt_after_superstep == Some(round) {
                    Decision::Halt
                } else {
                    Decision::Continue
                };

                // Aggregate the workers' barrier snapshots into one
                // manifest; persist it and/or keep it for the halt path.
                if matches!(decision, Decision::Continue | Decision::Halt)
                    && ckpts.iter().all(Option::is_some)
                {
                    let manifest = CheckpointManifest {
                        config_hash: cfg.config_hash(),
                        v,
                        p,
                        superstep: round,
                        max_ctx_bytes_seen: max_ctx_seen,
                        cross_items: cross_total,
                        rounds: costs.rounds.clone(),
                        workers: ckpts.into_iter().map(Option::unwrap).collect(),
                    };
                    if let Some(dir) = &cfg.checkpoint_dir {
                        let _g = cfg
                            .obs
                            .as_ref()
                            .map(|o| o.span(COORD_PROC, round as u64, Phase::Checkpoint));
                        if let Err(e) = manifest.save(&CheckpointManifest::path_in(dir)) {
                            decision = Decision::Fail(EmError::Io(IoError::Backend(format!(
                                "saving checkpoint: {e}"
                            ))));
                        }
                    }
                    if matches!(decision, Decision::Halt) {
                        halt_manifest = Some(manifest);
                    }
                }

                let stop = !matches!(decision, Decision::Continue);
                if let Decision::Fail(ref e) = decision {
                    run_error = Some(e.clone());
                }
                for tx in &dec_tx {
                    tx.send(decision.dup()).expect("worker died");
                }
                if stop {
                    break;
                }
            }

            for (t, h) in handles.into_iter().enumerate() {
                match h.join().expect("worker panicked") {
                    Ok(w) => outs[t] = Some(w),
                    Err(e) => {
                        if run_error.is_none() {
                            run_error = Some(e);
                        }
                    }
                }
            }
        });

        if let Some(e) = run_error {
            return Err(e);
        }
        if let Some(manifest) = halt_manifest {
            let disks = outs
                .into_iter()
                .map(|o| o.expect("missing worker result"))
                .map(|w| w.handoff.expect("halted worker must hand off its disks"))
                .collect();
            return Ok(RunOutcome::Interrupted(Checkpoint { manifest, disks }));
        }
        costs.max_context_bytes = max_ctx_seen;

        let mut finals = Vec::with_capacity(v);
        let mut io = IoStats::new(cfg.num_disks);
        let mut breakdown = IoBreakdown::default();
        let mut peak_mem = 0usize;
        let mut io_trace = Vec::new();
        let mut retries = 0u64;
        let mut deferred_write_errors_dropped = 0u64;
        let mut fault_arcs: Vec<Arc<FaultStats>> = Vec::new();
        for w in outs.into_iter().map(|o| o.expect("missing worker result")) {
            finals.extend(w.finals);
            io.merge(&w.io);
            breakdown.setup_ops += w.breakdown.setup_ops;
            breakdown.ctx_ops += w.breakdown.ctx_ops;
            breakdown.msg_ops += w.breakdown.msg_ops;
            breakdown.readout_ops += w.breakdown.readout_ops;
            peak_mem = peak_mem.max(w.peak_mem);
            io_trace.extend(w.trace);
            retries += w.retries;
            deferred_write_errors_dropped += w.deferred_drops;
            if let Some(s) = w.faults {
                if !fault_arcs.iter().any(|a| Arc::ptr_eq(a, &s)) {
                    fault_arcs.push(s);
                }
            }
        }
        // Sum the distinct injectors' counters; a user-supplied observer
        // (one arc shared by all workers) is corrected back to this
        // run's window via the snapshot taken before the spawn.
        let faults = if fault_arcs.is_empty() {
            None
        } else {
            let mut agg = FaultCounts::default();
            let mut saw_user = false;
            for a in &fault_arcs {
                agg = agg.merged(a.counts());
                saw_user |= user_faults.as_ref().map(|u| Arc::ptr_eq(u, a)).unwrap_or(false);
            }
            Some(if saw_user { agg.diff(fault_base) } else { agg })
        };

        let report = EmRunReport {
            costs,
            io,
            breakdown,
            geometry: cfg.geometry(),
            p,
            v,
            peak_mem_bytes: peak_mem,
            cross_thread_items: cross_total,
            wall: start.elapsed(),
            io_trace,
            faults,
            retries,
            deferred_write_errors_dropped,
        };
        Ok(RunOutcome::Complete { finals, report })
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<P: CgmProgram>(
    prog: &P,
    cfg: &EmConfig,
    t: usize,
    v: usize,
    p: usize,
    init: WorkerInit<P::State>,
    data_tx: Vec<Sender<Packet<P::Msg>>>,
    data_rx: Receiver<Packet<P::Msg>>,
    ctrl: Sender<(usize, Result<RoundCtl, EmError>)>,
    dec: Receiver<Decision>,
) -> Result<WorkerOut<P::State>, EmError> {
    let my_range = block_range(v, p, t);
    let n_local = my_range.len();
    let geom = cfg.geometry();
    // A backend that fails to open must not break the round protocol
    // (the coordinator expects one control message per worker per
    // round), so fall back to memory and report the error in round 0.
    let mut setup_err = None;
    // `base_io`: I/O the interrupted run already paid before the disks
    // we hold were (re)opened — zero for fresh runs and in-process
    // resume (live arrays keep their counters), the checkpoint's
    // counters when rebuilding from disk files.
    let (mut disks, trace, base_io, retries, faults, deferred_drops, prefetch_cap) =
        match init.disks {
            // In-process resume: retry/fault handles do not travel with the
            // handoff, so the resumed portion reports zero of both.
            Some((d, tr)) => (
                d,
                tr,
                IoStats::new(geom.num_disks),
                Counter::detached(),
                None,
                Counter::detached(),
                None,
            ),
            None => match cfg.build_disks(t) {
                Ok(h) => {
                    let base = init
                        .restore
                        .as_ref()
                        .map(|w| w.io.clone())
                        .unwrap_or_else(|| IoStats::new(geom.num_disks));
                    (h.disks, h.trace, base, h.retries, h.faults, h.deferred_drops, h.prefetch_cap)
                }
                Err(e) => {
                    setup_err = Some(e);
                    (
                        DiskArray::new(geom),
                        None,
                        IoStats::new(geom.num_disks),
                        Counter::detached(),
                        None,
                        Counter::detached(),
                        None,
                    )
                }
            },
        };
    let base_retries = retries.get();
    let base_deferred_drops = deferred_drops.get();
    // Every span carries this worker's proc id so the coordinator's
    // flamegraphs separate the p real processors.
    let span = |ss: usize, ph: Phase| cfg.obs.as_ref().map(|o| o.span(t as u64, ss as u64, ph));

    // Representation tuning (see SeqEmRunner): sparse message length
    // tables and a paged context length table keep per-worker state
    // sublinear in v.
    let sparse = cfg.scale.sparse_msgs(v);
    let mut ctx_store = ContextStore::new_with(
        geom.num_disks,
        geom.block_bytes,
        0,
        n_local,
        cfg.max_ctx_bytes,
        &cfg.scale.ctx_paging(v),
    );
    if let Some(o) = &cfg.obs {
        ctx_store.attach_obs(o, t);
    }
    let mat_base = ctx_store.total_tracks();
    let mk_mat = |base| {
        MessageMatrix::<P::Msg>::new_with_mode(
            geom.num_disks,
            geom.block_bytes,
            base,
            v,
            my_range.start,
            n_local,
            cfg.msg_slot_items,
            sparse,
        )
    };
    let mut mats = [mk_mat(mat_base), mk_mat(mat_base)];
    let tracks = mats[0].total_tracks();
    mats[1] = mk_mat(mat_base + tracks);

    let mut breakdown = IoBreakdown::default();
    let mut peak_mem = 0usize;

    match init.restore {
        None => {
            // Input distribution.
            let _g = span(init.start_round, Phase::Setup);
            if setup_err.is_none() {
                for (k, state) in init.states.into_iter().enumerate() {
                    if let Err(e) = ctx_store.write(&mut disks, k, &state.to_bytes()) {
                        setup_err = Some(e);
                        break;
                    }
                }
            }
            breakdown.setup_ops = disks.stats().total_ops();
        }
        Some(wc) => {
            // The disks already hold the barrier state; restore the
            // in-memory metadata describing it (see SeqEmRunner::drive
            // for the matrix ping-pong argument).
            if setup_err.is_none() {
                if let Err(e) = ctx_store
                    .set_lens_rle(&wc.ctx_lens)
                    .and_then(|()| mats[init.start_round % 2].set_sparse_lens(wc.inbox_lens))
                {
                    setup_err = Some(e);
                }
            }
            breakdown = wc.breakdown;
            peak_mem = wc.peak_mem;
        }
    }

    let mut halted = false;
    // Per-worker scratch buffers reused across supersteps (see
    // SeqEmRunner::drive_inner): the context swap path stops allocating
    // once they reach the largest context size.
    let mut ctx_buf: Vec<u8> = Vec::new();
    let mut enc_buf: Vec<u8> = Vec::new();
    // Software pipeline window over the local vps (see SeqEmRunner and
    // the `pipeline` module). Depth 0 is the serial demand path.
    // Mutable: the per-worker feedback tuner may move it between rounds
    // (where the inflight window has drained), never within one.
    let mut depth = cfg.pipeline_depth.min(n_local);
    let mut tuner = cfg.autotune.enabled.then(|| {
        let prefetch0 = prefetch_cap
            .as_ref()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .unwrap_or(cfg.autotune.policy.min_prefetch_blocks);
        cgmio_tune::Controller::new(cfg.autotune.policy.clone(), depth, prefetch0)
    });
    // Windowed baseline for this worker's per-superstep metric deltas,
    // plus the decision gauges the tuner emits.
    let mut prev_snap = tuner.as_ref().and(cfg.obs.as_ref()).map(|o| o.snapshot());
    let tune_gauges = tuner.as_ref().and(cfg.obs.as_ref()).map(|o| {
        (
            o.metrics().gauge("cgmio_tune_depth", &[("proc", t.to_string())]),
            o.metrics().gauge("cgmio_tune_prefetch_blocks", &[("proc", t.to_string())]),
        )
    });
    if let Some((gd, gp)) = &tune_gauges {
        gd.set(depth as i64);
        if let Some(c) = &tuner {
            gp.set(c.prefetch_blocks() as i64);
        }
    }
    let mut inflight: pipeline::InflightReads = std::collections::VecDeque::new();
    let mut round = init.start_round;
    loop {
        let cur = round % 2;
        let mut ctl = RoundCtl {
            n_done: 0,
            sent_total: 0,
            max_sent: 0,
            max_received: 0,
            max_message: 0,
            min_message: usize::MAX,
            cross_items: 0,
            max_ctx: 0,
            ckpt: None,
        };
        let mut phase_err: Option<EmError> = setup_err.take();

        let (left, right) = mats.split_at_mut(1);
        let (mat_cur, mat_next) =
            if cur == 0 { (&mut left[0], &mut right[0]) } else { (&mut right[0], &mut left[0]) };

        // Every peer sends one packet per *sender vp* (possibly empty),
        // so `v` packets arrive machine-wide per round; arrivals are
        // staged opportunistically while later vps still compute, then
        // the Route phase blocks only for stragglers.
        let mut arrivals: Vec<(usize, usize, Vec<P::Msg>)> = Vec::new();
        let mut recv_count = 0usize;
        let mut sent_vps = 0usize;

        // Pipeline priming: submit the first `depth` local vps' reads
        // before the loop (charged exactly as the serial path charges
        // them in this superstep, after the previous barrier and
        // checkpoint decision — see SeqEmRunner).
        if phase_err.is_none() {
            for k in 0..depth {
                match pipeline::submit_vp_reads(
                    cfg.obs.as_ref(),
                    t as u64,
                    round,
                    &mut disks,
                    &ctx_store,
                    mat_cur,
                    &mut breakdown,
                    k,
                    my_range.start + k,
                ) {
                    Ok(ts) => inflight.push_back(ts),
                    Err(e) => {
                        phase_err = Some(e);
                        break;
                    }
                }
            }
        }

        if phase_err.is_none() {
            'compute: for k in 0..n_local {
                let pid = my_range.start + k;
                // (a)+(b): serial demand reads at depth 0; at depth > 0
                // redeem the in-flight tickets and top the window back
                // up (see SeqEmRunner for the staging argument).
                let (mut state, inbox_items, per_src) = if depth == 0 {
                    // (a) context in
                    let g = span(round, Phase::CtxLoad);
                    let ops0 = disks.stats().total_ops();
                    if let Err(e) = ctx_store.read_into(&mut disks, k, &mut ctx_buf) {
                        phase_err = Some(e);
                        break 'compute;
                    }
                    breakdown.ctx_ops += disks.stats().total_ops() - ops0;
                    drop(g);
                    let state = match P::State::try_from_bytes(&ctx_buf) {
                        Ok(s) => s,
                        Err(e) => {
                            phase_err = Some(ctx_store.corrupt_error(k, e));
                            break 'compute;
                        }
                    };

                    // (b) messages in (local disks)
                    let g = span(round, Phase::MatrixRead);
                    let ops0 = disks.stats().total_ops();
                    let inbox_items = mat_cur.received_items(k);
                    let per_src = match mat_cur.read_for_dst(&mut disks, pid) {
                        Ok(x) => x,
                        Err(e) => {
                            phase_err = Some(e);
                            break 'compute;
                        }
                    };
                    breakdown.msg_ops += disks.stats().total_ops() - ops0;
                    drop(g);
                    (state, inbox_items, per_src)
                } else {
                    let (ctx_t, inbox_t) = inflight.pop_front().expect("pipeline window underflow");
                    if k + depth < n_local {
                        match pipeline::submit_vp_reads(
                            cfg.obs.as_ref(),
                            t as u64,
                            round,
                            &mut disks,
                            &ctx_store,
                            mat_cur,
                            &mut breakdown,
                            k + depth,
                            my_range.start + k + depth,
                        ) {
                            Ok(ts) => inflight.push_back(ts),
                            Err(e) => {
                                phase_err = Some(e);
                                break 'compute;
                            }
                        }
                    }
                    // (a) context in — completion only, charged at submit.
                    let g = span(round, Phase::CtxLoad);
                    let inbox_items = inbox_t.items();
                    if let Err(e) = ctx_store.read_finish(&mut disks, ctx_t, &mut ctx_buf) {
                        phase_err = Some(e);
                        break 'compute;
                    }
                    let state = match P::State::try_from_bytes(&ctx_buf) {
                        Ok(s) => s,
                        Err(e) => {
                            phase_err = Some(ctx_store.corrupt_error(k, e));
                            break 'compute;
                        }
                    };
                    drop(g);
                    // (b) messages in — completion only.
                    let g = span(round, Phase::MatrixRead);
                    let per_src = match mat_cur.read_for_dst_finish(&mut disks, inbox_t) {
                        Ok(x) => x,
                        Err(e) => {
                            phase_err = Some(e);
                            break 'compute;
                        }
                    };
                    drop(g);
                    (state, inbox_items, per_src)
                };
                ctl.max_received = ctl.max_received.max(inbox_items);

                let g = span(round, Phase::Rounds);

                // Read-ahead: hint the next local vp's context and inbox
                // while this one computes (no-op on synchronous
                // backends; never counted as I/O). The pipelined path
                // (depth > 0) pre-issues real reads instead.
                if depth == 0 && k + 1 < n_local {
                    let mut hints = ctx_store.read_addrs(k + 1);
                    hints.extend(mat_cur.read_addrs_for_dst(my_range.start + k + 1));
                    disks.prefetch(&hints);
                } else if k + 1 == n_local {
                    // Superstep-boundary read-ahead: the first local
                    // vp's next-superstep context was written back this
                    // superstep already; hint it while the last vp
                    // computes. Its inbox is hinted after the arrivals
                    // are written, below.
                    disks.prefetch(&ctx_store.read_addrs(0));
                }

                // (c) compute
                let mut outbox = Outbox::new(v);
                let status = {
                    let mut rctx = RoundCtx {
                        pid,
                        v,
                        round,
                        incoming: Incoming::from_sparse(v, per_src),
                        outbox: &mut outbox,
                    };
                    prog.round(&mut rctx, &mut state)
                };
                if status == Status::Done {
                    ctl.n_done += 1;
                }
                let out_items = outbox.total();
                let mem = ctx_buf.len() + (inbox_items + out_items) * P::Msg::SIZE;
                peak_mem = peak_mem.max(mem);
                if cfg.strict && mem > cfg.mem_bytes {
                    phase_err = Some(EmError::MemoryExceeded { pid, need: mem, m: cfg.mem_bytes });
                    break 'compute;
                }
                drop(g);

                // (d) ship this vp's messages to their owners right away
                // — one packet per peer per vp — so the interconnect and
                // the receivers' staging overlap the remaining vps'
                // compute instead of waiting for the round to end.
                let sent: usize = out_items;
                ctl.sent_total += sent;
                ctl.max_sent = ctl.max_sent.max(sent);
                let mut per_owner: Vec<Packet<P::Msg>> = (0..p).map(|_| Vec::new()).collect();
                // Sparse outbox drain: only destinations actually sent
                // to (sorted, merged), so a vp that messages a handful
                // of peers costs O(fanout), not O(v).
                for (dst, msg) in outbox.into_sparse() {
                    ctl.max_message = ctl.max_message.max(msg.len());
                    ctl.min_message = ctl.min_message.min(msg.len());
                    let owner = owner_of(v, p, dst);
                    if owner != t {
                        ctl.cross_items += msg.len() as u64;
                    }
                    per_owner[owner].push((pid, dst, msg));
                }
                for (j, tx) in data_tx.iter().enumerate() {
                    tx.send(std::mem::take(&mut per_owner[j])).expect("peer died");
                }
                sent_vps += 1;
                // Opportunistically stage arrivals that already landed.
                while let Ok(pk) = data_rx.try_recv() {
                    arrivals.extend(pk);
                    recv_count += 1;
                }

                // (e) context out
                let _g = span(round, Phase::CtxLoad);
                state.encode_to_vec(&mut enc_buf);
                ctl.max_ctx = ctl.max_ctx.max(enc_buf.len());
                let ops0 = disks.stats().total_ops();
                if let Err(e) = ctx_store.write(&mut disks, k, &enc_buf) {
                    phase_err = Some(e);
                    break 'compute;
                }
                breakdown.ctx_ops += disks.stats().total_ops() - ops0;
            }
        }

        // Exchange tail: peers expect one packet per sender vp, so pad
        // for any vps this worker did not reach (error paths keep the
        // protocol alive), then block for the stragglers.
        let g = span(round, Phase::Route);
        for _ in sent_vps..n_local {
            for tx in &data_tx {
                tx.send(Vec::new()).expect("peer died");
            }
        }
        while recv_count < v {
            arrivals.extend(data_rx.recv().expect("peer died"));
            recv_count += 1;
        }
        if phase_err.is_none() {
            arrivals.sort_unstable_by_key(|&(src, dst, _)| (dst, src));
        }
        drop(g);

        // Arrange arrivals in memory and write them to the local disks
        // (the receiving half of step (d)). Sorted order keeps I/O
        // deterministic.
        if phase_err.is_none() {
            let _g = span(round, Phase::MatrixWrite);
            let entries: Vec<(usize, usize, &[P::Msg])> =
                arrivals.iter().map(|(src, dst, m)| (*src, *dst, m.as_slice())).collect();
            let ops0 = disks.stats().total_ops();
            if let Err(e) = mat_next.write_batch(&mut disks, &entries) {
                phase_err = Some(e);
            }
            breakdown.msg_ops += disks.stats().total_ops() - ops0;
            if phase_err.is_none() {
                // Superstep-boundary read-ahead, inbox half: the first
                // local vp's full next-superstep inbox now exists.
                disks.prefetch(&mat_next.read_addrs_for_dst(my_range.start));
            }
        }

        // Superstep barrier: drain write-behind, apply the durability
        // policy, surface any deferred write error. Uncounted. When a
        // checkpoint is due the flush also fsyncs, so the manifest
        // never describes data still in volatile caches.
        let want_ckpt = cfg.checkpoint_dir.is_some() || cfg.halt_after_superstep == Some(round);
        if phase_err.is_none() {
            let _g = span(round, Phase::Barrier);
            if let Err(e) = disks.flush(want_ckpt) {
                phase_err = Some(e.into());
            }
        }
        if want_ckpt && phase_err.is_none() {
            let mut io = base_io.clone();
            io.merge(disks.stats());
            ctl.ckpt = Some(WorkerCheckpoint {
                worker: t,
                ctx_lens: ctx_store.lens_rle(),
                inbox_lens: mats[1 - cur].sparse_lens(),
                io,
                breakdown,
                peak_mem,
            });
        }

        let report = match phase_err {
            Some(e) => Err(e),
            None => Ok(ctl),
        };
        ctrl.send((t, report)).expect("coordinator died");
        match dec.recv().expect("coordinator died") {
            Decision::Continue => {
                // Feedback tuning (see SeqEmRunner): consult this
                // worker's window of the stall/queue-wait histograms
                // and set the next superstep's depth and prefetch
                // window. After the barrier, before the next priming —
                // the only accounting-safe boundary.
                if let (Some(tctl), Some(o)) = (tuner.as_mut(), cfg.obs.as_ref()) {
                    let _g = span(round, Phase::Tune);
                    let now = o.snapshot();
                    let delta = match &prev_snap {
                        Some(prev) => now.delta_since(prev),
                        None => now.clone(),
                    };
                    prev_snap = Some(now);
                    let signals = cgmio_tune::WindowSignals::from_delta(&delta, t as u64);
                    let action = tctl.observe(&signals);
                    depth = tctl.depth().min(n_local);
                    if let Some(cap) = &prefetch_cap {
                        cap.store(tctl.prefetch_blocks(), std::sync::atomic::Ordering::Relaxed);
                    }
                    if let Some((gd, gp)) = &tune_gauges {
                        gd.set(depth as i64);
                        gp.set(tctl.prefetch_blocks() as i64);
                    }
                    o.metrics()
                        .counter(
                            "cgmio_tune_decisions_total",
                            &[("proc", t.to_string()), ("action", action.name().into())],
                        )
                        .inc();
                    if let Some(log) = &cfg.autotune.log {
                        log.push(cgmio_tune::Decision {
                            proc: t as u64,
                            superstep: round as u64,
                            signals,
                            action,
                            depth,
                            prefetch_blocks: tctl.prefetch_blocks(),
                        });
                    }
                }
                mats[cur].clear();
                round += 1;
            }
            Decision::Stop => break,
            Decision::Halt => {
                halted = true;
                break;
            }
            Decision::Fail(e) => return Err(e),
        }
    }

    let mut io = base_io;
    if halted {
        // Hand the live disks (and the un-drained trace handle) back for
        // an in-process resume; the coordinator holds the manifest.
        io.merge(disks.stats());
        return Ok(WorkerOut {
            finals: Vec::new(),
            io,
            breakdown,
            peak_mem,
            trace: Vec::new(),
            handoff: Some((disks, trace)),
            retries: retries.get().saturating_sub(base_retries),
            deferred_drops: deferred_drops.get().saturating_sub(base_deferred_drops),
            faults,
        });
    }

    // Final readout.
    let g = span(round, Phase::Readout);
    let ops0 = disks.stats().total_ops();
    let mut finals = Vec::with_capacity(n_local);
    for k in 0..n_local {
        ctx_store.read_into(&mut disks, k, &mut ctx_buf)?;
        finals.push(P::State::try_from_bytes(&ctx_buf).map_err(|e| ctx_store.corrupt_error(k, e))?);
    }
    breakdown.readout_ops = disks.stats().total_ops() - ops0;
    drop(g);

    io.merge(disks.stats());
    Ok(WorkerOut {
        finals,
        io,
        breakdown,
        peak_mem,
        trace: trace.map(|t| t.drain()).unwrap_or_default(),
        handoff: None,
        retries: retries.get().saturating_sub(base_retries),
        deferred_drops: deferred_drops.get().saturating_sub(base_deferred_drops),
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_requirements;
    use crate::seq::SeqEmRunner;
    use cgmio_model::demo::{AllToAll, AllToOne, PrefixSum, TokenRing};
    use cgmio_model::DirectRunner;
    use cgmio_routing::Balanced;

    fn config_for<P: CgmProgram>(
        prog: &P,
        states: Vec<P::State>,
        v: usize,
        p: usize,
        d: usize,
        bb: usize,
    ) -> EmConfig {
        let (_, _, req) = measure_requirements(prog, states).unwrap();
        EmConfig::from_requirements(v, p, d, bb, &req)
    }

    #[test]
    fn matches_direct_for_various_p() {
        let v = 8;
        let prog = AllToAll { items_per_pair: 6 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        for p in [1usize, 2, 3, 4, 8] {
            let cfg = config_for(&prog, init(), v, p, 2, 32);
            let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want, "p={p}");
            assert_eq!(rep.p, p);
            if p > 1 {
                assert!(rep.cross_thread_items > 0);
            }
        }
    }

    #[test]
    fn p1_matches_seq_runner_io_exactly() {
        // With p = 1 Algorithm 3 degenerates to Algorithm 2: same final
        // states and same I/O counts.
        let v = 6;
        let prog = AllToAll { items_per_pair: 5 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, 1, 2, 32);
        let (seq_states, seq_rep) = SeqEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();
        let (par_states, par_rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(par_states, seq_states);
        assert_eq!(par_rep.breakdown.ctx_ops, seq_rep.breakdown.ctx_ops);
        assert_eq!(par_rep.breakdown.msg_ops, seq_rep.breakdown.msg_ops);
        assert_eq!(par_rep.io.total_ops(), seq_rep.io.total_ops());
    }

    #[test]
    fn per_proc_io_drops_with_p() {
        // The paper's point: I/O time scales as v/p. Aggregated ops stay
        // roughly constant, so per-proc ops fall ~linearly in p.
        let v = 8;
        let prog = AllToAll { items_per_pair: 32 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let ops = |p: usize| {
            let cfg = config_for(&prog, init(), v, p, 2, 64);
            let (_, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            rep.io_ops_per_proc()
        };
        let o1 = ops(1);
        let o4 = ops(4);
        assert!(o4 < o1 / 2.0, "o1={o1} o4={o4}");
    }

    #[test]
    fn balanced_program_on_parallel_em() {
        let v = 6;
        let plain = AllToOne { items_per_proc: 30 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, _) = DirectRunner::default().run(&plain, init()).unwrap();
        let bal = Balanced::new(plain);
        let cfg = config_for(&bal, init(), v, 3, 2, 64);
        let (got, _) = ParEmRunner::new(cfg).run(&bal, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn prefix_sum_on_parallel_em() {
        let v = 7;
        let init = || {
            (0..v as u64)
                .map(|i| ((0..i + 1).collect::<Vec<u64>>(), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (want, _) = DirectRunner::default().run(&PrefixSum, init()).unwrap();
        let cfg = config_for(&PrefixSum, init(), v, 3, 1, 16);
        let (got, _) = ParEmRunner::new(cfg).run(&PrefixSum, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn error_in_worker_propagates() {
        let v = 4;
        let prog = AllToOne { items_per_proc: 50 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 1, 32);
        cfg.msg_slot_items = 10;
        let e = ParEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::MsgSlotOverflow { .. }));
    }

    #[test]
    fn concurrent_backend_matches_mem_across_p() {
        // Per-worker engines (each with its own drive threads) must not
        // change results or aggregate counts for any p.
        let v = 8;
        let prog = AllToAll { items_per_pair: 6 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-par-backends");
        for p in [2usize, 3, 8] {
            let base_cfg = config_for(&prog, init(), v, p, 2, 32);
            let (want, want_rep) = ParEmRunner::new(base_cfg.clone()).run(&prog, init()).unwrap();
            let mut cfg = base_cfg.clone();
            cfg.backend = crate::BackendSpec::Concurrent {
                dir: Some(dir.path().join(format!("p{p}"))),
                opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
            };
            let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want, "p={p}");
            assert_eq!(rep.io, want_rep.io, "p={p}");
            assert_eq!(rep.breakdown, want_rep.breakdown, "p={p}");
            // one trace event per physical block transfer, tagged by proc
            let summary = cgmio_io::summarize(&rep.io_trace);
            assert_eq!(summary.reads as u64, rep.io.blocks_read, "p={p}");
            assert_eq!(summary.writes as u64, rep.io.blocks_written, "p={p}");
            let procs: std::collections::BTreeSet<usize> =
                rep.io_trace.iter().map(|e| e.proc).collect();
            assert_eq!(procs.len(), p, "p={p}: every worker must contribute events");
        }
    }

    #[test]
    fn bad_backend_dir_fails_cleanly() {
        // An unopenable backend must error out, not deadlock the round
        // protocol.
        let v = 4;
        let prog = AllToAll { items_per_pair: 2 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 1, 32);
        cfg.backend = crate::BackendSpec::SyncFile {
            dir: std::path::PathBuf::from("/proc/cgmio-definitely-not-writable"),
        };
        let e = ParEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::BadConfig(_)), "got {e:?}");
    }

    #[test]
    fn halt_resume_in_process_matches_uninterrupted() {
        let v = 6;
        let prog = TokenRing { rounds: 5 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let cfg = config_for(&prog, init(), v, 3, 2, 16);
        let (want, want_rep) = ParEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();
        for halt in 0..4 {
            let mut hcfg = cfg.clone();
            hcfg.halt_after_superstep = Some(halt);
            let ckpt = match ParEmRunner::new(hcfg).run_until(&prog, init()).unwrap() {
                crate::RunOutcome::Interrupted(c) => c,
                crate::RunOutcome::Complete { .. } => panic!("expected halt at superstep {halt}"),
            };
            assert_eq!(ckpt.manifest.superstep, halt);
            assert_eq!(ckpt.manifest.workers.len(), 3);
            let (finals, rep) =
                ParEmRunner::new(cfg.clone()).resume(&prog, ckpt).unwrap().expect_complete();
            assert_eq!(finals, want, "halt={halt}");
            assert_eq!(rep.io, want_rep.io, "halt={halt}");
            assert_eq!(rep.breakdown, want_rep.breakdown, "halt={halt}");
            assert_eq!(rep.cross_thread_items, want_rep.cross_thread_items, "halt={halt}");
            assert_eq!(rep.costs.lambda(), want_rep.costs.lambda(), "halt={halt}");
        }
    }

    #[test]
    fn resume_from_manifest_on_files_matches_uninterrupted() {
        let v = 6;
        let prog = TokenRing { rounds: 6 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let (want, want_rep) = {
            let cfg = config_for(&prog, init(), v, 2, 2, 16);
            ParEmRunner::new(cfg).run(&prog, init()).unwrap()
        };
        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-par-resume");
        let mut cfg = config_for(&prog, init(), v, 2, 2, 16);
        cfg.backend = crate::BackendSpec::SyncFile { dir: dir.path().join("drives") };
        cfg.checkpoint_dir = Some(dir.path().to_path_buf());
        cfg.halt_after_superstep = Some(3);
        match ParEmRunner::new(cfg.clone()).run_until(&prog, init()).unwrap() {
            // "Crash": drop the live state, keep only the files.
            crate::RunOutcome::Interrupted(c) => drop(c),
            crate::RunOutcome::Complete { .. } => panic!("expected halt"),
        }
        let manifest = CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
        assert_eq!(manifest.superstep, 3);
        assert_eq!(manifest.workers.len(), 2);
        cfg.halt_after_superstep = None;
        let (finals, rep) =
            ParEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap().expect_complete();
        assert_eq!(finals, want);
        assert_eq!(rep.io, want_rep.io);
        assert_eq!(rep.breakdown, want_rep.breakdown);
        assert_eq!(rep.cross_thread_items, want_rep.cross_thread_items);
    }

    #[test]
    fn injected_faults_heal_across_workers() {
        let v = 8;
        let prog = AllToAll { items_per_pair: 5 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, 4, 2, 32);
        let (want, want_rep) = ParEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();

        let stats = std::sync::Arc::new(cgmio_pdm::FaultStats::default());
        let mut fcfg = cfg.clone();
        fcfg.fault = Some(cgmio_pdm::FaultPlan::transient(23, 0.05).with_observer(stats.clone()));
        fcfg.retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
        let (got, rep) = ParEmRunner::new(fcfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.io, want_rep.io);
        assert!(stats.counts().total_errors() > 0, "no faults were injected");
        // The shared observer is deduplicated, not double-counted, and
        // the report window matches the observer exactly.
        assert_eq!(rep.faults, Some(stats.counts()));
        assert!(rep.retries > 0, "transient faults imply recovery retries");
    }

    #[test]
    fn obs_metrics_and_fault_counts_across_workers() {
        let v = 8;
        let prog = AllToAll { items_per_pair: 3 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, 4, 2, 32);
        let (want, want_rep) = ParEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();

        let obs = cgmio_obs::Obs::new();
        let mut ocfg = cfg.clone();
        ocfg.obs = Some(obs.clone());
        // No explicit observer: each worker's injector gets its own
        // auto-attached FaultStats and the coordinator sums them.
        ocfg.fault = Some(cgmio_pdm::FaultPlan::transient(7, 0.05));
        ocfg.retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
        let (got, rep) = ParEmRunner::new(ocfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.io, want_rep.io, "obs + faults must not change counted I/O");
        let f = rep.faults.expect("fault plan set, counts must be reported");
        assert!(f.total_errors() > 0, "no faults were injected");
        assert_eq!(rep.retries, f.read_transient + f.write_transient + f.torn_writes);

        // Spans from every worker (proc label) and the phase taxonomy.
        let spans = obs.spans();
        for t in 0..4u64 {
            assert!(spans.iter().any(|s| s.proc == t), "no spans from worker {t}");
        }
        for ph in [Phase::Setup, Phase::CtxLoad, Phase::MatrixRead, Phase::Route, Phase::Barrier] {
            assert!(spans.iter().any(|s| s.phase == ph), "missing phase {ph:?}");
        }
        // Retries surfaced as metrics too, labelled per real processor.
        let snap = obs.metrics().snapshot();
        let total: u64 = (0..4)
            .filter_map(|t| snap.get("cgmio_io_retries_total", &[("proc", &t.to_string())]))
            .map(|m| match m {
                cgmio_obs::SampleValue::Counter(n) => *n,
                other => panic!("retries series is not a counter: {other:?}"),
            })
            .sum();
        assert_eq!(total, rep.retries);
    }

    #[test]
    fn token_ring_multi_round_on_parallel_em() {
        let v = 6;
        let prog = TokenRing { rounds: 7 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        let cfg = config_for(&prog, init(), v, 3, 2, 16);
        let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.costs.lambda(), 7);
    }
}
