//! Algorithm 3 — *ParCompoundSuperstep*: simulating a `v`-processor CGM
//! on a `p`-processor EM-CGM.
//!
//! Each real processor (an OS thread here) owns its own `D`-disk array
//! and simulates a contiguous block of `v/p` virtual processors. Per
//! compound superstep it:
//!
//! * **(a)/(b)** reads each local virtual processor's context and inbox
//!   from its *local* disks,
//! * **(c)** simulates the computation,
//! * **(d)** ships the generated messages over the real interconnect to
//!   the destination's owner, which arranges them in memory and writes
//!   them to *its* disks in the staggered format (exactly the paper's
//!   step (d)).
//!
//! Arrivals are written in sorted `(src, dst)` order, making both the
//! final states and the I/O operation counts fully deterministic
//! regardless of thread scheduling.

use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};

use cgmio_io::TraceEvent;
use cgmio_model::cost::{CommCosts, RoundCost};
use cgmio_model::threaded::{block_range, owner_of};
use cgmio_model::{CgmProgram, Incoming, ModelError, Outbox, ProcState, RoundCtx, Status};
use cgmio_pdm::{DiskArray, IoStats, Item};

use crate::config::EmConfig;
use crate::context::ContextStore;
use crate::msgmatrix::MessageMatrix;
use crate::report::{EmRunReport, IoBreakdown};
use crate::EmError;

/// Multi-processor external-memory runner (Algorithm 3).
#[derive(Debug, Clone)]
pub struct ParEmRunner {
    /// Machine configuration (`p` real processors, each with its own
    /// disk array).
    pub config: EmConfig,
}

type Packet<M> = Vec<(usize, usize, Vec<M>)>;

struct RoundCtl {
    n_done: usize,
    sent_total: usize,
    max_sent: usize,
    max_received: usize,
    max_message: usize,
    min_message: usize,
    cross_items: u64,
    max_ctx: usize,
}

enum Decision {
    Continue,
    Stop,
    Fail(EmError),
}

struct WorkerOut<S> {
    finals: Vec<S>,
    io: IoStats,
    breakdown: IoBreakdown,
    peak_mem: usize,
    trace: Vec<TraceEvent>,
}

impl ParEmRunner {
    /// Create a runner for the given configuration.
    pub fn new(config: EmConfig) -> Self {
        Self { config }
    }

    /// Run `prog` from the given initial states across `p` real
    /// processors. Semantics and final states are identical to
    /// [`crate::SeqEmRunner`] and the in-memory runners.
    pub fn run<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, EmRunReport), EmError> {
        let cfg = &self.config;
        cfg.validate()?;
        let v = cfg.v;
        if states.len() != v {
            return Err(EmError::BadConfig(format!(
                "config.v = {v} but {} initial states were given",
                states.len()
            )));
        }
        let p = cfg.p.min(v);

        // Interconnect plumbing (same topology as the threaded runner).
        let mut data_tx: Vec<Vec<Sender<Packet<P::Msg>>>> = (0..p).map(|_| Vec::new()).collect();
        let mut data_rx: Vec<Receiver<Packet<P::Msg>>> = Vec::with_capacity(p);
        {
            let mut txs_per_dst: Vec<Vec<Sender<Packet<P::Msg>>>> =
                (0..p).map(|_| Vec::new()).collect();
            for txs in txs_per_dst.iter_mut() {
                let (tx, rx) = unbounded();
                data_rx.push(rx);
                for _ in 0..p {
                    txs.push(tx.clone());
                }
            }
            for (i, row) in data_tx.iter_mut().enumerate() {
                for txs in txs_per_dst.iter() {
                    row.push(txs[i].clone());
                }
            }
        }
        let (ctrl_tx, ctrl_rx) = unbounded::<(usize, Result<RoundCtl, EmError>)>();
        let mut dec_tx: Vec<Sender<Decision>> = Vec::with_capacity(p);
        let mut dec_rx: Vec<Receiver<Decision>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            dec_tx.push(tx);
            dec_rx.push(rx);
        }

        let mut blocks: Vec<Vec<P::State>> = Vec::with_capacity(p);
        {
            let mut it = states.into_iter();
            for t in 0..p {
                let r = block_range(v, p, t);
                blocks.push(it.by_ref().take(r.len()).collect());
            }
        }

        let start = Instant::now();
        let mut costs = CommCosts::default();
        let mut cross_total = 0u64;
        let mut run_error: Option<EmError> = None;
        let mut max_ctx_seen = 0usize;
        let mut outs: Vec<Option<WorkerOut<P::State>>> = (0..p).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (t, block) in blocks.into_iter().enumerate() {
                let my_tx = std::mem::take(&mut data_tx[t]);
                let my_rx = data_rx[t].clone();
                let my_ctrl = ctrl_tx.clone();
                let my_dec = dec_rx[t].clone();
                let cfg = cfg.clone();
                handles.push(scope.spawn(move || {
                    worker::<P>(prog, &cfg, t, v, p, block, my_tx, my_rx, my_ctrl, my_dec)
                }));
            }
            drop(ctrl_tx);

            for round in 0..=cfg.round_limit {
                let mut n_done = 0usize;
                let mut rc = RoundCost { min_message: usize::MAX, ..RoundCost::default() };
                let mut cross = 0u64;
                let mut err: Option<EmError> = None;
                for _ in 0..p {
                    match ctrl_rx.recv().expect("worker died") {
                        (_t, Ok(c)) => {
                            n_done += c.n_done;
                            rc.total_items += c.sent_total;
                            rc.max_sent = rc.max_sent.max(c.max_sent);
                            rc.max_received = rc.max_received.max(c.max_received);
                            rc.max_message = rc.max_message.max(c.max_message);
                            if c.min_message > 0 {
                                rc.min_message = rc.min_message.min(c.min_message);
                            }
                            cross += c.cross_items;
                            max_ctx_seen = max_ctx_seen.max(c.max_ctx);
                        }
                        (_t, Err(e)) => err = Some(e),
                    }
                }
                if rc.min_message == usize::MAX {
                    rc.min_message = 0;
                }
                cross_total += cross;
                let sent_any = rc.total_items > 0;
                if err.is_none() && (sent_any || n_done < v) {
                    costs.rounds.push(rc);
                }
                let decision = if let Some(e) = err {
                    Decision::Fail(e)
                } else if n_done == v {
                    if sent_any {
                        Decision::Fail(ModelError::MessagesAfterDone.into())
                    } else {
                        Decision::Stop
                    }
                } else if n_done != 0 {
                    Decision::Fail(ModelError::StatusDisagreement { round }.into())
                } else if round == cfg.round_limit {
                    Decision::Fail(ModelError::RoundLimit(cfg.round_limit).into())
                } else {
                    Decision::Continue
                };
                let stop = !matches!(decision, Decision::Continue);
                if let Decision::Fail(ref e) = decision {
                    run_error = Some(e.clone());
                }
                for tx in &dec_tx {
                    tx.send(match decision {
                        Decision::Continue => Decision::Continue,
                        Decision::Stop => Decision::Stop,
                        Decision::Fail(ref e) => Decision::Fail(e.clone()),
                    })
                    .expect("worker died");
                }
                if stop {
                    break;
                }
            }

            for (t, h) in handles.into_iter().enumerate() {
                match h.join().expect("worker panicked") {
                    Ok(w) => outs[t] = Some(w),
                    Err(e) => {
                        if run_error.is_none() {
                            run_error = Some(e);
                        }
                    }
                }
            }
        });

        if let Some(e) = run_error {
            return Err(e);
        }
        costs.max_context_bytes = max_ctx_seen;

        let mut finals = Vec::with_capacity(v);
        let mut io = IoStats::new(cfg.num_disks);
        let mut breakdown = IoBreakdown::default();
        let mut peak_mem = 0usize;
        let mut io_trace = Vec::new();
        for w in outs.into_iter().map(|o| o.expect("missing worker result")) {
            finals.extend(w.finals);
            io.merge(&w.io);
            breakdown.setup_ops += w.breakdown.setup_ops;
            breakdown.ctx_ops += w.breakdown.ctx_ops;
            breakdown.msg_ops += w.breakdown.msg_ops;
            breakdown.readout_ops += w.breakdown.readout_ops;
            peak_mem = peak_mem.max(w.peak_mem);
            io_trace.extend(w.trace);
        }

        let report = EmRunReport {
            costs,
            io,
            breakdown,
            geometry: cfg.geometry(),
            p,
            v,
            peak_mem_bytes: peak_mem,
            cross_thread_items: cross_total,
            wall: start.elapsed(),
            io_trace,
        };
        Ok((finals, report))
    }
}

#[allow(clippy::too_many_arguments)]
fn worker<P: CgmProgram>(
    prog: &P,
    cfg: &EmConfig,
    t: usize,
    v: usize,
    p: usize,
    states: Vec<P::State>,
    data_tx: Vec<Sender<Packet<P::Msg>>>,
    data_rx: Receiver<Packet<P::Msg>>,
    ctrl: Sender<(usize, Result<RoundCtl, EmError>)>,
    dec: Receiver<Decision>,
) -> Result<WorkerOut<P::State>, EmError> {
    let my_range = block_range(v, p, t);
    let n_local = my_range.len();
    let geom = cfg.geometry();
    // A backend that fails to open must not break the round protocol
    // (the coordinator expects one control message per worker per
    // round), so fall back to memory and report the error in round 0.
    let mut setup_err = None;
    let (mut disks, trace) = match cfg.build_disks(t) {
        Ok(x) => x,
        Err(e) => {
            setup_err = Some(e);
            (DiskArray::new(geom), None)
        }
    };

    let mut ctx_store =
        ContextStore::new(geom.num_disks, geom.block_bytes, 0, n_local, cfg.max_ctx_bytes);
    let mat_base = ctx_store.total_tracks();
    let mk_mat = |base| {
        MessageMatrix::<P::Msg>::new(
            geom.num_disks,
            geom.block_bytes,
            base,
            v,
            my_range.start,
            n_local,
            cfg.msg_slot_items,
        )
    };
    let mut mats = [mk_mat(mat_base), mk_mat(mat_base)];
    let tracks = mats[0].total_tracks();
    mats[1] = mk_mat(mat_base + tracks);

    // Input distribution.
    if setup_err.is_none() {
        for (k, state) in states.into_iter().enumerate() {
            if let Err(e) = ctx_store.write(&mut disks, k, &state.to_bytes()) {
                setup_err = Some(e);
                break;
            }
        }
    }
    let mut breakdown =
        IoBreakdown { setup_ops: disks.stats().total_ops(), ..IoBreakdown::default() };
    let mut peak_mem = 0usize;

    let mut round = 0usize;
    loop {
        let cur = round % 2;
        let mut ctl = RoundCtl {
            n_done: 0,
            sent_total: 0,
            max_sent: 0,
            max_received: 0,
            max_message: 0,
            min_message: usize::MAX,
            cross_items: 0,
            max_ctx: 0,
        };
        let mut packets: Vec<Packet<P::Msg>> = (0..p).map(|_| Vec::new()).collect();
        let mut phase_err: Option<EmError> = setup_err.take();

        if phase_err.is_none() {
            'compute: for k in 0..n_local {
                let pid = my_range.start + k;
                // (a) context in
                let ops0 = disks.stats().total_ops();
                let ctx_bytes = match ctx_store.read(&mut disks, k) {
                    Ok(b) => b,
                    Err(e) => {
                        phase_err = Some(e);
                        break 'compute;
                    }
                };
                breakdown.ctx_ops += disks.stats().total_ops() - ops0;
                let mut state = P::State::from_bytes(&ctx_bytes);

                // (b) messages in (local disks)
                let ops0 = disks.stats().total_ops();
                let (left, right) = mats.split_at_mut(1);
                let mat_cur = if cur == 0 { &mut left[0] } else { &mut right[0] };
                let inbox_items = mat_cur.received_items(k);
                ctl.max_received = ctl.max_received.max(inbox_items);
                let per_src = match mat_cur.read_for_dst(&mut disks, pid) {
                    Ok(x) => x,
                    Err(e) => {
                        phase_err = Some(e);
                        break 'compute;
                    }
                };
                breakdown.msg_ops += disks.stats().total_ops() - ops0;

                // Read-ahead: hint the next local vp's context and inbox
                // while this one computes (no-op on synchronous
                // backends; never counted as I/O).
                if k + 1 < n_local {
                    let mut hints = ctx_store.read_addrs(k + 1);
                    hints.extend(mat_cur.read_addrs_for_dst(my_range.start + k + 1));
                    disks.prefetch(&hints);
                }

                // (c) compute
                let mut outbox = Outbox::new(v);
                let status = {
                    let mut rctx = RoundCtx {
                        pid,
                        v,
                        round,
                        incoming: Incoming::new(per_src),
                        outbox: &mut outbox,
                    };
                    prog.round(&mut rctx, &mut state)
                };
                if status == Status::Done {
                    ctl.n_done += 1;
                }
                let out_items = outbox.total();
                let mem = ctx_bytes.len() + (inbox_items + out_items) * P::Msg::SIZE;
                peak_mem = peak_mem.max(mem);
                if cfg.strict && mem > cfg.mem_bytes {
                    phase_err = Some(EmError::MemoryExceeded { pid, need: mem, m: cfg.mem_bytes });
                    break 'compute;
                }

                // (d) ship generated messages to their owners
                let sent: usize = out_items;
                ctl.sent_total += sent;
                ctl.max_sent = ctl.max_sent.max(sent);
                for (dst, msg) in outbox.into_per_dst().into_iter().enumerate() {
                    if msg.is_empty() {
                        continue;
                    }
                    ctl.max_message = ctl.max_message.max(msg.len());
                    ctl.min_message = ctl.min_message.min(msg.len());
                    let owner = owner_of(v, p, dst);
                    if owner != t {
                        ctl.cross_items += msg.len() as u64;
                    }
                    packets[owner].push((pid, dst, msg));
                }

                // (e) context out
                let bytes = state.to_bytes();
                ctl.max_ctx = ctl.max_ctx.max(bytes.len());
                let ops0 = disks.stats().total_ops();
                if let Err(e) = ctx_store.write(&mut disks, k, &bytes) {
                    phase_err = Some(e);
                    break 'compute;
                }
                breakdown.ctx_ops += disks.stats().total_ops() - ops0;
            }
        }

        // Exchange: always send one packet per peer so nobody deadlocks,
        // even on error.
        for (j, tx) in data_tx.iter().enumerate() {
            tx.send(std::mem::take(&mut packets[j])).expect("peer died");
        }
        let mut arrivals: Vec<(usize, usize, Vec<P::Msg>)> = Vec::new();
        for _ in 0..p {
            arrivals.extend(data_rx.recv().expect("peer died"));
        }

        // Arrange arrivals in memory and write them to the local disks
        // (the receiving half of step (d)). Sorted order keeps I/O
        // deterministic.
        if phase_err.is_none() {
            arrivals.sort_unstable_by_key(|&(src, dst, _)| (dst, src));
            let (left, right) = mats.split_at_mut(1);
            let mat_next = if cur == 0 { &mut right[0] } else { &mut left[0] };
            let entries: Vec<(usize, usize, &[P::Msg])> =
                arrivals.iter().map(|(src, dst, m)| (*src, *dst, m.as_slice())).collect();
            let ops0 = disks.stats().total_ops();
            if let Err(e) = mat_next.write_batch(&mut disks, &entries) {
                phase_err = Some(e);
            }
            breakdown.msg_ops += disks.stats().total_ops() - ops0;
        }

        // Superstep barrier: drain write-behind, apply the durability
        // policy, surface any deferred write error. Uncounted.
        if phase_err.is_none() {
            if let Err(e) = disks.flush(false) {
                phase_err = Some(e.into());
            }
        }

        let report = match phase_err {
            Some(e) => Err(e),
            None => Ok(ctl),
        };
        ctrl.send((t, report)).expect("coordinator died");
        match dec.recv().expect("coordinator died") {
            Decision::Continue => {
                mats[cur].clear();
                round += 1;
            }
            Decision::Stop => break,
            Decision::Fail(e) => return Err(e),
        }
    }

    // Final readout.
    let ops0 = disks.stats().total_ops();
    let mut finals = Vec::with_capacity(n_local);
    for k in 0..n_local {
        let bytes = ctx_store.read(&mut disks, k)?;
        finals.push(P::State::from_bytes(&bytes));
    }
    breakdown.readout_ops = disks.stats().total_ops() - ops0;

    Ok(WorkerOut {
        finals,
        io: disks.stats().clone(),
        breakdown,
        peak_mem,
        trace: trace.map(|t| t.drain()).unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_requirements;
    use crate::seq::SeqEmRunner;
    use cgmio_model::demo::{AllToAll, AllToOne, PrefixSum, TokenRing};
    use cgmio_model::DirectRunner;
    use cgmio_routing::Balanced;

    fn config_for<P: CgmProgram>(
        prog: &P,
        states: Vec<P::State>,
        v: usize,
        p: usize,
        d: usize,
        bb: usize,
    ) -> EmConfig {
        let (_, _, req) = measure_requirements(prog, states).unwrap();
        EmConfig::from_requirements(v, p, d, bb, &req)
    }

    #[test]
    fn matches_direct_for_various_p() {
        let v = 8;
        let prog = AllToAll { items_per_pair: 6 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        for p in [1usize, 2, 3, 4, 8] {
            let cfg = config_for(&prog, init(), v, p, 2, 32);
            let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want, "p={p}");
            assert_eq!(rep.p, p);
            if p > 1 {
                assert!(rep.cross_thread_items > 0);
            }
        }
    }

    #[test]
    fn p1_matches_seq_runner_io_exactly() {
        // With p = 1 Algorithm 3 degenerates to Algorithm 2: same final
        // states and same I/O counts.
        let v = 6;
        let prog = AllToAll { items_per_pair: 5 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, 1, 2, 32);
        let (seq_states, seq_rep) = SeqEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();
        let (par_states, par_rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(par_states, seq_states);
        assert_eq!(par_rep.breakdown.ctx_ops, seq_rep.breakdown.ctx_ops);
        assert_eq!(par_rep.breakdown.msg_ops, seq_rep.breakdown.msg_ops);
        assert_eq!(par_rep.io.total_ops(), seq_rep.io.total_ops());
    }

    #[test]
    fn per_proc_io_drops_with_p() {
        // The paper's point: I/O time scales as v/p. Aggregated ops stay
        // roughly constant, so per-proc ops fall ~linearly in p.
        let v = 8;
        let prog = AllToAll { items_per_pair: 32 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let ops = |p: usize| {
            let cfg = config_for(&prog, init(), v, p, 2, 64);
            let (_, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            rep.io_ops_per_proc()
        };
        let o1 = ops(1);
        let o4 = ops(4);
        assert!(o4 < o1 / 2.0, "o1={o1} o4={o4}");
    }

    #[test]
    fn balanced_program_on_parallel_em() {
        let v = 6;
        let plain = AllToOne { items_per_proc: 30 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, _) = DirectRunner::default().run(&plain, init()).unwrap();
        let bal = Balanced::new(plain);
        let cfg = config_for(&bal, init(), v, 3, 2, 64);
        let (got, _) = ParEmRunner::new(cfg).run(&bal, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn prefix_sum_on_parallel_em() {
        let v = 7;
        let init = || {
            (0..v as u64)
                .map(|i| ((0..i + 1).collect::<Vec<u64>>(), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (want, _) = DirectRunner::default().run(&PrefixSum, init()).unwrap();
        let cfg = config_for(&PrefixSum, init(), v, 3, 1, 16);
        let (got, _) = ParEmRunner::new(cfg).run(&PrefixSum, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn error_in_worker_propagates() {
        let v = 4;
        let prog = AllToOne { items_per_proc: 50 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 1, 32);
        cfg.msg_slot_items = 10;
        let e = ParEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::MsgSlotOverflow { .. }));
    }

    #[test]
    fn concurrent_backend_matches_mem_across_p() {
        // Per-worker engines (each with its own drive threads) must not
        // change results or aggregate counts for any p.
        let v = 8;
        let prog = AllToAll { items_per_pair: 6 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-par-backends");
        for p in [2usize, 3, 8] {
            let base_cfg = config_for(&prog, init(), v, p, 2, 32);
            let (want, want_rep) = ParEmRunner::new(base_cfg.clone()).run(&prog, init()).unwrap();
            let mut cfg = base_cfg.clone();
            cfg.backend = crate::BackendSpec::Concurrent {
                dir: Some(dir.path().join(format!("p{p}"))),
                opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
            };
            let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want, "p={p}");
            assert_eq!(rep.io, want_rep.io, "p={p}");
            assert_eq!(rep.breakdown, want_rep.breakdown, "p={p}");
            // one trace event per physical block transfer, tagged by proc
            let summary = cgmio_io::summarize(&rep.io_trace);
            assert_eq!(summary.reads as u64, rep.io.blocks_read, "p={p}");
            assert_eq!(summary.writes as u64, rep.io.blocks_written, "p={p}");
            let procs: std::collections::BTreeSet<usize> =
                rep.io_trace.iter().map(|e| e.proc).collect();
            assert_eq!(procs.len(), p, "p={p}: every worker must contribute events");
        }
    }

    #[test]
    fn bad_backend_dir_fails_cleanly() {
        // An unopenable backend must error out, not deadlock the round
        // protocol.
        let v = 4;
        let prog = AllToAll { items_per_pair: 2 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 1, 32);
        cfg.backend = crate::BackendSpec::SyncFile {
            dir: std::path::PathBuf::from("/proc/cgmio-definitely-not-writable"),
        };
        let e = ParEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::BadConfig(_)), "got {e:?}");
    }

    #[test]
    fn token_ring_multi_round_on_parallel_em() {
        let v = 6;
        let prog = TokenRing { rounds: 7 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        let cfg = config_for(&prog, init(), v, 3, 2, 16);
        let (got, rep) = ParEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.costs.lambda(), 7);
    }
}
