//! Algorithm 2 — *SeqCompoundSuperstep*: simulating a `v`-processor CGM
//! on a single real processor with `D` disks.
//!
//! Per compound superstep, for each virtual processor `i` in turn:
//!
//! 1. **(a)** read the context of `i` from the disks (consecutive
//!    format),
//! 2. **(b)** read the packets received by `i` (staggered message
//!    matrix),
//! 3. **(c)** simulate the local computation of `i`,
//! 4. **(d)** write the packets sent by `i` in the staggered format of
//!    Figure 2 (FIFO-packed parallel writes),
//! 5. **(e)** write the changed context back (consecutive format).
//!
//! Two message matrices alternate between supersteps (the space-saving
//! single-copy alternation of the paper's Observation 2 is traded for
//! the simpler two-copy scheme; I/O counts are identical).

use std::time::Instant;

use cgmio_io::TraceHandle;
use cgmio_model::cost::RoundCost;
use cgmio_model::{
    CgmProgram, CommCosts, Incoming, ModelError, Outbox, ProcState, RoundCtx, Status,
};
use cgmio_obs::{Counter, Obs, Phase};
use cgmio_pdm::{DiskArray, IoError, IoStats, Item};

use crate::checkpoint::{Checkpoint, CheckpointManifest, RunOutcome, WorkerCheckpoint};
use crate::config::{DiskHandles, EmConfig};
use crate::context::ContextStore;
use crate::msgmatrix::MessageMatrix;
use crate::pipeline;
use crate::report::{EmRunReport, IoBreakdown};
use crate::EmError;

/// How a run enters the superstep loop: from fresh initial states, or
/// from a checkpoint (with the live disks for in-process resume, or
/// `None` to rebuild them from the config).
enum Start<S> {
    Fresh(Vec<S>),
    Resume { manifest: CheckpointManifest, disks: Option<(DiskArray, Option<TraceHandle>)> },
}

/// Single-processor external-memory runner (Algorithm 2).
#[derive(Debug, Clone)]
pub struct SeqEmRunner {
    /// Machine configuration; `p` is ignored (always 1).
    pub config: EmConfig,
}

impl SeqEmRunner {
    /// Create a runner for the given configuration.
    pub fn new(config: EmConfig) -> Self {
        Self { config }
    }

    /// Run `prog` from the given initial states; returns final states
    /// and the full report. The disks are created fresh; initial
    /// contexts are loaded first (counted as `setup_ops`).
    ///
    /// If [`EmConfig::halt_after_superstep`] is set this returns
    /// [`EmError::Interrupted`]; use [`Self::run_until`] to receive the
    /// checkpoint instead.
    pub fn run<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<(Vec<P::State>, EmRunReport), EmError> {
        match self.run_until(prog, states)? {
            RunOutcome::Complete { finals, report } => Ok((finals, report)),
            RunOutcome::Interrupted(c) => {
                Err(EmError::Interrupted { superstep: c.manifest.superstep })
            }
        }
    }

    /// Like [`Self::run`], but an [`EmConfig::halt_after_superstep`]
    /// interruption is a normal outcome carrying the checkpoint.
    pub fn run_until<P: CgmProgram>(
        &self,
        prog: &P,
        states: Vec<P::State>,
    ) -> Result<RunOutcome<P::State>, EmError> {
        if states.len() != self.config.v {
            return Err(EmError::BadConfig(format!(
                "config.v = {} but {} initial states were given",
                self.config.v,
                states.len()
            )));
        }
        self.drive(prog, Start::Fresh(states))
    }

    /// Resume an interrupted run in-process: continue on the same live
    /// disk arrays the checkpoint carries. Works with every backend,
    /// including the non-persistent `Mem` one.
    pub fn resume<P: CgmProgram>(
        &self,
        prog: &P,
        ckpt: Checkpoint,
    ) -> Result<RunOutcome<P::State>, EmError> {
        self.check_manifest(&ckpt.manifest)?;
        if ckpt.disks.len() != 1 {
            return Err(EmError::BadConfig(format!(
                "checkpoint carries {} disk arrays, sequential runner needs 1",
                ckpt.disks.len()
            )));
        }
        let disks = ckpt.disks.into_iter().next();
        self.drive(prog, Start::Resume { manifest: ckpt.manifest, disks })
    }

    /// Resume from a saved manifest, rebuilding the disk arrays from
    /// [`Self::config`] — the crash-recovery path. The config must
    /// address the same persistent backend directory the interrupted run
    /// used; the run replays from the superstep after the manifest's and
    /// produces final states and I/O counts **identical** to an
    /// uninterrupted run.
    ///
    /// ```
    /// use cgmio_core::{
    ///     measure_requirements, BackendSpec, CheckpointManifest, EmConfig, RunOutcome,
    ///     SeqEmRunner,
    /// };
    /// use cgmio_model::demo::TokenRing;
    ///
    /// let prog = TokenRing { rounds: 4 };
    /// let init = || (0..3u64).map(|i| vec![i]).collect::<Vec<_>>();
    /// let (_, _, req) = measure_requirements(&prog, init()).unwrap();
    ///
    /// let dir = cgmio_pdm::testutil::TempDir::new("cgmio-doc-resume");
    /// let mut cfg = EmConfig::from_requirements(3, 1, 2, 32, &req);
    /// cfg.backend = BackendSpec::SyncFile { dir: dir.path().join("drives") };
    /// cfg.checkpoint_dir = Some(dir.path().to_path_buf());
    /// cfg.halt_after_superstep = Some(1); // simulate a crash after superstep 1
    ///
    /// match SeqEmRunner::new(cfg.clone()).run_until(&prog, init()).unwrap() {
    ///     RunOutcome::Interrupted(ckpt) => assert_eq!(ckpt.manifest.superstep, 1),
    ///     RunOutcome::Complete { .. } => unreachable!(),
    /// }
    ///
    /// // "New process": load the manifest, rebuild from the same config.
    /// let manifest = CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
    /// cfg.halt_after_superstep = None;
    /// let (finals, report) =
    ///     SeqEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap().expect_complete();
    /// assert_eq!(finals.len(), 3);
    /// assert_eq!(report.costs.lambda(), 4); // pre- and post-resume rounds all accounted
    /// ```
    pub fn resume_from<P: CgmProgram>(
        &self,
        prog: &P,
        manifest: &CheckpointManifest,
    ) -> Result<RunOutcome<P::State>, EmError> {
        self.check_manifest(manifest)?;
        self.drive(prog, Start::Resume { manifest: manifest.clone(), disks: None })
    }

    /// Resume requires the manifest to describe this exact machine: same
    /// layout hash, same shape.
    fn check_manifest(&self, m: &CheckpointManifest) -> Result<(), EmError> {
        let cfg = &self.config;
        if m.config_hash != cfg.config_hash() {
            return Err(EmError::BadConfig(format!(
                "checkpoint config hash {:#x} does not match this config ({:#x})",
                m.config_hash,
                cfg.config_hash()
            )));
        }
        if m.v != cfg.v || m.p != 1 || m.workers.len() != 1 {
            return Err(EmError::BadConfig(format!(
                "checkpoint shape (v={}, p={}, {} workers) does not fit the sequential runner \
                 (v={}, p=1, 1 worker)",
                m.v,
                m.p,
                m.workers.len(),
                cfg.v
            )));
        }
        Ok(())
    }

    fn drive<P: CgmProgram>(
        &self,
        prog: &P,
        start: Start<P::State>,
    ) -> Result<RunOutcome<P::State>, EmError> {
        // The feedback tuner reads the stall/queue-wait histograms,
        // which only register when an Obs handle is attached — inject a
        // private one when the caller enabled tuning without
        // observability. Instrumentation never changes accounting
        // (property-tested), so the injection is invisible in results.
        if self.config.autotune.enabled && self.config.obs.is_none() {
            let mut cfg = self.config.clone();
            cfg.obs = Some(Obs::new());
            return SeqEmRunner::new(cfg).drive(prog, start);
        }
        let cfg = &self.config;
        cfg.validate()?;
        let geom = cfg.geometry();
        // `base_io` is what the interrupted run already paid before the
        // disks we hold were (re)opened: zero for fresh runs and for
        // in-process resume (live arrays keep their cumulative counters),
        // the manifest's counters when rebuilding from disk files.
        match start {
            // In-process resume: the live array keeps its own counters,
            // but the retry/fault handles do not travel with the
            // checkpoint — the resumed portion reports 0 retries and no
            // fault counts.
            Start::Resume { manifest, disks: Some((d, t)) } => self.drive_inner(
                prog,
                DiskHandles {
                    disks: d,
                    trace: t,
                    retries: Counter::detached(),
                    faults: None,
                    deferred_drops: Counter::detached(),
                    prefetch_cap: None,
                },
                IoStats::new(geom.num_disks),
                Start::Resume { manifest, disks: None },
            ),
            Start::Resume { manifest, disks: None } => {
                let handles = cfg.build_disks(0)?;
                let base = manifest.workers[0].io.clone();
                self.drive_inner(prog, handles, base, Start::Resume { manifest, disks: None })
            }
            fresh @ Start::Fresh(_) => {
                let handles = cfg.build_disks(0)?;
                self.drive_inner(prog, handles, IoStats::new(geom.num_disks), fresh)
            }
        }
    }

    fn drive_inner<P: CgmProgram>(
        &self,
        prog: &P,
        handles: DiskHandles,
        base_io: IoStats,
        start: Start<P::State>,
    ) -> Result<RunOutcome<P::State>, EmError> {
        let DiskHandles { mut disks, trace, retries, faults, deferred_drops, prefetch_cap } =
            handles;
        let cfg = &self.config;
        cfg.validate()?;
        let v = cfg.v;
        let geom = cfg.geometry();
        // Counter positions at entry, so the report attributes only
        // this run's recovery traffic (a user-shared fault observer may
        // already hold counts from earlier runs).
        let base_retries = retries.get();
        let base_deferred_drops = deferred_drops.get();
        let base_faults = faults.as_ref().map(|s| s.counts());
        // One span guard per phase: publishes (superstep, phase) so the
        // io layer stamps in-flight ops, and feeds cgmio_phase_us.
        // `None` (no obs handle) costs nothing.
        let span = |superstep: usize, phase: Phase| {
            cfg.obs.as_ref().map(|o| o.span(0, superstep as u64, phase))
        };

        // Representation tuning (auto-selected by v unless forced):
        // sparse message length tables and a paged context length table
        // are what keep runner-held state sublinear in v.
        let sparse = cfg.scale.sparse_msgs(v);
        let mut ctx_store = ContextStore::new_with(
            geom.num_disks,
            geom.block_bytes,
            0,
            v,
            cfg.max_ctx_bytes,
            &cfg.scale.ctx_paging(v),
        );
        if let Some(o) = &cfg.obs {
            ctx_store.attach_obs(o, 0);
        }
        let mat_base = ctx_store.total_tracks();
        let mut mats: [MessageMatrix<P::Msg>; 2] = [
            MessageMatrix::new_with_mode(
                geom.num_disks,
                geom.block_bytes,
                mat_base,
                v,
                0,
                v,
                cfg.msg_slot_items,
                sparse,
            ),
            MessageMatrix::new_with_mode(
                geom.num_disks,
                geom.block_bytes,
                mat_base, // placeholder, fixed just below
                v,
                0,
                v,
                cfg.msg_slot_items,
                sparse,
            ),
        ];
        let mat_tracks = mats[0].total_tracks();
        mats[1] = MessageMatrix::new_with_mode(
            geom.num_disks,
            geom.block_bytes,
            mat_base + mat_tracks,
            v,
            0,
            v,
            cfg.msg_slot_items,
            sparse,
        );

        let mut costs = CommCosts::default();
        let mut breakdown = IoBreakdown::default();
        let mut peak_mem = 0usize;
        let mut max_ctx = 0usize;
        let mut start_round = 0usize;

        match start {
            Start::Fresh(states) => {
                // Input distribution: write initial contexts.
                let _g = span(0, Phase::Setup);
                for (pid, state) in states.into_iter().enumerate() {
                    ctx_store.write(&mut disks, pid, &state.to_bytes())?;
                }
                breakdown.setup_ops = disks.stats().total_ops();
            }
            Start::Resume { manifest, .. } => {
                // The disks already hold the barrier state; restore the
                // in-memory metadata describing it. The matrix written
                // *during* the checkpointed superstep is the one read in
                // the round we re-enter at; its ping-pong partner was (or
                // would have been) cleared, and a fresh matrix is equal
                // to a cleared one.
                let wc = &manifest.workers[0];
                start_round = manifest.superstep + 1;
                ctx_store.set_lens_rle(&wc.ctx_lens)?;
                mats[start_round % 2].set_sparse_lens(wc.inbox_lens.clone())?;
                breakdown = wc.breakdown;
                peak_mem = wc.peak_mem;
                max_ctx = manifest.max_ctx_bytes_seen;
                costs.rounds = manifest.rounds.clone();
            }
        }

        let t0 = Instant::now();
        // Scratch buffers reused across all virtual processors and
        // supersteps: once grown to the largest context, the swap path
        // stops allocating.
        let mut ctx_buf: Vec<u8> = Vec::new();
        let mut enc_buf: Vec<u8> = Vec::new();
        // Software pipeline: step (a)+(b) reads for up to `depth` vps
        // ahead of the one computing. Depth 0 is the serial demand path.
        // Mutable: the feedback tuner may move it between rounds, where
        // the inflight window has fully drained — so a change never
        // moves I/O across a superstep boundary and accounting stays
        // depth-invariant.
        let mut depth = cfg.pipeline_depth.min(v);
        let mut tuner = cfg.autotune.enabled.then(|| {
            let prefetch0 = prefetch_cap
                .as_ref()
                .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                .unwrap_or(cfg.autotune.policy.min_prefetch_blocks);
            cgmio_tune::Controller::new(cfg.autotune.policy.clone(), depth, prefetch0)
        });
        // Windowed baseline for per-superstep metric deltas, plus the
        // decision metrics the tuner emits.
        let mut prev_snap = tuner.as_ref().and(cfg.obs.as_ref()).map(|o| o.snapshot());
        let tune_gauges = tuner.as_ref().and(cfg.obs.as_ref()).map(|o| {
            (
                o.metrics().gauge("cgmio_tune_depth", &[("proc", "0".into())]),
                o.metrics().gauge("cgmio_tune_prefetch_blocks", &[("proc", "0".into())]),
            )
        });
        if let Some((gd, gp)) = &tune_gauges {
            gd.set(depth as i64);
            if let Some(ctl) = &tuner {
                gp.set(ctl.prefetch_blocks() as i64);
            }
        }
        let mut inflight: pipeline::InflightReads = std::collections::VecDeque::new();
        let mut round = start_round;
        loop {
            if round >= cfg.round_limit {
                return Err(ModelError::RoundLimit(cfg.round_limit).into());
            }
            let cur = round % 2;
            let mut n_done = 0usize;
            // Round cost, accumulated incrementally (the dense v×v length
            // matrix this used to be built from is gone — at v = 10^6 it
            // was the scale blocker). Semantics are identical to
            // `round_cost_from_matrix`: max_sent is the largest per-vp
            // outbox, max_received the largest inbox of the *next*
            // matrix, max/min_message range over non-empty messages.
            let mut rc = RoundCost { min_message: usize::MAX, ..Default::default() };

            let (left, right) = mats.split_at_mut(1);
            let (mat_cur, mat_next) = if cur == 0 {
                (&mut left[0], &mut right[0])
            } else {
                (&mut right[0], &mut left[0])
            };

            // Pipeline priming: submit the first `depth` vps' reads up
            // front so vp 0 finds its blocks already in flight. Priming
            // sits *after* the previous barrier and checkpoint decision,
            // so no read of superstep `r` is issued — or charged —
            // before superstep `r` begins; checkpoint manifests are
            // therefore bit-identical at every depth.
            for k in 0..depth {
                inflight.push_back(pipeline::submit_vp_reads(
                    cfg.obs.as_ref(),
                    0,
                    round,
                    &mut disks,
                    &ctx_store,
                    mat_cur,
                    &mut breakdown,
                    k,
                    k,
                )?);
            }

            for pid in 0..v {
                // (a)+(b): serial demand reads at depth 0; at depth > 0
                // redeem the in-flight tickets and top the window back
                // up, so vp `pid + depth`'s blocks travel while vp
                // `pid` decodes and computes.
                let (mut state, inbox_items, per_src) = if depth == 0 {
                    // (a) context in
                    let g = span(round, Phase::CtxLoad);
                    let ops0 = disks.stats().total_ops();
                    ctx_store.read_into(&mut disks, pid, &mut ctx_buf)?;
                    breakdown.ctx_ops += disks.stats().total_ops() - ops0;
                    let state = P::State::try_from_bytes(&ctx_buf)
                        .map_err(|e| ctx_store.corrupt_error(pid, e))?;
                    drop(g);

                    // (b) messages in
                    let g = span(round, Phase::MatrixRead);
                    let ops0 = disks.stats().total_ops();
                    let inbox_items = mat_cur.received_items(pid);
                    let per_src = mat_cur.read_for_dst(&mut disks, pid)?;
                    breakdown.msg_ops += disks.stats().total_ops() - ops0;
                    drop(g);
                    (state, inbox_items, per_src)
                } else {
                    let (ctx_t, inbox_t) = inflight.pop_front().expect("pipeline window underflow");
                    if pid + depth < v {
                        inflight.push_back(pipeline::submit_vp_reads(
                            cfg.obs.as_ref(),
                            0,
                            round,
                            &mut disks,
                            &ctx_store,
                            mat_cur,
                            &mut breakdown,
                            pid + depth,
                            pid + depth,
                        )?);
                    }
                    // (a) context in — completion only, charged at submit.
                    let g = span(round, Phase::CtxLoad);
                    let inbox_items = inbox_t.items();
                    ctx_store.read_finish(&mut disks, ctx_t, &mut ctx_buf)?;
                    let state = P::State::try_from_bytes(&ctx_buf)
                        .map_err(|e| ctx_store.corrupt_error(pid, e))?;
                    drop(g);
                    // (b) messages in — completion only.
                    let g = span(round, Phase::MatrixRead);
                    let per_src = mat_cur.read_for_dst_finish(&mut disks, inbox_t)?;
                    drop(g);
                    (state, inbox_items, per_src)
                };

                // (c) compute (the read-ahead hints are submitted here,
                // overlapping the compute step they hide behind)
                let g = span(round, Phase::Rounds);
                if depth == 0 && pid + 1 < v {
                    // Read-ahead: while vp `pid` computes, hint the next
                    // vp's context and inbox to the backend (a no-op for
                    // synchronous backends; never counted as I/O). The
                    // pipelined path (depth > 0) pre-issues real reads
                    // instead.
                    let mut hints = ctx_store.read_addrs(pid + 1);
                    hints.extend(mat_cur.read_addrs_for_dst(pid + 1));
                    disks.prefetch(&hints);
                } else if pid + 1 == v {
                    // Superstep-boundary read-ahead: the next
                    // superstep's first context was already written back
                    // this superstep (vp 0's step (e)), so hint it while
                    // the last vp computes. Its inbox lives in
                    // `mat_next` and is hinted once this vp's sends
                    // complete, below.
                    disks.prefetch(&ctx_store.read_addrs(0));
                }
                let mut outbox = Outbox::new(v);
                let status = {
                    let mut rctx = RoundCtx {
                        pid,
                        v,
                        round,
                        incoming: Incoming::from_sparse(v, per_src),
                        outbox: &mut outbox,
                    };
                    prog.round(&mut rctx, &mut state)
                };
                if status == Status::Done {
                    n_done += 1;
                }
                let out_items = outbox.total();
                drop(g);

                // Memory audit: context + inbox + outbox must fit in M.
                let mem = ctx_buf.len() + (inbox_items + out_items) * P::Msg::SIZE;
                peak_mem = peak_mem.max(mem);
                if cfg.strict && mem > cfg.mem_bytes {
                    return Err(EmError::MemoryExceeded { pid, need: mem, m: cfg.mem_bytes });
                }

                // (d) messages out (staggered format, FIFO-packed)
                let g = span(round, Phase::MatrixWrite);
                rc.max_sent = rc.max_sent.max(out_items);
                rc.total_items += out_items;
                let sent = outbox.into_sparse();
                for (_, msg) in &sent {
                    rc.max_message = rc.max_message.max(msg.len());
                    rc.min_message = rc.min_message.min(msg.len());
                }
                let entries: Vec<(usize, usize, &[P::Msg])> =
                    sent.iter().map(|&(dst, ref msg)| (pid, dst, msg.as_slice())).collect();
                let ops0 = disks.stats().total_ops();
                mat_next.write_batch(&mut disks, &entries)?;
                breakdown.msg_ops += disks.stats().total_ops() - ops0;
                if pid + 1 == v {
                    // Boundary read-ahead, inbox half: every dst-0 slot
                    // of next superstep's matrix now exists, so the hint
                    // covers the first vp's full inbox (uncounted).
                    disks.prefetch(&mat_next.read_addrs_for_dst(0));
                }
                drop(g);

                // (e) context out
                let g = span(round, Phase::CtxLoad);
                state.encode_to_vec(&mut enc_buf);
                max_ctx = max_ctx.max(enc_buf.len());
                let ops0 = disks.stats().total_ops();
                ctx_store.write(&mut disks, pid, &enc_buf)?;
                breakdown.ctx_ops += disks.stats().total_ops() - ops0;
                drop(g);
            }

            // Superstep barrier: drain write-behind, apply the durability
            // policy, surface any deferred write error. Uncounted. When a
            // checkpoint is due the flush also fsyncs, so the manifest
            // never describes data still in volatile caches.
            let want_ckpt = cfg.checkpoint_dir.is_some() || cfg.halt_after_superstep == Some(round);
            {
                let _g = span(round, Phase::Barrier);
                disks.flush(want_ckpt)?;
            }

            rc.max_received = mat_next.max_received_items();
            if rc.min_message == usize::MAX {
                rc.min_message = 0;
            }
            let round_cost = rc;
            let sent_any = round_cost.total_items > 0;
            if sent_any || n_done < v {
                costs.rounds.push(round_cost);
            }
            if n_done == v {
                if sent_any {
                    return Err(ModelError::MessagesAfterDone.into());
                }
                break;
            }
            if n_done != 0 {
                return Err(ModelError::StatusDisagreement { round }.into());
            }

            if want_ckpt {
                let _g = span(round, Phase::Checkpoint);
                let mut io = base_io.clone();
                io.merge(disks.stats());
                let manifest = CheckpointManifest {
                    config_hash: cfg.config_hash(),
                    v,
                    p: 1,
                    superstep: round,
                    max_ctx_bytes_seen: max_ctx,
                    cross_items: 0,
                    rounds: costs.rounds.clone(),
                    workers: vec![WorkerCheckpoint {
                        worker: 0,
                        ctx_lens: ctx_store.lens_rle(),
                        inbox_lens: mats[1 - cur].sparse_lens(),
                        io,
                        breakdown,
                        peak_mem,
                    }],
                };
                if let Some(dir) = &cfg.checkpoint_dir {
                    manifest.save(&CheckpointManifest::path_in(dir)).map_err(|e| {
                        EmError::Io(IoError::Backend(format!("saving checkpoint: {e}")))
                    })?;
                }
                if cfg.halt_after_superstep == Some(round) {
                    return Ok(RunOutcome::Interrupted(Checkpoint {
                        manifest,
                        disks: vec![(disks, trace)],
                    }));
                }
            }

            // Feedback tuning: read this superstep's window of the
            // stall/queue-wait histograms and pick the next superstep's
            // pipeline depth and prefetch window. Runs after the
            // barrier (inflight window drained, write-behind flushed)
            // and before the next round's priming, so the knobs only
            // ever move at an accounting-safe boundary.
            if let (Some(ctl), Some(o)) = (tuner.as_mut(), cfg.obs.as_ref()) {
                let _g = span(round, Phase::Tune);
                let now = o.snapshot();
                let delta = match &prev_snap {
                    Some(prev) => now.delta_since(prev),
                    None => now.clone(),
                };
                prev_snap = Some(now);
                let signals = cgmio_tune::WindowSignals::from_delta(&delta, 0);
                let action = ctl.observe(&signals);
                depth = ctl.depth().min(v);
                if let Some(cap) = &prefetch_cap {
                    cap.store(ctl.prefetch_blocks(), std::sync::atomic::Ordering::Relaxed);
                }
                if let Some((gd, gp)) = &tune_gauges {
                    gd.set(depth as i64);
                    gp.set(ctl.prefetch_blocks() as i64);
                }
                o.metrics()
                    .counter(
                        "cgmio_tune_decisions_total",
                        &[("proc", "0".into()), ("action", action.name().into())],
                    )
                    .inc();
                if let Some(log) = &cfg.autotune.log {
                    log.push(cgmio_tune::Decision {
                        proc: 0,
                        superstep: round as u64,
                        signals,
                        action,
                        depth,
                        prefetch_blocks: ctl.prefetch_blocks(),
                    });
                }
            }

            mats[cur].clear();
            round += 1;
        }
        let wall = t0.elapsed();
        costs.max_context_bytes = max_ctx;

        // Final readout.
        let g = span(round, Phase::Readout);
        let ops0 = disks.stats().total_ops();
        let mut finals = Vec::with_capacity(v);
        for pid in 0..v {
            ctx_store.read_into(&mut disks, pid, &mut ctx_buf)?;
            finals.push(
                P::State::try_from_bytes(&ctx_buf).map_err(|e| ctx_store.corrupt_error(pid, e))?,
            );
        }
        breakdown.readout_ops = disks.stats().total_ops() - ops0;
        drop(g);

        let mut io = base_io;
        io.merge(disks.stats());
        let report = EmRunReport {
            costs,
            io,
            breakdown,
            geometry: geom,
            p: 1,
            v,
            peak_mem_bytes: peak_mem,
            cross_thread_items: 0,
            wall,
            io_trace: trace.map(|t| t.drain()).unwrap_or_default(),
            faults: faults.map(|s| s.counts().diff(base_faults.unwrap_or_default())),
            retries: retries.get().saturating_sub(base_retries),
            deferred_write_errors_dropped: deferred_drops.get().saturating_sub(base_deferred_drops),
        };
        Ok(RunOutcome::Complete { finals, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_requirements;
    use cgmio_model::demo::{AllToAll, AllToOne, PrefixSum, TokenRing};
    use cgmio_model::DirectRunner;
    use cgmio_routing::Balanced;

    fn config_for<P: CgmProgram>(
        prog: &P,
        states: Vec<P::State>,
        v: usize,
        d: usize,
        bb: usize,
    ) -> EmConfig {
        let (_, _, req) = measure_requirements(prog, states).unwrap();
        EmConfig::from_requirements(v, 1, d, bb, &req)
    }

    #[test]
    fn matches_direct_on_all_to_all() {
        let v = 6;
        let prog = AllToAll { items_per_pair: 7 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, want_costs) = DirectRunner::default().run(&prog, init()).unwrap();
        for d in [1usize, 2, 4] {
            let cfg = config_for(&prog, init(), v, d, 32);
            let (got, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want, "D={d}");
            assert_eq!(rep.costs.lambda(), want_costs.lambda());
            assert_eq!(rep.costs.max_h(), want_costs.max_h());
            assert!(rep.breakdown.msg_ops > 0);
            assert!(rep.breakdown.ctx_ops > 0);
        }
    }

    #[test]
    fn matches_direct_on_prefix_sum() {
        let v = 5;
        let init = || {
            (0..v as u64)
                .map(|i| ((0..=i).map(|x| x * x).collect::<Vec<u64>>(), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (want, _) = DirectRunner::default().run(&PrefixSum, init()).unwrap();
        let cfg = config_for(&PrefixSum, init(), v, 2, 16);
        let (got, _) = SeqEmRunner::new(cfg).run(&PrefixSum, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_direct_on_token_ring_many_rounds() {
        let v = 4;
        let prog = TokenRing { rounds: 9 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let (want, _) = DirectRunner::default().run(&prog, init()).unwrap();
        let cfg = config_for(&prog, init(), v, 2, 16);
        let (got, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.costs.lambda(), 9);
    }

    #[test]
    fn balanced_wrapper_runs_in_em() {
        let v = 6;
        let plain = AllToOne { items_per_proc: 24 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let (want, _) = DirectRunner::default().run(&plain, init()).unwrap();
        let bal = Balanced::new(plain);
        let cfg = config_for(&bal, init(), v, 2, 64);
        let (got, _) = SeqEmRunner::new(cfg).run(&bal, init()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn slot_overflow_is_reported() {
        let v = 4;
        let prog = AllToOne { items_per_proc: 50 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 1, 32);
        cfg.msg_slot_items = 10; // too small for the 50-item message
        let e = SeqEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::MsgSlotOverflow { len: 50, slot: 10, .. }));
    }

    #[test]
    fn strict_memory_bound_enforced() {
        let v = 4;
        let prog = AllToAll { items_per_pair: 16 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 1, 32);
        cfg.strict = true;
        cfg.mem_bytes = cfg.num_disks * cfg.block_bytes; // absurdly small but structurally valid
        let e = SeqEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert!(matches!(e, EmError::MemoryExceeded { .. }));
    }

    #[test]
    fn io_scales_linearly_in_data_not_superlinearly() {
        // Doubling N should roughly double algorithm I/O ops (the
        // O(N/(DB)) claim), not more.
        let v = 4;
        let d = 2;
        let run = |items: usize| {
            let prog = AllToAll { items_per_pair: items };
            let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
            let cfg = config_for(&prog, init(), v, d, 64);
            let (_, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
            rep.breakdown.algorithm_ops()
        };
        let small = run(64);
        let big = run(128);
        assert!(big <= small * 2 + 8, "small={small} big={big}");
        assert!(big >= small, "small={small} big={big}");
    }

    #[test]
    fn concurrent_backend_matches_mem_exactly() {
        // The asynchronous pipeline (read-ahead + write-behind) must not
        // change results, I/O counts, or the op breakdown — only
        // wall-clock behaviour.
        let v = 6;
        let prog = AllToAll { items_per_pair: 7 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let base_cfg = config_for(&prog, init(), v, 2, 32);
        let (want, want_rep) = SeqEmRunner::new(base_cfg.clone()).run(&prog, init()).unwrap();

        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-seq-backends");
        let backends = [
            crate::BackendSpec::SyncFile { dir: dir.path().join("sync") },
            crate::BackendSpec::Concurrent { dir: None, opts: Default::default() },
            crate::BackendSpec::Concurrent {
                dir: Some(dir.path().join("conc")),
                opts: cgmio_io::IoEngineOpts {
                    durability: cgmio_io::Durability::SyncPerSuperstep,
                    trace: true,
                    ..Default::default()
                },
            },
        ];
        for backend in backends {
            let mut cfg = base_cfg.clone();
            cfg.backend = backend;
            let (got, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
            assert_eq!(got, want);
            assert_eq!(rep.io, want_rep.io);
            assert_eq!(rep.breakdown, want_rep.breakdown);
        }
    }

    #[test]
    fn concurrent_backend_emits_trace() {
        let v = 4;
        let prog = AllToAll { items_per_pair: 4 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 32);
        cfg.backend = crate::BackendSpec::Concurrent {
            dir: None,
            opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
        };
        let (_, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
        let summary = cgmio_io::summarize(&rep.io_trace);
        // every counted block transfer appears as a physical event
        assert_eq!(summary.reads as u64, rep.io.blocks_read);
        assert_eq!(summary.writes as u64, rep.io.blocks_written);
        assert!(summary.prefetches > 0, "read-ahead hints must reach the engine");
        assert!(summary.cache_hits > 0, "prefetched blocks must satisfy demand reads");
    }

    #[test]
    fn halt_resume_in_process_matches_uninterrupted() {
        let v = 4;
        let prog = TokenRing { rounds: 5 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let cfg = config_for(&prog, init(), v, 2, 16);
        let (want, want_rep) = SeqEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();
        for halt in 0..4 {
            let mut hcfg = cfg.clone();
            hcfg.halt_after_superstep = Some(halt);
            let ckpt = match SeqEmRunner::new(hcfg).run_until(&prog, init()).unwrap() {
                RunOutcome::Interrupted(c) => c,
                RunOutcome::Complete { .. } => panic!("expected halt at superstep {halt}"),
            };
            assert_eq!(ckpt.manifest.superstep, halt);
            let (finals, rep) =
                SeqEmRunner::new(cfg.clone()).resume(&prog, ckpt).unwrap().expect_complete();
            assert_eq!(finals, want, "halt={halt}");
            assert_eq!(rep.io, want_rep.io, "halt={halt}");
            assert_eq!(rep.breakdown, want_rep.breakdown, "halt={halt}");
            assert_eq!(rep.costs.lambda(), want_rep.costs.lambda(), "halt={halt}");
        }
    }

    #[test]
    fn resume_from_manifest_on_files_matches_uninterrupted() {
        let v = 5;
        let prog = TokenRing { rounds: 6 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let (want, want_rep) = {
            let cfg = config_for(&prog, init(), v, 2, 16);
            SeqEmRunner::new(cfg).run(&prog, init()).unwrap()
        };
        let dir = cgmio_pdm::testutil::TempDir::new("cgmio-seq-resume");
        let mut cfg = config_for(&prog, init(), v, 2, 16);
        cfg.backend = crate::BackendSpec::SyncFile { dir: dir.path().join("drives") };
        cfg.checkpoint_dir = Some(dir.path().to_path_buf());
        cfg.halt_after_superstep = Some(2);
        match SeqEmRunner::new(cfg.clone()).run_until(&prog, init()).unwrap() {
            // "Crash": drop the live state, keep only the files.
            RunOutcome::Interrupted(c) => drop(c),
            RunOutcome::Complete { .. } => panic!("expected halt"),
        }
        let manifest = CheckpointManifest::load(&CheckpointManifest::path_in(dir.path())).unwrap();
        assert_eq!(manifest.superstep, 2);
        cfg.halt_after_superstep = None;
        let (finals, rep) =
            SeqEmRunner::new(cfg).resume_from(&prog, &manifest).unwrap().expect_complete();
        assert_eq!(finals, want);
        assert_eq!(rep.io, want_rep.io);
        assert_eq!(rep.breakdown, want_rep.breakdown);
        assert_eq!(rep.costs.lambda(), want_rep.costs.lambda());
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let v = 4;
        let prog = TokenRing { rounds: 4 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let mut cfg = config_for(&prog, init(), v, 2, 16);
        cfg.halt_after_superstep = Some(1);
        let ckpt = match SeqEmRunner::new(cfg.clone()).run_until(&prog, init()).unwrap() {
            RunOutcome::Interrupted(c) => c,
            RunOutcome::Complete { .. } => panic!("expected halt"),
        };
        let mut other = cfg.clone();
        other.block_bytes = 32; // different layout
        let e = SeqEmRunner::new(other).resume(&prog, ckpt).unwrap_err();
        assert!(matches!(e, EmError::BadConfig(_)), "got {e:?}");
    }

    #[test]
    fn run_maps_halt_to_interrupted_error() {
        let v = 4;
        let prog = TokenRing { rounds: 4 };
        let init = || (0..v as u64).map(|i| vec![i]).collect::<Vec<_>>();
        let mut cfg = config_for(&prog, init(), v, 2, 16);
        cfg.halt_after_superstep = Some(1);
        let e = SeqEmRunner::new(cfg).run(&prog, init()).unwrap_err();
        assert_eq!(e, EmError::Interrupted { superstep: 1 });
    }

    #[test]
    fn injected_transient_faults_heal_without_changing_results() {
        let v = 6;
        let prog = AllToAll { items_per_pair: 7 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, 2, 32);
        let (want, want_rep) = SeqEmRunner::new(cfg.clone()).run(&prog, init()).unwrap();

        let stats = std::sync::Arc::new(cgmio_pdm::FaultStats::default());
        let mut fcfg = cfg.clone();
        fcfg.fault = Some(cgmio_pdm::FaultPlan::transient(7, 0.05).with_observer(stats.clone()));
        fcfg.retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
        let (got, rep) = SeqEmRunner::new(fcfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        // Retries are recovery traffic, not model I/O: counts unchanged.
        assert_eq!(rep.io, want_rep.io);
        assert!(stats.counts().total_errors() > 0, "no faults were injected");
        // The same counts are first-class in the report, plus the
        // retries that healed them.
        assert_eq!(rep.faults, Some(stats.counts()));
        assert!(rep.retries > 0, "transient faults must have been retried");
    }

    #[test]
    fn fault_counts_reported_without_explicit_observer() {
        let v = 4;
        let prog = AllToAll { items_per_pair: 5 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let mut cfg = config_for(&prog, init(), v, 2, 32);
        cfg.fault = Some(cgmio_pdm::FaultPlan::transient(9, 0.05));
        cfg.retry = cgmio_io::RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
        let (_, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
        let f = rep.faults.expect("fault plan set => counts reported");
        assert!(f.total_errors() > 0);
        assert_eq!(rep.retries, f.read_transient + f.write_transient + f.torn_writes);
    }

    #[test]
    fn obs_spans_and_metrics_leave_io_stats_untouched() {
        let v = 5;
        let prog = AllToAll { items_per_pair: 6 };
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let base_cfg = config_for(&prog, init(), v, 2, 32);
        let (want, want_rep) = SeqEmRunner::new(base_cfg.clone()).run(&prog, init()).unwrap();

        let obs = cgmio_obs::Obs::new();
        let mut cfg = base_cfg.clone();
        cfg.obs = Some(obs.clone());
        cfg.backend = crate::BackendSpec::Concurrent {
            dir: None,
            opts: cgmio_io::IoEngineOpts { trace: true, ..Default::default() },
        };
        let (got, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert_eq!(got, want);
        assert_eq!(rep.io, want_rep.io, "observability must not change accounting");
        assert_eq!(rep.breakdown, want_rep.breakdown);

        // Every instrumented phase of the superstep loop left spans…
        let phases: std::collections::BTreeSet<Phase> =
            obs.spans().iter().map(|s| s.phase).collect();
        for ph in [
            Phase::Setup,
            Phase::CtxLoad,
            Phase::MatrixRead,
            Phase::Rounds,
            Phase::MatrixWrite,
            Phase::Barrier,
            Phase::Readout,
        ] {
            assert!(phases.contains(&ph), "missing {ph} span");
        }
        // …and the trace events carry runner-published phases.
        assert!(
            rep.io_trace.iter().any(|e| e.phase == Phase::MatrixWrite),
            "trace events must be stamped with the active phase"
        );
        // Per-drive service histograms landed in the registry.
        let snap = obs.snapshot();
        assert!(
            snap.get("cgmio_io_service_us", &[("drive", "0"), ("kind", "write"), ("proc", "0")])
                .is_some(),
            "per-drive service histogram missing"
        );
    }

    #[test]
    fn fully_parallel_io_with_balanced_traffic() {
        // With equal-size block-multiple messages and contexts, nearly
        // every op should use all D disks.
        let v = 4;
        let d = 4;
        let prog = AllToAll { items_per_pair: 8 }; // 64-byte msgs = 2 blocks of 32
        let init = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
        let cfg = config_for(&prog, init(), v, d, 32);
        let (_, rep) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
        assert!(
            rep.io.parallel_efficiency() > 0.5,
            "efficiency = {}",
            rep.io.parallel_efficiency()
        );
    }
}
