//! EM-CGM machine configuration and the paper's parameter conditions.

use std::path::PathBuf;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use cgmio_io::{
    AsyncFileStorage, ConcurrentStorage, IoEngineOpts, RetryPolicy, RetryStorage, TraceHandle,
};
use cgmio_obs::{Counter, Obs};
use cgmio_pdm::{
    DiskArray, DiskGeometry, FaultInjector, FaultPlan, FaultStats, FileStorage, MemStorage,
    TrackRange, TrackStorage,
};

use crate::context::CtxPaging;
use crate::measure::Requirements;
use crate::EmError;

/// Representation knobs for the `10^5`–`10^6` virtual-processor range.
///
/// These choose *representations*, never semantics: sparse vs dense
/// message-length tables and paged vs resident context-length tables
/// are bit-identical in finals, `IoStats`, and checkpoint manifests
/// (property-tested in `tests/scale_equivalence.rs`). The struct is
/// therefore — like [`EmConfig::obs`] and [`EmConfig::pipeline_depth`]
/// — **excluded from [`EmConfig::config_hash`]**: a checkpoint taken
/// with one tuning resumes under any other.
///
/// The `None` defaults auto-select by `v`: dense/resident at or below
/// [`Self::AUTO_THRESHOLD`] virtual processors, sparse/paged above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleTuning {
    /// Force the sparse (`Some(true)`) or dense (`Some(false)`)
    /// message-matrix length table; `None` auto-selects by `v`.
    pub sparse_msg_lens: Option<bool>,
    /// Force the paged (`Some(true)`) or resident (`Some(false)`)
    /// context-store length table; `None` auto-selects by `v`.
    pub paged_ctx_lens: Option<bool>,
    /// Lengths per page of the paged context table (one side-store
    /// track of `8 * ctx_page_entries` bytes each).
    pub ctx_page_entries: usize,
    /// Hot-page budget of the paged context table: resident table
    /// memory is bounded by `ctx_resident_pages * ctx_page_entries * 8`
    /// bytes regardless of `v`. Sized to comfortably cover the pipeline
    /// window plus the sequential scan's current page.
    pub ctx_resident_pages: usize,
}

impl Default for ScaleTuning {
    fn default() -> Self {
        Self {
            sparse_msg_lens: None,
            paged_ctx_lens: None,
            ctx_page_entries: 4096,
            ctx_resident_pages: 8,
        }
    }
}

impl ScaleTuning {
    /// `v` above which the auto-selecting defaults switch to the sparse
    /// message table and the paged context table.
    pub const AUTO_THRESHOLD: usize = 4096;

    /// Resolved message-table representation for a machine of `v`
    /// virtual processors.
    pub fn sparse_msgs(&self, v: usize) -> bool {
        self.sparse_msg_lens.unwrap_or(v > Self::AUTO_THRESHOLD)
    }

    /// Resolved context-table residency policy for a worker of `count`
    /// local slots on a machine of `v` virtual processors.
    pub fn ctx_paging(&self, v: usize) -> CtxPaging {
        if self.paged_ctx_lens.unwrap_or(v > Self::AUTO_THRESHOLD) {
            CtxPaging::Paged {
                page_entries: self.ctx_page_entries.max(1),
                resident_pages: self.ctx_resident_pages.max(1),
            }
        } else {
            CtxPaging::Resident
        }
    }
}

/// Which physical storage sits behind each real processor's disk array.
///
/// All backends are observationally equivalent through `DiskArray` —
/// identical contents, identical `IoStats`, identical legality errors
/// (property-tested in `cgmio-io`) — so the choice only affects
/// wall-clock behaviour and persistence.
#[derive(Clone, Default)]
pub enum BackendSpec {
    /// In-memory tracks (the default; fastest, nothing persisted).
    #[default]
    Mem,
    /// Synchronous files, one per simulated drive, under `dir`
    /// (per-processor subdirectory `p{t}` for the parallel runner).
    SyncFile {
        /// Directory holding the drive files.
        dir: PathBuf,
    },
    /// The `cgmio-io` concurrent engine: per-drive worker threads with
    /// read-ahead and write-behind. `dir = None` runs it over in-memory
    /// tracks (concurrency without touching the filesystem).
    Concurrent {
        /// Directory for the drive files, or `None` for memory-backed.
        dir: Option<PathBuf>,
        /// Engine tuning (queue depth, prefetch cache, durability,
        /// tracing). `opts.proc` is overwritten with the worker index.
        opts: IoEngineOpts,
    },
    /// The `cgmio-io` async submission backend
    /// ([`cgmio_io::AsyncFileStorage`]): one reactor per drive that
    /// drains its submission queue in batches and coalesces
    /// adjacent-track ops into single vectored transfers against real
    /// drive files under `dir` (O_DIRECT where the filesystem allows
    /// it). Same `disk{d}.dat` layout as [`BackendSpec::SyncFile`].
    AsyncFile {
        /// Directory for the drive files (per-processor subdirectory
        /// `p{t}` for the parallel runner).
        dir: PathBuf,
        /// Engine tuning (queue depth, durability, tracing).
        /// `opts.proc` is overwritten with the worker index. Prefetch
        /// hints are no-ops on this backend (there is no cache), so
        /// `opts.prefetch_cap`/`ignore_hints` have no effect.
        opts: IoEngineOpts,
    },
    /// A caller-owned storage — typically one `Arc`'d
    /// [`cgmio_io::ConcurrentStorage`] multiplexed between many runs by
    /// the job service — of which this run sees only a namespaced
    /// per-drive track window (see [`cgmio_pdm::TrackRange`]).
    ///
    /// Real processor `t` is wrapped in the window
    /// `[base_track + t·worker_span_tracks, base_track +
    /// (t+1)·worker_span_tracks)`, so a run with `p` workers reserves
    /// `p · worker_span_tracks` tracks per drive in total; size the
    /// span with [`EmConfig::tracks_per_worker`]. The storage must have
    /// the same [`DiskGeometry`] as this config, and windows handed to
    /// concurrently executing runs must be disjoint and previously
    /// unwritten — then bytes, `IoStats`, and errors are bit-identical
    /// to a solo run on a fresh backend (property-tested in
    /// `tests/service_isolation.rs`).
    Shared {
        /// The shared backend (the engine outlives every run using it).
        storage: Arc<dyn TrackStorage>,
        /// First track (per drive) of this run's reservation.
        base_track: u64,
        /// Tracks reserved per real processor, per drive.
        worker_span_tracks: u64,
    },
}

impl std::fmt::Debug for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Mem => f.debug_struct("Mem").finish(),
            BackendSpec::SyncFile { dir } => f.debug_struct("SyncFile").field("dir", dir).finish(),
            BackendSpec::Concurrent { dir, opts } => {
                f.debug_struct("Concurrent").field("dir", dir).field("opts", opts).finish()
            }
            BackendSpec::AsyncFile { dir, opts } => {
                f.debug_struct("AsyncFile").field("dir", dir).field("opts", opts).finish()
            }
            // `storage` is a type-erased trait object with no Debug bound.
            BackendSpec::Shared { base_track, worker_span_tracks, .. } => f
                .debug_struct("Shared")
                .field("base_track", base_track)
                .field("worker_span_tracks", worker_span_tracks)
                .finish_non_exhaustive(),
        }
    }
}

/// One real processor's disk array plus the observability handles that
/// travel with it, as built by [`EmConfig::build_disks`].
///
/// The runners drain `trace` into the run report, read `retries` after
/// the run (the counter is live across the whole storage stack — the
/// engine's drive workers or the sync path's [`RetryStorage`]), and
/// snapshot `faults` to attribute injected-fault counts to the run.
pub struct DiskHandles {
    /// The disk array (counts I/O above whichever backend was built).
    pub disks: DiskArray,
    /// Event-trace handle, when the concurrent engine was configured
    /// with `opts.trace`.
    pub trace: Option<TraceHandle>,
    /// Live transient-retry counter for this array's storage stack.
    /// Registered as `cgmio_io_retries_total{proc}` when
    /// [`EmConfig::obs`] is set; detached (but still counting) else.
    pub retries: Counter,
    /// Injected-fault counters, present iff [`EmConfig::fault`] is set.
    /// The plan's own observer when it has one, else one attached here.
    pub faults: Option<Arc<FaultStats>>,
    /// Live count of deferred write-behind errors discarded because the
    /// engine's bounded retained-error list was full. Always zero for
    /// the synchronous backends (they fail writes in-line).
    pub deferred_drops: Counter,
    /// Shared handle onto the concurrent engine's live prefetch-cache
    /// capacity (blocks per drive), present only for the `Concurrent`
    /// backend. The auto-tuner resizes the window through it between
    /// supersteps; `None` on backends with no prefetch cache, where
    /// prefetch tuning is a no-op.
    pub prefetch_cap: Option<Arc<AtomicUsize>>,
}

/// Configuration of the simulated EM-CGM target machine.
///
/// The paper's model parameters map as: `v` virtual processors, `p` real
/// processors, `D = num_disks` drives **per real processor**, block size
/// `B = block_bytes`, internal memory `M = mem_bytes` per real processor.
///
/// # Examples
///
/// Size a machine from measured requirements and run a program:
///
/// ```
/// use cgmio_core::{measure_requirements, EmConfig, SeqEmRunner};
/// use cgmio_model::demo::TokenRing;
///
/// let prog = TokenRing { rounds: 3 };
/// let init = || (0..4u64).map(|i| vec![i]).collect::<Vec<_>>();
///
/// // Dry-run in memory to measure λ, h, μ — then size the slots from them.
/// let (_, _, req) = measure_requirements(&prog, init()).unwrap();
/// let cfg = EmConfig::from_requirements(4, 1, 2, 64, &req);
///
/// let (finals, report) = SeqEmRunner::new(cfg).run(&prog, init()).unwrap();
/// assert_eq!(finals.len(), 4);
/// assert_eq!(report.costs.lambda(), 3);
/// assert!(report.io.total_ops() > 0); // contexts really moved through disk
/// ```
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Virtual processors of the simulated CGM machine.
    pub v: usize,
    /// Real processors of the target machine (1 for Algorithm 2).
    pub p: usize,
    /// Disks per real processor (`D`).
    pub num_disks: usize,
    /// Block size in bytes (`B`, in bytes rather than items).
    pub block_bytes: usize,
    /// Internal memory per real processor, bytes (`M`). Used for the
    /// memory audit; exceeded ⇒ error in strict mode, report otherwise.
    pub mem_bytes: usize,
    /// Fixed message-slot capacity, in items. Any single (src → dst)
    /// message larger than this aborts the run. Balanced programs need
    /// only `h/v + (v−1)/2`.
    pub msg_slot_items: usize,
    /// Fixed context-slot capacity, in bytes (`≥ μ`).
    pub max_ctx_bytes: usize,
    /// Fail (rather than record) when memory or parameter checks fail.
    pub strict: bool,
    /// Livelock guard.
    pub round_limit: usize,
    /// Storage backend for each real processor's disk array.
    pub backend: BackendSpec,
    /// When set, write a [`crate::checkpoint::CheckpointManifest`] into
    /// this directory at every superstep barrier (atomically, after an
    /// fsync'd flush), enabling `resume_from` after a crash. Meaningful
    /// persistence needs a file-backed [`Self::backend`] rooted in a
    /// stable directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Testing/operations hook: stop the run after this superstep
    /// completes (0-based), returning
    /// [`crate::checkpoint::RunOutcome::Interrupted`] from `run_until`
    /// instead of driving to completion. `None` runs to completion.
    pub halt_after_superstep: Option<usize>,
    /// Deterministic fault-injection plan applied *beneath* the backend
    /// (see [`cgmio_pdm::fault`]). Synchronous backends are additionally
    /// wrapped in retry-with-backoff ([`Self::retry`]); the concurrent
    /// engine retries inside its drive workers per its own
    /// `opts.retry`. `None` (the default) adds no wrapper at all.
    pub fault: Option<FaultPlan>,
    /// Retry policy used for the `Mem`/`SyncFile` backends when
    /// [`Self::fault`] is set (ignored otherwise, and ignored by the
    /// `Concurrent` backend, which has its own `opts.retry`).
    pub retry: RetryPolicy,
    /// Optional observability handle (see `cgmio-obs`): runners publish
    /// per-phase spans into it, the storage stack registers per-drive
    /// metrics, and run reports carry its fault/retry totals.
    /// Instrumentation never changes simulation semantics or `IoStats`,
    /// and the field is deliberately **excluded from
    /// [`Self::config_hash`]** so checkpoints taken with observability
    /// on resume with it off (and vice versa).
    pub obs: Option<Obs>,
    /// Superstep software-pipeline depth: how many virtual processors
    /// ahead of the one currently computing have their context and inbox
    /// reads *pre-issued as demand reads* (not hints). `0` — the default
    /// — is the fully serial loop; `2` is a good starting point for the
    /// `Concurrent` backend (see the OPERATIONS depth-tuning guide).
    /// Synchronous backends accept any depth and simply perform the
    /// reads at wait time, so equivalence tests can sweep depths on
    /// every backend. The depth changes *when* I/O happens on the wall
    /// clock, never what the cost model counts: `IoStats`, op
    /// breakdowns, final states, and checkpoint manifests are
    /// bit-identical at every depth (property-tested in
    /// `tests/pipeline_equivalence.rs`), and the field is therefore —
    /// like [`Self::obs`] — **excluded from [`Self::config_hash`]**, so
    /// a checkpoint taken at one depth resumes at any other.
    pub pipeline_depth: usize,
    /// Representation tuning for large `v` (sparse message tables,
    /// paged context tables). Pure representation — bit-identical
    /// results — and therefore **excluded from [`Self::config_hash`]**.
    pub scale: ScaleTuning,
    /// Barrier-time feedback auto-tuner (see `cgmio-tune`): when
    /// enabled, the runners read per-superstep deltas of the
    /// stall/queue-wait histograms at each barrier and adapt
    /// [`Self::pipeline_depth`] and the concurrent engine's prefetch
    /// window for the next superstep. Tuning only ever moves knobs
    /// already proven accounting-neutral (`pipeline_depth`, the hint
    /// cache) at round boundaries where the pipeline window has fully
    /// drained, so finals, `IoStats`, fault/retry totals, and
    /// checkpoint manifests stay bit-identical tuner-on vs tuner-off
    /// (property-tested in `tests/autotune_equivalence.rs`). Like
    /// [`Self::obs`] and [`Self::pipeline_depth`], the field is
    /// **excluded from [`Self::config_hash`]**: a checkpoint taken with
    /// tuning on resumes with it off and vice versa.
    pub autotune: cgmio_tune::Autotune,
}

impl EmConfig {
    /// A config sized from measured [`Requirements`] with headroom:
    /// slots exactly fit the measured maxima.
    pub fn from_requirements(
        v: usize,
        p: usize,
        num_disks: usize,
        block_bytes: usize,
        req: &Requirements,
    ) -> Self {
        Self {
            v,
            p,
            num_disks,
            block_bytes,
            // M must hold one context plus its in/out message traffic.
            mem_bytes: (req.max_ctx_bytes
                + 2 * req.max_proc_recv_bytes.max(req.max_proc_sent_bytes))
            .max(num_disks * block_bytes),
            msg_slot_items: req.max_msg_items.max(1),
            max_ctx_bytes: req.max_ctx_bytes.max(8),
            strict: false,
            round_limit: cgmio_model::DEFAULT_ROUND_LIMIT,
            backend: BackendSpec::Mem,
            checkpoint_dir: None,
            halt_after_superstep: None,
            fault: None,
            retry: RetryPolicy::default(),
            obs: None,
            pipeline_depth: 0,
            scale: ScaleTuning::default(),
            autotune: cgmio_tune::Autotune::default(),
        }
    }

    /// Hash of the fields that determine the on-disk layout and the
    /// simulation semantics (`v`, `p`, `D`, `B`, slot sizes). Stored in
    /// checkpoint manifests; `resume_from` refuses a manifest whose hash
    /// differs — resuming under a different layout would silently read
    /// the wrong tracks.
    pub fn config_hash(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for x in [
            self.v as u64,
            self.p as u64,
            self.num_disks as u64,
            self.block_bytes as u64,
            self.msg_slot_items as u64,
            self.max_ctx_bytes as u64,
        ] {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Build the disk array of real processor `worker_idx` according to
    /// [`Self::backend`], bundled with the observability handles the
    /// runners thread into run reports (see [`DiskHandles`]). File
    /// backends get a per-processor subdirectory `p{worker_idx}` so the
    /// `p` arrays never share files.
    pub fn build_disks(&self, worker_idx: usize) -> Result<DiskHandles, EmError> {
        let geom = self.geometry();
        let retries = match &self.obs {
            Some(o) => {
                o.metrics().counter("cgmio_io_retries_total", &[("proc", worker_idx.to_string())])
            }
            None => Counter::detached(),
        };
        // Deterministic injection must differ per worker or every real
        // processor would fault on the same (disk, op) pairs. Always
        // keep a handle on the injector's counters (attaching one when
        // the plan has no observer) so reports can surface them.
        let mut faults: Option<Arc<FaultStats>> = None;
        let plan = self.fault.clone().map(|mut p| {
            p.seed = p.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker_idx as u64));
            faults = Some(Arc::clone(p.observer.get_or_insert_with(Default::default)));
            p
        });
        // Mem/SyncFile: inner -> FaultInjector -> RetryStorage.
        let wrap_sync = |inner: Box<dyn TrackStorage>, retries: Counter| -> Box<dyn TrackStorage> {
            match &plan {
                Some(p) => Box::new(RetryStorage::with_counter(
                    FaultInjector::new(inner, geom.num_disks, p.clone()),
                    self.retry,
                    retries,
                )),
                None => inner,
            }
        };
        match &self.backend {
            BackendSpec::Mem => {
                let storage = wrap_sync(Box::new(MemStorage::new(geom)), retries.clone());
                Ok(DiskHandles {
                    disks: DiskArray::with_storage(geom, storage),
                    trace: None,
                    retries,
                    faults,
                    deferred_drops: Counter::detached(),
                    prefetch_cap: None,
                })
            }
            BackendSpec::SyncFile { dir } => {
                let fs = FileStorage::open(&dir.join(format!("p{worker_idx}")), geom)
                    .map_err(|e| EmError::BadConfig(format!("opening file backend: {e}")))?;
                let storage = wrap_sync(Box::new(fs), retries.clone());
                Ok(DiskHandles {
                    disks: DiskArray::with_storage(geom, storage),
                    trace: None,
                    retries,
                    faults,
                    deferred_drops: Counter::detached(),
                    prefetch_cap: None,
                })
            }
            BackendSpec::Concurrent { dir, opts } => {
                let mut opts = opts.clone();
                opts.proc = worker_idx;
                opts.obs = self.obs.clone();
                // Faults are injected beneath the engine; its drive
                // workers retry per opts.retry, so no RetryStorage here.
                // With a plan active, prefetch hints are discarded so
                // fault rolls bind to demand accesses only — hint
                // traffic varies with pipeline depth and cache
                // pressure, and must not perturb the deterministic
                // fault/retry totals.
                if plan.is_some() {
                    opts.ignore_hints = true;
                }
                let inner: Arc<dyn TrackStorage> = match dir {
                    Some(d) => {
                        let fs = FileStorage::open(&d.join(format!("p{worker_idx}")), geom)
                            .map_err(|e| {
                                EmError::BadConfig(format!("opening concurrent backend: {e}"))
                            })?;
                        match &plan {
                            Some(p) => Arc::new(FaultInjector::new(fs, geom.num_disks, p.clone())),
                            None => Arc::new(fs),
                        }
                    }
                    None => {
                        let mem = MemStorage::new(geom);
                        match &plan {
                            Some(p) => Arc::new(FaultInjector::new(mem, geom.num_disks, p.clone())),
                            None => Arc::new(mem),
                        }
                    }
                };
                let storage = ConcurrentStorage::new(inner, geom.num_disks, opts);
                let trace = storage.trace_handle();
                // The engine counts retries inside its drive workers;
                // report through its counter (same registry series as
                // the sync path when `obs` is attached).
                let retries = storage.retry_counter();
                let deferred_drops = storage.deferred_drop_counter();
                let prefetch_cap = Some(storage.prefetch_cap_handle());
                Ok(DiskHandles {
                    disks: DiskArray::with_storage(geom, Box::new(storage)),
                    trace,
                    retries,
                    faults,
                    deferred_drops,
                    prefetch_cap,
                })
            }
            BackendSpec::AsyncFile { dir, opts } => {
                let mut opts = opts.clone();
                opts.proc = worker_idx;
                opts.obs = self.obs.clone();
                let worker_dir = dir.join(format!("p{worker_idx}"));
                // Faults go beneath the reactors, which then service
                // ops per-track in queue order (the layered path): the
                // injector sees the same per-drive demand sequence as
                // under the other backends, keeping fault/retry totals
                // deterministic. Without a plan the reactors own the
                // drive files directly and coalesce for real.
                let storage = match &plan {
                    Some(p) => {
                        let fs = FileStorage::open(&worker_dir, geom).map_err(|e| {
                            EmError::BadConfig(format!("opening async backend: {e}"))
                        })?;
                        AsyncFileStorage::over(
                            Arc::new(FaultInjector::new(fs, geom.num_disks, p.clone())),
                            geom.num_disks,
                            opts,
                        )
                    }
                    None => AsyncFileStorage::open_dir(&worker_dir, geom, opts)
                        .map_err(|e| EmError::BadConfig(format!("opening async backend: {e}")))?,
                };
                let trace = storage.trace_handle();
                let retries = storage.retry_counter();
                let deferred_drops = storage.deferred_drop_counter();
                Ok(DiskHandles {
                    disks: DiskArray::with_storage(geom, Box::new(storage)),
                    trace,
                    retries,
                    faults,
                    deferred_drops,
                    // No prefetch cache on the async reactors; hint
                    // tuning is inert here.
                    prefetch_cap: None,
                })
            }
            BackendSpec::Shared { storage, base_track, worker_span_tracks } => {
                // Each real processor gets its own disjoint window of
                // the reservation; the fault/retry wrappers compose
                // above the window exactly as they do above Mem.
                let base = base_track + *worker_span_tracks * worker_idx as u64;
                let window = TrackRange::new(Arc::clone(storage), base, *worker_span_tracks);
                let storage = wrap_sync(Box::new(window), retries.clone());
                Ok(DiskHandles {
                    disks: DiskArray::with_storage(geom, storage),
                    trace: None,
                    retries,
                    faults,
                    deferred_drops: Counter::detached(),
                    prefetch_cap: None,
                })
            }
        }
    }

    /// Per-drive tracks one real processor of this machine needs for a
    /// program whose messages are items of `msg_item_bytes` bytes — the
    /// context store plus the two ping-pong message matrices, exactly as
    /// the runners lay them out. This is the `worker_span_tracks` to
    /// reserve per worker for [`BackendSpec::Shared`] (a run with `p`
    /// workers needs `p` consecutive spans).
    pub fn tracks_per_worker(&self, msg_item_bytes: usize) -> u64 {
        // Workers split the v virtual processors into contiguous ranges
        // of at most ceil(v/p); span for the largest range bounds all.
        let n_local = self.v.div_ceil(self.p) as u64;
        let bb = self.block_bytes as u64;
        let d = self.num_disks as u64;
        // ContextStore: n_local slots of ceil(max_ctx_bytes/B) blocks,
        // consecutive format, one slack track.
        let ctx_slot_blocks = (self.max_ctx_bytes as u64).div_ceil(bb).max(1);
        let ctx_tracks = (n_local * ctx_slot_blocks).div_ceil(d) + 1;
        // MessageMatrix: one band of v messages per local destination,
        // staggered format, one slack track — twice (ping-pong).
        let blocks_per_msg = ((self.msg_slot_items * msg_item_bytes) as u64).div_ceil(bb).max(1);
        let tracks_per_band = (self.v as u64 * blocks_per_msg + d - 1).div_ceil(d);
        let mat_tracks = tracks_per_band * n_local + 1;
        ctx_tracks + 2 * mat_tracks
    }

    /// Disk geometry of each real processor's array.
    pub fn geometry(&self) -> DiskGeometry {
        DiskGeometry::new(self.num_disks, self.block_bytes)
    }

    /// Block size in items of `item_bytes` each (rounded down; the
    /// engine packs bytes, so no alignment is required — this is for
    /// parameter checks only).
    pub fn block_items(&self, item_bytes: usize) -> usize {
        (self.block_bytes / item_bytes).max(1)
    }

    /// Sanity-check structural fields.
    pub fn validate(&self) -> Result<(), EmError> {
        if self.v == 0 {
            return Err(EmError::BadConfig("v must be positive".into()));
        }
        if self.p == 0 || self.p > self.v {
            return Err(EmError::BadConfig(format!(
                "need 1 <= p <= v, got p={} v={}",
                self.p, self.v
            )));
        }
        if self.msg_slot_items == 0 {
            return Err(EmError::BadConfig("msg_slot_items must be positive".into()));
        }
        if self.max_ctx_bytes == 0 {
            return Err(EmError::BadConfig("max_ctx_bytes must be positive".into()));
        }
        // PDM requires M >= D*B (one block from each disk in memory).
        if self.mem_bytes < self.num_disks * self.block_bytes {
            return Err(EmError::BadConfig(format!(
                "M = {} bytes < D*B = {} bytes",
                self.mem_bytes,
                self.num_disks * self.block_bytes
            )));
        }
        Ok(())
    }

    /// Evaluate the paper's parameter conditions for a problem of
    /// `n_items` items of `item_bytes` bytes each.
    pub fn check_params(&self, n_items: u64, item_bytes: usize) -> ParamCheck {
        let v = self.v as u64;
        let d = self.num_disks as u64;
        let b_items = self.block_items(item_bytes) as u64;
        ParamCheck {
            n_ge_vdb: n_items >= v * d * b_items,
            lemma2: cgmio_routing::lemma2_feasible(n_items, v, b_items),
            b_le_n_over_v2: b_items <= (n_items / (v * v)).max(1),
            m_ge_n_over_v: self.mem_bytes as u64 >= n_items * item_bytes as u64 / v,
        }
    }
}

/// Which of the paper's parameter conditions hold for a given run.
///
/// These are the premises of Theorems 2 and 3; the engine runs correctly
/// regardless, but the `O(N/(pDB))` I/O bound is only promised when all
/// hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamCheck {
    /// `N = Ω(vDB)`: enough data to keep all disks of all virtual
    /// processors busy.
    pub n_ge_vdb: bool,
    /// Lemma 2: `N ≥ v²B + v²(v−1)/2`, so balancing can guarantee
    /// block-sized minimum messages.
    pub lemma2: bool,
    /// `B = O(N/v²)`: a block is no larger than a balanced message.
    pub b_le_n_over_v2: bool,
    /// `M = Ω(N/v)`: one virtual processor's context fits in memory.
    pub m_ge_n_over_v: bool,
}

impl ParamCheck {
    /// All conditions hold.
    pub fn all_ok(&self) -> bool {
        self.n_ge_vdb && self.lemma2 && self.b_le_n_over_v2 && self.m_ge_n_over_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EmConfig {
        EmConfig {
            v: 8,
            p: 2,
            num_disks: 2,
            block_bytes: 64,
            mem_bytes: 1 << 20,
            msg_slot_items: 32,
            max_ctx_bytes: 4096,
            strict: false,
            round_limit: 100,
            backend: BackendSpec::Mem,
            checkpoint_dir: None,
            halt_after_superstep: None,
            fault: None,
            retry: RetryPolicy::default(),
            obs: None,
            pipeline_depth: 0,
            scale: ScaleTuning::default(),
            autotune: cgmio_tune::Autotune::default(),
        }
    }

    #[test]
    fn valid_config_passes() {
        base().validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let mut c = base();
        c.p = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.p = 9;
        assert!(c.validate().is_err());
        let mut c = base();
        c.mem_bytes = 10;
        assert!(c.validate().is_err());
        let mut c = base();
        c.msg_slot_items = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn param_check_thresholds() {
        let c = base();
        // item = 8 bytes -> B = 8 items; v = 8, D = 2 -> vDB = 128 items
        let chk = c.check_params(128, 8);
        assert!(chk.n_ge_vdb);
        let chk = c.check_params(127, 8);
        assert!(!chk.n_ge_vdb);
        // Lemma 2: v^2*B + v^2(v-1)/2 = 64*8 + 64*3.5 = 512 + 224 = 736
        assert!(c.check_params(736, 8).lemma2);
        assert!(!c.check_params(735, 8).lemma2);
    }

    #[test]
    fn tracks_per_worker_matches_runner_layout() {
        use crate::context::ContextStore;
        use crate::msgmatrix::MessageMatrix;
        for (v, p) in [(8usize, 1usize), (8, 2), (7, 3), (16, 4)] {
            let mut c = base();
            c.v = v;
            c.p = p;
            let n_local = v.div_ceil(p);
            let ctx = ContextStore::new(c.num_disks, c.block_bytes, 0, n_local, c.max_ctx_bytes);
            let mat = MessageMatrix::<u64>::new(
                c.num_disks,
                c.block_bytes,
                0,
                v,
                0,
                n_local,
                c.msg_slot_items,
            );
            assert_eq!(
                c.tracks_per_worker(8),
                ctx.total_tracks() + 2 * mat.total_tracks(),
                "span formula drifted from the runners' layout (v={v} p={p})"
            );
        }
    }

    #[test]
    fn shared_backend_windows_are_disjoint_per_worker() {
        let pool: Arc<dyn TrackStorage> = Arc::new(MemStorage::new(DiskGeometry::new(2, 64)));
        let mut c = base();
        c.backend = BackendSpec::Shared {
            storage: Arc::clone(&pool),
            base_track: 5,
            worker_span_tracks: 10,
        };
        let mut h0 = c.build_disks(0).unwrap();
        let mut h1 = c.build_disks(1).unwrap();
        let addr = cgmio_pdm::TrackAddr::new(0, 0);
        h0.disks.write_fifo(&[cgmio_pdm::IoRequest { addr, data: vec![1u8] }]).unwrap();
        h1.disks.write_fifo(&[cgmio_pdm::IoRequest { addr, data: vec![2u8] }]).unwrap();
        // Worker windows land at base + t*span on the shared pool.
        assert_eq!(pool.read_track(0, 5).unwrap()[0], 1);
        assert_eq!(pool.read_track(0, 15).unwrap()[0], 2);
        // Debug impl elides the trait object but shows the window.
        let dbg = format!("{:?}", c.backend);
        assert!(dbg.contains("Shared") && dbg.contains("base_track: 5"), "{dbg}");
    }

    #[test]
    fn block_items_rounds_down() {
        let c = base();
        assert_eq!(c.block_items(8), 8);
        assert_eq!(c.block_items(24), 2);
        assert_eq!(c.block_items(1000), 1);
    }
}
