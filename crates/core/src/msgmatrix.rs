//! The on-disk message matrix — step (d) of Algorithm 2 and the staggered
//! format of the paper's Figure 2.
//!
//! Messages are stored in fixed slots of `slot_items` items
//! (`b′ = ⌈slot_bytes/B⌉` blocks): slot `(src, dst)` lives in destination
//! band `dst`, staggered so that both the write order of a source
//! (destinations ascending) and the read order of a destination (sources
//! ascending) advance round-robin across the disks — so with balanced
//! messages every parallel I/O uses all `D` drives.
//!
//! Only the blocks actually occupied by a message are transferred; slot
//! capacity bounds what *may* be sent, and the engine verifies it. With
//! unbalanced traffic the round-robin property degrades — measurably: the
//! ablation benchmarks compare balanced vs unbalanced I/O efficiency
//! through exactly this code path.
//!
//! # Length tables at scale
//!
//! The on-disk layout is a full `v × dst_count` grid, but the in-memory
//! *length table* that tracks which slots are occupied does not have to
//! be: in the coarse-grained regime a destination hears from a handful
//! of sources per round, so a dense `dst_count × v` table of `u32`s —
//! 4 TB at `v = 10^6` — is the scale blocker while holding almost
//! nothing. `LenTable` therefore has two representations behind one
//! interface: a dense grid (small `v`, matches the original layout
//! 1:1), and a CSR-style sparse table of sorted `(src, len)` rows
//! holding only non-empty slots. Both produce **identical** block
//! addresses, `IoStats`, and [`MessageMatrix::sparse_lens`] snapshots —
//! property-tested in `tests/scale_equivalence.rs` — so the choice is
//! purely a memory/time trade governed by
//! [`crate::ScaleTuning`].

use cgmio_pdm::{
    DiskArray, IoError, IoErrorKind, Item, MessageMatrixLayout, SpanDecoder, TrackAddr,
};

use crate::EmError;

/// Per-slot message lengths: which `(src, dst_local)` slots are occupied
/// and by how many items. Sparse rows hold only non-zero entries, sorted
/// by source (`u64` source ids — the addressing convention for the
/// `10^5`–`10^6` vp range).
enum LenTable {
    /// `rows[dst_local][src]` = items in that slot (0 = empty).
    Dense(Vec<Vec<u32>>),
    /// `rows[dst_local]` = sorted `(src, len)` with `len > 0` only.
    Sparse(Vec<Vec<(u64, u32)>>),
}

impl LenTable {
    fn new(dst_count: usize, v: usize, sparse: bool) -> Self {
        if sparse {
            LenTable::Sparse((0..dst_count).map(|_| Vec::new()).collect())
        } else {
            LenTable::Dense(vec![vec![0; v]; dst_count])
        }
    }

    fn set(&mut self, dst_local: usize, src: usize, len: u32) {
        match self {
            LenTable::Dense(rows) => rows[dst_local][src] = len,
            LenTable::Sparse(rows) => {
                let row = &mut rows[dst_local];
                match row.binary_search_by_key(&(src as u64), |&(s, _)| s) {
                    Ok(k) if len == 0 => {
                        row.remove(k);
                    }
                    Ok(k) => row[k].1 = len,
                    Err(_) if len == 0 => {}
                    Err(k) => row.insert(k, (src as u64, len)),
                }
            }
        }
    }

    fn clear(&mut self) {
        match self {
            LenTable::Dense(rows) => {
                rows.iter_mut().for_each(|r| r.iter_mut().for_each(|l| *l = 0))
            }
            LenTable::Sparse(rows) => rows.iter_mut().for_each(Vec::clear),
        }
    }

    fn rows(&self) -> usize {
        match self {
            LenTable::Dense(rows) => rows.len(),
            LenTable::Sparse(rows) => rows.len(),
        }
    }

    /// Non-empty `(src, len)` entries of one row, in source order — the
    /// one iteration shape both representations share.
    fn row_nonzero<'a>(&'a self, dst_local: usize) -> Box<dyn Iterator<Item = (usize, u32)> + 'a> {
        match self {
            LenTable::Dense(rows) => Box::new(
                rows[dst_local].iter().enumerate().filter(|&(_, &l)| l > 0).map(|(s, &l)| (s, l)),
            ),
            LenTable::Sparse(rows) => {
                Box::new(rows[dst_local].iter().map(|&(s, l)| (s as usize, l)))
            }
        }
    }
}

/// One superstep's worth of messages on disk, for the destinations local
/// to one real processor.
pub struct MessageMatrix<M: Item> {
    layout: MessageMatrixLayout,
    block_bytes: usize,
    slot_items: usize,
    /// Sources addressing this matrix (`v` of the machine).
    v: usize,
    /// First global destination id of band 0 (0 for the sequential
    /// engine; the block start of the owning real processor otherwise).
    dst_base: usize,
    lens: LenTable,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Item> MessageMatrix<M> {
    /// A matrix for `v` sources and `dst_count` local destinations
    /// (global ids `dst_base .. dst_base + dst_count`), slots of
    /// `slot_items` items, starting at `base_track`. The length table is
    /// dense below [`crate::ScaleTuning::AUTO_THRESHOLD`] sources and
    /// sparse above; use [`Self::new_with_mode`] to force either.
    pub fn new(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        v: usize,
        dst_base: usize,
        dst_count: usize,
        slot_items: usize,
    ) -> Self {
        let sparse = v > crate::ScaleTuning::AUTO_THRESHOLD;
        Self::new_with_mode(
            num_disks,
            block_bytes,
            base_track,
            v,
            dst_base,
            dst_count,
            slot_items,
            sparse,
        )
    }

    /// [`Self::new`] with an explicit length-table representation
    /// (`sparse = false` is the dense grid). Both modes are
    /// observationally identical; see the module docs.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_mode(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        v: usize,
        dst_base: usize,
        dst_count: usize,
        slot_items: usize,
        sparse: bool,
    ) -> Self {
        let slot_bytes = slot_items * M::SIZE;
        let blocks_per_msg = (slot_bytes as u64).div_ceil(block_bytes as u64).max(1);
        Self {
            layout: MessageMatrixLayout {
                num_disks,
                v: v.max(dst_count),
                blocks_per_msg,
                base_track,
            },
            block_bytes,
            slot_items,
            v,
            dst_base,
            lens: LenTable::new(dst_count, v, sparse),
            _marker: std::marker::PhantomData,
        }
    }

    /// Tracks this matrix occupies per drive.
    pub fn total_tracks(&self) -> u64 {
        self.layout.tracks_per_band() * self.lens.rows() as u64 + 1
    }

    /// Slot capacity in items.
    pub fn slot_items(&self) -> usize {
        self.slot_items
    }

    /// The per-slot length table in its canonical compact form: one row
    /// per local destination of sorted `(src, len)` pairs, non-empty
    /// slots only. Identical for both table representations — this is
    /// the shape checkpoint manifests persist.
    pub fn sparse_lens(&self) -> Vec<Vec<(u64, u32)>> {
        (0..self.lens.rows())
            .map(|d| self.lens.row_nonzero(d).map(|(s, l)| (s as u64, l)).collect())
            .collect()
    }

    /// Restore the per-slot length table from a checkpoint manifest
    /// (the compact form of [`Self::sparse_lens`]). The on-disk slot
    /// contents must match (they do when the array was flushed at the
    /// barrier the manifest describes).
    pub fn set_sparse_lens(&mut self, rows: Vec<Vec<(u64, u32)>>) -> Result<(), EmError> {
        if rows.len() != self.lens.rows() {
            return Err(EmError::BadConfig(format!(
                "checkpoint inbox table has {} rows, matrix has {}",
                rows.len(),
                self.lens.rows()
            )));
        }
        for row in &rows {
            for &(src, len) in row {
                if src >= self.v as u64 {
                    return Err(EmError::BadConfig(format!(
                        "checkpoint inbox source {src} out of range (v = {})",
                        self.v
                    )));
                }
                if len == 0 || len as usize > self.slot_items {
                    return Err(EmError::BadConfig(format!(
                        "checkpoint inbox length {len} outside (0, {}]",
                        self.slot_items
                    )));
                }
            }
            if row.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(EmError::BadConfig("checkpoint inbox row not sorted by source".into()));
            }
        }
        self.lens.clear();
        for (dst_local, row) in rows.into_iter().enumerate() {
            for (src, len) in row {
                self.lens.set(dst_local, src as usize, len);
            }
        }
        Ok(())
    }

    /// Reset all slots to empty (ping-pong reuse between supersteps).
    pub fn clear(&mut self) {
        self.lens.clear();
    }

    /// Total items received by local destination `dst_local`.
    pub fn received_items(&self, dst_local: usize) -> usize {
        self.lens.row_nonzero(dst_local).map(|(_, l)| l as usize).sum()
    }

    /// Largest inbox (total items) over all local destinations — the
    /// `max_received` of a round cost, computed straight off the length
    /// table (`O(dst_count + nnz)`, no per-row iterator allocation).
    pub fn max_received_items(&self) -> usize {
        match &self.lens {
            LenTable::Dense(rows) => {
                rows.iter().map(|r| r.iter().map(|&l| l as usize).sum()).max().unwrap_or(0)
            }
            LenTable::Sparse(rows) => {
                rows.iter().map(|r| r.iter().map(|&(_, l)| l as usize).sum()).max().unwrap_or(0)
            }
        }
    }

    /// Write a batch of messages in the given order, packed greedily into
    /// parallel I/O operations (the paper's `DiskWrite` FIFO). Entries
    /// use *global* destination ids; each must be local to this matrix.
    ///
    /// The whole batch is encoded once into a single pooled staging
    /// buffer (each message at a block-aligned offset) and submitted as
    /// one gather write — no per-block `Vec` allocations, and concurrent
    /// backends see one vectored submission per drive.
    pub fn write_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(usize, usize, &[M])],
    ) -> Result<(), EmError> {
        // Validate the whole batch before touching disk or the length
        // table, then size the staging buffer in one pass.
        let mut total_blocks = 0usize;
        for &(src, dst, items) in entries {
            if items.len() > self.slot_items {
                return Err(EmError::MsgSlotOverflow {
                    src,
                    dst,
                    len: items.len(),
                    slot: self.slot_items,
                });
            }
            total_blocks += (items.len() * M::SIZE).div_ceil(self.block_bytes);
        }
        let mut staging = disks.pool().checkout(total_blocks * self.block_bytes);
        // (stage offset, encoded bytes, src, dst_local) per non-empty entry
        let mut placed: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(entries.len());
        let mut off = 0usize;
        for &(src, dst, items) in entries {
            if items.is_empty() {
                continue;
            }
            let dst_local = dst - self.dst_base;
            let bytes = items.len() * M::SIZE;
            M::encode_into(items, &mut staging[off..off + bytes])
                .expect("staging sized to the batch");
            placed.push((off, bytes, src, dst_local));
            off += bytes.div_ceil(self.block_bytes) * self.block_bytes;
            self.lens.set(dst_local, src, items.len() as u32);
        }
        let mut writes: Vec<(TrackAddr, &[u8])> = Vec::with_capacity(total_blocks);
        for &(off, bytes, src, dst_local) in &placed {
            for (q, chunk) in staging[off..off + bytes].chunks(self.block_bytes).enumerate() {
                writes.push((self.layout.addr(src, dst_local, q as u64), chunk));
            }
        }
        disks.write_gather(&writes)?;
        Ok(())
    }

    /// Track addresses `read_for_dst(dst)` would touch right now — used
    /// as a prefetch hint for asynchronous backends (never counted).
    pub fn read_addrs_for_dst(&self, dst: usize) -> Vec<cgmio_pdm::TrackAddr> {
        let dst_local = dst - self.dst_base;
        let mut addrs = Vec::new();
        for (src, len) in self.lens.row_nonzero(dst_local) {
            let nblocks = (len as usize * M::SIZE).div_ceil(self.block_bytes);
            for q in 0..nblocks {
                addrs.push(self.layout.addr(src, dst_local, q as u64));
            }
        }
        addrs
    }

    /// Read the full inbox of global destination `dst`: `(src, items)`
    /// per *non-empty* source, in source order (step (b) of Algorithm
    /// 2) — the shape [`cgmio_model::Incoming::from_sparse`] consumes.
    /// Only occupied blocks are read, in staggered order (round-robin
    /// across disks for balanced traffic).
    ///
    /// This is [`Self::read_for_dst_submit`] followed immediately by
    /// [`Self::read_for_dst_finish`]: the serial path and the pipelined
    /// path are the same code with a different gap between the halves.
    pub fn read_for_dst(
        &mut self,
        disks: &mut DiskArray,
        dst: usize,
    ) -> Result<Vec<(usize, Vec<M>)>, EmError> {
        let t = self.read_for_dst_submit(disks, dst)?;
        self.read_for_dst_finish(disks, t)
    }

    /// Begin an asynchronous read of destination `dst`'s inbox: captures
    /// the per-source slot lengths and block addresses *as they are now*,
    /// submits the gather read (charged to the cost model now), and
    /// returns the ticket to redeem with [`Self::read_for_dst_finish`].
    /// The captured slots must not be rewritten between the two calls —
    /// the pipelined runners guarantee this because the inbox matrix of
    /// the current superstep was fully written (and barrier-flushed) last
    /// superstep, while this superstep's sends go to the other matrix of
    /// the ping-pong pair.
    pub fn read_for_dst_submit(
        &self,
        disks: &mut DiskArray,
        dst: usize,
    ) -> Result<InboxTicket, EmError> {
        let dst_local = dst - self.dst_base;
        let mut addrs = Vec::new();
        // (src, items, nblocks) per non-empty source, in source order.
        let mut spans: Vec<(usize, usize, usize)> = Vec::new();
        for (src, len) in self.lens.row_nonzero(dst_local) {
            let n_items = len as usize;
            let bytes = n_items * M::SIZE;
            let nblocks = bytes.div_ceil(self.block_bytes);
            spans.push((src, n_items, nblocks));
            for q in 0..nblocks {
                addrs.push(self.layout.addr(src, dst_local, q as u64));
            }
        }
        let ticket = disks.read_gather_submit(&addrs)?;
        Ok(InboxTicket { dst, addrs, spans, ticket })
    }

    /// Complete a read begun with [`Self::read_for_dst_submit`],
    /// decoding each block straight from the storage's block views into
    /// per-source streaming decoders — no reassembly buffer and, for
    /// in-memory backends, no block copy. Charges nothing — the submit
    /// already did.
    pub fn read_for_dst_finish(
        &self,
        disks: &mut DiskArray,
        t: InboxTicket,
    ) -> Result<Vec<(usize, Vec<M>)>, EmError> {
        let InboxTicket { dst, addrs, spans, ticket } = t;
        let mut owner: Vec<usize> = Vec::with_capacity(addrs.len());
        for (si, &(_, _, nblocks)) in spans.iter().enumerate() {
            owner.extend(std::iter::repeat_n(si, nblocks));
        }
        let mut decoders: Vec<SpanDecoder<M>> =
            spans.iter().map(|&(_, n_items, _)| SpanDecoder::new(n_items)).collect();
        disks.read_gather_finish(ticket, &addrs, &mut |i, block| {
            decoders[owner[i]].feed(block);
        })?;
        let mut out = Vec::with_capacity(spans.len());
        let mut bi = 0usize;
        for (si, dec) in decoders.into_iter().enumerate() {
            let (src, _, nblocks) = spans[si];
            let first = addrs.get(bi).copied().unwrap_or(TrackAddr::new(0, 0));
            bi += nblocks;
            match dec.finish() {
                Ok(items) => out.push((src, items)),
                Err(e) => {
                    return Err(EmError::Io(IoError::Fault {
                        kind: IoErrorKind::Corrupt,
                        disk: first.disk,
                        track: first.track,
                        detail: format!("message slot src {src} dst {dst}: {e}"),
                    }))
                }
            }
        }
        Ok(out)
    }
}

/// Completion handle for an in-flight inbox read (see
/// [`MessageMatrix::read_for_dst_submit`]). Captures the destination's
/// slot lengths and block addresses at submit time, so the finish
/// decodes exactly the inbox that was current when the read was issued.
pub struct InboxTicket {
    dst: usize,
    addrs: Vec<TrackAddr>,
    /// `(src, items, nblocks)` per non-empty source, in source order.
    spans: Vec<(usize, usize, usize)>,
    ticket: u64,
}

impl InboxTicket {
    /// Total items this inbox read will deliver (the submit-time
    /// `received_items` of the destination).
    pub fn items(&self) -> usize {
        self.spans.iter().map(|&(_, n, _)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::DiskGeometry;

    fn setup(d: usize, bb: usize, v: usize, slot: usize) -> (DiskArray, MessageMatrix<u64>) {
        let disks = DiskArray::new(DiskGeometry::new(d, bb));
        let m = MessageMatrix::new(d, bb, 0, v, 0, v, slot);
        (disks, m)
    }

    /// Dense view of a sparse inbox, for assertions.
    fn densify(v: usize, sparse: Vec<(usize, Vec<u64>)>) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); v];
        for (src, items) in sparse {
            out[src] = items;
        }
        out
    }

    #[test]
    fn roundtrip_full_matrix() {
        let v = 4;
        let (mut disks, mut m) = setup(3, 16, v, 8);
        for src in 0..v {
            let msgs: Vec<Vec<u64>> =
                (0..v).map(|dst| (0..(src + dst) as u64 % 8).map(|k| k + 100).collect()).collect();
            let entries: Vec<(usize, usize, &[u64])> =
                msgs.iter().enumerate().map(|(dst, ms)| (src, dst, ms.as_slice())).collect();
            m.write_batch(&mut disks, &entries).unwrap();
        }
        for dst in 0..v {
            let inbox = densify(v, m.read_for_dst(&mut disks, dst).unwrap());
            for (src, msg) in inbox.iter().enumerate() {
                let want: Vec<u64> = (0..(src + dst) as u64 % 8).map(|k| k + 100).collect();
                assert_eq!(msg, &want, "src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_tables_are_observationally_identical() {
        let d = 3;
        let bb = 16;
        let v = 5;
        let run = |sparse: bool| {
            let mut disks = DiskArray::new(DiskGeometry::new(d, bb));
            let mut m: MessageMatrix<u64> =
                MessageMatrix::new_with_mode(d, bb, 0, v, 0, v, 8, sparse);
            for src in 0..v {
                let msgs: Vec<Vec<u64>> = (0..v)
                    .map(|dst| (0..(3 * src + dst) as u64 % 7).map(|k| k + 10).collect())
                    .collect();
                let entries: Vec<(usize, usize, &[u64])> =
                    msgs.iter().enumerate().map(|(dst, ms)| (src, dst, ms.as_slice())).collect();
                m.write_batch(&mut disks, &entries).unwrap();
            }
            let inboxes: Vec<_> =
                (0..v).map(|dst| m.read_for_dst(&mut disks, dst).unwrap()).collect();
            (inboxes, m.sparse_lens(), disks.stats().clone())
        };
        let (dense_inbox, dense_lens, dense_io) = run(false);
        let (sparse_inbox, sparse_lens, sparse_io) = run(true);
        assert_eq!(dense_inbox, sparse_inbox);
        assert_eq!(dense_lens, sparse_lens);
        assert_eq!(dense_io, sparse_io);
    }

    #[test]
    fn sparse_lens_roundtrips_through_set() {
        let (mut disks, mut m) = setup(2, 16, 4, 4);
        let msg = vec![1u64, 2, 3];
        m.write_batch(&mut disks, &[(2, 1, msg.as_slice()), (0, 3, msg.as_slice())]).unwrap();
        let lens = m.sparse_lens();
        assert_eq!(lens[1], vec![(2, 3)]);
        assert_eq!(lens[3], vec![(0, 3)]);
        let mut m2: MessageMatrix<u64> = MessageMatrix::new_with_mode(2, 16, 0, 4, 0, 4, 4, true);
        m2.set_sparse_lens(lens.clone()).unwrap();
        assert_eq!(m2.sparse_lens(), lens);
        // Out-of-range source and unsorted rows are rejected.
        assert!(m2.set_sparse_lens(vec![vec![(9, 1)], vec![], vec![], vec![]]).is_err());
        assert!(m2.set_sparse_lens(vec![vec![(2, 1), (1, 1)], vec![], vec![], vec![]]).is_err());
    }

    #[test]
    fn slot_overflow_rejected() {
        let (mut disks, mut m) = setup(2, 16, 2, 3);
        let big = vec![0u64; 4];
        let e = m.write_batch(&mut disks, &[(0, 1, big.as_slice())]).unwrap_err();
        assert!(matches!(e, EmError::MsgSlotOverflow { src: 0, dst: 1, len: 4, slot: 3 }));
    }

    #[test]
    fn balanced_writes_are_fully_parallel() {
        // v=4, D=4, slot exactly 2 blocks, every message full:
        // each source writes 8 blocks round-robin -> 2 full ops.
        let d = 4;
        let bb = 16; // 2 u64 per block
        let v = 4;
        let (mut disks, mut m) = setup(d, bb, v, 4); // slot 4 items = 2 blocks
        for src in 0..v {
            let msgs: Vec<Vec<u64>> =
                (0..v).map(|dst| vec![src as u64, dst as u64, 0, 1]).collect();
            let entries: Vec<(usize, usize, &[u64])> =
                msgs.iter().enumerate().map(|(dst, ms)| (src, dst, ms.as_slice())).collect();
            m.write_batch(&mut disks, &entries).unwrap();
        }
        let s = disks.stats();
        assert_eq!(s.write_ops, (v * v * 2 / d) as u64);
        assert_eq!(s.full_ops, s.write_ops, "every write op must use all D disks");

        // reads for each destination are fully parallel too
        disks.reset_stats();
        for dst in 0..v {
            m.read_for_dst(&mut disks, dst).unwrap();
        }
        let s = disks.stats();
        assert_eq!(s.full_ops, s.read_ops);
    }

    #[test]
    fn clear_empties_all_slots() {
        let (mut disks, mut m) = setup(2, 16, 2, 4);
        let msg = vec![1u64, 2];
        m.write_batch(&mut disks, &[(0, 0, msg.as_slice()), (0, 1, msg.as_slice())]).unwrap();
        assert_eq!(m.received_items(0), 2);
        m.clear();
        assert_eq!(m.received_items(0), 0);
        let inbox = m.read_for_dst(&mut disks, 0).unwrap();
        assert!(inbox.is_empty(), "cleared matrix has no occupied slots");
    }

    #[test]
    fn partial_band_for_parallel_engine() {
        // dst_base = 2: matrix owns global dsts 2 and 3 out of v = 4.
        let d = 2;
        let mut disks = DiskArray::new(DiskGeometry::new(d, 16));
        let mut m: MessageMatrix<u64> = MessageMatrix::new(d, 16, 0, 4, 2, 2, 4);
        let msg: Vec<u64> = vec![5, 6, 7];
        m.write_batch(&mut disks, &[(1, 3, msg.as_slice())]).unwrap();
        let inbox = densify(4, m.read_for_dst(&mut disks, 3).unwrap());
        assert_eq!(inbox[1], msg);
        assert!(inbox[0].is_empty() && inbox[2].is_empty() && inbox[3].is_empty());
    }

    #[test]
    fn empty_messages_cost_nothing() {
        let (mut disks, mut m) = setup(2, 16, 2, 4);
        let empty: Vec<u64> = vec![];
        m.write_batch(&mut disks, &[(0, 0, empty.as_slice())]).unwrap();
        assert_eq!(disks.stats().total_ops(), 0);
        let inbox = m.read_for_dst(&mut disks, 0).unwrap();
        assert_eq!(disks.stats().total_ops(), 0);
        assert!(inbox.is_empty());
    }

    #[test]
    fn huge_v_sparse_table_is_cheap() {
        // The point of the sparse table: a million sources cost nothing
        // until they actually send.
        let v = 1_000_000;
        let mut disks = DiskArray::new(DiskGeometry::new(2, 16));
        let mut m: MessageMatrix<u64> = MessageMatrix::new(2, 16, 0, v, 0, 1, 4);
        let msg = vec![42u64, 43];
        m.write_batch(&mut disks, &[(999_999, 0, msg.as_slice())]).unwrap();
        assert_eq!(m.received_items(0), 2);
        let inbox = m.read_for_dst(&mut disks, 0).unwrap();
        assert_eq!(inbox, vec![(999_999, vec![42, 43])]);
    }
}
