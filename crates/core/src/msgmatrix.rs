//! The on-disk message matrix — step (d) of Algorithm 2 and the staggered
//! format of the paper's Figure 2.
//!
//! Messages are stored in fixed slots of `slot_items` items
//! (`b′ = ⌈slot_bytes/B⌉` blocks): slot `(src, dst)` lives in destination
//! band `dst`, staggered so that both the write order of a source
//! (destinations ascending) and the read order of a destination (sources
//! ascending) advance round-robin across the disks — so with balanced
//! messages every parallel I/O uses all `D` drives.
//!
//! Only the blocks actually occupied by a message are transferred; slot
//! capacity bounds what *may* be sent, and the engine verifies it. With
//! unbalanced traffic the round-robin property degrades — measurably: the
//! ablation benchmarks compare balanced vs unbalanced I/O efficiency
//! through exactly this code path.

use cgmio_pdm::{
    DiskArray, IoError, IoErrorKind, Item, MessageMatrixLayout, SpanDecoder, TrackAddr,
};

use crate::EmError;

/// One superstep's worth of messages on disk, for the destinations local
/// to one real processor.
pub struct MessageMatrix<M: Item> {
    layout: MessageMatrixLayout,
    block_bytes: usize,
    slot_items: usize,
    /// First global destination id of band 0 (0 for the sequential
    /// engine; the block start of the owning real processor otherwise).
    dst_base: usize,
    /// `lens[dst_local][src]` = items currently stored in that slot.
    lens: Vec<Vec<u32>>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Item> MessageMatrix<M> {
    /// A matrix for `v` sources and `dst_count` local destinations
    /// (global ids `dst_base .. dst_base + dst_count`), slots of
    /// `slot_items` items, starting at `base_track`.
    pub fn new(
        num_disks: usize,
        block_bytes: usize,
        base_track: u64,
        v: usize,
        dst_base: usize,
        dst_count: usize,
        slot_items: usize,
    ) -> Self {
        let slot_bytes = slot_items * M::SIZE;
        let blocks_per_msg = (slot_bytes as u64).div_ceil(block_bytes as u64).max(1);
        Self {
            layout: MessageMatrixLayout {
                num_disks,
                v: v.max(dst_count),
                blocks_per_msg,
                base_track,
            },
            block_bytes,
            slot_items,
            dst_base,
            lens: vec![vec![0; v]; dst_count],
            _marker: std::marker::PhantomData,
        }
    }

    /// Tracks this matrix occupies per drive.
    pub fn total_tracks(&self) -> u64 {
        self.layout.tracks_per_band() * self.lens.len() as u64 + 1
    }

    /// Slot capacity in items.
    pub fn slot_items(&self) -> usize {
        self.slot_items
    }

    /// The per-slot length table: `lens()[dst_local][src]`.
    pub fn lens(&self) -> &[Vec<u32>] {
        &self.lens
    }

    /// Restore the per-slot length table from a checkpoint manifest.
    /// The on-disk slot contents must match (they do when the array was
    /// flushed at the barrier the manifest describes).
    pub fn set_lens(&mut self, lens: Vec<Vec<u32>>) -> Result<(), EmError> {
        if lens.len() != self.lens.len() || lens.iter().any(|row| row.len() != self.lens[0].len()) {
            return Err(EmError::BadConfig(format!(
                "checkpoint inbox table is {}x{}, matrix is {}x{}",
                lens.len(),
                lens.first().map_or(0, Vec::len),
                self.lens.len(),
                self.lens[0].len()
            )));
        }
        if let Some(&l) = lens.iter().flatten().find(|&&l| l as usize > self.slot_items) {
            return Err(EmError::BadConfig(format!(
                "checkpoint inbox length {l} exceeds slot capacity {}",
                self.slot_items
            )));
        }
        self.lens = lens;
        Ok(())
    }

    /// Reset all slots to empty (ping-pong reuse between supersteps).
    pub fn clear(&mut self) {
        for row in &mut self.lens {
            row.iter_mut().for_each(|l| *l = 0);
        }
    }

    /// Total items received by local destination `dst_local`.
    pub fn received_items(&self, dst_local: usize) -> usize {
        self.lens[dst_local].iter().map(|&l| l as usize).sum()
    }

    /// Write a batch of messages in the given order, packed greedily into
    /// parallel I/O operations (the paper's `DiskWrite` FIFO). Entries
    /// use *global* destination ids; each must be local to this matrix.
    ///
    /// The whole batch is encoded once into a single pooled staging
    /// buffer (each message at a block-aligned offset) and submitted as
    /// one gather write — no per-block `Vec` allocations, and concurrent
    /// backends see one vectored submission per drive.
    pub fn write_batch(
        &mut self,
        disks: &mut DiskArray,
        entries: &[(usize, usize, &[M])],
    ) -> Result<(), EmError> {
        // Validate the whole batch before touching disk or the length
        // table, then size the staging buffer in one pass.
        let mut total_blocks = 0usize;
        for &(src, dst, items) in entries {
            if items.len() > self.slot_items {
                return Err(EmError::MsgSlotOverflow {
                    src,
                    dst,
                    len: items.len(),
                    slot: self.slot_items,
                });
            }
            total_blocks += (items.len() * M::SIZE).div_ceil(self.block_bytes);
        }
        let mut staging = disks.pool().checkout(total_blocks * self.block_bytes);
        // (stage offset, encoded bytes, src, dst_local) per non-empty entry
        let mut placed: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(entries.len());
        let mut off = 0usize;
        for &(src, dst, items) in entries {
            if items.is_empty() {
                continue;
            }
            let dst_local = dst - self.dst_base;
            let bytes = items.len() * M::SIZE;
            M::encode_into(items, &mut staging[off..off + bytes])
                .expect("staging sized to the batch");
            placed.push((off, bytes, src, dst_local));
            off += bytes.div_ceil(self.block_bytes) * self.block_bytes;
            self.lens[dst_local][src] = items.len() as u32;
        }
        let mut writes: Vec<(TrackAddr, &[u8])> = Vec::with_capacity(total_blocks);
        for &(off, bytes, src, dst_local) in &placed {
            for (q, chunk) in staging[off..off + bytes].chunks(self.block_bytes).enumerate() {
                writes.push((self.layout.addr(src, dst_local, q as u64), chunk));
            }
        }
        disks.write_gather(&writes)?;
        Ok(())
    }

    /// Track addresses `read_for_dst(dst)` would touch right now — used
    /// as a prefetch hint for asynchronous backends (never counted).
    pub fn read_addrs_for_dst(&self, dst: usize) -> Vec<cgmio_pdm::TrackAddr> {
        let dst_local = dst - self.dst_base;
        let mut addrs = Vec::new();
        for (src, &len) in self.lens[dst_local].iter().enumerate() {
            let nblocks = (len as usize * M::SIZE).div_ceil(self.block_bytes);
            for q in 0..nblocks {
                addrs.push(self.layout.addr(src, dst_local, q as u64));
            }
        }
        addrs
    }

    /// Read the full inbox of global destination `dst`: one `Vec<M>` per
    /// source, in source order (steps (b) of Algorithm 2). Only occupied
    /// blocks are read, in staggered order (round-robin across disks for
    /// balanced traffic).
    ///
    /// This is [`Self::read_for_dst_submit`] followed immediately by
    /// [`Self::read_for_dst_finish`]: the serial path and the pipelined
    /// path are the same code with a different gap between the halves.
    pub fn read_for_dst(
        &mut self,
        disks: &mut DiskArray,
        dst: usize,
    ) -> Result<Vec<Vec<M>>, EmError> {
        let t = self.read_for_dst_submit(disks, dst)?;
        self.read_for_dst_finish(disks, t)
    }

    /// Begin an asynchronous read of destination `dst`'s inbox: captures
    /// the per-source slot lengths and block addresses *as they are now*,
    /// submits the gather read (charged to the cost model now), and
    /// returns the ticket to redeem with [`Self::read_for_dst_finish`].
    /// The captured slots must not be rewritten between the two calls —
    /// the pipelined runners guarantee this because the inbox matrix of
    /// the current superstep was fully written (and barrier-flushed) last
    /// superstep, while this superstep's sends go to the other matrix of
    /// the ping-pong pair.
    pub fn read_for_dst_submit(
        &self,
        disks: &mut DiskArray,
        dst: usize,
    ) -> Result<InboxTicket, EmError> {
        let dst_local = dst - self.dst_base;
        let v = self.lens[dst_local].len();
        let mut addrs = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(v); // (items, nblocks)
        for src in 0..v {
            let n_items = self.lens[dst_local][src] as usize;
            let bytes = n_items * M::SIZE;
            let nblocks = bytes.div_ceil(self.block_bytes);
            spans.push((n_items, nblocks));
            for q in 0..nblocks {
                addrs.push(self.layout.addr(src, dst_local, q as u64));
            }
        }
        let ticket = disks.read_gather_submit(&addrs)?;
        Ok(InboxTicket { dst, addrs, spans, ticket })
    }

    /// Complete a read begun with [`Self::read_for_dst_submit`],
    /// decoding each block straight from the storage's block views into
    /// per-source streaming decoders — no reassembly buffer and, for
    /// in-memory backends, no block copy. Charges nothing — the submit
    /// already did.
    pub fn read_for_dst_finish(
        &self,
        disks: &mut DiskArray,
        t: InboxTicket,
    ) -> Result<Vec<Vec<M>>, EmError> {
        let InboxTicket { dst, addrs, spans, ticket } = t;
        let mut owner: Vec<usize> = Vec::with_capacity(addrs.len());
        for (si, &(_, nblocks)) in spans.iter().enumerate() {
            owner.extend(std::iter::repeat_n(si, nblocks));
        }
        let mut decoders: Vec<SpanDecoder<M>> =
            spans.iter().map(|&(n_items, _)| SpanDecoder::new(n_items)).collect();
        disks.read_gather_finish(ticket, &addrs, &mut |i, block| {
            decoders[owner[i]].feed(block);
        })?;
        let mut out = Vec::with_capacity(spans.len());
        let mut bi = 0usize;
        for (src, dec) in decoders.into_iter().enumerate() {
            let first = addrs.get(bi).copied().unwrap_or(TrackAddr::new(0, 0));
            bi += spans[src].1;
            match dec.finish() {
                Ok(items) => out.push(items),
                Err(e) => {
                    return Err(EmError::Io(IoError::Fault {
                        kind: IoErrorKind::Corrupt,
                        disk: first.disk,
                        track: first.track,
                        detail: format!("message slot src {src} dst {dst}: {e}"),
                    }))
                }
            }
        }
        Ok(out)
    }
}

/// Completion handle for an in-flight inbox read (see
/// [`MessageMatrix::read_for_dst_submit`]). Captures the destination's
/// slot lengths and block addresses at submit time, so the finish
/// decodes exactly the inbox that was current when the read was issued.
pub struct InboxTicket {
    dst: usize,
    addrs: Vec<TrackAddr>,
    /// `(items, nblocks)` per source, in source order.
    spans: Vec<(usize, usize)>,
    ticket: u64,
}

impl InboxTicket {
    /// Total items this inbox read will deliver (the submit-time
    /// `received_items` of the destination).
    pub fn items(&self) -> usize {
        self.spans.iter().map(|&(n, _)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_pdm::DiskGeometry;

    fn setup(d: usize, bb: usize, v: usize, slot: usize) -> (DiskArray, MessageMatrix<u64>) {
        let disks = DiskArray::new(DiskGeometry::new(d, bb));
        let m = MessageMatrix::new(d, bb, 0, v, 0, v, slot);
        (disks, m)
    }

    #[test]
    fn roundtrip_full_matrix() {
        let v = 4;
        let (mut disks, mut m) = setup(3, 16, v, 8);
        for src in 0..v {
            let msgs: Vec<Vec<u64>> =
                (0..v).map(|dst| (0..(src + dst) as u64 % 8).map(|k| k + 100).collect()).collect();
            let entries: Vec<(usize, usize, &[u64])> =
                msgs.iter().enumerate().map(|(dst, ms)| (src, dst, ms.as_slice())).collect();
            m.write_batch(&mut disks, &entries).unwrap();
        }
        for dst in 0..v {
            let inbox = m.read_for_dst(&mut disks, dst).unwrap();
            for (src, msg) in inbox.iter().enumerate() {
                let want: Vec<u64> = (0..(src + dst) as u64 % 8).map(|k| k + 100).collect();
                assert_eq!(msg, &want, "src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn slot_overflow_rejected() {
        let (mut disks, mut m) = setup(2, 16, 2, 3);
        let big = vec![0u64; 4];
        let e = m.write_batch(&mut disks, &[(0, 1, big.as_slice())]).unwrap_err();
        assert!(matches!(e, EmError::MsgSlotOverflow { src: 0, dst: 1, len: 4, slot: 3 }));
    }

    #[test]
    fn balanced_writes_are_fully_parallel() {
        // v=4, D=4, slot exactly 2 blocks, every message full:
        // each source writes 8 blocks round-robin -> 2 full ops.
        let d = 4;
        let bb = 16; // 2 u64 per block
        let v = 4;
        let (mut disks, mut m) = setup(d, bb, v, 4); // slot 4 items = 2 blocks
        for src in 0..v {
            let msgs: Vec<Vec<u64>> =
                (0..v).map(|dst| vec![src as u64, dst as u64, 0, 1]).collect();
            let entries: Vec<(usize, usize, &[u64])> =
                msgs.iter().enumerate().map(|(dst, ms)| (src, dst, ms.as_slice())).collect();
            m.write_batch(&mut disks, &entries).unwrap();
        }
        let s = disks.stats();
        assert_eq!(s.write_ops, (v * v * 2 / d) as u64);
        assert_eq!(s.full_ops, s.write_ops, "every write op must use all D disks");

        // reads for each destination are fully parallel too
        disks.reset_stats();
        for dst in 0..v {
            m.read_for_dst(&mut disks, dst).unwrap();
        }
        let s = disks.stats();
        assert_eq!(s.full_ops, s.read_ops);
    }

    #[test]
    fn clear_empties_all_slots() {
        let (mut disks, mut m) = setup(2, 16, 2, 4);
        let msg = vec![1u64, 2];
        m.write_batch(&mut disks, &[(0, 0, msg.as_slice()), (0, 1, msg.as_slice())]).unwrap();
        assert_eq!(m.received_items(0), 2);
        m.clear();
        assert_eq!(m.received_items(0), 0);
        let inbox = m.read_for_dst(&mut disks, 0).unwrap();
        assert!(inbox.iter().all(Vec::is_empty));
    }

    #[test]
    fn partial_band_for_parallel_engine() {
        // dst_base = 2: matrix owns global dsts 2 and 3 out of v = 4.
        let d = 2;
        let mut disks = DiskArray::new(DiskGeometry::new(d, 16));
        let mut m: MessageMatrix<u64> = MessageMatrix::new(d, 16, 0, 4, 2, 2, 4);
        let msg: Vec<u64> = vec![5, 6, 7];
        m.write_batch(&mut disks, &[(1, 3, msg.as_slice())]).unwrap();
        let inbox = m.read_for_dst(&mut disks, 3).unwrap();
        assert_eq!(inbox[1], msg);
        assert!(inbox[0].is_empty() && inbox[2].is_empty() && inbox[3].is_empty());
    }

    #[test]
    fn empty_messages_cost_nothing() {
        let (mut disks, mut m) = setup(2, 16, 2, 4);
        let empty: Vec<u64> = vec![];
        m.write_batch(&mut disks, &[(0, 0, empty.as_slice())]).unwrap();
        assert_eq!(disks.stats().total_ops(), 0);
        let inbox = m.read_for_dst(&mut disks, 0).unwrap();
        assert_eq!(disks.stats().total_ops(), 0);
        assert!(inbox[0].is_empty());
    }
}
