//! # cgmio-core — the CGM → EM-CGM simulation engine
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! **deterministic simulation** that runs any CGM algorithm (any
//! [`cgmio_model::CgmProgram`]) as an external-memory algorithm on a
//! machine with `p ≤ v` real processors, each with `M` internal memory
//! and `D` disks of block size `B` — turning the virtual machine's
//! message traffic into **blocked, fully parallel disk I/O**.
//!
//! * [`SeqEmRunner`] implements Algorithm 2 (*SeqCompoundSuperstep*):
//!   a single real processor cycles through the `v` virtual processors,
//!   swapping each one's *context* in from disk (consecutive format),
//!   delivering its incoming messages from the staggered **message
//!   matrix** (the paper's Figure 2), running the compound superstep,
//!   and writing the generated messages and updated context back out.
//! * [`ParEmRunner`] implements Algorithm 3 (*ParCompoundSuperstep*):
//!   `p` real processors each simulate `v/p` virtual processors against
//!   their own local disk arrays, exchanging generated messages over the
//!   real interconnect before writing them to the destination's disks.
//! * [`measure_requirements`] dry-runs a program in memory to discover
//!   the parameters the theorems are stated in: `λ`, `h`, `μ` and the
//!   largest message — from which [`EmConfig`] slot sizes follow.
//! * [`params`] holds the parameter-space analysis of the paper's
//!   Section 1.4 (Figures 6 and 7): when does the `log_{M/B}(N/B)` term
//!   collapse to a constant?
//!
//! Every run returns an [`EmRunReport`] with exact I/O counts split into
//! context vs message traffic, h-relation accounting, memory high-water
//! marks, and the Theorem 2/3 parameter checks — the quantities the
//! paper's experiments (and this workspace's `reproduce` harness) report.

#![deny(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod context;
pub mod measure;
pub mod msgmatrix;
pub mod par;
pub mod params;
mod pipeline;
pub mod report;
pub mod seq;

pub use checkpoint::{Checkpoint, CheckpointManifest, RunOutcome, WorkerCheckpoint};
pub use config::{BackendSpec, DiskHandles, EmConfig, ParamCheck, ScaleTuning};
pub use context::CtxPaging;
pub use measure::{measure_requirements, Requirements};
pub use par::ParEmRunner;
pub use report::{EmRunReport, IoBreakdown};
pub use seq::SeqEmRunner;

use cgmio_model::ModelError;
use cgmio_pdm::IoError;

/// Errors produced by the EM runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmError {
    /// Superstep semantics violated (same conditions as the in-memory
    /// runners).
    Model(ModelError),
    /// Disk layer error (conflict, bad address, oversized block).
    Io(IoError),
    /// A message exceeded the configured slot size. Wrap the program in
    /// [`cgmio_routing::Balanced`] or enlarge `msg_slot_items`.
    MsgSlotOverflow {
        /// Sending virtual processor.
        src: usize,
        /// Receiving virtual processor.
        dst: usize,
        /// Message length in items.
        len: usize,
        /// Configured slot capacity in items.
        slot: usize,
    },
    /// A context exceeded the configured slot size; enlarge
    /// `max_ctx_bytes`.
    CtxSlotOverflow {
        /// Virtual processor whose context overflowed.
        pid: usize,
        /// Encoded context length in bytes.
        len: usize,
        /// Configured capacity in bytes.
        cap: usize,
    },
    /// Strict mode: a compound superstep needed more internal memory
    /// than the configured `M`.
    MemoryExceeded {
        /// Virtual processor being simulated.
        pid: usize,
        /// Bytes required.
        need: usize,
        /// Configured internal memory `M` in bytes.
        m: usize,
    },
    /// Invalid configuration.
    BadConfig(String),
    /// The run halted at a superstep barrier (per
    /// [`EmConfig::halt_after_superstep`]) while being driven through an
    /// API that cannot return a checkpoint. Use `run_until` to receive
    /// the [`checkpoint::Checkpoint`] instead.
    Interrupted {
        /// Last completed superstep (the checkpoint's position).
        superstep: usize,
    },
}

impl From<ModelError> for EmError {
    fn from(e: ModelError) -> Self {
        EmError::Model(e)
    }
}

impl From<IoError> for EmError {
    fn from(e: IoError) -> Self {
        EmError::Io(e)
    }
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Model(e) => write!(f, "model error: {e}"),
            EmError::Io(e) => write!(f, "I/O error: {e}"),
            EmError::MsgSlotOverflow { src, dst, len, slot } => write!(
                f,
                "message {src}->{dst} of {len} items exceeds slot of {slot} \
                 (wrap the program in cgmio_routing::Balanced or enlarge msg_slot_items)"
            ),
            EmError::CtxSlotOverflow { pid, len, cap } => {
                write!(f, "context of vp {pid} is {len} bytes, slot holds {cap}")
            }
            EmError::MemoryExceeded { pid, need, m } => {
                write!(f, "simulating vp {pid} needs {need} bytes of internal memory, M = {m}")
            }
            EmError::BadConfig(s) => write!(f, "bad config: {s}"),
            EmError::Interrupted { superstep } => {
                write!(f, "run interrupted after superstep {superstep} (checkpoint taken)")
            }
        }
    }
}

impl std::error::Error for EmError {}
