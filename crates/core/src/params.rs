//! Parameter-space analysis (the paper's Section 1.4, Figures 6 and 7).
//!
//! The PDM sorting bound is `Θ((N/DB)·log_{M/B}(N/B))`. With the CGM
//! memory regime `M = N/v`, the logarithm `log_{M/B}(N/B)` is at most a
//! constant `c` exactly when `(M/B)^c ≥ N/B`, i.e. on or above the
//! surface `N^{c−1} = v^c·B^{c−1}`. These helpers evaluate that surface
//! and the resulting constant; the `reproduce fig6`/`fig7` commands dump
//! them as grids.

/// The value of `log_{M/B}(N/B)` with `M = N/v` (all quantities in
/// items). Returns `None` when the parameters are degenerate
/// (`N ≤ v·B`, i.e. a context does not even hold one block per
/// processor, or `N ≤ B`).
pub fn log_term(n: f64, v: f64, b: f64) -> Option<f64> {
    if n <= b || n <= v * b {
        return None;
    }
    Some((n / b).ln() / (n / (v * b)).ln())
}

/// Does the logarithmic term collapse to at most `c`? (`(M/B)^c ≥ N/B`
/// with `M = N/v`.)
pub fn log_vanishes(n: f64, v: f64, b: f64, c: f64) -> bool {
    match log_term(n, v, b) {
        Some(t) => t <= c,
        None => false,
    }
}

/// The Figure 6 surface: the smallest `N` satisfying
/// `N^(c−1) = v^c·B^(c−1)`, i.e. `N = v^(c/(c−1))·B`. Any `N` on or
/// above it makes `log_{M/B}(N/B) ≤ c`.
pub fn surface_n(v: f64, b: f64, c: f64) -> f64 {
    assert!(c > 1.0, "the surface is defined for c > 1");
    v.powf(c / (c - 1.0)) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_matches_paper_figure7_scale() {
        // Paper: for c = 2, B = 1000, v = 100 -> N ≈ 10 mega-items.
        let n = surface_n(100.0, 1000.0, 2.0);
        assert!((n - 1e7).abs() / 1e7 < 1e-9, "n = {n}");
        // and v = 10_000 -> N = 10^8 * 10^3 = 10^11 (~100 giga-items).
        let n = surface_n(10_000.0, 1000.0, 2.0);
        assert!((n - 1e11).abs() / 1e11 < 1e-9, "n = {n}");
    }

    #[test]
    fn surface_c3_needs_less_data() {
        // Larger constant c => much smaller N. Paper: c = 3, v = 10^4:
        // N = v^{3/2} * B = 10^6 * 10^3 = 10^9 (1 giga-item).
        let n = surface_n(10_000.0, 1000.0, 3.0);
        assert!((n - 1e9).abs() / 1e9 < 1e-9, "n = {n}");
        assert!(n < surface_n(10_000.0, 1000.0, 2.0));
    }

    #[test]
    fn log_term_on_surface_equals_c() {
        for (v, b, c) in [(100.0, 1000.0, 2.0), (50.0, 512.0, 3.0), (1000.0, 1000.0, 2.5)] {
            let n = surface_n(v, b, c);
            let t = log_term(n, v, b).unwrap();
            assert!((t - c).abs() < 1e-6, "v={v} b={b} c={c}: log term = {t}");
            assert!(log_vanishes(n * 1.001, v, b, c));
            assert!(!log_vanishes(n * 0.999, v, b, c));
        }
    }

    #[test]
    fn degenerate_params_yield_none() {
        assert_eq!(log_term(100.0, 10.0, 100.0), None); // N = B·v, M/B = 1
        assert_eq!(log_term(50.0, 1.0, 100.0), None); // N < B
        assert!(!log_vanishes(100.0, 10.0, 100.0, 5.0));
    }

    #[test]
    fn log_term_decreases_with_n() {
        // More data (with v, B fixed) pushes the log term down toward 1.
        let v = 64.0;
        let b = 1024.0;
        let t1 = log_term(1e7, v, b).unwrap();
        let t2 = log_term(1e9, v, b).unwrap();
        let t3 = log_term(1e12, v, b).unwrap();
        assert!(t1 > t2 && t2 > t3 && t3 > 1.0);
    }
}
