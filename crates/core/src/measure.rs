//! In-memory dry run that measures the quantities the simulation
//! theorems are stated in: `λ`, `h`, `μ` and the largest message.
//!
//! The paper assumes these are known for the CGM algorithm being
//! simulated (they are part of its analysis); for arbitrary programs we
//! simply measure them on a reference execution, then size the EM
//! engine's fixed slots from the measurement.

use cgmio_model::{CgmProgram, CommCosts, DirectRunner, ModelError, ProcState};
use cgmio_pdm::Item;

/// Measured requirements of a CGM program on a given input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Requirements {
    /// Communication rounds (`λ`).
    pub rounds: usize,
    /// Largest single (src → dst) message, items.
    pub max_msg_items: usize,
    /// Largest per-processor per-round send volume, items.
    pub max_h_items: usize,
    /// Largest encoded context, bytes (`μ`).
    pub max_ctx_bytes: usize,
    /// Largest per-processor receive volume in bytes over any round.
    pub max_proc_recv_bytes: usize,
    /// Largest per-processor send volume in bytes over any round.
    pub max_proc_sent_bytes: usize,
}

/// Instrumented wrapper measuring context sizes after every round.
struct Measured<'a, P> {
    inner: &'a P,
    max_ctx: std::sync::atomic::AtomicUsize,
}

impl<P: CgmProgram> CgmProgram for Measured<'_, P> {
    type Msg = P::Msg;
    type State = P::State;

    fn round(
        &self,
        ctx: &mut cgmio_model::RoundCtx<'_, Self::Msg>,
        state: &mut Self::State,
    ) -> cgmio_model::Status {
        let status = self.inner.round(ctx, state);
        let len = state.encoded_len();
        self.max_ctx.fetch_max(len, std::sync::atomic::Ordering::Relaxed);
        status
    }
}

/// Dry-run `prog` on clones of the initial states (states are consumed;
/// pass a freshly built set) and report measured requirements plus the
/// final states and costs — callers that also want the reference output
/// get it for free.
pub fn measure_requirements<P: CgmProgram>(
    prog: &P,
    states: Vec<P::State>,
) -> Result<(Vec<P::State>, CommCosts, Requirements), ModelError> {
    // Context size must also cover the *initial* states (they are
    // written to disk before round 0).
    let initial_max_ctx = states.iter().map(|s| s.encoded_len()).max().unwrap_or(0);
    let measured =
        Measured { inner: prog, max_ctx: std::sync::atomic::AtomicUsize::new(initial_max_ctx) };
    let (fin, costs) = DirectRunner::default().run(&measured, states)?;
    let msg_size = P::Msg::SIZE;
    let req = Requirements {
        rounds: costs.lambda(),
        max_msg_items: costs.max_message(),
        max_h_items: costs.max_h(),
        max_ctx_bytes: measured.max_ctx.into_inner(),
        max_proc_recv_bytes: costs.rounds.iter().map(|r| r.max_received).max().unwrap_or(0)
            * msg_size,
        max_proc_sent_bytes: costs.rounds.iter().map(|r| r.max_sent).max().unwrap_or(0) * msg_size,
    };
    Ok((fin, costs, req))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_model::demo::AllToAll;

    #[test]
    fn measures_all_to_all() {
        let v = 4;
        let states: Vec<Vec<u64>> = (0..v).map(|_| Vec::new()).collect();
        let (fin, costs, req) =
            measure_requirements(&AllToAll { items_per_pair: 2 }, states).unwrap();
        assert_eq!(fin.len(), v);
        assert_eq!(costs.lambda(), 1);
        assert_eq!(req.rounds, 1);
        assert_eq!(req.max_msg_items, 2);
        assert_eq!(req.max_h_items, 2 * v);
        // final contexts hold 2*v u64s + length prefix
        assert_eq!(req.max_ctx_bytes, 8 + 8 * 2 * v);
        assert_eq!(req.max_proc_recv_bytes, 2 * v * 8);
    }

    #[test]
    fn initial_context_counted() {
        // A program that immediately shrinks its state: μ must still
        // reflect the big initial context.
        struct Shrink;
        impl CgmProgram for Shrink {
            type Msg = u64;
            type State = Vec<u64>;
            fn round(
                &self,
                _ctx: &mut cgmio_model::RoundCtx<'_, u64>,
                state: &mut Vec<u64>,
            ) -> cgmio_model::Status {
                state.clear();
                cgmio_model::Status::Done
            }
        }
        let states = vec![vec![0u64; 100], vec![]];
        let (_, _, req) = measure_requirements(&Shrink, states).unwrap();
        assert_eq!(req.max_ctx_bytes, 8 + 800);
    }
}
