//! Triangulation of a planar point set (Group B row 1's
//! "triangulation"): incremental sweep over lexicographically sorted
//! points, maintaining the hull of the processed prefix as lower/upper
//! chains. Each vertex popped from a chain emits one triangle, which
//! exactly tiles the area added by the new point. `O(n log n)`.

use crate::predicates::{orient2d, Point};

/// Triangulate `pts` (duplicates are ignored). Returns triangles as
/// index triples, counter-clockwise. All-collinear inputs yield no
/// triangles.
pub fn triangulate_points(pts: &[Point]) -> Vec<(u32, u32, u32)> {
    let n = pts.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| pts[i as usize]);
    order.dedup_by_key(|i| pts[*i as usize]);

    let mut tris: Vec<(u32, u32, u32)> = Vec::new();
    // Lower chain keeps left turns (o > 0 at interior vertices of a ccw
    // hull's lower boundary); upper chain keeps right turns. A new point
    // pops the vertices it can "see" past, emitting one ccw triangle per
    // pop; together the pops tile the region the new point adds.
    let mut lower: Vec<u32> = Vec::new();
    let mut upper: Vec<u32> = Vec::new();
    for &i in &order {
        let p = pts[i as usize];
        while lower.len() >= 2 {
            let a = lower[lower.len() - 2];
            let b = lower[lower.len() - 1];
            if orient2d(pts[a as usize], pts[b as usize], p) < 0 {
                tris.push((b, a, i));
                lower.pop();
            } else {
                break;
            }
        }
        while upper.len() >= 2 {
            let a = upper[upper.len() - 2];
            let b = upper[upper.len() - 1];
            if orient2d(pts[a as usize], pts[b as usize], p) > 0 {
                tris.push((a, b, i));
                upper.pop();
            } else {
                break;
            }
        }
        lower.push(i);
        upper.push(i);
    }
    tris
}

/// Total doubled area of a triangle list (exact).
pub fn doubled_area(pts: &[Point], tris: &[(u32, u32, u32)]) -> i128 {
    tris.iter().map(|&(a, b, c)| orient2d(pts[a as usize], pts[b as usize], pts[c as usize])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::convex_hull;
    use cgmio_data::random_points;

    fn hull_doubled_area(pts: &[Point]) -> i128 {
        let hull = convex_hull(pts);
        let mut s = 0i128;
        for i in 1..hull.len().saturating_sub(1) {
            s += orient2d(hull[0], hull[i], hull[i + 1]);
        }
        s
    }

    fn validate(pts: &[Point], tris: &[(u32, u32, u32)]) {
        // all ccw (non-degenerate)
        for &(a, b, c) in tris {
            assert!(orient2d(pts[a as usize], pts[b as usize], pts[c as usize]) > 0, "ccw");
        }
        // triangles tile the hull: positive pieces summing to the hull
        // area cannot overlap or leave gaps
        assert_eq!(doubled_area(pts, tris), hull_doubled_area(pts), "area tiling");
        // interior edges shared exactly twice
        let mut edge_count = std::collections::HashMap::new();
        for &(a, b, c) in tris {
            for (u, v) in [(a, b), (b, c), (c, a)] {
                *edge_count.entry((u.min(v), u.max(v))).or_insert(0u32) += 1;
            }
        }
        assert!(edge_count.values().all(|&c| c <= 2), "edge used more than twice");
        // every distinct non-collinear-set point appears in a triangle
        if !tris.is_empty() {
            let used: std::collections::HashSet<u32> =
                tris.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
            let mut uniq: Vec<Point> = pts.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(used.len(), uniq.len(), "every point must be used");
        }
    }

    #[test]
    fn square_with_center() {
        let pts = vec![(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)];
        let tris = triangulate_points(&pts);
        validate(&pts, &tris);
        assert_eq!(tris.len(), 4);
    }

    #[test]
    fn triangle_only() {
        let pts = vec![(0, 0), (5, 0), (0, 5)];
        let tris = triangulate_points(&pts);
        assert_eq!(tris.len(), 1);
        validate(&pts, &tris);
    }

    #[test]
    fn collinear_input_has_no_triangles() {
        let pts: Vec<Point> = (0..10).map(|i| (i, 3 * i)).collect();
        assert!(triangulate_points(&pts).is_empty());
    }

    #[test]
    fn collinear_run_plus_apex() {
        let pts = vec![(0, 0), (1, 0), (2, 0), (3, 1)];
        let tris = triangulate_points(&pts);
        validate(&pts, &tris);
        assert_eq!(tris.len(), 2); // 2n − 2 − h with h = 4 boundary points
    }

    #[test]
    fn random_sets_validate() {
        for seed in 0..6u64 {
            let pts = random_points(150, 1000, seed);
            let tris = triangulate_points(&pts);
            validate(&pts, &tris);
        }
    }

    #[test]
    fn grid_with_collinear_points() {
        let mut pts = Vec::new();
        for x in 0..5i64 {
            for y in 0..5i64 {
                pts.push((x * 10, y * 10));
            }
        }
        let tris = triangulate_points(&pts);
        validate(&pts, &tris);
    }

    #[test]
    fn duplicates_ignored() {
        let pts = vec![(0, 0), (0, 0), (5, 0), (0, 5), (5, 0)];
        let tris = triangulate_points(&pts);
        assert_eq!(tris.len(), 1);
        validate(&pts, &tris);
    }
}
