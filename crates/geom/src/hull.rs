//! Convex hulls (Andrew's monotone chain) and hull-based directional
//! separability.

use crate::predicates::{orient2d, Point};

/// The convex hull of `pts` in counter-clockwise order, starting from
/// the lexicographically smallest point. Collinear boundary points are
/// dropped; degenerate inputs (≤ 2 distinct points, or all collinear)
/// return the distinct extreme points.
pub fn convex_hull(pts: &[Point]) -> Vec<Point> {
    let mut p: Vec<Point> = pts.to_vec();
    p.sort_unstable();
    p.dedup();
    let n = p.len();
    if n <= 2 {
        return p;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // lower hull
    for &pt in &p {
        while hull.len() >= 2 && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], pt) <= 0 {
            hull.pop();
        }
        hull.push(pt);
    }
    // upper hull
    let lower_len = hull.len() + 1;
    for &pt in p.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], pt) <= 0
        {
            hull.pop();
        }
        hull.push(pt);
    }
    hull.pop();
    // all-collinear input collapses to the two extremes
    if hull.len() < 3 {
        hull.truncate(2);
    }
    hull
}

/// Uni-directional separability of two *point sets by a line
/// perpendicular to `dir`*: can `a` be translated to infinity along
/// `dir` without ever meeting `b`? For convex obstacles this holds iff
/// there is a separating line with normal `dir`, i.e. iff
/// `max_{p∈a} ⟨p, dir⟩ < min_{q∈b} ⟨q, dir⟩` — a projection test that
/// only needs the hulls' extreme points.
pub fn hull_separable_in_direction(a: &[Point], b: &[Point], dir: (i64, i64)) -> bool {
    assert!(dir != (0, 0), "direction must be non-zero");
    let proj = |p: Point| p.0 as i128 * dir.0 as i128 + p.1 as i128 * dir.1 as i128;
    let amax = a.iter().copied().map(proj).max();
    let bmin = b.iter().copied().map(proj).min();
    match (amax, bmin) {
        (Some(am), Some(bm)) => am < bm,
        _ => true, // an empty set is separable from anything
    }
}

/// Is `q` strictly inside the convex polygon `hull` (ccw)?
pub fn inside_hull(hull: &[Point], q: Point) -> bool {
    if hull.len() < 3 {
        return false;
    }
    hull.iter().zip(hull.iter().cycle().skip(1)).all(|(&a, &b)| orient2d(a, b, q) > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_points;

    #[test]
    fn square_hull() {
        let pts = vec![(0, 0), (2, 0), (2, 2), (0, 2), (1, 1)];
        let h = convex_hull(&pts);
        assert_eq!(h, vec![(0, 0), (2, 0), (2, 2), (0, 2)]);
    }

    #[test]
    fn collinear_input_gives_extremes() {
        let pts: Vec<Point> = (0..10).map(|i| (i, 2 * i)).collect();
        assert_eq!(convex_hull(&pts), vec![(0, 0), (9, 18)]);
    }

    #[test]
    fn duplicates_and_tiny_inputs() {
        assert_eq!(convex_hull(&[]), vec![]);
        assert_eq!(convex_hull(&[(1, 1), (1, 1)]), vec![(1, 1)]);
        assert_eq!(convex_hull(&[(2, 3), (0, 1)]), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn hull_contains_all_points() {
        let pts = random_points(500, 1000, 3);
        let h = convex_hull(&pts);
        // every point on or inside: no point strictly outside any edge
        for &q in &pts {
            for (i, &a) in h.iter().enumerate() {
                let b = h[(i + 1) % h.len()];
                assert!(orient2d(a, b, q) >= 0, "{q:?} outside edge {a:?}-{b:?}");
            }
        }
        // hull is strictly convex (no collinear triples)
        for i in 0..h.len() {
            let (a, b, c) = (h[i], h[(i + 1) % h.len()], h[(i + 2) % h.len()]);
            assert!(orient2d(a, b, c) > 0);
        }
    }

    #[test]
    fn hull_is_subset_of_input() {
        let pts = random_points(200, 500, 9);
        let h = convex_hull(&pts);
        for p in &h {
            assert!(pts.contains(p));
        }
    }

    #[test]
    fn separability_by_projection() {
        let a = vec![(0, 0), (1, 1), (2, 0)];
        let b = vec![(5, 0), (6, 1)];
        assert!(hull_separable_in_direction(&a, &b, (1, 0)));
        assert!(!hull_separable_in_direction(&b, &a, (1, 0)));
        assert!(hull_separable_in_direction(&b, &a, (-1, 0)));
        // overlapping in y: not separable vertically
        assert!(!hull_separable_in_direction(&a, &b, (0, 1)));
        // empty set separable
        assert!(hull_separable_in_direction(&[], &b, (1, 0)));
    }

    #[test]
    fn inside_hull_checks() {
        let h = vec![(0, 0), (4, 0), (4, 4), (0, 4)];
        assert!(inside_hull(&h, (2, 2)));
        assert!(!inside_hull(&h, (4, 2))); // boundary is not strict inside
        assert!(!inside_hull(&h, (5, 2)));
    }
}
