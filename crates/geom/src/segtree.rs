//! Segment (interval) tree over a fixed set of intervals, answering
//! batched stabbing queries — the reference for the paper's "segment
//! tree construction" and "batched planar point location" rows.

/// A static interval tree over compressed endpoint coordinates.
pub struct IntervalTree {
    /// Sorted distinct endpoints; elementary slabs are the gaps.
    xs: Vec<i64>,
    /// Intervals stored at each node (canonical cover allocation).
    node_lists: Vec<Vec<u32>>,
    leaves: usize,
}

impl IntervalTree {
    /// Build over closed intervals `[a, b]` (`a ≤ b`).
    pub fn build(intervals: &[(i64, i64)]) -> Self {
        let mut xs: Vec<i64> = intervals.iter().flat_map(|&(a, b)| [a, b]).collect();
        xs.sort_unstable();
        xs.dedup();
        // elementary intervals: [x_i, x_{i+1}); plus point-slabs handled
        // by closed-interval insertion below. Use 2m+1 style: leaves are
        // the xs themselves and the gaps; simplest: leaves = xs.len()
        // point-slabs + gaps => use segment tree over 2*len-1 elementary
        // pieces. We implement over `2·len − 1` leaves:
        // leaf 2i = point x_i, leaf 2i+1 = open gap (x_i, x_{i+1}).
        let base = if xs.is_empty() { 1 } else { 2 * xs.len() - 1 };
        let leaves = base.next_power_of_two();
        let mut t = Self { xs, node_lists: vec![Vec::new(); 2 * leaves], leaves };
        for (i, &(a, b)) in intervals.iter().enumerate() {
            t.insert(i as u32, a, b);
        }
        t
    }

    fn leaf_range(&self, a: i64, b: i64) -> (usize, usize) {
        // closed [a, b] covers leaves [2*rank(a), 2*rank(b)] inclusive.
        let ra = self.xs.binary_search(&a).expect("endpoint must exist");
        let rb = self.xs.binary_search(&b).expect("endpoint must exist");
        (2 * ra, 2 * rb + 1) // half-open in leaf indices
    }

    fn insert(&mut self, id: u32, a: i64, b: i64) {
        assert!(a <= b);
        let (l, r) = self.leaf_range(a, b);
        self.insert_rec(1, 0, self.leaves, l, r, id);
    }

    fn insert_rec(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, id: u32) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.node_lists[node].push(id);
            return;
        }
        let mid = (lo + hi) / 2;
        self.insert_rec(2 * node, lo, mid, l, r, id);
        self.insert_rec(2 * node + 1, mid, hi, l, r, id);
    }

    /// All interval ids containing `x`, ascending.
    pub fn stab(&self, x: i64) -> Vec<u32> {
        if self.xs.is_empty() {
            return Vec::new();
        }
        // locate leaf for x
        let r = self.xs.partition_point(|&e| e < x);
        let leaf = if r < self.xs.len() && self.xs[r] == x {
            2 * r // point slab
        } else if r == 0 || r >= self.xs.len() {
            return Vec::new(); // outside all endpoints
        } else {
            2 * (r - 1) + 1 // gap slab between x_{r-1} and x_r
        };
        let mut out = Vec::new();
        let mut node = self.leaves + leaf;
        while node >= 1 {
            out.extend_from_slice(&self.node_lists[node]);
            if node == 1 {
                break;
            }
            node /= 2;
        }
        out.sort_unstable();
        out
    }

    /// Total stored interval fragments (the `O(n log n)` space bound).
    pub fn fragments(&self) -> usize {
        self.node_lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_stab(intervals: &[(i64, i64)], x: i64) -> Vec<u32> {
        intervals
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| a <= x && x <= b)
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn basic_stabbing() {
        let iv = vec![(0, 10), (5, 15), (12, 20)];
        let t = IntervalTree::build(&iv);
        assert_eq!(t.stab(3), vec![0]);
        assert_eq!(t.stab(5), vec![0, 1]);
        assert_eq!(t.stab(10), vec![0, 1]);
        assert_eq!(t.stab(11), vec![1]);
        assert_eq!(t.stab(12), vec![1, 2]);
        assert_eq!(t.stab(16), vec![2]);
        assert_eq!(t.stab(25), Vec::<u32>::new());
        assert_eq!(t.stab(-1), Vec::<u32>::new());
    }

    #[test]
    fn matches_naive_on_random_intervals() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let iv: Vec<(i64, i64)> = (0..60)
                .map(|_| {
                    let a = rng.gen_range(0..100);
                    let b = rng.gen_range(a..=100);
                    (a, b)
                })
                .collect();
            let t = IntervalTree::build(&iv);
            for x in -5..106 {
                assert_eq!(t.stab(x), naive_stab(&iv, x), "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn point_intervals() {
        let iv = vec![(5, 5), (5, 7)];
        let t = IntervalTree::build(&iv);
        assert_eq!(t.stab(5), vec![0, 1]);
        assert_eq!(t.stab(6), vec![1]);
        assert_eq!(t.stab(4), Vec::<u32>::new());
    }

    #[test]
    fn space_is_near_linear_log() {
        let iv: Vec<(i64, i64)> = (0..512).map(|i| (i, i + 37)).collect();
        let t = IntervalTree::build(&iv);
        let n = 512.0f64;
        assert!((t.fragments() as f64) < 4.0 * n * n.log2(), "fragments = {}", t.fragments());
    }

    #[test]
    fn empty_tree() {
        let t = IntervalTree::build(&[]);
        assert_eq!(t.stab(0), Vec::<u32>::new());
    }
}
