//! Lower/upper envelopes of non-crossing segments (Group B rows 4–5).
//!
//! The envelope is computed by divide and conquer: envelopes of two
//! halves are merged by walking their breakpoints jointly; on each
//! elementary interval the winner is decided exactly with
//! [`crate::predicates::cmp_at_x`]. Segments may share endpoints but
//! must not properly cross (the CGM lower-envelope algorithm the paper
//! cites makes the same assumption).

use crate::predicates::{cmp_at_x, Point};
use std::cmp::Ordering;

/// One piece of an envelope: on `[x1, x2]` segment `seg` is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvPiece {
    /// Piece start.
    pub x1: i64,
    /// Piece end (`> x1`).
    pub x2: i64,
    /// Index (into the input slice) of the visible segment.
    pub seg: u32,
}

/// Lower envelope of `segs`; pieces are sorted by `x1`, non-overlapping,
/// gaps (x-ranges covered by no segment) are omitted.
pub fn lower_envelope(segs: &[(Point, Point)]) -> Vec<EnvPiece> {
    let ids: Vec<u32> = (0..segs.len() as u32).collect();
    envelope_rec(&ids, segs, true)
}

/// Upper envelope of `segs`.
pub fn upper_envelope(segs: &[(Point, Point)]) -> Vec<EnvPiece> {
    let ids: Vec<u32> = (0..segs.len() as u32).collect();
    envelope_rec(&ids, segs, false)
}

fn envelope_rec(ids: &[u32], segs: &[(Point, Point)], lower: bool) -> Vec<EnvPiece> {
    match ids.len() {
        0 => Vec::new(),
        1 => {
            let s = segs[ids[0] as usize];
            assert!(s.0 .0 < s.1 .0, "segments must be non-vertical, left-to-right");
            vec![EnvPiece { x1: s.0 .0, x2: s.1 .0, seg: ids[0] }]
        }
        n => {
            let a = envelope_rec(&ids[..n / 2], segs, lower);
            let b = envelope_rec(&ids[n / 2..], segs, lower);
            merge_envelopes(&a, &b, segs, lower)
        }
    }
}

/// Merge two envelopes over the same segment set.
pub fn merge_envelopes(
    a: &[EnvPiece],
    b: &[EnvPiece],
    segs: &[(Point, Point)],
    lower: bool,
) -> Vec<EnvPiece> {
    // Breakpoints: all piece boundaries of both envelopes.
    let mut xs: Vec<i64> = a.iter().chain(b.iter()).flat_map(|p| [p.x1, p.x2]).collect();
    xs.sort_unstable();
    xs.dedup();

    let mut out: Vec<EnvPiece> = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    for w in xs.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        while ia < a.len() && a[ia].x2 <= lo {
            ia += 1;
        }
        while ib < b.len() && b[ib].x2 <= lo {
            ib += 1;
        }
        let ca = (ia < a.len() && a[ia].x1 <= lo).then(|| a[ia].seg);
        let cb = (ib < b.len() && b[ib].x1 <= lo).then(|| b[ib].seg);
        let win = match (ca, cb) {
            (None, None) => None,
            (Some(s), None) => Some(s),
            (None, Some(t)) => Some(t),
            (Some(s), Some(t)) => {
                let (ss, tt) = (segs[s as usize], segs[t as usize]);
                let mut ord = cmp_at_x(ss, tt, lo);
                if ord == Ordering::Equal {
                    ord = cmp_at_x(ss, tt, hi);
                }
                let pick_s = match ord {
                    Ordering::Less => lower,
                    Ordering::Greater => !lower,
                    Ordering::Equal => s < t, // identical on the interval
                };
                debug_assert!(
                    ord == Ordering::Equal
                        || cmp_at_x(ss, tt, hi) == Ordering::Equal
                        || cmp_at_x(ss, tt, hi) == ord,
                    "segments cross inside an elementary interval"
                );
                Some(if pick_s { s } else { t })
            }
        };
        if let Some(seg) = win {
            match out.last_mut() {
                Some(last) if last.seg == seg && last.x2 == lo => last.x2 = hi,
                _ => out.push(EnvPiece { x1: lo, x2: hi, seg }),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::seg_y_cmp;
    use cgmio_data::random_segments;

    fn naive_winner_at(segs: &[(Point, Point)], x: i64, y_probe: i64, lower: bool) -> Option<u32> {
        // winner = seg covering x with extreme y; compare pairwise.
        let mut best: Option<u32> = None;
        for (i, s) in segs.iter().enumerate() {
            if s.0 .0 <= x && x <= s.1 .0 {
                best = Some(match best {
                    None => i as u32,
                    Some(b) => {
                        let ord = cmp_at_x(segs[b as usize], *s, x);
                        let keep_b = match ord {
                            Ordering::Less => lower,
                            Ordering::Greater => !lower,
                            Ordering::Equal => b < i as u32,
                        };
                        if keep_b {
                            b
                        } else {
                            i as u32
                        }
                    }
                });
            }
        }
        let _ = y_probe;
        best
    }

    #[test]
    fn two_stacked_segments() {
        let segs = vec![((0, 0), (10, 0)), ((2, 5), (8, 5))];
        let env = lower_envelope(&segs);
        assert_eq!(env, vec![EnvPiece { x1: 0, x2: 10, seg: 0 }]);
        let env = upper_envelope(&segs);
        assert_eq!(
            env,
            vec![
                EnvPiece { x1: 0, x2: 2, seg: 0 },
                EnvPiece { x1: 2, x2: 8, seg: 1 },
                EnvPiece { x1: 8, x2: 10, seg: 0 },
            ]
        );
    }

    #[test]
    fn gap_between_segments() {
        let segs = vec![((0, 1), (2, 1)), ((5, 2), (7, 2))];
        let env = lower_envelope(&segs);
        assert_eq!(env.len(), 2);
        assert_eq!(env[0].x2, 2);
        assert_eq!(env[1].x1, 5);
    }

    #[test]
    fn envelope_matches_naive_on_random_sets() {
        for seed in 0..5u64 {
            let raw = random_segments(40, 200, seed);
            let segs: Vec<(Point, Point)> =
                raw.iter().map(|s| ((s.ax, s.ay), (s.bx, s.by))).collect();
            for lower in [true, false] {
                let env = if lower { lower_envelope(&segs) } else { upper_envelope(&segs) };
                // pieces ordered and non-overlapping
                for w in env.windows(2) {
                    assert!(w[0].x2 <= w[1].x1);
                }
                // compare winner at piece-interior sample x (when width > 1,
                // pick lo+1 to stay off boundaries where ties occur)
                for p in &env {
                    let x = if p.x2 - p.x1 > 1 { p.x1 + 1 } else { p.x1 };
                    if x == p.x1 && p.x2 - p.x1 <= 1 {
                        continue; // boundary tie-sensitive, skip
                    }
                    let want = naive_winner_at(&segs, x, 0, lower).unwrap();
                    // allow ties: both must have equal y at x
                    if want != p.seg {
                        assert_eq!(
                            cmp_at_x(segs[want as usize], segs[p.seg as usize], x),
                            Ordering::Equal,
                            "seed {seed} x {x}: env={} naive={}",
                            p.seg,
                            want
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_envelope_is_below_all_segments() {
        let raw = random_segments(30, 150, 7);
        let segs: Vec<(Point, Point)> = raw.iter().map(|s| ((s.ax, s.ay), (s.bx, s.by))).collect();
        let env = lower_envelope(&segs);
        for p in &env {
            if p.x2 - p.x1 <= 1 {
                continue; // midpoint would land on a tie-sensitive boundary
            }
            let (es, x) = (segs[p.seg as usize], p.x1.midpoint(p.x2));
            // envelope y at x <= every covering segment's y at x
            for s in &segs {
                if s.0 .0 <= x && x <= s.1 .0 {
                    assert_ne!(cmp_at_x(es, *s, x), Ordering::Greater);
                }
            }
            let _ = seg_y_cmp; // silence unused import in some cfgs
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(lower_envelope(&[]).is_empty());
        let env = lower_envelope(&[((1, 1), (4, 2))]);
        assert_eq!(env, vec![EnvPiece { x1: 1, x2: 4, seg: 0 }]);
    }
}
