//! # cgmio-geom — computational-geometry substrate
//!
//! Exact integer predicates and sequential reference implementations for
//! the paper's Group B problems. All coordinates are `i64` bounded by
//! [`predicates::MAX_COORD`] so every predicate evaluates exactly in
//! `i128`.

#![warn(missing_docs)]

pub mod dominance;
pub mod envelope;
pub mod fenwick;
pub mod hull;
pub mod kdtree;
pub mod maxima;
pub mod pointloc;
pub mod predicates;
pub mod rects;
pub mod segtree;
pub mod triangulate;

pub use envelope::{lower_envelope, merge_envelopes, upper_envelope, EnvPiece};
pub use fenwick::Fenwick;
pub use hull::{convex_hull, hull_separable_in_direction};
pub use kdtree::KdTree;
pub use maxima::maxima_3d;
pub use pointloc::{segment_below, sweep_point_location, trapezoids};
pub use predicates::{cmp_at_x, orient2d, Point};
pub use rects::union_area;
pub use segtree::IntervalTree;
pub use triangulate::triangulate_points;
