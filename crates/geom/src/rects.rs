//! Area of a union of axis-aligned rectangles (Group B row 6) — the
//! classic sweepline with a coverage-count segment tree over compressed
//! y-coordinates.

/// An axis-aligned rectangle `[x1, x2] × [y1, y2]` (half-open
/// semantics are irrelevant for area).
pub type IRect = (i64, i64, i64, i64); // x1, y1, x2, y2

struct CoverTree {
    ys: Vec<i64>,
    count: Vec<u32>,
    covered: Vec<i64>, // covered length within the node's y-range
}

impl CoverTree {
    fn new(mut ys: Vec<i64>) -> Self {
        ys.sort_unstable();
        ys.dedup();
        let n = ys.len().max(2);
        Self { count: vec![0; 4 * n], covered: vec![0; 4 * n], ys }
    }

    fn update(&mut self, node: usize, lo: usize, hi: usize, l: usize, r: usize, delta: i32) {
        if r <= lo || hi <= l {
            return;
        }
        if l <= lo && hi <= r {
            self.count[node] = (self.count[node] as i32 + delta) as u32;
        } else {
            let mid = (lo + hi) / 2;
            self.update(2 * node, lo, mid, l, r, delta);
            self.update(2 * node + 1, mid, hi, l, r, delta);
        }
        self.covered[node] = if self.count[node] > 0 {
            self.ys[hi] - self.ys[lo]
        } else if hi - lo == 1 {
            0
        } else {
            self.covered[2 * node] + self.covered[2 * node + 1]
        };
    }

    fn add(&mut self, y1: i64, y2: i64, delta: i32) {
        let l = self.ys.binary_search(&y1).unwrap();
        let r = self.ys.binary_search(&y2).unwrap();
        if l < r {
            let leaves = self.ys.len() - 1;
            self.update(1, 0, leaves, l, r, delta);
        }
    }

    fn covered(&self) -> i64 {
        self.covered[1]
    }
}

/// Exact area of the union of `rects`.
pub fn union_area(rects: &[IRect]) -> i128 {
    if rects.is_empty() {
        return 0;
    }
    // events: (x, y1, y2, +1/-1)
    let mut events: Vec<(i64, i64, i64, i32)> = Vec::with_capacity(2 * rects.len());
    let mut ys = Vec::with_capacity(2 * rects.len());
    for &(x1, y1, x2, y2) in rects {
        assert!(x1 < x2 && y1 < y2, "degenerate rectangle");
        events.push((x1, y1, y2, 1));
        events.push((x2, y1, y2, -1));
        ys.push(y1);
        ys.push(y2);
    }
    events.sort_unstable();
    let mut tree = CoverTree::new(ys);
    let mut area: i128 = 0;
    let mut last_x = events[0].0;
    for (x, y1, y2, delta) in events {
        area += (x - last_x) as i128 * tree.covered() as i128;
        last_x = x;
        tree.add(y1, y2, delta);
    }
    area
}

/// O(grid) reference for tests: rasterise over the bounding box.
pub fn union_area_naive(rects: &[IRect]) -> i128 {
    if rects.is_empty() {
        return 0;
    }
    let xs: Vec<i64> = {
        let mut v: Vec<i64> = rects.iter().flat_map(|r| [r.0, r.2]).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let ys: Vec<i64> = {
        let mut v: Vec<i64> = rects.iter().flat_map(|r| [r.1, r.3]).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut area = 0i128;
    for i in 0..xs.len() - 1 {
        for j in 0..ys.len() - 1 {
            let (cx, cy) = (xs[i], ys[j]);
            if rects.iter().any(|&(x1, y1, x2, y2)| x1 <= cx && cx < x2 && y1 <= cy && cy < y2) {
                area += (xs[i + 1] - xs[i]) as i128 * (ys[j + 1] - ys[j]) as i128;
            }
        }
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_rects;

    #[test]
    fn single_rect() {
        assert_eq!(union_area(&[(0, 0, 4, 3)]), 12);
    }

    #[test]
    fn disjoint_and_nested_and_overlapping() {
        assert_eq!(union_area(&[(0, 0, 2, 2), (3, 3, 5, 5)]), 8);
        assert_eq!(union_area(&[(0, 0, 10, 10), (2, 2, 4, 4)]), 100);
        assert_eq!(union_area(&[(0, 0, 3, 3), (2, 2, 5, 5)]), 9 + 9 - 1);
        // identical duplicates
        assert_eq!(union_area(&[(1, 1, 4, 4), (1, 1, 4, 4)]), 9);
    }

    #[test]
    fn matches_naive_on_random_sets() {
        for seed in 0..6u64 {
            let rects: Vec<IRect> =
                random_rects(25, 60, seed).into_iter().map(|r| (r.x1, r.y1, r.x2, r.y2)).collect();
            assert_eq!(union_area(&rects), union_area_naive(&rects), "seed {seed}");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(union_area(&[]), 0);
    }

    #[test]
    fn area_bounded_by_sum_and_bbox() {
        let rects: Vec<IRect> =
            random_rects(40, 100, 9).into_iter().map(|r| (r.x1, r.y1, r.x2, r.y2)).collect();
        let a = union_area(&rects);
        let sum: i128 = rects.iter().map(|r| (r.2 - r.0) as i128 * (r.3 - r.1) as i128).sum();
        assert!(a <= sum);
        assert!(a <= 100 * 100);
        assert!(a > 0);
    }
}
