//! Fenwick (binary-indexed) tree — prefix sums under point updates,
//! used by the dominance-counting reference.

/// A Fenwick tree over `i128` values.
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<i128>,
}

impl Fenwick {
    /// A tree over positions `0..n`, all zero.
    pub fn new(n: usize) -> Self {
        Self { tree: vec![0; n + 1] }
    }

    /// Add `delta` at position `i`.
    pub fn add(&mut self, i: usize, delta: i128) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    pub fn prefix(&self, i: usize) -> i128 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the whole array.
    pub fn total(&self) -> i128 {
        self.prefix(self.tree.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 5);
        f.add(3, 2);
        f.add(9, -1);
        assert_eq!(f.prefix(0), 5);
        assert_eq!(f.prefix(2), 5);
        assert_eq!(f.prefix(3), 7);
        assert_eq!(f.prefix(9), 6);
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn matches_naive_on_random_ops() {
        let n = 64;
        let mut f = Fenwick::new(n);
        let mut naive = vec![0i128; n];
        let mut x = 123456789u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (x >> 33) as usize % n;
            let d = ((x % 17) as i128) - 8;
            f.add(i, d);
            naive[i] += d;
            let q = (x >> 17) as usize % n;
            let want: i128 = naive[..=q].iter().sum();
            assert_eq!(f.prefix(q), want);
        }
    }
}
