//! Batched planar point location over non-crossing segments: for every
//! query point, the segment directly below it ("next element search"),
//! plus the trapezoidal decomposition derived from segment endpoints
//! (Group B rows 1–2).

use crate::predicates::{seg_y_cmp, Point};
use std::cmp::Ordering;

/// The index of the segment directly below point `q` (the segment with
/// the greatest `y < q.y`, or containing `q`), or `None`. Linear scan —
/// used as the exact reference.
pub fn segment_below(segs: &[(Point, Point)], q: Point) -> Option<u32> {
    let mut best: Option<u32> = None;
    for (i, &s) in segs.iter().enumerate() {
        if s.0 .0 <= q.0 && q.0 <= s.1 .0 && seg_y_cmp(s, q.0, q.1) != Ordering::Greater {
            best = Some(match best {
                None => i as u32,
                Some(b) => {
                    // keep the higher of the two at q.0; ties -> smaller id
                    match crate::predicates::cmp_at_x(segs[b as usize], s, q.0) {
                        Ordering::Less => i as u32,
                        Ordering::Greater => b,
                        Ordering::Equal => b.min(i as u32),
                    }
                }
            });
        }
    }
    best
}

/// Batched point location by plane sweep: for each query, the segment
/// directly below (or containing) it. `O((n + m) log (n + m))` with a
/// y-ordered active list; segments must be non-crossing and
/// non-vertical.
pub fn sweep_point_location(segs: &[(Point, Point)], queries: &[Point]) -> Vec<Option<u32>> {
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Ev {
        // order within equal x: insert segments first (so a query at a
        // left endpoint sees the segment), then queries, then removals
        // (so a query at a right endpoint still sees it).
        Insert = 0,
        Query = 1,
        Remove = 2,
    }
    let mut events: Vec<(i64, Ev, u32)> = Vec::with_capacity(2 * segs.len() + queries.len());
    for (i, s) in segs.iter().enumerate() {
        assert!(s.0 .0 < s.1 .0, "segments must be non-vertical, left-to-right");
        events.push((s.0 .0, Ev::Insert, i as u32));
        events.push((s.1 .0, Ev::Remove, i as u32));
    }
    for (i, q) in queries.iter().enumerate() {
        events.push((q.0, Ev::Query, i as u32));
    }
    events.sort_unstable();

    let mut active: Vec<u32> = Vec::new(); // sorted by y at current x
    let mut out = vec![None; queries.len()];
    for (x, ev, id) in events {
        match ev {
            Ev::Insert => {
                let s = segs[id as usize];
                let pos = active.partition_point(|&a| {
                    match crate::predicates::cmp_at_x(segs[a as usize], s, x) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        // equal at x (shared endpoint): order by the other
                        // endpoint via comparison slightly to the right —
                        // use the segment end x of the shorter overlap.
                        Ordering::Equal => {
                            let hx = segs[a as usize].1 .0.min(s.1 .0);
                            match crate::predicates::cmp_at_x(segs[a as usize], s, hx) {
                                Ordering::Less => true,
                                Ordering::Greater => false,
                                Ordering::Equal => a < id,
                            }
                        }
                    }
                });
                active.insert(pos, id);
            }
            Ev::Remove => {
                let pos = active.iter().position(|&a| a == id).expect("active segment");
                active.remove(pos);
            }
            Ev::Query => {
                let q = queries[id as usize];
                // highest active segment with y <= q.y at x
                let pos = active
                    .partition_point(|&a| seg_y_cmp(segs[a as usize], x, q.1) != Ordering::Greater);
                out[id as usize] = pos.checked_sub(1).map(|p| active[p]);
            }
        }
    }
    out
}

/// Trapezoidal decomposition summary: for every segment endpoint, the
/// segment directly below it (excluding its own segment). This is the
/// vertical-extension information defining the trapezoidation.
pub fn trapezoids(segs: &[(Point, Point)]) -> Vec<(Option<u32>, Option<u32>)> {
    let below_of = |q: Point, skip: u32| -> Option<u32> {
        let mut best: Option<u32> = None;
        for (i, &s) in segs.iter().enumerate() {
            if i as u32 == skip {
                continue;
            }
            if s.0 .0 <= q.0 && q.0 <= s.1 .0 && seg_y_cmp(s, q.0, q.1) != Ordering::Greater {
                best = Some(match best {
                    None => i as u32,
                    Some(b) => match crate::predicates::cmp_at_x(segs[b as usize], s, q.0) {
                        Ordering::Less => i as u32,
                        Ordering::Greater => b,
                        Ordering::Equal => b.min(i as u32),
                    },
                });
            }
        }
        best
    };
    segs.iter()
        .enumerate()
        .map(|(i, &(a, b))| (below_of(a, i as u32), below_of(b, i as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::{random_points, random_segments};

    fn to_segs(raw: &[cgmio_data::Seg]) -> Vec<(Point, Point)> {
        raw.iter().map(|s| ((s.ax, s.ay), (s.bx, s.by))).collect()
    }

    #[test]
    fn sweep_matches_reference_on_random_inputs() {
        for seed in 0..5u64 {
            let segs = to_segs(&random_segments(50, 300, seed));
            let queries: Vec<Point> = random_points(200, 300, seed + 50)
                .into_iter()
                .map(|(x, y)| (x, y * 2)) // spread above/below bands
                .collect();
            let got = sweep_point_location(&segs, &queries);
            for (qi, &q) in queries.iter().enumerate() {
                let want = segment_below(&segs, q);
                match (got[qi], want) {
                    (Some(g), Some(w)) if g != w => {
                        // both must be at the same height at q.x (a tie)
                        assert_eq!(
                            crate::predicates::cmp_at_x(segs[g as usize], segs[w as usize], q.0),
                            Ordering::Equal,
                            "seed {seed} q {q:?}: got {g} want {w}"
                        );
                    }
                    (g, w) => assert_eq!(g, w, "seed {seed} q {q:?}"),
                }
            }
        }
    }

    #[test]
    fn query_on_segment_returns_it() {
        let segs = vec![((0, 0), (10, 0)), ((0, 5), (10, 5))];
        let r = sweep_point_location(&segs, &[(5, 0), (5, 5), (5, 3), (5, -1)]);
        assert_eq!(r, vec![Some(0), Some(1), Some(0), None]);
    }

    #[test]
    fn queries_at_endpoints() {
        let segs = vec![((2, 1), (8, 1))];
        let r = sweep_point_location(&segs, &[(2, 1), (8, 1), (1, 1), (9, 1)]);
        assert_eq!(r, vec![Some(0), Some(0), None, None]);
    }

    #[test]
    fn trapezoid_below_info() {
        // three stacked shelves
        let segs = vec![((0, 0), (10, 0)), ((2, 5), (8, 5)), ((3, 9), (7, 9))];
        let t = trapezoids(&segs);
        assert_eq!(t[0], (None, None));
        assert_eq!(t[1], (Some(0), Some(0)));
        assert_eq!(t[2], (Some(1), Some(1)));
    }

    #[test]
    fn trapezoids_on_random_segments_are_consistent() {
        let segs = to_segs(&random_segments(40, 200, 9));
        let t = trapezoids(&segs);
        for (i, &(la, lb)) in t.iter().enumerate() {
            // the reported below-segment must indeed be below the endpoint
            for (end, below) in [(segs[i].0, la), (segs[i].1, lb)] {
                if let Some(b) = below {
                    assert_ne!(b as usize, i);
                    assert_ne!(
                        seg_y_cmp(segs[b as usize], end.0, end.1),
                        Ordering::Greater,
                        "segment {b} claimed below endpoint {end:?} of {i}"
                    );
                }
            }
        }
    }
}
