//! Exact integer predicates.
//!
//! Coordinates are `i64` with magnitude at most [`MAX_COORD`]; all
//! determinants then fit comfortably in `i128`, so every predicate is
//! exact — no epsilons anywhere in the workspace.

/// A planar point with integer coordinates.
pub type Point = (i64, i64);

/// Maximum coordinate magnitude for exactness (2^40— far beyond any
/// workload generator in this workspace, and orient2d then fits in
/// ~2^82 ≪ i128).
pub const MAX_COORD: i64 = 1 << 40;

#[inline]
fn chk(p: Point) {
    debug_assert!(
        p.0.abs() <= MAX_COORD && p.1.abs() <= MAX_COORD,
        "coordinate out of exact range: {p:?}"
    );
}

/// Twice the signed area of triangle `abc`: positive when `c` lies to
/// the left of directed line `a → b` (counter-clockwise turn).
pub fn orient2d(a: Point, b: Point, c: Point) -> i128 {
    chk(a);
    chk(b);
    chk(c);
    (b.0 - a.0) as i128 * (c.1 - a.1) as i128 - (b.1 - a.1) as i128 * (c.0 - a.0) as i128
}

/// Do the closed segments `ab` and `cd` intersect?
pub fn segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = orient2d(c, d, a);
    let d2 = orient2d(c, d, b);
    let d3 = orient2d(a, b, c);
    let d4 = orient2d(a, b, d);
    if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
        return true;
    }
    let on = |p: Point, q: Point, r: Point| {
        orient2d(p, q, r) == 0
            && r.0 >= p.0.min(q.0)
            && r.0 <= p.0.max(q.0)
            && r.1 >= p.1.min(q.1)
            && r.1 <= p.1.max(q.1)
    };
    on(c, d, a) || on(c, d, b) || on(a, b, c) || on(a, b, d)
}

/// Compare the `y` values of two non-vertical segments at abscissa `x`
/// (which must lie in both x-ranges). Exact: cross-multiplies the two
/// rational ordinates.
pub fn cmp_at_x(s: (Point, Point), t: (Point, Point), x: i64) -> std::cmp::Ordering {
    let ((sax, say), (sbx, sby)) = s;
    let ((tax, tay), (tbx, tby)) = t;
    debug_assert!(sax <= x && x <= sbx && sax < sbx, "x not in s range");
    debug_assert!(tax <= x && x <= tbx && tax < tbx, "x not in t range");
    // y_s(x) = say + (sby-say)(x-sax)/(sbx-sax); compare
    // y_s(x) ? y_t(x) via cross multiplication with positive denominators.
    let ds = (sbx - sax) as i128;
    let dt = (tbx - tax) as i128;
    let ys = say as i128 * ds + (sby - say) as i128 * (x - sax) as i128;
    let yt = tay as i128 * dt + (tby - tay) as i128 * (x - tax) as i128;
    (ys * dt).cmp(&(yt * ds))
}

/// Exact y-ordinate comparison of a segment at `x` against a point's y:
/// `Ordering::Less` means the segment passes below `y` at `x`.
pub fn seg_y_cmp(s: (Point, Point), x: i64, y: i64) -> std::cmp::Ordering {
    let ((ax, ay), (bx, by)) = s;
    debug_assert!(ax <= x && x <= bx && ax < bx);
    let d = (bx - ax) as i128;
    let ys = ay as i128 * d + (by - ay) as i128 * (x - ax) as i128;
    ys.cmp(&(y as i128 * d))
}

/// Squared euclidean distance (exact in `i128`).
pub fn dist2(a: Point, b: Point) -> i128 {
    let dx = (a.0 - b.0) as i128;
    let dy = (a.1 - b.1) as i128;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn orientation_signs() {
        assert!(orient2d((0, 0), (1, 0), (0, 1)) > 0); // left turn
        assert!(orient2d((0, 0), (1, 0), (0, -1)) < 0); // right turn
        assert_eq!(orient2d((0, 0), (1, 1), (2, 2)), 0); // collinear
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let (a, b, c) = ((3, 7), (-2, 5), (10, -4));
        assert_eq!(orient2d(a, b, c), -orient2d(b, a, c));
        assert_eq!(orient2d(a, b, c), orient2d(b, c, a));
    }

    #[test]
    fn intersection_cases() {
        // proper crossing
        assert!(segments_intersect((0, 0), (4, 4), (0, 4), (4, 0)));
        // shared endpoint
        assert!(segments_intersect((0, 0), (2, 2), (2, 2), (5, 0)));
        // touching at interior point
        assert!(segments_intersect((0, 0), (4, 0), (2, 0), (2, 3)));
        // disjoint parallel
        assert!(!segments_intersect((0, 0), (4, 0), (0, 1), (4, 1)));
        // collinear disjoint
        assert!(!segments_intersect((0, 0), (1, 0), (2, 0), (3, 0)));
        // collinear overlapping
        assert!(segments_intersect((0, 0), (2, 0), (1, 0), (3, 0)));
    }

    #[test]
    fn cmp_at_x_exact_rationals() {
        // s: (0,0)-(3,1) has y=2/3 at x=2; t: (0,2)-(4,-2) has y=0 at x=2
        let s = ((0, 0), (3, 1));
        let t = ((0, 2), (4, -2));
        assert_eq!(cmp_at_x(s, t, 2), Ordering::Greater);
        assert_eq!(cmp_at_x(t, s, 2), Ordering::Less);
        assert_eq!(cmp_at_x(s, s, 2), Ordering::Equal);
        // crossing point x where both equal: s2 (0,0)-(4,4), t2 (0,4)-(4,0) at x=2
        assert_eq!(cmp_at_x(((0, 0), (4, 4)), ((0, 4), (4, 0)), 2), Ordering::Equal);
    }

    #[test]
    fn seg_y_cmp_thirds() {
        let s = ((0, 0), (3, 2)); // y = 2x/3
        assert_eq!(seg_y_cmp(s, 1, 1), Ordering::Less); // 2/3 < 1
        assert_eq!(seg_y_cmp(s, 3, 2), Ordering::Equal);
        assert_eq!(seg_y_cmp(s, 1, 0), Ordering::Greater); // 2/3 > 0
    }

    #[test]
    fn dist2_exact() {
        assert_eq!(dist2((0, 0), (3, 4)), 25);
        assert_eq!(dist2((-1, -1), (-1, -1)), 0);
    }
}
