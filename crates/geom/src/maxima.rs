//! 3D maxima (reference): a point is *maximal* when no other point
//! dominates it in all three coordinates.

/// Indices of the maximal points of `pts` (a point `q` dominates `p`
/// when `q ≥ p` coordinate-wise and `q ≠ p`). Classic sweep: descending
/// `x`, maintaining the 2D staircase of `(y, z)` maxima.
pub fn maxima_3d(pts: &[(i64, i64, i64)]) -> Vec<usize> {
    // Exact duplicates do not dominate each other: sweep over distinct
    // points, then expand back to indices.
    let mut uniq: Vec<(i64, i64, i64)> = pts.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let maximal_uniq = maxima_3d_distinct(&uniq);
    let maximal: std::collections::HashSet<(i64, i64, i64)> =
        maximal_uniq.into_iter().map(|i| uniq[i]).collect();
    (0..pts.len()).filter(|&i| maximal.contains(&pts[i])).collect()
}

/// Sweep over *distinct* points (descending x, then descending (y, z) so
/// dominators are scanned before dominatees).
fn maxima_3d_distinct(pts: &[(i64, i64, i64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pts.len()).collect();
    idx.sort_unstable_by(|&a, &b| pts[b].cmp(&pts[a]));
    // staircase: y -> max z among processed points with that-or-higher y;
    // kept as a Vec of (y, z) with y descending and z strictly increasing.
    let mut stairs: Vec<(i64, i64)> = Vec::new();
    let mut out = Vec::new();
    for &i in &idx {
        let (_, y, z) = pts[i];
        // dominated iff some processed point has y' >= y and z' >= z.
        // stairs is sorted by y descending; binary search the last entry
        // with y' >= y and check its max z (z increases along the vec).
        let pos = stairs.partition_point(|&(sy, _)| sy >= y);
        let dominated = pos > 0 && stairs[pos - 1].1 >= z;
        if !dominated {
            out.push(i);
            // insert (y, z), discarding dominated stairs entries
            // (those with y' <= y and z' <= z).
            let ins = stairs.partition_point(|&(sy, _)| sy > y);
            let mut end = ins;
            while end < stairs.len() && stairs[end].1 <= z {
                end += 1;
            }
            stairs.splice(ins..end, [(y, z)]);
        }
    }
    out.sort_unstable();
    out
}

/// O(n²) reference for tests.
pub fn maxima_3d_naive(pts: &[(i64, i64, i64)]) -> Vec<usize> {
    (0..pts.len())
        .filter(|&i| {
            !pts.iter().enumerate().any(|(j, q)| {
                j != i && q.0 >= pts[i].0 && q.1 >= pts[i].1 && q.2 >= pts[i].2 && *q != pts[i]
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn simple_case() {
        let pts = vec![(0, 0, 0), (1, 1, 1), (2, 0, 0), (0, 2, 0), (0, 0, 2)];
        // (0,0,0) dominated by (1,1,1); others are maximal
        assert_eq!(maxima_3d(&pts), vec![1, 2, 3, 4]);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<(i64, i64, i64)> = (0..300)
                .map(|_| (rng.gen_range(0..40), rng.gen_range(0..40), rng.gen_range(0..40)))
                .collect();
            assert_eq!(maxima_3d(&pts), maxima_3d_naive(&pts), "seed {seed}");
        }
    }

    #[test]
    fn duplicates_are_all_maximal_or_all_not() {
        let pts = vec![(5, 5, 5), (5, 5, 5), (6, 6, 6)];
        // both duplicates dominated by (6,6,6)
        assert_eq!(maxima_3d(&pts), vec![2]);
        let pts = vec![(5, 5, 5), (5, 5, 5)];
        // equal points do not dominate each other
        assert_eq!(maxima_3d(&pts), vec![0, 1]);
    }

    #[test]
    fn chain_has_single_maximum() {
        let pts: Vec<(i64, i64, i64)> = (0..50).map(|i| (i, i, i)).collect();
        assert_eq!(maxima_3d(&pts), vec![49]);
    }

    #[test]
    fn antichain_all_maximal() {
        let pts: Vec<(i64, i64, i64)> = (0..50).map(|i| (i, 49 - i, 0)).collect();
        assert_eq!(maxima_3d(&pts).len(), 50);
    }
}
