//! 2D weighted dominance counting (Group B row 7): for every point, the
//! total weight of points it dominates (`q.x ≤ p.x` and `q.y ≤ p.y`,
//! `q ≠ p`).

use crate::fenwick::Fenwick;
use crate::predicates::Point;

/// For each input point, the sum of weights of the points it dominates.
/// Sweep by `x` with a Fenwick tree over compressed `y` ranks;
/// `O(n log n)`, exact in `i128`.
pub fn dominance_weights(pts: &[Point], weights: &[i64]) -> Vec<i128> {
    assert_eq!(pts.len(), weights.len());
    let n = pts.len();
    // compress y
    let mut ys: Vec<i64> = pts.iter().map(|p| p.1).collect();
    ys.sort_unstable();
    ys.dedup();
    let yrank = |y: i64| ys.binary_search(&y).unwrap();

    // sweep points in (x, y) order; equal points are grouped so that a
    // point never counts itself or its exact duplicates.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| pts[i]);

    let mut out = vec![0i128; n];
    let mut bit = Fenwick::new(ys.len());
    let mut i = 0;
    while i < n {
        // group of identical (x, y) points
        let mut j = i;
        while j < n && pts[order[j]] == pts[order[i]] {
            j += 1;
        }
        // pending: strictly-smaller-x points are all inserted; equal-x
        // points with smaller y too. Insert equal-x smaller-y first:
        // sort order guarantees they came earlier and were inserted.
        let r = yrank(pts[order[i]].1);
        let count = bit.prefix(r);
        for &idx in &order[i..j] {
            out[idx] = count;
        }
        for &idx in &order[i..j] {
            bit.add(r, weights[idx] as i128);
        }
        i = j;
    }
    out
}

/// O(n²) reference.
pub fn dominance_weights_naive(pts: &[Point], weights: &[i64]) -> Vec<i128> {
    (0..pts.len())
        .map(|i| {
            pts.iter()
                .zip(weights)
                .enumerate()
                .filter(|&(j, (q, _))| j != i && q.0 <= pts[i].0 && q.1 <= pts[i].1 && *q != pts[i])
                .map(|(_, (_, &w))| w as i128)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_points;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn small_example() {
        let pts = vec![(0, 0), (1, 1), (2, 0), (1, 2)];
        let w = vec![1, 10, 100, 1000];
        // (0,0): nothing; (1,1): (0,0); (2,0): (0,0); (1,2): (0,0)+(1,1)
        assert_eq!(dominance_weights(&pts, &w), vec![0, 1, 1, 11]);
    }

    #[test]
    fn duplicates_do_not_dominate_each_other() {
        let pts = vec![(3, 3), (3, 3), (0, 0)];
        let w = vec![5, 7, 1];
        assert_eq!(dominance_weights(&pts, &w), vec![1, 1, 0]);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        for seed in 0..5u64 {
            let pts = random_points(200, 50, seed); // small range => many x/y ties
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let w: Vec<i64> = (0..200).map(|_| rng.gen_range(-20..20)).collect();
            assert_eq!(dominance_weights(&pts, &w), dominance_weights_naive(&pts, &w), "{seed}");
        }
    }

    #[test]
    fn boundary_equal_coordinates_count() {
        // q with equal x but smaller y IS dominated.
        let pts = vec![(5, 1), (5, 9)];
        let w = vec![2, 3];
        assert_eq!(dominance_weights(&pts, &w), vec![0, 2]);
    }

    #[test]
    fn chain_accumulates() {
        let pts: Vec<Point> = (0..20).map(|i| (i, i)).collect();
        let w = vec![1i64; 20];
        let d = dominance_weights(&pts, &w);
        for (i, &x) in d.iter().enumerate() {
            assert_eq!(x, i as i128);
        }
    }
}
