//! A 2-d tree for exact nearest-neighbour queries (Group B row 6's
//! "2D-nearest neighbors of a point set").

use crate::predicates::{dist2, Point};

/// Static kd-tree over a point set.
pub struct KdTree {
    /// Points in tree order.
    pts: Vec<Point>,
    /// Original index of each tree-order point.
    idx: Vec<u32>,
}

impl KdTree {
    /// Build from a point slice (indices refer to this slice).
    pub fn build(points: &[Point]) -> Self {
        let mut pairs: Vec<(Point, u32)> =
            points.iter().copied().zip(0..points.len() as u32).collect();
        build_rec(&mut pairs, 0);
        let (pts, idx) = pairs.into_iter().unzip();
        Self { pts, idx }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Nearest neighbour of `q`, excluding points at original index
    /// `exclude` (use `u32::MAX` for none). Returns `(original_index,
    /// squared_distance)`. Ties broken by smallest original index.
    pub fn nearest(&self, q: Point, exclude: u32) -> Option<(u32, i128)> {
        if self.pts.is_empty() {
            return None;
        }
        let mut best: Option<(u32, i128)> = None;
        self.search(0, self.pts.len(), 0, q, exclude, &mut best);
        best
    }

    fn search(
        &self,
        lo: usize,
        hi: usize,
        axis: usize,
        q: Point,
        exclude: u32,
        best: &mut Option<(u32, i128)>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        let p = self.pts[mid];
        let i = self.idx[mid];
        if i != exclude {
            let d = dist2(q, p);
            let better = match *best {
                None => true,
                Some((bi, bd)) => d < bd || (d == bd && i < bi),
            };
            if better {
                *best = Some((i, d));
            }
        }
        let qc = if axis == 0 { q.0 } else { q.1 };
        let pc = if axis == 0 { p.0 } else { p.1 };
        let (near, far) =
            if qc <= pc { ((lo, mid), (mid + 1, hi)) } else { ((mid + 1, hi), (lo, mid)) };
        self.search(near.0, near.1, 1 - axis, q, exclude, best);
        let plane = (qc - pc) as i128 * (qc - pc) as i128;
        if best.map(|(_, bd)| plane <= bd).unwrap_or(true) {
            self.search(far.0, far.1, 1 - axis, q, exclude, best);
        }
    }
}

fn build_rec(pairs: &mut [(Point, u32)], axis: usize) {
    if pairs.len() <= 1 {
        return;
    }
    let mid = pairs.len() / 2;
    pairs.select_nth_unstable_by_key(
        mid,
        |&(p, i)| {
            if axis == 0 {
                (p.0, p.1, i)
            } else {
                (p.1, p.0, i)
            }
        },
    );
    let (l, r) = pairs.split_at_mut(mid);
    build_rec(l, 1 - axis);
    build_rec(&mut r[1..], 1 - axis);
}

/// All nearest neighbours: for every point, the index of its closest
/// other point (ties to the smallest index). Returns `u32::MAX` entries
/// only when the input has a single point.
pub fn all_nearest_neighbors(points: &[Point]) -> Vec<u32> {
    let tree = KdTree::build(points);
    (0..points.len() as u32)
        .map(|i| tree.nearest(points[i as usize], i).map(|(j, _)| j).unwrap_or(u32::MAX))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgmio_data::random_points;

    fn naive_nn(points: &[Point], i: usize) -> u32 {
        let mut best = (u32::MAX, i128::MAX);
        for (j, &q) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            let d = dist2(points[i], q);
            if d < best.1 || (d == best.1 && (j as u32) < best.0) {
                best = (j as u32, d);
            }
        }
        best.0
    }

    #[test]
    fn matches_naive_on_random_sets() {
        for seed in 0..4u64 {
            let pts = random_points(300, 100, seed); // dense => distance ties occur
            let nn = all_nearest_neighbors(&pts);
            for (i, &got) in nn.iter().enumerate() {
                assert_eq!(got, naive_nn(&pts, i), "seed {seed} i {i}");
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(all_nearest_neighbors(&[(0, 0)]), vec![u32::MAX]);
        assert_eq!(all_nearest_neighbors(&[(0, 0), (1, 0)]), vec![1, 0]);
        assert!(KdTree::build(&[]).nearest((0, 0), u32::MAX).is_none());
    }

    #[test]
    fn nearest_with_no_exclusion_finds_self() {
        let pts = vec![(5, 5), (9, 9)];
        let t = KdTree::build(&pts);
        assert_eq!(t.nearest((5, 5), u32::MAX), Some((0, 0)));
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..10).map(|i| (i * i, 0)).collect(); // growing gaps
        let nn = all_nearest_neighbors(&pts);
        for (i, &got) in nn.iter().enumerate().skip(1) {
            // nearest of point i is i-1 (previous gap smaller than next)
            assert_eq!(got, (i - 1) as u32, "i={i}");
        }
        assert_eq!(nn[0], 1);
    }
}
