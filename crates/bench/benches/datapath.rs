//! Microbenchmarks for the pooled zero-copy data path: the allocating
//! codec vs `encode_into` over pooled blocks, and the full context swap
//! round-trip through `ContextStore` with reused scratch buffers.
//!
//! The headline numbers (allocation counts, bytes moved) come from
//! `reproduce perf`; this harness tracks the same paths under Criterion
//! for quick wall-clock regression checks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgmio_core::context::ContextStore;
use cgmio_model::ProcState;
use cgmio_pdm::{BlockPool, DiskArray, DiskGeometry, Item};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath_codec");
    for n in [64usize, 1024, 16384] {
        let items: Vec<u64> = (0..n as u64).collect();
        g.bench_with_input(BenchmarkId::new("encode_slice_alloc", n), &n, |b, _| {
            b.iter(|| u64::encode_slice(&items).len())
        });
        let pool = BlockPool::default();
        g.bench_with_input(BenchmarkId::new("encode_into_pooled", n), &n, |b, _| {
            b.iter(|| {
                let mut block = pool.checkout(items.len() * 8);
                u64::encode_into(&items, &mut block).unwrap();
                block.len()
            })
        });
    }
    g.finish();
}

fn bench_ctx_swap(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath_ctx_swap");
    g.sample_size(20);
    for n in [256usize, 4096] {
        let state: Vec<u64> = (0..n as u64).collect();
        let cap = state.encoded_len();
        let mut disks = DiskArray::new(DiskGeometry::new(4, 4096));
        let mut store = ContextStore::new(4, 4096, 0, 1, cap);
        let mut enc: Vec<u8> = Vec::new();
        let mut buf: Vec<u8> = Vec::new();
        g.bench_with_input(BenchmarkId::new("swap_roundtrip", n), &n, |b, _| {
            b.iter(|| {
                state.encode_to_vec(&mut enc);
                store.write(&mut disks, 0, &enc).unwrap();
                store.read_into(&mut disks, 0, &mut buf).unwrap();
                Vec::<u64>::try_from_bytes(&buf).unwrap().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec, bench_ctx_swap);
criterion_main!(benches);
