//! Ablations of the paper's two layout/balancing design choices:
//! staggered vs naive message-matrix layout (Figure 2), and
//! BalancedRouting vs raw skewed traffic (Lemma 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgmio_bench::{config_for, layout_ablation_ops};
use cgmio_core::SeqEmRunner;
use cgmio_model::demo::AllToOne;
use cgmio_routing::Balanced;

fn bench_layouts(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout");
    for (v, d, bpm) in [(16usize, 4usize, 2u64), (32, 8, 2)] {
        g.bench_with_input(
            BenchmarkId::new("staggered_vs_naive", format!("v{v}_d{d}_b{bpm}")),
            &(v, d, bpm),
            |b, &(v, d, bpm)| b.iter(|| layout_ablation_ops(v, d, bpm)),
        );
    }
    g.finish();
}

fn bench_balancing(c: &mut Criterion) {
    let mut g = c.benchmark_group("balancing");
    g.sample_size(10);
    let v = 8usize;
    let items = 2048usize;
    let mk = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
    let plain = AllToOne { items_per_proc: items };
    let cfg = config_for(&plain, mk(), v, 1, 2, 1024);
    g.bench_function("unbalanced_em", |b| {
        b.iter(|| SeqEmRunner::new(cfg.clone()).run(&plain, mk()).unwrap())
    });
    let bal = Balanced::new(plain);
    let bcfg = config_for(&bal, mk(), v, 1, 2, 1024);
    g.bench_function("balanced_em", |b| {
        b.iter(|| SeqEmRunner::new(bcfg.clone()).run(&bal, mk()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_layouts, bench_balancing);
criterion_main!(benches);
