//! Wall-clock comparison of the same CGM sorting program across the
//! four runners (the paper's portability claim), plus the external
//! merge-sort baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgmio_algos::CgmSort;
use cgmio_baselines::external_merge_sort;
use cgmio_bench::config_for;
use cgmio_core::{ParEmRunner, SeqEmRunner};
use cgmio_data::{block_split, uniform_u64};
use cgmio_model::{DirectRunner, ThreadedRunner};
use cgmio_pdm::DiskGeometry;

fn bench_sort_runners(c: &mut Criterion) {
    let mut g = c.benchmark_group("sort_runners");
    g.sample_size(10);
    let v = 8usize;
    for n in [1usize << 14, 1 << 16] {
        let keys = uniform_u64(n, 42);
        let mk = || {
            block_split(keys.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<(Vec<u64>, Vec<u64>)>>()
        };
        let prog = CgmSort::<u64>::by_pivots();

        g.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| DirectRunner::default().run(&prog, mk()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("threaded_p4", n), &n, |b, _| {
            b.iter(|| ThreadedRunner::new(4).run(&prog, mk()).unwrap())
        });
        let cfg = config_for(&prog, mk(), v, 1, 2, 2048);
        g.bench_with_input(BenchmarkId::new("seq_em_d2", n), &n, |b, _| {
            b.iter(|| SeqEmRunner::new(cfg.clone()).run(&prog, mk()).unwrap())
        });
        let mut pcfg = cfg.clone();
        pcfg.p = 4;
        g.bench_with_input(BenchmarkId::new("par_em_p4_d2", n), &n, |b, _| {
            b.iter(|| ParEmRunner::new(pcfg.clone()).run(&prog, mk()).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("ext_merge_sort", n), &n, |b, _| {
            b.iter(|| external_merge_sort(DiskGeometry::new(2, 2048), n / v, &keys))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sort_runners);
criterion_main!(benches);
