//! Micro-benchmarks of the sequential substrates the CGM programs
//! delegate their per-slab work to.

use criterion::{criterion_group, criterion_main, Criterion};

use cgmio_baselines::paged_merge_sort;
use cgmio_data::{gnm_edges, random_points, random_segments, random_tree_parents, uniform_u64};
use cgmio_geom::{convex_hull, lower_envelope, triangulate_points, union_area, KdTree};
use cgmio_graph::{cc_labels, LcaTable};

fn bench_geom(c: &mut Criterion) {
    let mut g = c.benchmark_group("geom");
    g.sample_size(20);
    let pts = random_points(10_000, 1_000_000, 1);
    g.bench_function("convex_hull_10k", |b| b.iter(|| convex_hull(&pts)));
    g.bench_function("triangulate_10k", |b| b.iter(|| triangulate_points(&pts)));
    g.bench_function("kdtree_build_10k", |b| b.iter(|| KdTree::build(&pts)));
    let segs: Vec<_> = random_segments(5_000, 100_000, 2)
        .into_iter()
        .map(|s| ((s.ax, s.ay), (s.bx, s.by)))
        .collect();
    g.bench_function("lower_envelope_5k", |b| b.iter(|| lower_envelope(&segs)));
    let rects: Vec<_> = cgmio_data::random_rects(5_000, 100_000, 3)
        .into_iter()
        .map(|r| (r.x1, r.y1, r.x2, r.y2))
        .collect();
    g.bench_function("union_area_5k", |b| b.iter(|| union_area(&rects)));
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20);
    let edges = gnm_edges(10_000, 30_000, 4);
    g.bench_function("cc_labels_10k_30k", |b| b.iter(|| cc_labels(10_000, &edges)));
    let parent = random_tree_parents(10_000, 5);
    g.bench_function("lca_table_build_10k", |b| b.iter(|| LcaTable::new(&parent)));
    g.finish();
}

fn bench_paging(c: &mut Criterion) {
    let mut g = c.benchmark_group("paging");
    g.sample_size(10);
    let keys = uniform_u64(1 << 14, 6);
    g.bench_function("paged_merge_sort_16k_tight", |b| {
        b.iter(|| paged_merge_sort(&keys, 4096, 16))
    });
    g.finish();
}

criterion_group!(benches, bench_geom, bench_graph, bench_paging);
criterion_main!(benches);
