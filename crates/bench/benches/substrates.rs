//! Micro-benchmarks of the sequential substrates the CGM programs
//! delegate their per-slab work to, plus the synchronous-vs-concurrent
//! storage backend sweep (archived as `results/backend_sweep.csv`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use cgmio_baselines::paged_merge_sort;
use cgmio_data::{gnm_edges, random_points, random_segments, random_tree_parents, uniform_u64};
use cgmio_geom::{convex_hull, lower_envelope, triangulate_points, union_area, KdTree};
use cgmio_graph::{cc_labels, LcaTable};
use cgmio_io::{ConcurrentStorage, IoEngineOpts};
use cgmio_pdm::testutil::TempDir;
use cgmio_pdm::{DiskArray, DiskGeometry, IoRequest, TrackAddr};

fn bench_geom(c: &mut Criterion) {
    let mut g = c.benchmark_group("geom");
    g.sample_size(20);
    let pts = random_points(10_000, 1_000_000, 1);
    g.bench_function("convex_hull_10k", |b| b.iter(|| convex_hull(&pts)));
    g.bench_function("triangulate_10k", |b| b.iter(|| triangulate_points(&pts)));
    g.bench_function("kdtree_build_10k", |b| b.iter(|| KdTree::build(&pts)));
    let segs: Vec<_> = random_segments(5_000, 100_000, 2)
        .into_iter()
        .map(|s| ((s.ax, s.ay), (s.bx, s.by)))
        .collect();
    g.bench_function("lower_envelope_5k", |b| b.iter(|| lower_envelope(&segs)));
    let rects: Vec<_> = cgmio_data::random_rects(5_000, 100_000, 3)
        .into_iter()
        .map(|r| (r.x1, r.y1, r.x2, r.y2))
        .collect();
    g.bench_function("union_area_5k", |b| b.iter(|| union_area(&rects)));
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    g.sample_size(20);
    let edges = gnm_edges(10_000, 30_000, 4);
    g.bench_function("cc_labels_10k_30k", |b| b.iter(|| cc_labels(10_000, &edges)));
    let parent = random_tree_parents(10_000, 5);
    g.bench_function("lca_table_build_10k", |b| b.iter(|| LcaTable::new(&parent)));
    g.finish();
}

fn bench_paging(c: &mut Criterion) {
    let mut g = c.benchmark_group("paging");
    g.sample_size(10);
    let keys = uniform_u64(1 << 14, 6);
    g.bench_function("paged_merge_sort_16k_tight", |b| {
        b.iter(|| paged_merge_sort(&keys, 4096, 16))
    });
    g.finish();
}

/// FIFO-write `tracks` blocks to every drive, flush, read them back —
/// one superstep's worth of context/message traffic, physically.
fn backend_workload(arr: &mut DiskArray, d: usize, tracks: u64, block: &[u8]) {
    let reqs: Vec<IoRequest> = (0..tracks)
        .flat_map(|t| (0..d).map(move |k| TrackAddr::new(k, t)))
        .map(|addr| IoRequest { addr, data: block.to_vec() })
        .collect();
    arr.write_fifo(&reqs).unwrap();
    arr.flush(false).unwrap();
    arr.read_fifo(reqs.iter().map(|r| r.addr)).unwrap();
}

fn mk_backend(kind: &str, geom: DiskGeometry, dir: &Path) -> DiskArray {
    match kind {
        "sync-file" => DiskArray::new_file_backed(geom, dir).unwrap(),
        "concurrent-file" => DiskArray::with_storage(
            geom,
            Box::new(ConcurrentStorage::open_dir(dir, geom, IoEngineOpts::default()).unwrap()),
        ),
        other => panic!("unknown backend {other}"),
    }
}

/// Sync vs concurrent file backend over D ∈ {1, 2, 4}: identical op
/// counts by construction, so the comparison isolates the wall-clock
/// effect of overlapping a parallel op's D transfers.
fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("io_backends");
    g.sample_size(10);
    let bb = 4096usize;
    let tracks = 64u64;
    let block = vec![0xA5u8; bb];
    let mut rows = vec!["backend,D,tracks_per_drive,block_bytes,mean_us,mb_per_s".to_string()];
    for d in [1usize, 2, 4] {
        let geom = DiskGeometry::new(d, bb);
        for kind in ["sync-file", "concurrent-file"] {
            let tmp = TempDir::new("cgmio-backend-sweep");
            let mut arr = mk_backend(kind, geom, tmp.path());
            g.bench_function(format!("{kind}/D{d}"), |b| {
                b.iter(|| backend_workload(&mut arr, d, tracks, &block))
            });
            // Explicit timing pass for the archived CSV.
            backend_workload(&mut arr, d, tracks, &block); // warm-up
            let samples = 10u32;
            let t0 = Instant::now();
            for _ in 0..samples {
                backend_workload(&mut arr, d, tracks, &block);
            }
            let mean_us = t0.elapsed().as_micros() as f64 / samples as f64;
            let bytes = 2.0 * d as f64 * tracks as f64 * bb as f64; // write + read
            rows.push(format!("{kind},{d},{tracks},{bb},{mean_us:.1},{:.1}", bytes / mean_us));
        }
    }
    g.finish();
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = out.join("backend_sweep.csv");
    let saved =
        std::fs::create_dir_all(&out).and_then(|()| std::fs::write(&path, rows.join("\n") + "\n"));
    match saved {
        Ok(()) => eprintln!("saved {}", path.display()),
        Err(e) => eprintln!("backend_sweep.csv save failed: {e}"),
    }
}

criterion_group!(benches, bench_geom, bench_graph, bench_paging, bench_backends);
criterion_main!(benches);
