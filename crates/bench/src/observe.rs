//! The `observe` experiment: one fully-instrumented run of the Figure 3
//! sort on **both** runners (Algorithm 2 and Algorithm 3), producing the
//! unified run report the observability layer exists for.
//!
//! Each runner executes on the concurrent engine with the event trace,
//! a seeded transient-fault injector, metrics, and spans all enabled.
//! Two artifacts are written under the output directory:
//!
//! * `observe_report.json` — the [`RunReport`]: per-runner `IoStats`,
//!   fault/retry counters, the top-N slowest spans, and a per-superstep
//!   table with per-drive service-latency histograms (log-bucketed,
//!   with p50/p95/p99/max) built from the superstep-stamped trace.
//! * `observe_metrics.prom` — the merged Prometheus exposition of both
//!   runners' registries (base label `runner="seq"` / `runner="par"`).
//!
//! The printed table summarises the same data: one row per runner and
//! superstep. See `docs/OBSERVABILITY.md` for how to read the report.

use std::collections::BTreeMap;

use cgmio_algos::CgmSort;
use cgmio_core::{BackendSpec, EmRunReport, ParEmRunner, SeqEmRunner};
use cgmio_io::{IoEngineOpts, OpKind, RetryPolicy, TraceEvent};
use cgmio_obs::json::Value;
use cgmio_obs::{to_prometheus, HistogramSnapshot, Obs, Snapshot, DEFAULT_SPAN_CAPACITY};
use cgmio_pdm::{FaultPlan, IoStats};

use crate::Table;

/// Spans listed in the report's `slowest_spans` section.
const TOP_SPANS: usize = 10;

/// One runner's captured telemetry.
struct Capture {
    name: &'static str,
    p: usize,
    rep: EmRunReport,
    obs: Obs,
}

/// Everything `reproduce observe` writes to `observe_report.json`,
/// assembled as a JSON value so numbers render exactly.
pub struct RunReport {
    /// Workload parameters (program, n, v, D, B).
    pub workload: Value,
    /// One section per runner (see module docs for the schema).
    pub runners: Vec<Value>,
    /// Merged metrics snapshot of all runners.
    pub metrics: Snapshot,
}

impl RunReport {
    /// The JSON document.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("experiment".into(), Value::str("observe")),
            ("workload".into(), self.workload.clone()),
            ("runners".into(), Value::Arr(self.runners.clone())),
        ])
        .render()
    }

    /// The Prometheus exposition of the merged metrics.
    pub fn to_prom(&self) -> String {
        to_prometheus(&self.metrics)
    }
}

fn io_json(io: &IoStats) -> Value {
    Value::Obj(vec![
        ("read_ops".into(), Value::num(io.read_ops)),
        ("write_ops".into(), Value::num(io.write_ops)),
        ("blocks_read".into(), Value::num(io.blocks_read)),
        ("blocks_written".into(), Value::num(io.blocks_written)),
        ("full_ops".into(), Value::num(io.full_ops)),
        ("parallel_efficiency".into(), Value::num(format!("{:.4}", io.parallel_efficiency()))),
        ("per_disk_blocks".into(), Value::Arr(io.per_disk_blocks.iter().map(Value::num).collect())),
    ])
}

fn hist_json(h: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| Value::Arr(vec![Value::num(i), Value::num(c)]))
        .collect();
    Value::Obj(vec![
        ("count".into(), Value::num(h.count)),
        ("p50_us".into(), Value::num(h.quantile(0.50))),
        ("p95_us".into(), Value::num(h.quantile(0.95))),
        ("p99_us".into(), Value::num(h.quantile(0.99))),
        ("max_us".into(), Value::num(h.max)),
        // log2 bucket index → count, nonzero entries only
        ("buckets".into(), Value::Arr(buckets)),
    ])
}

/// Group the trace by superstep, then by drive; service latencies go
/// through the same log-bucketed histogram the live metrics use.
fn superstep_table(trace: &[TraceEvent]) -> Vec<Value> {
    let mut per_step: BTreeMap<u64, BTreeMap<usize, (u64, u64, cgmio_obs::Histogram)>> =
        BTreeMap::new();
    for e in trace {
        if !matches!(e.kind, OpKind::Read | OpKind::Write) {
            continue;
        }
        let (ops, bytes, hist) = per_step
            .entry(e.superstep)
            .or_default()
            .entry(e.drive)
            .or_insert_with(|| (0, 0, cgmio_obs::Histogram::detached()));
        *ops += 1;
        *bytes += e.bytes as u64;
        hist.observe(e.service_us());
    }
    per_step
        .into_iter()
        .map(|(step, drives)| {
            let (mut ops, mut bytes) = (0u64, 0u64);
            let per_drive: Vec<Value> = drives
                .into_iter()
                .map(|(drive, (o, b, h))| {
                    ops += o;
                    bytes += b;
                    Value::Obj(vec![
                        ("drive".into(), Value::num(drive)),
                        ("ops".into(), Value::num(o)),
                        ("bytes".into(), Value::num(b)),
                        ("service_us".into(), hist_json(&h.snapshot())),
                    ])
                })
                .collect();
            Value::Obj(vec![
                ("superstep".into(), Value::num(step)),
                ("ops".into(), Value::num(ops)),
                ("bytes".into(), Value::num(bytes)),
                ("per_drive".into(), Value::Arr(per_drive)),
            ])
        })
        .collect()
}

fn runner_json(c: &Capture) -> Value {
    let spans: Vec<Value> = c
        .obs
        .top_spans(TOP_SPANS)
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("proc".into(), Value::num(s.proc)),
                ("superstep".into(), Value::num(s.superstep)),
                ("phase".into(), Value::str(s.phase.name())),
                ("start_us".into(), Value::num(s.start_us)),
                ("duration_us".into(), Value::num(s.duration_us())),
            ])
        })
        .collect();
    let faults = match c.rep.faults {
        None => Value::Null,
        Some(f) => Value::Obj(vec![
            ("read_transient".into(), Value::num(f.read_transient)),
            ("write_transient".into(), Value::num(f.write_transient)),
            ("torn_writes".into(), Value::num(f.torn_writes)),
            ("permanent_denials".into(), Value::num(f.permanent_denials)),
            ("latency_spikes".into(), Value::num(f.latency_spikes)),
        ]),
    };
    Value::Obj(vec![
        ("runner".into(), Value::str(c.name)),
        ("p".into(), Value::num(c.p)),
        ("io".into(), io_json(&c.rep.io)),
        ("algorithm_ops".into(), Value::num(c.rep.breakdown.algorithm_ops())),
        ("peak_mem_bytes".into(), Value::num(c.rep.peak_mem_bytes)),
        ("wall_ms".into(), Value::num(c.rep.wall.as_millis())),
        ("faults".into(), faults),
        ("retries".into(), Value::num(c.rep.retries)),
        ("spans_recorded".into(), Value::num(c.obs.spans().len())),
        ("spans_dropped".into(), Value::num(c.obs.spans_dropped())),
        ("slowest_spans".into(), Value::Arr(spans)),
        ("supersteps".into(), Value::Arr(superstep_table(&c.rep.io_trace))),
    ])
}

fn run_one(name: &'static str, p: usize, n: usize, v: usize, d: usize, bb: usize) -> Capture {
    let keys = cgmio_data::uniform_u64(n, 42);
    let mk = || {
        cgmio_data::block_split(keys.clone(), v)
            .into_iter()
            .map(|b| (b, Vec::new()))
            .collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let obs = Obs::with_options(DEFAULT_SPAN_CAPACITY, &[("runner", name)]);
    let mut cfg = crate::config_for(&prog, mk(), v, p, d, bb);
    cfg.backend = BackendSpec::Concurrent {
        dir: None, // memory-backed drives: full concurrency, no tempdir
        opts: IoEngineOpts {
            trace: true,
            verify_checksums: true,
            retry: RetryPolicy { max_attempts: 6, base_backoff_us: 0 },
            ..Default::default()
        },
    };
    cfg.fault = Some(FaultPlan::transient(1999, 0.01));
    cfg.retry = RetryPolicy { max_attempts: 6, base_backoff_us: 0 };
    cfg.obs = Some(obs.clone());
    let (fin, rep) = if p == 1 {
        SeqEmRunner::new(cfg).run(&prog, mk()).expect("observed seq sort")
    } else {
        ParEmRunner::new(cfg).run(&prog, mk()).expect("observed par sort")
    };
    let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "observed run output not sorted");
    Capture { name, p, rep, obs }
}

/// Build the [`RunReport`] for the Figure 3 sort workload. Honours
/// `CGMIO_PERF_SMOKE=1` (a single small size, what CI's `observe-smoke`
/// job runs).
pub fn run_report() -> RunReport {
    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    let n = if smoke { 1usize << 12 } else { 1usize << 14 };
    let (v, d, bb) = (16usize, 2usize, 4096usize);

    let captures = vec![run_one("seq", 1, n, v, d, bb), run_one("par", 4, n, v, d, bb)];

    let mut metrics = Snapshot::default();
    for c in &captures {
        metrics.merge(&c.obs.snapshot());
    }
    RunReport {
        workload: Value::Obj(vec![
            ("program".into(), Value::str("CgmSort<u64>")),
            ("n".into(), Value::num(n)),
            ("v".into(), Value::num(v)),
            ("d".into(), Value::num(d)),
            ("block_bytes".into(), Value::num(bb)),
        ]),
        runners: captures.iter().map(runner_json).collect(),
        metrics,
    }
}

/// The `observe` experiment. Writes `observe_report.json` and
/// `observe_metrics.prom` under `out_dir`; the returned table
/// summarises per-runner, per-superstep I/O with the aggregated
/// service-latency p99 across drives.
pub fn observe(out_dir: &std::path::Path) -> Table {
    let report = run_report();

    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("  cannot create {}: {e}", out_dir.display());
    }
    for (file, contents) in
        [("observe_report.json", report.to_json()), ("observe_metrics.prom", report.to_prom())]
    {
        let path = out_dir.join(file);
        match std::fs::write(&path, contents) {
            Ok(()) => eprintln!("  saved {}", path.display()),
            Err(e) => eprintln!("  save failed for {}: {e}", path.display()),
        }
    }

    let mut t = Table::new(
        "observe_summary",
        &["runner", "p", "superstep", "ops", "bytes", "p99_service_us", "faults", "retries"],
    );
    for r in &report.runners {
        let name = r.get("runner").and_then(Value::as_str).unwrap_or("?");
        let p = r.get("p").and_then(Value::as_u64).unwrap_or(0);
        let faults = match r.get("faults") {
            Some(Value::Obj(fields)) => {
                fields.iter().filter_map(|(_, v)| v.as_u64()).sum::<u64>().to_string()
            }
            _ => "-".into(),
        };
        let retries = r.get("retries").and_then(Value::as_u64).unwrap_or(0);
        for step in r.get("supersteps").and_then(Value::as_array).unwrap_or(&[]) {
            // p99 across drives: the max of the per-drive p99s.
            let p99 = step
                .get("per_drive")
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|d| d.get("service_us")?.get("p99_us")?.as_u64())
                .max()
                .unwrap_or(0);
            t.row(vec![
                name.to_string(),
                p.to_string(),
                step.get("superstep").and_then(Value::as_u64).unwrap_or(0).to_string(),
                step.get("ops").and_then(Value::as_u64).unwrap_or(0).to_string(),
                step.get("bytes").and_then(Value::as_u64).unwrap_or(0).to_string(),
                p99.to_string(),
                faults.clone(),
                retries.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_report_has_both_runners_and_parses() {
        // Smoke size regardless of env: the report builder itself reads
        // the env var, so set it for this process.
        std::env::set_var("CGMIO_PERF_SMOKE", "1");
        let report = run_report();
        assert_eq!(report.runners.len(), 2);
        let doc = cgmio_obs::json::parse(&report.to_json()).expect("report JSON parses");
        for (i, name) in ["seq", "par"].iter().enumerate() {
            let r = &doc.get("runners").unwrap().as_array().unwrap()[i];
            assert_eq!(r.get("runner").unwrap().as_str(), Some(*name));
            let steps = r.get("supersteps").unwrap().as_array().unwrap();
            assert!(!steps.is_empty(), "{name}: no supersteps in report");
            let drives = steps[0].get("per_drive").unwrap().as_array().unwrap();
            assert!(!drives.is_empty(), "{name}: no per-drive histograms");
            assert!(drives[0].get("service_us").unwrap().get("p99_us").is_some());
            let f = r.get("faults").unwrap();
            assert!(f.get("read_transient").is_some(), "{name}: fault counters missing");
        }
        // The merged exposition parses back to the same snapshot.
        let prom = report.to_prom();
        let back = cgmio_obs::parse_prometheus(&prom).expect(".prom parses");
        assert_eq!(back, report.metrics);
        assert!(prom.contains("runner=\"seq\"") && prom.contains("runner=\"par\""));
    }
}
