//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [EXPERIMENT ...|all] [--out DIR]
//! reproduce --list
//! ```
//!
//! Each experiment prints an aligned table and archives a CSV under
//! `results/` (or `--out DIR`); several also archive richer artifacts
//! (JSON/JSONL/prom) there. Run `reproduce --list` for the experiment
//! inventory with one-line descriptions.

use cgmio_bench::experiments as ex;
use cgmio_bench::Table;

/// Count every heap allocation so the `perf` experiment can report the
/// data path's allocator traffic (see `BENCH_sort.json`).
#[global_allocator]
static ALLOC: cgmio_bench::alloc::CountingAlloc = cgmio_bench::alloc::CountingAlloc;

/// Experiments take the output directory: most ignore it (the CSV is
/// archived by this binary), but some write extra artifacts there.
type Exp = Box<dyn Fn(&std::path::Path) -> Table>;

/// Name, one-line description, runner — the single experiment registry
/// (drives dispatch, `--list`, and the unknown-experiment error alike).
fn menu() -> Vec<(&'static str, &'static str, Exp)> {
    vec![
        ("fig1", "balanced-routing bin sizes vs the Theorem 1 bounds", Box::new(|_| ex::fig1())),
        ("fig2", "staggered message-matrix layout vs naive (write ops)", Box::new(|_| ex::fig2())),
        ("fig3", "sort: EM simulation vs in-memory, D=1 size sweep", Box::new(|_| ex::fig3())),
        ("fig4", "sort with D=1,2,4 disks (multi-disk speedup)", Box::new(|_| ex::fig4())),
        ("fig5a", "fundamental ops: sort/permute/transpose I/O counts", Box::new(|_| ex::fig5a())),
        (
            "fig5a-scaling",
            "fundamental ops under real-processor scaling (p sweep)",
            Box::new(|_| ex::fig5a_scaling()),
        ),
        ("fig5b", "geometry algorithms: I/O vs problem size", Box::new(|_| ex::fig5b())),
        ("fig5c", "graph algorithms: I/O vs problem size", Box::new(|_| ex::fig5c())),
        ("fig6", "I/O surface over (D, B) for the Fig 3 sort", Box::new(|_| ex::fig6())),
        ("fig7", "c2 slice: I/O vs B at fixed D", Box::new(|_| ex::fig7())),
        ("fig8", "block-size sweep at fixed geometry", Box::new(|_| ex::fig8())),
        ("audit", "measured I/O vs the Theorem 2 prediction", Box::new(|_| ex::audit())),
        ("ablation", "Lemma 2 message balancing on/off", Box::new(|_| ex::ablation_balance())),
        ("cache", "prefetch-cache extension hit rates", Box::new(|_| ex::cache())),
        (
            "io-trace",
            "physical I/O event log of the Fig 3 sort (JSONL + per-drive CSV)",
            Box::new(ex::io_trace),
        ),
        (
            "faults",
            "transient-fault injection sweep with kill-and-resume check",
            Box::new(ex::faults),
        ),
        ("perf", "data-path baseline: wall/io/alloc vs seed (BENCH_sort.json)", Box::new(ex::perf)),
        (
            "pipeline",
            "superstep pipeline depth sweep, all backends (BENCH_pipeline.json)",
            Box::new(ex::pipeline),
        ),
        (
            "autotune",
            "feedback tuner vs hand-swept pipeline depth (BENCH_autotune.json)",
            Box::new(ex::autotune),
        ),
        (
            "observe",
            "sort with the observability stack on (report JSON + prom)",
            Box::new(cgmio_bench::observe::observe),
        ),
        (
            "service",
            "multi-tenant job service burst: fairness + latency (BENCH_service.json)",
            Box::new(ex::service),
        ),
        (
            "scale",
            "per-processor state at large v: sparse/paged sweep (BENCH_scale.json)",
            Box::new(ex::scale),
        ),
        (
            "disk",
            "real multi-file layouts, D={4,8,16}: threads vs async reactors (BENCH_disk.json)",
            Box::new(ex::disk),
        ),
    ]
}

fn print_menu(to_stderr: bool) {
    let entries = menu();
    let width = entries.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    for (name, desc, _) in &entries {
        let line = format!("  {name:<width$}  {desc}");
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut out_dir = std::path::PathBuf::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = std::path::PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--list" => {
                println!("experiments (run `reproduce <name> [...]` or `reproduce all`):");
                print_menu(false);
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }

    let menu = menu();
    let known: Vec<&str> = menu.iter().map(|(n, _, _)| *n).collect();
    let unknown: Vec<&String> =
        which.iter().filter(|w| *w != "all" && !known.contains(&w.as_str())).collect();
    if !unknown.is_empty() {
        for w in &unknown {
            eprintln!("unknown experiment `{w}`");
        }
        eprintln!("available (see also `reproduce --list`):");
        print_menu(true);
        std::process::exit(2);
    }

    let selected: Vec<&(&str, &str, Exp)> = if which.iter().any(|w| w == "all") {
        menu.iter().collect()
    } else {
        menu.iter().filter(|(name, _, _)| which.iter().any(|w| w == name)).collect()
    };

    for (name, _, f) in selected {
        eprintln!("running {name} ...");
        let t = f(&out_dir);
        println!("{}", t.render());
        match t.save_csv(&out_dir) {
            Ok(p) => eprintln!("  saved {}", p.display()),
            Err(e) => eprintln!("  csv save failed: {e}"),
        }
    }
}
