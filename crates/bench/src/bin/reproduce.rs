//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [all|fig1|fig2|fig3|fig4|fig5a|fig5a-scaling|fig5b|fig5c|
//!            fig6|fig7|fig8|audit|ablation|cache] [--out DIR]
//! ```
//!
//! Each experiment prints an aligned table and archives a CSV under
//! `results/` (or `--out DIR`).

use cgmio_bench::experiments as ex;
use cgmio_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut out_dir = std::path::PathBuf::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = std::path::PathBuf::from(it.next().expect("--out needs a directory"));
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }

    let menu: Vec<(&str, fn() -> Table)> = vec![
        ("fig1", ex::fig1),
        ("fig2", ex::fig2),
        ("fig3", ex::fig3),
        ("fig4", ex::fig4),
        ("fig5a", ex::fig5a),
        ("fig5a-scaling", ex::fig5a_scaling),
        ("fig5b", ex::fig5b),
        ("fig5c", ex::fig5c),
        ("fig6", ex::fig6),
        ("fig7", ex::fig7),
        ("fig8", ex::fig8),
        ("audit", ex::audit),
        ("ablation", ex::ablation_balance),
        ("cache", ex::cache),
    ];

    let selected: Vec<&(&str, fn() -> Table)> = if which.iter().any(|w| w == "all") {
        menu.iter().collect()
    } else {
        menu.iter()
            .filter(|(name, _)| which.iter().any(|w| w == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment; available:");
        for (name, _) in &menu {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    for (name, f) in selected {
        eprintln!("running {name} ...");
        let t = f();
        println!("{}", t.render());
        match t.save_csv(&out_dir) {
            Ok(p) => eprintln!("  saved {}", p.display()),
            Err(e) => eprintln!("  csv save failed: {e}"),
        }
    }
}
