//! `reproduce` — regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [all|fig1|fig2|fig3|fig4|fig5a|fig5a-scaling|fig5b|fig5c|
//!            fig6|fig7|fig8|audit|ablation|cache|io-trace|faults|perf|
//!            pipeline|observe] [--out DIR]
//! ```
//!
//! Each experiment prints an aligned table and archives a CSV under
//! `results/` (or `--out DIR`). `io-trace` additionally archives the
//! Fig 3 sort's physical I/O event log as `fig3_io_trace.jsonl` and a
//! per-drive queue-wait/service split as `io_trace_drives.csv`;
//! `faults` sweeps injected transient-fault rates over the Fig 3 sort
//! and records retry recovery overhead plus a kill-and-resume check;
//! `pipeline` sweeps the superstep pipeline depth over all backends
//! under a simulated device latency and archives `BENCH_pipeline.json`;
//! `observe` runs the sort on both runners with the full observability
//! stack attached and archives `observe_report.json` +
//! `observe_metrics.prom` (see `docs/OBSERVABILITY.md`).

use cgmio_bench::experiments as ex;
use cgmio_bench::Table;

/// Count every heap allocation so the `perf` experiment can report the
/// data path's allocator traffic (see `BENCH_sort.json`).
#[global_allocator]
static ALLOC: cgmio_bench::alloc::CountingAlloc = cgmio_bench::alloc::CountingAlloc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut out_dir = std::path::PathBuf::from("results");
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = std::path::PathBuf::from(it.next().expect("--out needs a directory"));
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".into());
    }

    // Experiments take the output directory: most ignore it (the CSV is
    // archived by this binary), but io-trace writes its JSONL there too.
    type Exp = Box<dyn Fn(&std::path::Path) -> Table>;
    let menu: Vec<(&str, Exp)> = vec![
        ("fig1", Box::new(|_| ex::fig1())),
        ("fig2", Box::new(|_| ex::fig2())),
        ("fig3", Box::new(|_| ex::fig3())),
        ("fig4", Box::new(|_| ex::fig4())),
        ("fig5a", Box::new(|_| ex::fig5a())),
        ("fig5a-scaling", Box::new(|_| ex::fig5a_scaling())),
        ("fig5b", Box::new(|_| ex::fig5b())),
        ("fig5c", Box::new(|_| ex::fig5c())),
        ("fig6", Box::new(|_| ex::fig6())),
        ("fig7", Box::new(|_| ex::fig7())),
        ("fig8", Box::new(|_| ex::fig8())),
        ("audit", Box::new(|_| ex::audit())),
        ("ablation", Box::new(|_| ex::ablation_balance())),
        ("cache", Box::new(|_| ex::cache())),
        ("io-trace", Box::new(ex::io_trace)),
        ("faults", Box::new(ex::faults)),
        ("perf", Box::new(ex::perf)),
        ("pipeline", Box::new(ex::pipeline)),
        ("observe", Box::new(cgmio_bench::observe::observe)),
    ];

    let selected: Vec<&(&str, Exp)> = if which.iter().any(|w| w == "all") {
        menu.iter().collect()
    } else {
        menu.iter().filter(|(name, _)| which.iter().any(|w| w == name)).collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment; available:");
        for (name, _) in &menu {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    for (name, f) in selected {
        eprintln!("running {name} ...");
        let t = f(&out_dir);
        println!("{}", t.render());
        match t.save_csv(&out_dir) {
            Ok(p) => eprintln!("  saved {}", p.display()),
            Err(e) => eprintln!("  csv save failed: {e}"),
        }
    }
}
