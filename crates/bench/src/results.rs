//! Shared writers for the committed `results/` artifacts.
//!
//! Every perf-trajectory experiment emits the same envelope —
//! `{schema, bench, workload, …, smoke, points, headline}` — which CI's
//! results-staleness job checks structurally. This module is the one
//! place that envelope is spelled, so experiments can't drift apart:
//! build a [`BenchReport`], push point objects, set the headline, and
//! [`BenchReport::save`] it. JSON is rendered through
//! [`cgmio_obs::json::Value`], whose `Num` holds raw source text —
//! pre-format floats (`format!("{x:.2}")`) to control precision.

use std::path::Path;

pub use cgmio_obs::json::Value;

/// One `BENCH_*.json` document under construction.
#[derive(Debug)]
pub struct BenchReport {
    bench: &'static str,
    workload: String,
    smoke: bool,
    extra: Vec<(String, Value)>,
    points: Vec<Value>,
    headline: Value,
}

impl BenchReport {
    /// Start a report for benchmark `bench` (the stable machine name)
    /// describing `workload` in one human-readable line.
    pub fn new(bench: &'static str, workload: impl Into<String>, smoke: bool) -> Self {
        Self {
            bench,
            workload: workload.into(),
            smoke,
            extra: Vec::new(),
            points: Vec::new(),
            headline: Value::Null,
        }
    }

    /// Add a top-level field between `workload` and `smoke` (e.g.
    /// `seed_commit`, `reps`, `allocator_counted`).
    pub fn extra(mut self, key: &str, value: Value) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// Append one measurement point (an object).
    pub fn point(&mut self, point: Value) {
        self.points.push(point);
    }

    /// Set the headline object (defaults to `null` when a run can't
    /// produce one, e.g. smoke mode skipping the headline size).
    pub fn set_headline(&mut self, headline: Value) {
        self.headline = headline;
    }

    /// The assembled document.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema".to_string(), Value::num(1)),
            ("bench".to_string(), Value::str(self.bench)),
            ("workload".to_string(), Value::str(self.workload.clone())),
        ];
        fields.extend(self.extra.iter().cloned());
        fields.push(("smoke".to_string(), Value::Bool(self.smoke)));
        fields.push(("points".to_string(), Value::Arr(self.points.clone())));
        fields.push(("headline".to_string(), self.headline.clone()));
        Value::Obj(fields)
    }

    /// Write `<out_dir>/<file>`, creating `out_dir` if needed. Saving
    /// is best-effort like every `results/` artifact: failures are
    /// reported on stderr, never panicked on (the Table still renders).
    pub fn save(&self, out_dir: &Path, file: &str) {
        let path = out_dir.join(file);
        let text = pretty_top(&self.to_value());
        match std::fs::create_dir_all(out_dir).and_then(|()| std::fs::write(&path, &text)) {
            Ok(()) => eprintln!("  saved {}", path.display()),
            Err(e) => eprintln!("  {file} save failed: {e}"),
        }
    }
}

/// Render the committed-diff style the `results/` files use: one
/// top-level field per line, one point per line, leaf values compact.
fn pretty_top(v: &Value) -> String {
    let Value::Obj(fields) = v else {
        return v.render() + "\n";
    };
    let mut out = String::from("{\n");
    for (i, (k, val)) in fields.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(&cgmio_obs::json_escape(k));
        out.push_str("\": ");
        match val {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (j, item) in items.iter().enumerate() {
                    out.push_str("    ");
                    out.push_str(&item.render());
                    if j + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str("  ]");
            }
            other => out.push_str(&other.render()),
        }
        if i + 1 < fields.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// An object value from key/value pairs, in order.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The `p`-th percentile (0–100, nearest-rank) of an unsorted sample.
/// Returns 0 for an empty sample.
pub fn percentile_us(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_the_stable_shape() {
        let mut r = BenchReport::new("demo_bench", "w", true).extra("reps", Value::num(5));
        r.point(obj(vec![("n", Value::num(4)), ("wall_ms", Value::num("1.50"))]));
        r.set_headline(obj(vec![("n", Value::num(4))]));
        let v = r.to_value();
        let text = v.render();
        let back = cgmio_obs::json::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("bench").unwrap().as_str(), Some("demo_bench"));
        assert_eq!(back.get("reps").unwrap().as_u64(), Some(5));
        assert!(matches!(back.get("smoke"), Some(Value::Bool(true))));
        let pts = back.get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].get("wall_ms").unwrap().as_f64(), Some(1.5));
        assert!(back.get("headline").unwrap().get("n").is_some());
        // Key order is part of the committed-diff contract.
        let keys: Vec<&str> = match &back {
            Value::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => panic!("not an object"),
        };
        assert_eq!(keys, ["schema", "bench", "workload", "reps", "smoke", "points", "headline"]);
    }

    #[test]
    fn missing_headline_renders_null_and_pretty_round_trips() {
        let mut r = BenchReport::new("b", "w", false);
        r.point(obj(vec![("x", Value::num(1))]));
        let text = pretty_top(&r.to_value());
        assert!(text.contains("  \"headline\": null"), "{text}");
        assert!(text.lines().count() > 5, "one field per line: {text}");
        let back = cgmio_obs::json::parse(&text).unwrap();
        assert_eq!(back.get("points").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile_us(&[], 99.0), 0);
        assert_eq!(percentile_us(&[7], 50.0), 7);
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&s, 50.0), 50);
        assert_eq!(percentile_us(&s, 99.0), 99);
        assert_eq!(percentile_us(&s, 100.0), 100);
        // Unsorted input is fine.
        assert_eq!(percentile_us(&[30, 10, 20], 50.0), 20);
    }
}
