//! # cgmio-bench — experiment harness
//!
//! One function per table/figure of the paper; each returns a [`Table`]
//! that the `reproduce` binary prints and archives as CSV. The
//! experiment inventory lives in `DESIGN.md`; measured-vs-paper notes in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

use std::fmt::Write as _;

use cgmio_algos::{CgmPermute, CgmSort, CgmTranspose};
use cgmio_core::{measure_requirements, BackendSpec, EmConfig, EmRunReport, SeqEmRunner};
use cgmio_io::IoEngineOpts;
use cgmio_model::{CgmProgram, DirectRunner};
use cgmio_pdm::{DiskGeometry, DiskTimingModel, IoRequest, MessageMatrixLayout};

pub mod alloc;
pub mod experiments;
pub mod observe;
pub mod results;

/// A printable/archivable result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (also the CSV file stem).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row data, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV serialisation.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV under `dir` as `<title>.csv`.
    pub fn save_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.title));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Build an [`EmConfig`] for `prog` by dry-run measurement.
pub fn config_for<P: CgmProgram>(
    prog: &P,
    states: Vec<P::State>,
    v: usize,
    p: usize,
    d: usize,
    block_bytes: usize,
) -> EmConfig {
    let (_, _, req) = measure_requirements(prog, states).expect("dry run");
    EmConfig::from_requirements(v, p, d, block_bytes, &req)
}

/// Run `prog` on the sequential EM engine with a measured config.
pub fn run_seq_em<P: CgmProgram>(
    prog: &P,
    mk_states: impl Fn() -> Vec<P::State>,
    v: usize,
    d: usize,
    block_bytes: usize,
) -> (Vec<P::State>, EmRunReport) {
    let cfg = config_for(prog, mk_states(), v, 1, d, block_bytes);
    SeqEmRunner::new(cfg).run(prog, mk_states()).expect("EM run")
}

/// The disk model used to convert op counts into modelled wall time.
pub fn disk_model() -> DiskTimingModel {
    DiskTimingModel::nineties_disk()
}

/// Standard sweep problem sizes (items).
pub fn sweep_sizes() -> Vec<usize> {
    vec![1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17]
}

/// Convenience re-exports for the binary and benches.
pub mod prelude {
    pub use super::{config_for, disk_model, run_seq_em, sweep_sizes, Table};
    pub use cgmio_algos::*;
    pub use cgmio_core::*;
    pub use cgmio_data::*;
    pub use cgmio_model::*;
    pub use cgmio_pdm::*;
}

/// Measure how many parallel write operations a `v × v` message matrix
/// of `blocks_per_msg`-block messages needs under (a) the paper's
/// staggered layout and (b) a naive per-band layout that always starts
/// bands at disk 0 — the Figure 2 ablation.
pub fn layout_ablation_ops(v: usize, d: usize, blocks_per_msg: u64) -> (u64, u64) {
    let block_bytes = 64usize;
    let layout = MessageMatrixLayout { num_disks: d, v, blocks_per_msg, base_track: 0 };
    let mut staggered = cgmio_pdm::DiskArray::new(DiskGeometry::new(d, block_bytes));
    for src in 0..v {
        let queue: Vec<IoRequest> = layout
            .write_order_for_src(src)
            .map(|addr| IoRequest { addr, data: vec![0u8; 8] })
            .collect();
        staggered.write_fifo(&queue).unwrap();
    }
    // naive: band j starts at disk 0 (no stagger)
    let mut naive = cgmio_pdm::DiskArray::new(DiskGeometry::new(d, block_bytes));
    let tracks_per_band = layout.tracks_per_band();
    for src in 0..v {
        let queue: Vec<IoRequest> = (0..v)
            .flat_map(|dst| {
                (0..blocks_per_msg).map(move |q| {
                    let g = src as u64 * blocks_per_msg + q;
                    cgmio_pdm::consecutive_addr(d, dst as u64 * tracks_per_band, 0, g)
                })
            })
            .map(|addr| IoRequest { addr, data: vec![0u8; 8] })
            .collect();
        naive.write_fifo(&queue).unwrap();
    }
    (staggered.stats().write_ops, naive.stats().write_ops)
}

/// Sort runner shared by Figure 3/4/5a: returns the EM report for
/// sorting `n` uniform keys.
pub fn em_sort_report(n: usize, v: usize, d: usize, block_bytes: usize) -> EmRunReport {
    let keys = cgmio_data::uniform_u64(n, 42);
    let mk = || {
        cgmio_data::block_split(keys.clone(), v)
            .into_iter()
            .map(|b| (b, Vec::new()))
            .collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let (fin, rep) = run_seq_em(&prog, mk, v, d, block_bytes);
    // sanity: output must be globally sorted
    let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
    debug_assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    let mut sorted = keys;
    sorted.sort_unstable();
    assert_eq!(flat.len(), sorted.len());
    rep
}

/// The Figure 3 sort again, but on the `cgmio-io` concurrent file
/// engine with the I/O event trace enabled. `drive_dir` holds the
/// simulated drive files; the trace comes back in
/// `EmRunReport::io_trace`. Counts are identical to [`em_sort_report`]
/// (backend equivalence); only physical timing differs.
pub fn em_sort_report_traced(
    n: usize,
    v: usize,
    d: usize,
    block_bytes: usize,
    drive_dir: &std::path::Path,
) -> EmRunReport {
    let keys = cgmio_data::uniform_u64(n, 42);
    let mk = || {
        cgmio_data::block_split(keys.clone(), v)
            .into_iter()
            .map(|b| (b, Vec::new()))
            .collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let mut cfg = config_for(&prog, mk(), v, 1, d, block_bytes);
    cfg.backend = BackendSpec::Concurrent {
        dir: Some(drive_dir.to_path_buf()),
        opts: IoEngineOpts { trace: true, ..Default::default() },
    };
    SeqEmRunner::new(cfg).run(&prog, mk()).expect("EM run").1
}

/// EM permutation report for `n` items.
pub fn em_permute_report(n: usize, v: usize, d: usize, block_bytes: usize) -> EmRunReport {
    let vals = cgmio_data::uniform_u64(n, 7);
    let perm = cgmio_data::random_permutation(n, 8);
    let mk = || {
        cgmio_data::block_split(vals.clone(), v)
            .into_iter()
            .zip(cgmio_data::block_split(perm.clone(), v))
            .map(|(vb, pb)| (vb, pb, n as u64))
            .collect::<Vec<_>>()
    };
    run_seq_em(&CgmPermute, mk, v, d, block_bytes).1
}

/// EM transpose report for a `k × ℓ` matrix.
pub fn em_transpose_report(
    k: usize,
    l: usize,
    v: usize,
    d: usize,
    block_bytes: usize,
) -> EmRunReport {
    let m = cgmio_data::uniform_u64(k * l, 5);
    let mk = || {
        cgmio_data::block_split(m.clone(), v)
            .into_iter()
            .map(|b| (b, k as u64, l as u64))
            .collect::<Vec<_>>()
    };
    run_seq_em(&CgmTranspose, mk, v, d, block_bytes).1
}

/// Reference in-memory run used by benches to compare against.
pub fn direct_sort(n: usize, v: usize) -> Vec<(Vec<u64>, Vec<u64>)> {
    let keys = cgmio_data::uniform_u64(n, 42);
    let states: Vec<(Vec<u64>, Vec<u64>)> =
        cgmio_data::block_split(keys, v).into_iter().map(|b| (b, Vec::new())).collect();
    let (fin, _) = DirectRunner::default().run(&CgmSort::<u64>::by_pivots(), states).unwrap();
    fin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_serialises() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo") && r.contains("bb"));
        assert_eq!(t.to_csv(), "a,bb\n1,2\n");
    }

    #[test]
    fn staggered_layout_beats_naive() {
        let (stag, naive) = layout_ablation_ops(8, 4, 2);
        assert!(stag < naive, "staggered {stag} naive {naive}");
        // staggered achieves the optimum v*v*b'/D
        assert_eq!(stag, 8 * 8 * 2 / 4);
    }

    #[test]
    fn em_sort_smoke() {
        let rep = em_sort_report(1 << 12, 8, 2, 1024);
        assert!(rep.breakdown.algorithm_ops() > 0);
        // At this tiny size most messages underfill their slots, which
        // degrades the staggered layout's parallelism — the exact effect
        // Lemma 2 balancing exists to prevent (see ablation_balance).
        assert!(rep.io.parallel_efficiency() > 0.1);
        let big = em_sort_report(1 << 15, 8, 2, 1024);
        assert!(
            big.io.parallel_efficiency() > rep.io.parallel_efficiency(),
            "fuller slots must improve disk parallelism"
        );
    }
}
