//! A counting global allocator for the bench binary.
//!
//! The data-path work of this workspace is judged by *allocator traffic*:
//! how many heap allocations (and how many bytes) one EM run performs.
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation; the `reproduce` binary installs it as the
//! `#[global_allocator]`, and the `perf` experiment resets/samples the
//! counters around the measured region.
//!
//! The counters are process-global statics, so they read zero in any
//! binary that did not install the allocator (e.g. the test harness) —
//! callers must treat zero counts as "not measured", not "no traffic".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicU64 = AtomicU64::new(0);

/// Allocation counters sampled at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations performed (allocs + reallocs; frees not counted).
    pub allocs: u64,
    /// Total bytes requested by those allocations.
    pub bytes: u64,
}

impl AllocStats {
    /// Counter delta from `earlier` to `self`.
    pub fn since(&self, earlier: AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Sample the global allocation counters.
pub fn snapshot() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// True if a [`CountingAlloc`] has served at least one allocation (i.e.
/// it is installed as the global allocator of this process).
pub fn counting_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// System allocator wrapper that counts allocations and bytes.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cgmio_bench::alloc::CountingAlloc = cgmio_bench::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter updates are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Ordering::Relaxed);
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract() {
        let a = AllocStats { allocs: 10, bytes: 100 };
        let b = AllocStats { allocs: 25, bytes: 400 };
        assert_eq!(b.since(a), AllocStats { allocs: 15, bytes: 300 });
    }
}
