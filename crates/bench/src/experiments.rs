//! One function per paper artefact. See DESIGN.md §4 for the index.

use std::fmt::Write as _;

use crate::results::{obj, percentile_us, BenchReport, Value};
use crate::{
    disk_model, em_permute_report, em_sort_report, em_transpose_report, layout_ablation_ops,
    run_seq_em, sweep_sizes, Table,
};

use cgmio_algos::geometry::{
    rects::decode_area, CgmAllNearestNeighbors, CgmConvexHull, CgmDominance, CgmIntervalStab,
    CgmLowerEnvelope, CgmMaxima3d, CgmPointLocation, CgmTriangulate,
};
use cgmio_algos::graphs::{
    contraction::expr_states, CgmBatchedLca, CgmConnectivity, CgmEulerTour, CgmExprEval,
    CgmListRank,
};
use cgmio_algos::CgmSort;
use cgmio_baselines::{
    external_merge_sort, naive_permutation, paged_merge_sort, sort_based_permutation,
};
use cgmio_core::{measure_requirements, params, EmConfig, SeqEmRunner};
use cgmio_data as data;
use cgmio_pdm::DiskGeometry;
use cgmio_routing::{bin_sizes, theorem1_bounds, Balanced};

/// Figure 1: bin sizes produced by BalancedRouting step 1, against the
/// Theorem 1 bounds, for a skewed and a random message matrix.
pub fn fig1() -> Table {
    let mut t = Table::new(
        "fig1_balanced_bins",
        &["case", "v", "total", "min_bin", "max_bin", "thm1_lo", "thm1_hi"],
    );
    for v in [8usize, 16, 32] {
        let cases: Vec<(&str, Vec<usize>)> = vec![
            ("all_to_one", {
                let mut l = vec![0; v];
                l[0] = 64 * v;
                l
            }),
            ("uniform", vec![64; v]),
            ("ramp", (0..v).map(|j| 8 * j).collect()),
        ];
        for (name, lens) in cases {
            let total: usize = lens.iter().sum();
            let bins = bin_sizes(0, v, &lens);
            let b = theorem1_bounds(total, v);
            t.row(vec![
                name.into(),
                v.to_string(),
                total.to_string(),
                bins.iter().min().unwrap().to_string(),
                bins.iter().max().unwrap().to_string(),
                format!("{:.1}", b.v_times_min as f64 / v as f64),
                format!("{:.1}", b.v_times_max as f64 / v as f64),
            ]);
        }
    }
    t
}

/// Figure 2: staggered vs naive message-matrix layout — parallel write
/// operations and the achieved disk parallelism.
pub fn fig2() -> Table {
    let mut t = Table::new(
        "fig2_staggered_layout",
        &["v", "D", "blocks_per_msg", "staggered_ops", "naive_ops", "speedup"],
    );
    for (v, d, bpm) in [(8usize, 4usize, 2u64), (16, 4, 1), (16, 8, 3), (32, 8, 2)] {
        let (stag, naive) = layout_ablation_ops(v, d, bpm);
        t.row(vec![
            v.to_string(),
            d.to_string(),
            bpm.to_string(),
            stag.to_string(),
            naive.to_string(),
            format!("{:.2}", naive as f64 / stag as f64),
        ]);
    }
    t
}

/// Figure 3: sorting wall-time (modelled I/O time) — CGM over demand
/// paging vs the EM-CGM simulation.
pub fn fig3() -> Table {
    let mut t = Table::new(
        "fig3_sort_vm_vs_em",
        &["n", "em_ops", "em_ms", "vm_transfers", "vm_ms", "vm_over_em"],
    );
    let model = disk_model();
    let (v, d, bb) = (16usize, 1usize, 4096usize);
    // VM baseline memory: 64 frames of 4 KiB = 256 KiB — the crossover
    // happens once the two sort regions exceed this.
    let (page, frames) = (4096usize, 64usize);
    for n in sweep_sizes() {
        let em = em_sort_report(n, v, d, bb);
        let em_us = em.io_time_us(&model);
        let keys = data::uniform_u64(n, 42);
        let (_, vm) = paged_merge_sort(&keys, page, frames);
        let vm_us = vm.io_time_us(&model);
        t.row(vec![
            n.to_string(),
            em.breakdown.algorithm_ops().to_string(),
            format!("{:.1}", em_us / 1e3),
            vm.stats.transfers().to_string(),
            format!("{:.1}", vm_us / 1e3),
            format!("{:.2}", vm_us / em_us.max(1e-9)),
        ]);
    }
    t
}

/// Figure 4: EM-CGM sort with D = 1, 2, 4 disks per processor.
pub fn fig4() -> Table {
    let mut t = Table::new("fig4_sort_multidisk", &["n", "D", "ops", "io_ms", "ops_vs_d1"]);
    let model = disk_model();
    let (v, bb) = (16usize, 4096usize);
    for n in sweep_sizes() {
        let base_ops = em_sort_report(n, v, 1, bb).breakdown.algorithm_ops();
        for d in [1usize, 2, 4] {
            let rep = em_sort_report(n, v, d, bb);
            t.row(vec![
                n.to_string(),
                d.to_string(),
                rep.breakdown.algorithm_ops().to_string(),
                format!("{:.1}", rep.io_time_us(&model) / 1e3),
                format!("{:.2}", rep.breakdown.algorithm_ops() as f64 / base_ops as f64),
            ]);
        }
    }
    t
}

/// Figure 5, Group A: sorting / permutation / transpose — measured EM
/// I/O against the `O(N/(pDB))` bound and the classical baselines.
pub fn fig5a() -> Table {
    let mut t = Table::new(
        "fig5a_fundamental",
        &["problem", "n", "em_ops", "ops_per_NDB", "baseline", "baseline_ops", "base_per_NDB"],
    );
    let (v, d, bb) = (16usize, 2usize, 2048usize);
    let per_block = bb / 8;
    let geom = DiskGeometry::new(d, bb);
    for n in sweep_sizes() {
        let ndb = (n as f64) / (d as f64 * per_block as f64);
        // sorting vs external merge sort (M = 4 blocks per... use N/v items)
        let em = em_sort_report(n, v, d, bb);
        let keys = data::uniform_u64(n, 42);
        let (_, ms) = external_merge_sort(geom, (n / v).max(2 * per_block), &keys);
        t.row(vec![
            "sort".into(),
            n.to_string(),
            em.breakdown.algorithm_ops().to_string(),
            format!("{:.2}", em.breakdown.algorithm_ops() as f64 / ndb),
            "merge_sort".into(),
            ms.io.total_ops().to_string(),
            format!("{:.2}", ms.io.total_ops() as f64 / ndb),
        ]);
        // permutation vs naive and sort-based
        let em = em_permute_report(n, v, d, bb);
        let vals = data::uniform_u64(n, 7);
        let perm = data::random_permutation(n, 8);
        let (_, np) = naive_permutation(geom, &vals, &perm);
        let (_, sp) = sort_based_permutation(geom, (n / v).max(2 * per_block), &vals, &perm);
        t.row(vec![
            "permute".into(),
            n.to_string(),
            em.breakdown.algorithm_ops().to_string(),
            format!("{:.2}", em.breakdown.algorithm_ops() as f64 / ndb),
            "naive".into(),
            np.total_ops().to_string(),
            format!("{:.2}", np.total_ops() as f64 / ndb),
        ]);
        t.row(vec![
            "permute".into(),
            n.to_string(),
            em.breakdown.algorithm_ops().to_string(),
            format!("{:.2}", em.breakdown.algorithm_ops() as f64 / ndb),
            "sort_based".into(),
            sp.total_ops().to_string(),
            format!("{:.2}", sp.total_ops() as f64 / ndb),
        ]);
        // transpose
        let k = 1usize << 7;
        let l = n / k;
        let em = em_transpose_report(k, l, v, d, bb);
        t.row(vec![
            "transpose".into(),
            n.to_string(),
            em.breakdown.algorithm_ops().to_string(),
            format!("{:.2}", em.breakdown.algorithm_ops() as f64 / ndb),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

/// Figure 5, Group A continued: scalability in `p` — per-processor I/O
/// of the parallel EM engine.
pub fn fig5a_scaling() -> Table {
    let mut t = Table::new("fig5a_scaling_p", &["n", "p", "ops_per_proc", "vs_p1", "cross_items"]);
    let (v, d, bb) = (16usize, 2usize, 2048usize);
    let n = 1 << 16;
    let keys = data::uniform_u64(n, 42);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let (_, _, req) = measure_requirements(&prog, mk()).unwrap();
    let mut base = 0.0f64;
    for p in [1usize, 2, 4, 8] {
        let cfg = EmConfig::from_requirements(v, p, d, bb, &req);
        let (_, rep) = cgmio_core::ParEmRunner::new(cfg).run(&prog, mk()).unwrap();
        let opp = rep.io_ops_per_proc();
        if p == 1 {
            base = opp;
        }
        t.row(vec![
            n.to_string(),
            p.to_string(),
            format!("{opp:.0}"),
            format!("{:.2}", opp / base),
            rep.cross_thread_items.to_string(),
        ]);
    }
    t
}

fn geometry_row(
    t: &mut Table,
    problem: &str,
    n: usize,
    rep: &cgmio_core::EmRunReport,
    d: usize,
    bb: usize,
) {
    let per_block = bb / 16; // points are 16 bytes
    let ndb = n as f64 / (d as f64 * per_block as f64);
    let nlogndb = ndb * (n as f64).log2();
    t.row(vec![
        problem.into(),
        n.to_string(),
        rep.breakdown.algorithm_ops().to_string(),
        format!("{:.2}", rep.breakdown.algorithm_ops() as f64 / ndb),
        format!("{:.3}", rep.breakdown.algorithm_ops() as f64 / nlogndb),
        format!("{:.2}", rep.io.parallel_efficiency()),
    ]);
}

/// Figure 5, Group B: geometry/GIS — measured EM I/O per problem with
/// the `N/DB` and `(N log N)/DB` normalisations of the paper's table.
pub fn fig5b() -> Table {
    let mut t = Table::new(
        "fig5b_geometry",
        &["problem", "n", "em_ops", "ops_per_NDB", "ops_per_NlogNDB", "parallel_eff"],
    );
    let (v, d, bb) = (8usize, 2usize, 2048usize);
    for n in [1usize << 12, 1 << 14] {
        // convex hull
        let pts = data::random_points(n, 1_000_000, 1);
        let mk = || {
            data::block_split(pts.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmConvexHull, mk, v, d, bb);
        geometry_row(&mut t, "convex_hull", n, &rep, d, bb);

        // 3D maxima
        let pts3: Vec<(u64, (i64, i64, i64))> = data::uniform_u64(3 * n, 2)
            .chunks(3)
            .enumerate()
            .map(|(i, c)| {
                (i as u64, ((c[0] % 65536) as i64, (c[1] % 65536) as i64, (c[2] % 65536) as i64))
            })
            .collect();
        let mk = || {
            data::block_split(pts3.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmMaxima3d, mk, v, d, bb);
        geometry_row(&mut t, "3d_maxima", n, &rep, d, bb);

        // all nearest neighbours
        let pts = data::random_points(n, 1_000_000, 3);
        let idx: Vec<(u64, (i64, i64))> =
            pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
        let mk = || {
            data::block_split(idx.clone(), v)
                .into_iter()
                .map(|b| ((b, Vec::new()), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmAllNearestNeighbors, mk, v, d, bb);
        geometry_row(&mut t, "all_nn", n, &rep, d, bb);

        // union of rectangles
        let rects: Vec<[i64; 4]> = data::random_rects(n, 100_000, 4)
            .into_iter()
            .map(|r| [r.x1, r.y1, r.x2, r.y2])
            .collect();
        let mk = || {
            data::block_split(rects.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (fin, rep) = run_seq_em(&CgmUnionAreaWrap, mk, v, d, bb);
        assert!(decode_area(&fin[0].1) > 0);
        geometry_row(&mut t, "union_area", n, &rep, d, bb);

        // dominance counting
        let pts = data::random_points(n, 100_000, 5);
        let rows: Vec<[i64; 4]> =
            pts.iter().enumerate().map(|(i, &(x, y))| [i as i64, x, y, (i % 7) as i64]).collect();
        let mk = || {
            data::block_split(rows.clone(), v)
                .into_iter()
                .map(|b| ((b, Vec::new(), Vec::new()), (Vec::new(), Vec::new()), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmDominance, mk, v, d, bb);
        geometry_row(&mut t, "dominance", n, &rep, d, bb);

        // lower envelope
        let segs: Vec<(u64, [i64; 4])> = data::random_segments(n, 100_000, 6)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, [s.ax, s.ay, s.bx, s.by]))
            .collect();
        let mk = || {
            data::block_split(segs.clone(), v)
                .into_iter()
                .map(|b| (b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmLowerEnvelope, mk, v, d, bb);
        geometry_row(&mut t, "lower_envelope", n, &rep, d, bb);

        // interval stabbing (segment tree + batched 1D point location)
        let ivs: Vec<[i64; 3]> = data::uniform_u64(2 * n, 7)
            .chunks(2)
            .map(|c| {
                let a = (c[0] % 1_000_000) as i64;
                [a, a + (c[1] % 10_000) as i64, 1]
            })
            .collect();
        let qs: Vec<(u64, i64)> = (0..n as u64).map(|i| (i, (i as i64 * 37) % 1_000_000)).collect();
        let mk = || {
            data::block_split(ivs.clone(), v)
                .into_iter()
                .zip(data::block_split(qs.clone(), v))
                .map(|(ib, qb)| ((ib, qb), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmIntervalStab, mk, v, d, bb);
        geometry_row(&mut t, "segment_tree_stab", n, &rep, d, bb);

        // batched planar point location (also = trapezoidation core)
        let segs: Vec<(u64, [i64; 4])> = data::random_segments(n / 4, 200_000, 8)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i as u64, [s.ax, s.ay, s.bx, s.by]))
            .collect();
        let queries: Vec<(u64, i64, i64)> = data::random_points(n, 200_000, 9)
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| (i as u64, x, y * 3))
            .collect();
        let mk = || {
            data::block_split(segs.clone(), v)
                .into_iter()
                .zip(data::block_split(queries.clone(), v))
                .map(|(sb, qb)| ((sb, qb), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmPointLocation, mk, v, d, bb);
        geometry_row(&mut t, "point_location", n, &rep, d, bb);

        // triangulation
        let pts = data::random_points(n, 1_000_000, 10);
        let idx: Vec<(u64, (i64, i64))> =
            pts.iter().copied().enumerate().map(|(i, p)| (i as u64, p)).collect();
        let mk = || {
            data::block_split(idx.clone(), v)
                .into_iter()
                .map(|b| ((b, Vec::new()), Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmTriangulate, mk, v, d, bb);
        geometry_row(&mut t, "triangulation", n, &rep, d, bb);
    }
    t
}

use cgmio_algos::geometry::rects::CgmUnionArea as CgmUnionAreaWrap;

/// Figure 5, Group C: list/tree/graph problems — measured EM I/O with
/// the `(N log v)/DB` normalisation.
pub fn fig5c() -> Table {
    let mut t = Table::new(
        "fig5c_graphs",
        &["problem", "n", "em_ops", "lambda", "ops_per_NlogvDB", "parallel_eff"],
    );
    let (v, d, bb) = (8usize, 2usize, 2048usize);
    let per_block = bb / 24; // 3-word messages dominate
    let logv = (v as f64).log2();
    let norm = |n: usize, ops: u64| {
        let ndb = n as f64 / (d as f64 * per_block as f64);
        ops as f64 / (ndb * logv)
    };
    for n in [1usize << 12, 1 << 14] {
        // list ranking
        let (succ, _) = data::random_list(n, 1);
        let mk = || {
            data::block_split(succ.clone(), v)
                .into_iter()
                .map(|b| (vec![n as u64], b, Vec::new()))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmListRank, mk, v, d, bb);
        t.row(vec![
            "list_ranking".into(),
            n.to_string(),
            rep.breakdown.algorithm_ops().to_string(),
            rep.costs.lambda().to_string(),
            format!("{:.2}", norm(n, rep.breakdown.algorithm_ops())),
            format!("{:.2}", rep.io.parallel_efficiency()),
        ]);

        // Euler tour (depths + tour positions)
        let parent = data::random_tree_parents(n, 2);
        let mk = || {
            data::block_split(parent.clone(), v)
                .into_iter()
                .map(|b| ((vec![n as u64], b, Vec::new()), (Vec::new(), Vec::new(), Vec::new())))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmEulerTour, mk, v, d, bb);
        t.row(vec![
            "euler_tour".into(),
            n.to_string(),
            rep.breakdown.algorithm_ops().to_string(),
            rep.costs.lambda().to_string(),
            format!("{:.2}", norm(n, rep.breakdown.algorithm_ops())),
            format!("{:.2}", rep.io.parallel_efficiency()),
        ]);

        // connected components + spanning forest
        let edges = data::gnm_edges(n, 2 * n, 3);
        let mk = || {
            let vb = data::block_split((0..n as u64).collect::<Vec<_>>(), v);
            let eb = data::block_split(edges.clone(), v);
            vb.into_iter()
                .zip(eb)
                .map(|(vv, ee)| ((n as u64, vv, Vec::new()), (edges.len() as u64, ee, Vec::new())))
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmConnectivity, mk, v, d, bb);
        t.row(vec![
            "connected_comp".into(),
            n.to_string(),
            rep.breakdown.algorithm_ops().to_string(),
            rep.costs.lambda().to_string(),
            format!("{:.2}", norm(n, rep.breakdown.algorithm_ops())),
            format!("{:.2}", rep.io.parallel_efficiency()),
        ]);

        // batched LCA
        let parent = data::random_tree_parents(n, 4);
        let queries: Vec<(u64, u64)> =
            (0..n as u64).map(|i| ((i * 7) % n as u64, (i * 13 + 5) % n as u64)).collect();
        let mk = || {
            data::block_split(parent.clone(), v)
                .into_iter()
                .zip(data::block_split(queries.clone(), v))
                .map(|(pb, qb)| {
                    (
                        (n as u64, pb, Vec::new()),
                        (Vec::new(), qb),
                        (Vec::new(), Vec::new(), (Vec::new(), Vec::new())),
                    )
                })
                .collect::<Vec<_>>()
        };
        let (_, rep) = run_seq_em(&CgmBatchedLca, mk, v, d, bb);
        t.row(vec![
            "batched_lca".into(),
            n.to_string(),
            rep.breakdown.algorithm_ops().to_string(),
            rep.costs.lambda().to_string(),
            format!("{:.2}", norm(n, rep.breakdown.algorithm_ops())),
            format!("{:.2}", rep.io.parallel_efficiency()),
        ]);

        // expression tree evaluation
        let nodes = data::random_expression(n / 2, 5);
        let mk = || expr_states(&nodes, v);
        let (_, rep) = run_seq_em(&CgmExprEval, mk, v, d, bb);
        t.row(vec![
            "expr_eval".into(),
            n.to_string(),
            rep.breakdown.algorithm_ops().to_string(),
            rep.costs.lambda().to_string(),
            format!("{:.2}", norm(n, rep.breakdown.algorithm_ops())),
            format!("{:.2}", rep.io.parallel_efficiency()),
        ]);

        // biconnected components (Tarjan–Vishkin composition)
        let nb = n / 4; // the 6-phase composition is the heaviest row
        let bedges = {
            // connected: random tree + extra edges
            let mut es: Vec<(u64, u64)> =
                (1..nb as u64).map(|x| (x.wrapping_mul(0x9E37_79B9) % x, x)).collect();
            es.extend(data::gnm_edges(nb, nb / 2, 7));
            es.sort_unstable();
            es.dedup();
            es.retain(|&(a, b)| a != b);
            es
        };
        let (_, rep) = cgmio_algos::graphs::cgm_biconnected_components(
            nb,
            &bedges,
            v,
            cgmio_algos::graphs::Exec::SeqEm { d, block_bytes: bb },
        );
        t.row(vec![
            "biconnected".into(),
            nb.to_string(),
            rep.io_ops.to_string(),
            rep.rounds.to_string(),
            format!("{:.2}", norm(nb, rep.io_ops)),
            "-".into(),
        ]);
    }
    t
}

/// Figure 6: the surface `N^(c−1) = v^c·B^(c−1)` (B = 1000 items).
pub fn fig6() -> Table {
    let mut t = Table::new("fig6_surface", &["c", "v", "B", "N_min", "log10_N"]);
    for c in [2.0f64, 3.0] {
        for v in [10f64, 100.0, 1000.0, 10_000.0] {
            let n = params::surface_n(v, 1000.0, c);
            t.row(vec![
                format!("{c}"),
                format!("{v}"),
                "1000".into(),
                format!("{n:.3e}"),
                format!("{:.2}", n.log10()),
            ]);
        }
    }
    t
}

/// Figure 7: the c = 2 slice — minimum N per processor count.
pub fn fig7() -> Table {
    let mut t = Table::new("fig7_c2_slice", &["v", "B", "N_min", "check_log_term"]);
    for v in [2f64, 8.0, 32.0, 100.0, 1000.0, 10_000.0] {
        let n = params::surface_n(v, 1000.0, 2.0);
        let lt = params::log_term(n * 1.0001, v, 1000.0).unwrap();
        t.row(vec![format!("{v}"), "1000".into(), format!("{n:.3e}"), format!("{lt:.3}")]);
    }
    t
}

/// Figure 8: effective throughput vs block size (Stevens' measurement,
/// reproduced on the disk timing model).
pub fn fig8() -> Table {
    let mut t = Table::new("fig8_blocksize", &["block_bytes", "throughput_MB_s", "frac_of_peak"]);
    let m = disk_model();
    let peak = m.bandwidth_bytes_per_us * 1e6;
    let mut b = 512usize;
    while b <= 16 << 20 {
        let thr = m.throughput_bytes_per_s(b);
        t.row(vec![b.to_string(), format!("{:.2}", thr / 1e6), format!("{:.3}", thr / peak)]);
        b *= 4;
    }
    t
}

/// Theorem 2/3 audit: measured context vs message I/O against the
/// predicted `O(λ·vμ/(DB))` bound, plus the memory high-water mark.
pub fn audit() -> Table {
    let mut t = Table::new(
        "audit_theorem2",
        &["n", "lambda", "ctx_ops", "msg_ops", "predicted_ops", "measured_over_pred", "peak_mem_B"],
    );
    let (v, d, bb) = (16usize, 2usize, 2048usize);
    for n in [1usize << 14, 1 << 16] {
        let rep = em_sort_report(n, v, d, bb);
        // Same predictor the job service's admission controller uses.
        let predicted = rep.costs.predicted_ops(v, d, bb);
        let measured = rep.breakdown.algorithm_ops() as f64;
        t.row(vec![
            n.to_string(),
            format!("{}", rep.costs.lambda()),
            rep.breakdown.ctx_ops.to_string(),
            rep.breakdown.msg_ops.to_string(),
            format!("{predicted:.0}"),
            format!("{:.2}", measured / predicted),
            rep.peak_mem_bytes.to_string(),
        ]);
    }
    t
}

/// A maximally skewed exchange: each processor ships its whole block to
/// one neighbour in a single message (size `N/v`, i.e. `v×` the balanced
/// message size) — the pattern Lemma 2 exists to fix.
#[derive(Clone, Copy)]
struct BulkShift {
    items: usize,
}

impl cgmio_model::CgmProgram for BulkShift {
    type Msg = u64;
    type State = Vec<u64>;

    fn round(
        &self,
        ctx: &mut cgmio_model::RoundCtx<'_, u64>,
        state: &mut Vec<u64>,
    ) -> cgmio_model::Status {
        match ctx.round {
            0 => {
                let dst = (ctx.pid + 1) % ctx.v;
                let base = ctx.pid as u64 * 1000;
                ctx.send(dst, (0..self.items as u64).map(move |k| base + k));
                cgmio_model::Status::Continue
            }
            _ => {
                *state = ctx.incoming.flatten();
                cgmio_model::Status::Done
            }
        }
    }
}

/// BalancedRouting ablation: skewed traffic through the EM engine with
/// and without the Lemma 2 transformation.
pub fn ablation_balance() -> Table {
    let mut t = Table::new(
        "ablation_balance",
        &["variant", "msg_ops", "max_message", "parallel_eff", "slot_items"],
    );
    let v = 16usize;
    let items = 4096usize;
    let (d, bb) = (4usize, 1024usize);
    let mk = || (0..v).map(|_| Vec::new()).collect::<Vec<Vec<u64>>>();
    let plain = BulkShift { items };
    {
        let (_, _, req) = measure_requirements(&plain, mk()).unwrap();
        let cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
        let slot = cfg.msg_slot_items;
        let (_, rep) = SeqEmRunner::new(cfg).run(&plain, mk()).unwrap();
        t.row(vec![
            "unbalanced".into(),
            rep.breakdown.msg_ops.to_string(),
            rep.costs.max_message().to_string(),
            format!("{:.2}", rep.io.parallel_efficiency()),
            slot.to_string(),
        ]);
    }
    {
        let bal = Balanced::new(plain);
        let (_, _, req) = measure_requirements(&bal, mk()).unwrap();
        let cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
        let slot = cfg.msg_slot_items;
        let (_, rep) = SeqEmRunner::new(cfg).run(&bal, mk()).unwrap();
        t.row(vec![
            "balanced".into(),
            rep.breakdown.msg_ops.to_string(),
            rep.costs.max_message().to_string(),
            format!("{:.2}", rep.io.parallel_efficiency()),
            slot.to_string(),
        ]);
    }
    t
}

/// I/O event trace of the Figure 3 sort run through the `cgmio-io`
/// concurrent engine. The full per-transfer event log of the Fig 3
/// geometry (D = 1) is archived as `fig3_io_trace.jsonl` under the
/// output directory; the table summarises the traces for D ∈ {1, 2, 4}.
pub fn io_trace(out_dir: &std::path::Path) -> Table {
    let mut t = Table::new(
        "io_trace_summary",
        &[
            "n",
            "D",
            "events",
            "reads",
            "writes",
            "prefetches",
            "cache_hits",
            "bytes",
            "max_queue_depth",
            "mean_read_lat_us",
            "mean_q_wait_us",
            "mean_service_us",
            "stalls",
            "retries",
            "prefetch_drops",
            "supersteps",
        ],
    );
    let mut drives_t = Table::new(
        "io_trace_drives",
        &["n", "D", "drive", "reads", "writes", "mean_q_wait_us", "mean_service_us", "stalls"],
    );
    let (v, bb) = (16usize, 4096usize);
    let n = 1usize << 14;
    for d in [1usize, 2, 4] {
        let drives = cgmio_pdm::testutil::TempDir::new("cgmio-trace");
        let rep = crate::em_sort_report_traced(n, v, d, bb, drives.path());
        let s = cgmio_io::summarize(&rep.io_trace);
        if d == 1 {
            // Fig 3's geometry — archive the full event log.
            let path = out_dir.join("fig3_io_trace.jsonl");
            let saved = std::fs::create_dir_all(out_dir)
                .and_then(|()| std::fs::File::create(&path))
                .and_then(|mut f| cgmio_io::write_jsonl(&rep.io_trace, &mut f));
            match saved {
                Ok(()) => eprintln!("  saved {}", path.display()),
                Err(e) => eprintln!("  trace save failed: {e}"),
            }
        }
        t.row(vec![
            n.to_string(),
            d.to_string(),
            rep.io_trace.len().to_string(),
            s.reads.to_string(),
            s.writes.to_string(),
            s.prefetches.to_string(),
            s.cache_hits.to_string(),
            s.bytes.to_string(),
            s.max_queue_depth.to_string(),
            s.mean_read_latency_us.to_string(),
            s.mean_read_queue_wait_us.to_string(),
            s.mean_read_service_us.to_string(),
            s.stalls.to_string(),
            s.retries.to_string(),
            s.prefetch_drops.to_string(),
            s.supersteps.to_string(),
        ]);
        // Per-drive queue-wait vs service split: a drive whose queue
        // wait dwarfs its service time is *behind* (deepen the pipeline
        // or add drives); one whose service time dominates is *slow*.
        for drive in 0..d {
            let evs: Vec<_> = rep.io_trace.iter().filter(|e| e.drive == drive).cloned().collect();
            let ds = cgmio_io::summarize(&evs);
            drives_t.row(vec![
                n.to_string(),
                d.to_string(),
                drive.to_string(),
                ds.reads.to_string(),
                ds.writes.to_string(),
                ds.mean_read_queue_wait_us.to_string(),
                ds.mean_read_service_us.to_string(),
                ds.stalls.to_string(),
            ]);
        }
    }
    match drives_t.save_csv(out_dir) {
        Ok(p) => eprintln!("  saved {}", p.display()),
        Err(e) => eprintln!("  io_trace_drives.csv save failed: {e}"),
    }
    t
}

/// Fault-injection sweep (the `faults` experiment). The Figure 3 sort
/// (n = 2^14 keys, v = 16, D = 2, B = 4096) runs on the concurrent
/// engine while a seeded [`cgmio_pdm::FaultInjector`] fires transient
/// read/write faults at increasing rates; the drive workers heal every
/// fault by bounded retry (6 attempts, checksum verification on). Each
/// rate is additionally run a second time, killed at the superstep-1
/// barrier, and resumed from its checkpoint — `resume_exact` records
/// whether the resumed run reproduced the uninterrupted run's final
/// states and exact I/O counts. `retry_overhead_pct` is the recovery
/// traffic (retried transfers) relative to the model's parallel I/O
/// operations; the model counts themselves are fault-invariant.
pub fn faults(_out_dir: &std::path::Path) -> Table {
    use cgmio_core::{BackendSpec, RunOutcome};
    use cgmio_io::{IoEngineOpts, RetryPolicy};
    use cgmio_pdm::{FaultPlan, FaultStats};
    use std::sync::Arc;

    let mut t = Table::new(
        "faults_recovery",
        &["rate", "em_ops", "injected", "retries", "retry_overhead_pct", "wall_ms", "resume_exact"],
    );
    let (n, v, d, bb) = (1usize << 14, 16usize, 2usize, 4096usize);
    let keys = data::uniform_u64(n, 42);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let base_cfg = crate::config_for(&prog, mk(), v, 1, d, bb);

    let cfg_at = |rate: f64, stats: &Arc<FaultStats>| {
        let mut cfg = base_cfg.clone();
        cfg.backend = BackendSpec::Concurrent {
            dir: None, // memory-backed: concurrency + faults, no files
            opts: IoEngineOpts {
                trace: true,
                verify_checksums: true,
                retry: RetryPolicy { max_attempts: 6, base_backoff_us: 0 },
                ..Default::default()
            },
        };
        if rate > 0.0 {
            cfg.fault = Some(FaultPlan::transient(1999, rate).with_observer(stats.clone()));
        }
        cfg
    };

    let mut fault_free_finals = None;
    // ~2.5k physical transfers at this size: 0.005 is the smallest rate
    // that reliably injects at least a handful of faults.
    for rate in [0.0f64, 0.005, 0.01, 0.05] {
        let stats = Arc::new(FaultStats::default());
        let (finals, rep) =
            SeqEmRunner::new(cfg_at(rate, &stats)).run(&prog, mk()).expect("faulty sort run");
        let fault_free = fault_free_finals.get_or_insert_with(|| finals.clone());
        assert_eq!(&finals, fault_free, "faults must never change results (rate {rate})");

        // Kill at the superstep-1 barrier and resume from the checkpoint.
        let rstats = Arc::new(FaultStats::default());
        let mut hcfg = cfg_at(rate, &rstats);
        hcfg.halt_after_superstep = Some(1);
        let resume_exact = match SeqEmRunner::new(hcfg.clone())
            .run_until(&prog, mk())
            .expect("run to halt")
        {
            RunOutcome::Interrupted(ckpt) => {
                let mut rcfg = hcfg;
                rcfg.halt_after_superstep = None;
                let (rf, rr) =
                    SeqEmRunner::new(rcfg).resume(&prog, ckpt).expect("resume").expect_complete();
                rf == finals && rr.io == rep.io && rr.breakdown == rep.breakdown
            }
            RunOutcome::Complete { .. } => false,
        };

        let s = cgmio_io::summarize(&rep.io_trace);
        t.row(vec![
            format!("{rate}"),
            rep.breakdown.algorithm_ops().to_string(),
            stats.counts().total_errors().to_string(),
            s.retries.to_string(),
            format!("{:.2}", 100.0 * s.retries as f64 / rep.io.total_ops().max(1) as f64),
            rep.wall.as_millis().to_string(),
            if resume_exact { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Section 5 cache extension: the same parameter collapse at the
/// cache / main-memory interface.
pub fn cache() -> Table {
    let mut t = Table::new(
        "cache_extension",
        &["M_I_bytes", "B_I_bytes", "M/B", "N_max_c2_items", "N_max_c3_items"],
    );
    for (mi, bi) in [(32 * 1024usize, 64usize), (256 * 1024, 64), (8 * 1024 * 1024, 64)] {
        let mb = (mi / bi) as f64;
        // log_{M/B}(N/B) <= c  <=>  N <= B * (M/B)^c (items scaled by B)
        let n2 = mb.powi(2) * (bi as f64 / 8.0);
        let n3 = mb.powi(3) * (bi as f64 / 8.0);
        t.row(vec![
            mi.to_string(),
            bi.to_string(),
            format!("{mb}"),
            format!("{n2:.3e}"),
            format!("{n3:.3e}"),
        ]);
    }
    t
}

/// Allocator traffic of the Fig 3/Fig 4 sort hot path measured **at the
/// seed of this PR** (commit `3e6ab79`, the pre-zero-copy data path),
/// with the same counting allocator and the same probe as [`perf`].
/// Keyed by `(n, D)`; values are `(allocs, alloc_bytes)`. `perf` embeds
/// these next to the current measurements in `BENCH_sort.json` so the
/// reduction is computed against a fixed, honest baseline rather than a
/// re-measurement of code that no longer exists.
const SEED_DATAPATH: &[(usize, usize, u64, u64)] = &[
    (8192, 1, 8243, 10_152_624),
    (8192, 2, 7359, 10_131_952),
    (8192, 4, 6981, 10_133_920),
    (16384, 1, 8548, 12_799_584),
    (16384, 2, 7641, 12_778_208),
    (16384, 4, 7145, 12_776_176),
    (32768, 1, 9173, 18_059_894),
    (32768, 2, 8123, 18_033_908),
    (32768, 4, 7605, 18_031_232),
    (65536, 1, 10411, 28_556_108),
    (65536, 2, 9830, 28_545_008),
    (65536, 4, 8784, 28_516_168),
    (131072, 1, 14364, 53_030_752),
    (131072, 2, 12448, 52_959_036),
    (131072, 4, 11117, 52_927_416),
];

/// One measured point of the `perf` experiment.
struct PerfPoint {
    n: usize,
    d: usize,
    wall_ms: f64,
    io_ops: u64,
    disk_bytes: u64,
    allocs: u64,
    alloc_bytes: u64,
}

/// Run the Fig 3 sort once at `(n, v, d, bb)` and measure wall-clock,
/// I/O stats, and allocator traffic around the EM run only (input
/// generation and the dry-run config measurement are excluded).
fn perf_probe(n: usize, v: usize, d: usize, bb: usize) -> PerfPoint {
    let keys = data::uniform_u64(n, 42);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let cfg = crate::config_for(&prog, mk(), v, 1, d, bb);
    let states = mk();

    let before = crate::alloc::snapshot();
    let t0 = std::time::Instant::now();
    let (fin, rep) = SeqEmRunner::new(cfg).run(&prog, states).expect("perf sort run");
    let wall = t0.elapsed();
    let delta = crate::alloc::snapshot().since(before);

    let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
    assert_eq!(flat.len(), n);
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "perf probe output not sorted");

    let blocks = rep.io.blocks_read + rep.io.blocks_written;
    PerfPoint {
        n,
        d,
        wall_ms: wall.as_secs_f64() * 1e3,
        io_ops: rep.io.total_ops(),
        disk_bytes: blocks * bb as u64,
        allocs: delta.allocs,
        alloc_bytes: delta.bytes,
    }
}

/// `perf`: the data-path baseline. Runs the Fig 3 sort sweep (D = 1)
/// and the Fig 4 multi-disk variants (D = 2, 4) under the counting
/// allocator and writes `BENCH_sort.json` into the output directory
/// (`results/` by default) — the perf trajectory point every later PR
/// is compared against. Set
/// `CGMIO_PERF_SMOKE=1` for a single small size (CI bench-smoke).
///
/// Allocation counts are only meaningful from the `reproduce` binary,
/// which installs [`crate::alloc::CountingAlloc`]; elsewhere they read
/// zero and the JSON marks `allocator_counted: false`.
pub fn perf(out_dir: &std::path::Path) -> Table {
    let mut t = Table::new(
        "perf_datapath",
        &["n", "D", "wall_ms", "io_ops", "disk_bytes", "allocs", "alloc_bytes", "vs_seed_pct"],
    );
    let (v, bb) = (16usize, 4096usize);
    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    let (sizes, disks) =
        if smoke { (vec![1usize << 12], vec![1usize, 2]) } else { (sweep_sizes(), vec![1, 2, 4]) };

    let seed_for = |n: usize, d: usize| {
        SEED_DATAPATH.iter().find(|&&(sn, sd, _, _)| sn == n && sd == d).map(|&(_, _, a, b)| (a, b))
    };

    let mut points = Vec::new();
    for &n in &sizes {
        for &d in &disks {
            points.push(perf_probe(n, v, d, bb));
        }
    }

    let counted = crate::alloc::counting_installed();
    let mut report = BenchReport::new(
        "em_cgm_sort_datapath",
        "CgmSort<u64> by_pivots, v=16, B=4096 bytes (Fig 3: D=1 size sweep; Fig 4: D=2,4)",
        smoke,
    )
    .extra("seed_commit", Value::str("3e6ab79"))
    .extra("allocator_counted", Value::Bool(counted));
    let mut headline: Option<(usize, f64)> = None;
    for p in &points {
        let seed = seed_for(p.n, p.d);
        let vs_seed = match seed {
            Some((_, sb)) if sb > 0 && counted => {
                let pct = 100.0 * (1.0 - p.alloc_bytes as f64 / sb as f64);
                if p.d == 1 && headline.is_none_or(|(hn, _)| p.n > hn) {
                    headline = Some((p.n, pct));
                }
                format!("{pct:.1}")
            }
            _ => "n/a".to_string(),
        };
        report.point(obj(vec![
            ("n", Value::num(p.n)),
            ("d", Value::num(p.d)),
            ("wall_ms", Value::num(format!("{:.2}", p.wall_ms))),
            ("io_ops", Value::num(p.io_ops)),
            ("disk_bytes", Value::num(p.disk_bytes)),
            ("allocs", Value::num(p.allocs)),
            ("alloc_bytes", Value::num(p.alloc_bytes)),
            ("seed_allocs", seed.map_or(Value::Null, |(a, _)| Value::num(a))),
            ("seed_alloc_bytes", seed.map_or(Value::Null, |(_, b)| Value::num(b))),
            (
                "alloc_bytes_vs_seed_pct",
                if vs_seed == "n/a" { Value::Null } else { Value::num(vs_seed.clone()) },
            ),
        ]));
        t.row(vec![
            p.n.to_string(),
            p.d.to_string(),
            format!("{:.2}", p.wall_ms),
            p.io_ops.to_string(),
            p.disk_bytes.to_string(),
            p.allocs.to_string(),
            p.alloc_bytes.to_string(),
            vs_seed,
        ]);
    }
    if let Some((n, pct)) = headline {
        report.set_headline(obj(vec![
            ("n", Value::num(n)),
            ("d", Value::num(1)),
            ("alloc_bytes_reduction_pct", Value::num(format!("{pct:.1}"))),
        ]));
    }
    report.save(out_dir, "BENCH_sort.json");
    t
}

/// One measured point of the `pipeline` experiment.
struct PipelinePoint {
    backend: &'static str,
    depth: usize,
    wall_ms: f64,
    io_ops: u64,
    stalls: Option<usize>,
    q_wait_us: Option<u64>,
    improvement_pct: f64,
}

/// `pipeline`: wall-clock effect of the software-pipelined superstep
/// executor. The Fig 3 sort runs at pipeline depths {0, 1, 2, 4} on all
/// three backends while a seeded [`cgmio_pdm::FaultPlan`] latency spike
/// models a device with a fixed per-track access latency (`spike_us`,
/// probability 1.0 — every physical transfer sleeps, deterministically).
/// On the synchronous backends that latency is paid inline, so depth
/// cannot help; on the concurrent engine, depth ≥ 1 pre-issues the next
/// vps' context/inbox reads so the drive workers absorb the latency
/// while the current vp computes. Each point is the best of `reps` runs
/// (min wall-clock); finals are asserted identical across every cell.
/// Writes `BENCH_pipeline.json` into the output directory. Set
/// `CGMIO_PERF_SMOKE=1` for a small size (CI bench-smoke).
pub fn pipeline(out_dir: &std::path::Path) -> Table {
    use cgmio_core::BackendSpec;
    use cgmio_io::IoEngineOpts;
    use cgmio_pdm::FaultPlan;

    let mut t = Table::new(
        "pipeline_overlap",
        &["backend", "depth", "wall_ms", "io_ops", "stalls", "mean_q_wait_us", "improvement_pct"],
    );
    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    // Geometry note: the per-track latency (spike_us plus the OS sleep
    // granularity, identical for every op) times the transfer count,
    // divided across the D drive workers, is sized to roughly balance
    // the total compute — the regime where overlap has the most to
    // hide. Overlap cannot beat max(total I/O, total compute), so a
    // grossly I/O-bound geometry would cap the visible win at a few
    // percent no matter how deep the pipeline runs.
    let (n, bb, reps) = if smoke { (1usize << 16, 8192usize, 3usize) } else { (1 << 20, 32768, 5) };
    let (v, d, spike_us) = (16usize, 4usize, 30u64);
    let depths = [0usize, 1, 2, 4];

    let keys = data::uniform_u64(n, 42);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let base_cfg = crate::config_for(&prog, mk(), v, 1, d, bb);

    let mut want: Option<Vec<u64>> = None;
    let mut points: Vec<PipelinePoint> = Vec::new();
    for backend in ["mem", "sync_file", "concurrent"] {
        let mut d0_wall = 0.0f64;
        for depth in depths {
            let mut best: Option<(f64, cgmio_core::EmRunReport)> = None;
            for _ in 0..reps {
                let mut cfg = base_cfg.clone();
                cfg.pipeline_depth = depth;
                cfg.fault = Some(FaultPlan {
                    seed: 7,
                    latency_spike: 1.0,
                    spike_us,
                    ..FaultPlan::default()
                });
                let _tmp; // keeps the SyncFile drive dir alive across the run
                cfg.backend = match backend {
                    "mem" => BackendSpec::Mem,
                    "sync_file" => {
                        let tmp = cgmio_pdm::testutil::TempDir::new("cgmio-pipe-bench");
                        let dir = tmp.path().join("drives");
                        _tmp = tmp;
                        BackendSpec::SyncFile { dir }
                    }
                    _ => BackendSpec::Concurrent {
                        dir: None,
                        opts: IoEngineOpts { trace: true, ..Default::default() },
                    },
                };
                let (fin, rep) =
                    SeqEmRunner::new(cfg).run(&prog, mk()).expect("pipeline bench run");
                let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
                assert!(flat.windows(2).all(|w| w[0] <= w[1]), "pipeline bench output not sorted");
                match &want {
                    None => want = Some(flat),
                    Some(w) => {
                        assert_eq!(&flat, w, "{backend} depth={depth}: finals differ")
                    }
                }
                let wall = rep.wall.as_secs_f64() * 1e3;
                if best.as_ref().is_none_or(|(bw, _)| wall < *bw) {
                    best = Some((wall, rep));
                }
            }
            let (wall_ms, rep) = best.expect("reps >= 1");
            if depth == 0 {
                d0_wall = wall_ms;
            }
            let (stalls, q_wait_us) = if backend == "concurrent" {
                let s = cgmio_io::summarize(&rep.io_trace);
                (Some(s.stalls), Some(s.mean_read_queue_wait_us))
            } else {
                (None, None)
            };
            points.push(PipelinePoint {
                backend,
                depth,
                wall_ms,
                io_ops: rep.io.total_ops(),
                stalls,
                q_wait_us,
                improvement_pct: 100.0 * (1.0 - wall_ms / d0_wall.max(1e-9)),
            });
        }
    }

    // The headline: best concurrent depth ≥ 2 improvement over depth 0.
    let headline = points
        .iter()
        .filter(|p| p.backend == "concurrent" && p.depth >= 2)
        .max_by(|a, b| a.improvement_pct.total_cmp(&b.improvement_pct));

    let mut report = BenchReport::new(
        "em_cgm_sort_pipeline",
        format!(
            "CgmSort<u64> by_pivots, n={n}, v={v}, D={d}, B={bb} bytes; \
             simulated device latency {spike_us} us per track op (FaultPlan latency spike, \
             probability 1.0)"
        ),
        smoke,
    )
    .extra("reps", Value::num(reps));
    for p in &points {
        report.point(obj(vec![
            ("backend", Value::str(p.backend)),
            ("depth", Value::num(p.depth)),
            ("wall_ms", Value::num(format!("{:.2}", p.wall_ms))),
            ("io_ops", Value::num(p.io_ops)),
            ("stalls", p.stalls.map_or(Value::Null, Value::num)),
            ("mean_read_queue_wait_us", p.q_wait_us.map_or(Value::Null, Value::num)),
            ("improvement_vs_depth0_pct", Value::num(format!("{:.1}", p.improvement_pct))),
        ]));
    }
    if let Some(h) = headline {
        report.set_headline(obj(vec![
            ("backend", Value::str("concurrent")),
            ("depth", Value::num(h.depth)),
            ("improvement_pct", Value::num(format!("{:.1}", h.improvement_pct))),
        ]));
    }
    report.save(out_dir, "BENCH_pipeline.json");

    for p in points {
        t.row(vec![
            p.backend.to_string(),
            p.depth.to_string(),
            format!("{:.2}", p.wall_ms),
            p.io_ops.to_string(),
            p.stalls.map_or("-".into(), |s| s.to_string()),
            p.q_wait_us.map_or("-".into(), |q| q.to_string()),
            format!("{:.1}", p.improvement_pct),
        ]);
    }
    t
}

/// `autotune`: the self-tuning runtime against a hand-swept pipeline
/// depth. The Fig 3 sort runs on the concurrent engine under the same
/// seeded latency spike as the `pipeline` experiment, once per hand
/// depth {0, 1, 2, 4} and once with the tuner on: the static planner
/// ([`cgmio_tune::plan`]) picks the starting depth from the dry-run
/// λ/μ, and the barrier-time [`cgmio_tune::Controller`] adapts from
/// there using the windowed stall/queue-wait deltas. Each cell is the
/// best of `reps` runs; finals and exact I/O op counts are asserted
/// identical across every cell (tuning is accounting-invariant). Writes
/// `BENCH_autotune.json` (headline: auto wall vs best hand depth, must
/// stay within a few percent) and `autotune_decisions.csv` (the audit
/// log of the best auto run) into the output directory. Set
/// `CGMIO_PERF_SMOKE=1` for a small size (CI autotune-smoke).
pub fn autotune(out_dir: &std::path::Path) -> Table {
    use cgmio_core::BackendSpec;
    use cgmio_io::IoEngineOpts;
    use cgmio_pdm::FaultPlan;

    let mut t = Table::new(
        "autotune_vs_hand_depth",
        &["cell", "start_depth", "final_depth", "wall_ms", "io_ops", "moves", "vs_best_hand_pct"],
    );
    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    // Same geometry as the `pipeline` experiment so the two reports are
    // directly comparable (see the geometry note there).
    let (n, bb, reps) = if smoke { (1usize << 16, 8192usize, 3usize) } else { (1 << 20, 32768, 5) };
    let (v, d, spike_us) = (16usize, 4usize, 30u64);
    let hand_depths = [0usize, 1, 2, 4];

    let keys = data::uniform_u64(n, 42);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();
    let (_, mut costs, req) = measure_requirements(&prog, mk()).expect("dry run");
    costs.max_context_bytes = req.max_ctx_bytes;
    let base_cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
    let plan = cgmio_tune::plan(&costs, v, d, &disk_model());

    let mut want: Option<Vec<u64>> = None;
    let mut want_ops: Option<u64> = None;
    // (cell, start depth, best wall, report, decisions of the best rep)
    let mut cells: Vec<(String, usize, f64, cgmio_core::EmRunReport, Vec<cgmio_tune::Decision>)> =
        Vec::new();
    for cell in hand_depths.iter().map(|d| d.to_string()).chain(["auto".to_string()]) {
        let auto = cell == "auto";
        let start_depth = if auto { plan.pipeline_depth.min(v) } else { cell.parse().unwrap() };
        let mut best: Option<(f64, cgmio_core::EmRunReport, Vec<cgmio_tune::Decision>)> = None;
        for _ in 0..reps {
            let mut cfg = base_cfg.clone();
            cfg.pipeline_depth = start_depth;
            let log = cgmio_tune::DecisionLog::new();
            if auto {
                cfg.autotune = cgmio_tune::Autotune::with_log(log.clone());
            }
            cfg.fault =
                Some(FaultPlan { seed: 7, latency_spike: 1.0, spike_us, ..FaultPlan::default() });
            cfg.backend = BackendSpec::Concurrent {
                dir: None,
                opts: IoEngineOpts { trace: true, ..Default::default() },
            };
            let (fin, rep) = SeqEmRunner::new(cfg).run(&prog, mk()).expect("autotune bench run");
            let flat: Vec<u64> = fin.iter().flat_map(|(b, _)| b.iter().copied()).collect();
            assert!(flat.windows(2).all(|w| w[0] <= w[1]), "autotune bench output not sorted");
            match &want {
                None => want = Some(flat),
                Some(w) => assert_eq!(&flat, w, "cell {cell}: finals differ"),
            }
            match want_ops {
                None => want_ops = Some(rep.io.total_ops()),
                Some(w) => assert_eq!(
                    rep.io.total_ops(),
                    w,
                    "cell {cell}: tuning must not change the I/O accounting"
                ),
            }
            let wall = rep.wall.as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|(bw, _, _)| wall < *bw) {
                best = Some((wall, rep, log.snapshot()));
            }
        }
        let (wall_ms, rep, decisions) = best.expect("reps >= 1");
        cells.push((cell, start_depth, wall_ms, rep, decisions));
    }

    let best_hand_wall = cells
        .iter()
        .filter(|(c, ..)| c != "auto")
        .map(|&(_, _, w, ..)| w)
        .fold(f64::INFINITY, f64::min);

    let mut report = BenchReport::new(
        "em_cgm_sort_autotune",
        format!(
            "CgmSort<u64> by_pivots, n={n}, v={v}, D={d}, B={bb} bytes, concurrent engine; \
             simulated device latency {spike_us} us per track op; auto cell starts at the \
             planner depth and adapts at superstep barriers"
        ),
        smoke,
    )
    .extra("reps", Value::num(reps))
    .extra("planned", plan.to_json());
    let mut csv = String::from(
        "proc,superstep,stall_us,stall_count,queue_wait_us,queue_wait_count,action,depth,prefetch_blocks\n",
    );
    for (cell, start_depth, wall_ms, rep, decisions) in &cells {
        let final_depth = decisions.last().map_or(*start_depth, |dec| dec.depth).min(v);
        let moves =
            decisions.iter().filter(|dec| dec.action != cgmio_tune::TuneAction::Hold).count();
        let vs_best = 100.0 * (wall_ms / best_hand_wall.max(1e-9) - 1.0);
        report.point(obj(vec![
            ("cell", Value::str(cell.clone())),
            ("start_depth", Value::num(*start_depth)),
            ("final_depth", Value::num(final_depth)),
            ("wall_ms", Value::num(format!("{wall_ms:.2}"))),
            ("io_ops", Value::num(rep.io.total_ops())),
            ("moves", Value::num(moves)),
            ("vs_best_hand_pct", Value::num(format!("{vs_best:.1}"))),
        ]));
        t.row(vec![
            cell.clone(),
            start_depth.to_string(),
            final_depth.to_string(),
            format!("{wall_ms:.2}"),
            rep.io.total_ops().to_string(),
            moves.to_string(),
            format!("{vs_best:+.1}"),
        ]);
        if cell == "auto" {
            report.set_headline(obj(vec![
                ("auto_wall_ms", Value::num(format!("{wall_ms:.2}"))),
                ("best_hand_wall_ms", Value::num(format!("{best_hand_wall:.2}"))),
                ("auto_vs_best_hand_pct", Value::num(format!("{vs_best:.1}"))),
                ("start_depth", Value::num(*start_depth)),
                ("final_depth", Value::num(final_depth)),
            ]));
            for dec in decisions {
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{},{},{}",
                    dec.proc,
                    dec.superstep,
                    dec.signals.stall_us,
                    dec.signals.stall_count,
                    dec.signals.queue_wait_us,
                    dec.signals.queue_wait_count,
                    dec.action.name(),
                    dec.depth,
                    dec.prefetch_blocks
                );
            }
        }
    }
    report.save(out_dir, "BENCH_autotune.json");
    let _ = std::fs::create_dir_all(out_dir);
    if let Err(e) = std::fs::write(out_dir.join("autotune_decisions.csv"), csv) {
        eprintln!("  autotune_decisions.csv save failed: {e}");
    }
    t
}

/// `service`: the multi-tenant job service under a seeded open-loop
/// workload. Hundreds of mixed jobs (sort/permute/transpose, two
/// problem sizes, all three priorities) from three tenants are
/// submitted in one burst to a [`cgmio_svc::JobService`] over a shared
/// concurrent in-memory pool; the deficit round-robin scheduler and
/// admission budget arbitrate, and every job runs in its own track
/// window. Writes `BENCH_service.json` (aggregate throughput headline,
/// per-tenant p50/p99 latency points) into the output directory; the
/// returned table archives as `service_tenants.csv`. Set
/// `CGMIO_SERVICE_SMOKE=1` for a small job count (CI service-smoke).
pub fn service(out_dir: &std::path::Path) -> Table {
    use cgmio_svc::{JobService, JobSpec, Priority, ServiceConfig, WorkloadKind};

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    let smoke = std::env::var_os("CGMIO_SERVICE_SMOKE").is_some();
    let (jobs, n_small, n_large) =
        if smoke { (24usize, 1usize << 9, 1usize << 10) } else { (240, 1 << 11, 1 << 12) };
    let tenants = ["acme", "globex", "initech"];
    let workloads = [WorkloadKind::Sort, WorkloadKind::Permute, WorkloadKind::Transpose];
    let priorities = [Priority::Batch, Priority::Normal, Priority::Interactive];
    let (d, bb, v, workers, budget_ops) = (4usize, 1024usize, 8usize, 3usize, 4096.0f64);

    let svc = JobService::new(ServiceConfig {
        num_disks: d,
        block_bytes: bb,
        workers,
        budget_ops,
        quantum_ops: 64.0,
        ..ServiceConfig::default()
    })
    .expect("in-memory service needs no I/O to start");

    let start = std::time::Instant::now();
    let mut submitted = 0usize;
    let mut rejected = 0usize;
    let mut spec_of: std::collections::BTreeMap<cgmio_svc::JobId, (&str, usize, u64)> =
        std::collections::BTreeMap::new();
    for i in 0..jobs {
        let r = splitmix64(0xC61A + i as u64);
        let spec = JobSpec {
            tenant: tenants[(r % 3) as usize].into(),
            workload: workloads[((r >> 8) % 3) as usize],
            n: if (r >> 16).is_multiple_of(2) { n_small } else { n_large },
            v,
            block_bytes: bb,
            priority: priorities[((r >> 24) % 3) as usize],
            deadline_hint_ms: ((r >> 32).is_multiple_of(4)).then_some(2_000),
            // A small seed pool, so some jobs repeat a spec exactly —
            // their finals hashes must agree (cross-job isolation).
            seed: (r >> 40) % 4,
        };
        let key = (spec.workload.name(), spec.n, spec.seed);
        match svc.submit(spec) {
            Ok(id) => {
                submitted += 1;
                spec_of.insert(id, key);
            }
            Err(e) => {
                rejected += 1;
                eprintln!("  admission reject: {e}");
            }
        }
    }
    let records = svc.drain();
    let wall = start.elapsed();
    assert_eq!(records.len(), submitted, "every admitted job must finish");
    assert!(records.iter().all(|r| r.ok), "service jobs must not fail");

    // Identical specs (same workload/n/seed) must have identical finals
    // regardless of tenant, priority, scheduling order, or which pool
    // window each landed in — the burst reuses a 4-seed pool precisely
    // so these collisions happen often.
    let mut by_spec: std::collections::BTreeMap<(&str, usize, u64), u64> =
        std::collections::BTreeMap::new();
    for r in &records {
        let key = spec_of[&r.id];
        match by_spec.get(&key) {
            Some(&h) => assert_eq!(h, r.finals_hash, "cross-job interference on {key:?}"),
            None => {
                by_spec.insert(key, r.finals_hash);
            }
        }
    }

    let mut t = Table::new(
        "service_tenants",
        &[
            "tenant",
            "jobs",
            "p50_queue_wait_us",
            "p99_queue_wait_us",
            "p50_latency_us",
            "p99_latency_us",
            "mean_measured_ops",
        ],
    );
    let mut report = BenchReport::new(
        "em_cgm_job_service",
        format!(
            "{jobs} mixed jobs (sort/permute/transpose, n∈{{{n_small},{n_large}}}, v={v}, \
             B={bb} bytes) from {} tenants over one shared {d}-disk concurrent pool; \
             {workers} workers, admission budget {budget_ops} predicted ops, DRR quantum 64",
            tenants.len()
        ),
        smoke,
    )
    .extra("jobs_submitted", Value::num(submitted))
    .extra("jobs_rejected", Value::num(rejected))
    .extra("workers", Value::num(workers))
    .extra("budget_ops", Value::num(budget_ops));

    let mut max_p99 = 0u64;
    for tenant in tenants {
        let recs: Vec<_> = records.iter().filter(|r| r.tenant == tenant).collect();
        let lat: Vec<u64> = recs.iter().map(|r| r.latency_us).collect();
        let wait: Vec<u64> = recs.iter().map(|r| r.queue_wait_us).collect();
        let mean_ops = if recs.is_empty() {
            0
        } else {
            recs.iter().map(|r| r.measured_ops).sum::<u64>() / recs.len() as u64
        };
        let (p50w, p99w) = (percentile_us(&wait, 50.0), percentile_us(&wait, 99.0));
        let (p50l, p99l) = (percentile_us(&lat, 50.0), percentile_us(&lat, 99.0));
        max_p99 = max_p99.max(p99l);
        report.point(obj(vec![
            ("tenant", Value::str(tenant)),
            ("jobs", Value::num(recs.len())),
            ("p50_queue_wait_us", Value::num(p50w)),
            ("p99_queue_wait_us", Value::num(p99w)),
            ("p50_latency_us", Value::num(p50l)),
            ("p99_latency_us", Value::num(p99l)),
            ("mean_measured_ops", Value::num(mean_ops)),
        ]));
        t.row(vec![
            tenant.to_string(),
            recs.len().to_string(),
            p50w.to_string(),
            p99w.to_string(),
            p50l.to_string(),
            p99l.to_string(),
            mean_ops.to_string(),
        ]);
    }

    let wall_ms = wall.as_secs_f64() * 1e3;
    let throughput = records.len() as f64 / wall.as_secs_f64().max(1e-9);
    report.set_headline(obj(vec![
        ("jobs_completed", Value::num(records.len())),
        ("tenants", Value::num(tenants.len())),
        ("wall_ms", Value::num(format!("{wall_ms:.1}"))),
        ("throughput_jobs_per_s", Value::num(format!("{throughput:.1}"))),
        ("max_tenant_p99_latency_us", Value::num(max_p99)),
    ]));
    report.save(out_dir, "BENCH_service.json");
    t
}

/// One measured cell of the `scale` sweep.
struct ScaleCell {
    backend: &'static str,
    v: usize,
    mode: &'static str,
    wall_ms: f64,
    io_ops: u64,
    peak_mem_bytes: usize,
    alloc_bytes: u64,
    ctx_spills: u64,
    ctx_loads: u64,
    finals_hash: u64,
    io: cgmio_pdm::IoStats,
}

/// What the dense per-processor state tables *would* hold resident at
/// `v` virtual processors: two ping-pong `v × v` `u32` message-length
/// grids plus the `v`-entry context-length vector. This is the scale
/// blocker the sparse/paged representations remove (≈ 8 TB at
/// `v = 10^6`).
fn dense_lens_bytes(v: usize) -> u64 {
    2 * (v as u64) * (v as u64) * 4 + (v as u64) * 8
}

/// `scale`: per-processor state at large `v`. Runs a 2-round
/// [`cgmio_model::demo::TokenRing`] — a balanced O(v)-message workload
/// whose slot sizes are independent of `v` — across
/// `v ∈ {16, 10³, 10⁵, 10⁶}` on the `Mem` and `Concurrent` backends
/// with the auto-selected representations ([`cgmio_core::ScaleTuning`]:
/// dense/resident below v=4096, sparse/paged above). At `v = 16` the
/// sweep additionally runs both representations *forced* (with a tiny
/// 4-entry/2-page context table so paging really happens) and asserts
/// finals and `IoStats` bit-identical — the equivalence half of the
/// tentpole claim; the proptest in `tests/scale_equivalence.rs` widens
/// it to both runners. For `v ≥ 10⁵` the sweep asserts the run's entire
/// allocator traffic stays under what the dense tables alone would hold
/// resident. Writes `BENCH_scale.json`. Set `CGMIO_PERF_SMOKE=1` for
/// the small-`v` subset (CI scale-smoke; the forced-sparse cells keep
/// the paged path covered). The `Concurrent` backend is capped at
/// `v = 10⁵` (per-op channel round-trips dominate far above that) —
/// the cap is recorded in the JSON, not silent.
pub fn scale(out_dir: &std::path::Path) -> Table {
    use cgmio_core::BackendSpec;
    use cgmio_model::demo::TokenRing;
    use cgmio_obs::{Obs, SampleValue};

    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    let vs: Vec<usize> = if smoke { vec![16, 1_000] } else { vec![16, 1_000, 100_000, 1_000_000] };
    const CONCURRENT_V_CAP: usize = 100_000;
    let (d, bb) = (2usize, 64usize);
    let prog = TokenRing { rounds: 2 };
    let mk = |v: usize| (0..v as u64).map(|i| vec![i]).collect::<Vec<Vec<u64>>>();
    // Slot sizes are v-independent for a ring (1-item messages, 1-token
    // contexts): measure once at v=16 and size every machine from it.
    // measure_requirements dry-runs through DirectRunner's dense O(v²)
    // matrix, which is exactly what large v cannot afford.
    let (_, _, req) = measure_requirements(&prog, mk(16)).expect("token ring dry run");

    let fnv = |tokens: &[u64]| {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for t in tokens {
            for b in t.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    };

    let run_cell = |backend: &'static str, v: usize, mode: &'static str| -> ScaleCell {
        let mut cfg = EmConfig::from_requirements(v, 1, d, bb, &req);
        match mode {
            "dense" => {
                cfg.scale.sparse_msg_lens = Some(false);
                cfg.scale.paged_ctx_lens = Some(false);
            }
            "sparse" => {
                cfg.scale.sparse_msg_lens = Some(true);
                cfg.scale.paged_ctx_lens = Some(true);
                cfg.scale.ctx_page_entries = 4;
                cfg.scale.ctx_resident_pages = 2;
            }
            _ => {}
        }
        cfg.backend = match backend {
            "mem" => BackendSpec::Mem,
            _ => BackendSpec::Concurrent { dir: None, opts: Default::default() },
        };
        let obs = Obs::new();
        cfg.obs = Some(obs.clone());
        let before = crate::alloc::snapshot();
        let t0 = std::time::Instant::now();
        let (fin, rep) = SeqEmRunner::new(cfg).run(&prog, mk(v)).expect("scale cell run");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let alloc = crate::alloc::snapshot().since(before);
        // After 2 rotations every token sits 2 places past its origin.
        let tokens: Vec<u64> = fin.iter().map(|s| s[0]).collect();
        assert!(
            tokens.iter().enumerate().all(|(pid, &t)| t == ((pid + v - 2) % v) as u64),
            "{backend} v={v} {mode}: ring rotation wrong"
        );
        let snap = obs.snapshot();
        let ctr = |name: &str| match snap.get(name, &[("proc", "0")]) {
            Some(SampleValue::Counter(c)) => *c,
            _ => 0,
        };
        ScaleCell {
            backend,
            v,
            mode,
            wall_ms,
            io_ops: rep.io.total_ops(),
            peak_mem_bytes: rep.peak_mem_bytes,
            alloc_bytes: alloc.bytes,
            ctx_spills: ctr("cgmio_ctx_page_spills_total"),
            ctx_loads: ctr("cgmio_ctx_page_loads_total"),
            finals_hash: fnv(&tokens),
            io: rep.io.clone(),
        }
    };

    let counted = crate::alloc::counting_installed();
    let mut cells: Vec<ScaleCell> = Vec::new();
    let mut skipped: Vec<String> = Vec::new();
    for backend in ["mem", "concurrent"] {
        // The equivalence pair: identical machine, representations
        // forced apart — everything observable must match.
        let dense = run_cell(backend, 16, "dense");
        let sparse = run_cell(backend, 16, "sparse");
        assert_eq!(dense.finals_hash, sparse.finals_hash, "{backend}: finals diverge");
        assert_eq!(dense.io, sparse.io, "{backend}: IoStats diverge");
        assert!(sparse.ctx_spills > 0, "{backend}: tiny paged table never spilled");
        cells.push(dense);
        cells.push(sparse);
        for &v in &vs {
            if backend == "concurrent" && v > CONCURRENT_V_CAP {
                let note =
                    format!("concurrent backend capped at v={CONCURRENT_V_CAP}: v={v} skipped");
                eprintln!("  {note}");
                skipped.push(note);
                continue;
            }
            let cell = run_cell(backend, v, "auto");
            if v >= 100_000 && counted {
                assert!(
                    cell.alloc_bytes < dense_lens_bytes(v),
                    "{backend} v={v}: allocated {} bytes, dense tables alone would be {}",
                    cell.alloc_bytes,
                    dense_lens_bytes(v)
                );
            }
            cells.push(cell);
        }
    }

    let mut t = Table::new(
        "scale_state",
        &[
            "backend",
            "v",
            "mode",
            "wall_ms",
            "io_ops",
            "peak_mem_B",
            "alloc_MB",
            "ctx_spills",
            "ctx_loads",
        ],
    );
    let mut report = BenchReport::new(
        "em_cgm_state_scale",
        format!(
            "TokenRing rounds=2, D={d}, B={bb} bytes, seq runner; auto representations \
             (sparse message lens + paged context lens above v=4096) vs forced \
             dense/sparse at v=16"
        ),
        smoke,
    )
    .extra("allocator_counted", Value::Bool(counted))
    .extra("skipped", Value::Arr(skipped.iter().map(|s| Value::str(s.clone())).collect()));
    for c in &cells {
        report.point(obj(vec![
            ("backend", Value::str(c.backend)),
            ("v", Value::num(c.v)),
            ("mode", Value::str(c.mode)),
            ("wall_ms", Value::num(format!("{:.2}", c.wall_ms))),
            ("io_ops", Value::num(c.io_ops)),
            ("peak_mem_bytes", Value::num(c.peak_mem_bytes)),
            ("alloc_bytes", Value::num(c.alloc_bytes)),
            ("ctx_page_spills", Value::num(c.ctx_spills)),
            ("ctx_page_loads", Value::num(c.ctx_loads)),
            ("dense_lens_bytes_would_be", Value::num(dense_lens_bytes(c.v))),
            ("finals_hash", Value::str(format!("{:016x}", c.finals_hash))),
        ]));
        t.row(vec![
            c.backend.to_string(),
            c.v.to_string(),
            c.mode.to_string(),
            format!("{:.2}", c.wall_ms),
            c.io_ops.to_string(),
            c.peak_mem_bytes.to_string(),
            format!("{:.1}", c.alloc_bytes as f64 / 1e6),
            c.ctx_spills.to_string(),
            c.ctx_loads.to_string(),
        ]);
    }
    if let Some(h) = cells.iter().filter(|c| c.mode == "auto").max_by_key(|c| c.v) {
        report.set_headline(obj(vec![
            ("backend", Value::str(h.backend)),
            ("v", Value::num(h.v)),
            ("wall_ms", Value::num(format!("{:.2}", h.wall_ms))),
            ("io_ops", Value::num(h.io_ops)),
            ("alloc_bytes", Value::num(h.alloc_bytes)),
            ("dense_lens_bytes_would_be", Value::num(dense_lens_bytes(h.v))),
        ]));
    }
    report.save(out_dir, "BENCH_scale.json");
    t
}

/// One measured point of the `disk` experiment.
struct DiskPoint {
    d: usize,
    backend: &'static str,
    wall_ms: f64,
    io_ops: u64,
    io_blocks: u64,
    /// Mean submission-batch size (blocks per reactor drain), async
    /// backend only — the direct measure of coalescing opportunity.
    mean_batch_blocks: Option<f64>,
}

/// `disk`: the thread-per-drive engine vs the async submission backend
/// on *real multi-file layouts*, D ∈ {4, 8, 16} — buffered and, as a
/// third variant, with `O_DIRECT` (page cache bypassed; silently
/// buffered again where the filesystem rejects the flag). The Fig 3
/// sort runs on each backend with one `disk{d}.dat` file per drive in
/// a fresh directory; finals and `IoStats` are asserted bit-identical
/// in every cell (logical accounting must not see the physical
/// backend), wall clock is the best of `reps` runs, and an extra
/// instrumented async run per D records the mean submission-batch size
/// the reactors actually coalesced. Writes `BENCH_disk.json` into the output
/// directory. Set `CGMIO_PERF_SMOKE=1` for a small size (CI
/// disk-smoke).
pub fn disk(out_dir: &std::path::Path) -> Table {
    use cgmio_core::BackendSpec;
    use cgmio_io::IoEngineOpts;
    use cgmio_obs::{Obs, SampleValue};

    let mut t = Table::new(
        "disk_backends",
        &["d", "backend", "wall_ms", "io_ops", "io_blocks", "mean_batch_blocks", "vs_threads_pct"],
    );
    let smoke = std::env::var_os("CGMIO_PERF_SMOKE").is_some();
    let (n, bb, reps) = if smoke { (1usize << 15, 4096usize, 2usize) } else { (1 << 19, 16384, 4) };
    let v = 16usize;
    let ds = [4usize, 8, 16];

    let keys = data::uniform_u64(n, 23);
    let mk = || {
        data::block_split(keys.clone(), v).into_iter().map(|b| (b, Vec::new())).collect::<Vec<_>>()
    };
    let prog = CgmSort::<u64>::by_pivots();

    let mut points: Vec<DiskPoint> = Vec::new();
    for d in ds {
        let base_cfg = crate::config_for(&prog, mk(), v, 1, d, bb);
        // Reference: the memory backend pins the expected finals and
        // IoStats for this geometry.
        let (want_fin, want_rep) =
            SeqEmRunner::new(base_cfg.clone()).run(&prog, mk()).expect("disk bench reference");

        for backend in ["threads", "async", "async-direct"] {
            let mut best: Option<(f64, cgmio_core::EmRunReport)> = None;
            for _ in 0..reps {
                let tmp = cgmio_pdm::testutil::TempDir::new("cgmio-disk-bench");
                let mut cfg = base_cfg.clone();
                cfg.backend = match backend {
                    "threads" => BackendSpec::Concurrent {
                        dir: Some(tmp.path().join("drives")),
                        opts: IoEngineOpts::default(),
                    },
                    "async" => BackendSpec::AsyncFile {
                        dir: tmp.path().join("drives"),
                        opts: IoEngineOpts::default(),
                    },
                    // Page cache bypassed: every transfer is a real
                    // device round trip (silently buffered again on
                    // filesystems that reject O_DIRECT, e.g. tmpfs).
                    _ => BackendSpec::AsyncFile {
                        dir: tmp.path().join("drives"),
                        opts: IoEngineOpts { direct_io: true, ..Default::default() },
                    },
                };
                let (fin, rep) = SeqEmRunner::new(cfg).run(&prog, mk()).expect("disk bench run");
                assert_eq!(fin, want_fin, "D={d} {backend}: finals differ from memory backend");
                assert_eq!(rep.io, want_rep.io, "D={d} {backend}: IoStats differ");
                let wall = rep.wall.as_secs_f64() * 1e3;
                if best.as_ref().is_none_or(|(bw, _)| wall < *bw) {
                    best = Some((wall, rep));
                }
            }
            let (wall_ms, rep) = best.expect("reps >= 1");

            // Untimed instrumented pass: how much did the reactors
            // actually coalesce per queue drain?
            let mean_batch_blocks = (backend == "async").then(|| {
                let tmp = cgmio_pdm::testutil::TempDir::new("cgmio-disk-bench-obs");
                let obs = Obs::new();
                let mut cfg = base_cfg.clone();
                cfg.obs = Some(obs.clone());
                cfg.backend = BackendSpec::AsyncFile {
                    dir: tmp.path().join("drives"),
                    opts: IoEngineOpts::default(),
                };
                SeqEmRunner::new(cfg).run(&prog, mk()).expect("disk bench obs run");
                let snap = obs.snapshot();
                let (mut total, mut count) = (0.0f64, 0u64);
                for drive in 0..d {
                    if let Some(SampleValue::Histogram(h)) = snap.get(
                        "cgmio_io_submit_batch_blocks",
                        &[("drive", &drive.to_string()), ("proc", "0")],
                    ) {
                        total += h.mean() * h.count as f64;
                        count += h.count;
                    }
                }
                if count == 0 {
                    0.0
                } else {
                    total / count as f64
                }
            });

            points.push(DiskPoint {
                d,
                backend,
                wall_ms,
                io_ops: rep.io.total_ops(),
                io_blocks: rep.io.total_blocks(),
                mean_batch_blocks,
            });
        }
    }

    let pct = |d: usize, backend: &str| -> Option<f64> {
        let threads = points.iter().find(|p| p.d == d && p.backend == "threads")?;
        let asy = points.iter().find(|p| p.d == d && p.backend == backend)?;
        Some(100.0 * (1.0 - asy.wall_ms / threads.wall_ms.max(1e-9)))
    };

    let mut report = BenchReport::new(
        "em_cgm_sort_disk_backends",
        format!(
            "CgmSort<u64> by_pivots, n={n}, v={v}, B={bb} bytes, D in {{4,8,16}}; \
             real per-drive files (disk{{d}}.dat layout): thread-per-drive engine \
             vs async submission reactors (buffered and O_DIRECT), best of {reps} runs each"
        ),
        smoke,
    )
    .extra("reps", Value::num(reps));
    for p in &points {
        report.point(obj(vec![
            ("d", Value::num(p.d)),
            ("backend", Value::str(p.backend)),
            ("wall_ms", Value::num(format!("{:.2}", p.wall_ms))),
            ("io_ops", Value::num(p.io_ops)),
            ("io_blocks", Value::num(p.io_blocks)),
            (
                "mean_batch_blocks",
                p.mean_batch_blocks.map_or(Value::Null, |m| Value::num(format!("{m:.2}"))),
            ),
            (
                "vs_threads_pct",
                if p.backend.starts_with("async") {
                    pct(p.d, p.backend).map_or(Value::Null, |x| Value::num(format!("{x:.1}")))
                } else {
                    Value::Null
                },
            ),
        ]));
    }
    // Headline: the D where the buffered async reactors help (or hurt)
    // the most relative to thread-per-drive, by absolute delta.
    if let Some(h) = ds
        .iter()
        .filter_map(|&d| pct(d, "async").map(|x| (d, x)))
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
    {
        report.set_headline(obj(vec![
            ("d", Value::num(h.0)),
            ("async_vs_threads_pct", Value::num(format!("{:.1}", h.1))),
        ]));
    }
    report.save(out_dir, "BENCH_disk.json");

    for p in &points {
        t.row(vec![
            p.d.to_string(),
            p.backend.to_string(),
            format!("{:.2}", p.wall_ms),
            p.io_ops.to_string(),
            p.io_blocks.to_string(),
            p.mean_batch_blocks.map_or("-".into(), |m| format!("{m:.2}")),
            if p.backend.starts_with("async") {
                pct(p.d, p.backend).map_or("-".into(), |x| format!("{x:.1}"))
            } else {
                "-".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figures_have_rows() {
        for t in [fig1(), fig2(), fig6(), fig7(), fig8(), cache()] {
            assert!(!t.rows.is_empty(), "{} is empty", t.title);
        }
    }

    #[test]
    fn io_trace_archives_fig3_jsonl() {
        let out = cgmio_pdm::testutil::TempDir::new("cgmio-io-trace-exp");
        let t = io_trace(out.path());
        assert_eq!(t.rows.len(), 3, "one summary row per D");
        let text = std::fs::read_to_string(out.path().join("fig3_io_trace.jsonl")).unwrap();
        assert!(text.lines().count() > 100, "Fig 3 sort must produce a substantial trace");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"kind\":\"prefetch\""), "read-ahead must appear in the trace");
    }

    #[test]
    fn faults_sweep_heals_and_resumes_exactly() {
        let out = cgmio_pdm::testutil::TempDir::new("cgmio-faults-exp");
        let t = faults(out.path());
        assert_eq!(t.rows.len(), 4, "one row per fault rate");
        // Every row — including the seeded 1% and 5% rates — must have
        // completed (no panic) and resumed bit-exactly.
        for row in &t.rows {
            assert_eq!(row[6], "yes", "rate {} did not resume exactly", row[0]);
        }
        // The zero-rate row injects nothing; the non-zero rows must both
        // inject faults and spend retries recovering from them.
        assert_eq!(t.rows[0][2], "0");
        assert_eq!(t.rows[0][3], "0");
        for row in &t.rows[1..] {
            let injected: u64 = row[2].parse().unwrap();
            let retries: u64 = row[3].parse().unwrap();
            assert!(injected > 0, "rate {} injected nothing", row[0]);
            assert!(retries > 0, "rate {} recorded no retries", row[0]);
        }
    }

    #[test]
    fn ablation_shows_balancing_helps_parallelism() {
        let t = ablation_balance();
        assert_eq!(t.rows.len(), 2);
        let unbal_max: u64 = t.rows[0][2].parse().unwrap();
        let bal_max: u64 = t.rows[1][2].parse().unwrap();
        assert!(bal_max < unbal_max, "balanced max message must shrink");
    }
}
