//! Test support shared across the workspace's crates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A temp directory removed on drop — including when the owning test
/// panics, so failing file-backend tests don't leak directories into
/// the system temp dir.
pub struct TempDir {
    path: PathBuf,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

impl TempDir {
    /// Create a fresh, uniquely named directory under the system temp
    /// dir. `prefix` keeps leaked-by-SIGKILL leftovers identifiable.
    pub fn new(prefix: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removed_on_drop() {
        let path = {
            let d = TempDir::new("cgmio-tmp-test");
            std::fs::write(d.path().join("f"), b"x").unwrap();
            d.path().to_path_buf()
        };
        assert!(!path.exists());
    }

    #[test]
    fn unique_per_instance() {
        let a = TempDir::new("cgmio-tmp-uniq");
        let b = TempDir::new("cgmio-tmp-uniq");
        assert_ne!(a.path(), b.path());
    }
}
