//! Deterministic fault injection behind the [`TrackStorage`] trait.
//!
//! The PDM of the paper assumes drives never fail; a production system
//! cannot. [`FaultInjector`] wraps any [`TrackStorage`] and injects a
//! *seeded, reproducible* stream of faults — transient read/write errors,
//! permanently bad tracks, torn (partially applied) writes, and latency
//! spikes — so the retry/checksum/checkpoint machinery in the layers
//! above can be exercised and measured without real hardware faults.
//!
//! Faults carry a typed [`FaultError`] payload inside the `std::io::Error`
//! they surface as, classified into the three-way taxonomy
//! [`IoErrorKind`]:
//!
//! * [`IoErrorKind::Transient`] — retrying the operation may succeed
//!   (injected transient errors, torn writes, `Interrupted`/`TimedOut`),
//! * [`IoErrorKind::Corrupt`] — the bytes came back wrong (checksum
//!   mismatch detected by the engine); retrying re-reads the same bytes,
//! * [`IoErrorKind::Permanent`] — the track or drive is gone; retries
//!   cannot help and the error must surface to the caller.
//!
//! Determinism: every injection decision is a pure function of the plan's
//! seed, the drive index, the track number, and a per-`(drive, track)`
//! operation counter. Two runs that touch each track in the same order
//! inject exactly the same faults — and because the decision never
//! depends on how operations on *different* tracks interleave, the
//! stream is invariant under the reorderings a pipelined executor
//! introduces (pre-issued reads overtaking unrelated writes on the same
//! drive). That is what makes the `faults` experiment, the recovery
//! tests, and the pipeline depth-equivalence tests reproducible.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::disk::TrackAddr;
use crate::storage::TrackStorage;

/// Three-way classification of storage faults, driving the recovery
/// policy in the `cgmio-io` engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// The operation failed but retrying may succeed (e.g. a dropped
    /// request, a torn write that can be re-issued).
    Transient,
    /// The operation "succeeded" but returned corrupted data (detected
    /// via checksum). Retrying re-reads the same bytes, so retries do
    /// not help — but a later rewrite heals the track.
    Corrupt,
    /// The track or drive is permanently unavailable; the error must be
    /// surfaced to the caller as a typed failure.
    Permanent,
}

impl fmt::Display for IoErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoErrorKind::Transient => write!(f, "transient"),
            IoErrorKind::Corrupt => write!(f, "corrupt"),
            IoErrorKind::Permanent => write!(f, "permanent"),
        }
    }
}

/// Typed storage fault, carried as the payload of the `std::io::Error`
/// returned by a faulting backend. Recoverable layers downcast with
/// [`classify`] to decide whether to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Taxonomy class of this fault.
    pub kind: IoErrorKind,
    /// Drive the faulting operation addressed.
    pub disk: usize,
    /// Track the faulting operation addressed.
    pub track: u64,
    /// Human-readable description ("injected transient read error", …).
    pub detail: String,
}

impl FaultError {
    /// Wrap this fault in a `std::io::Error` (the payload survives and
    /// can be recovered with [`classify`] / `io::Error::get_ref`).
    pub fn into_io_error(self) -> io::Error {
        let kind = match self.kind {
            IoErrorKind::Transient => io::ErrorKind::Interrupted,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, self)
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fault on disk {} track {}: {}", self.kind, self.disk, self.track, self.detail)
    }
}

impl std::error::Error for FaultError {}

/// Classify an `std::io::Error` into the three-way taxonomy.
///
/// Errors produced by a [`FaultInjector`] (or by the engine's checksum
/// verifier) carry a [`FaultError`] payload and classify exactly;
/// ordinary OS errors fall back on the `io::ErrorKind`:
/// `Interrupted`/`TimedOut`/`WouldBlock` are treated as transient,
/// everything else (e.g. `StorageFull`, `PermissionDenied`) as permanent.
pub fn classify(e: &io::Error) -> IoErrorKind {
    if let Some(fe) = e.get_ref().and_then(|r| r.downcast_ref::<FaultError>()) {
        return fe.kind;
    }
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
            IoErrorKind::Transient
        }
        _ => IoErrorKind::Permanent,
    }
}

/// Seeded description of which faults to inject and how often.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// physical track operation. The plan is plain data (cheap to clone into
/// `EmConfig`); the optional `observer` lets a caller watch the injected
/// fault counters from outside the storage stack.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the deterministic injection stream.
    pub seed: u64,
    /// Probability that a `read_track` fails with a transient error.
    pub read_transient: f64,
    /// Probability that a `write_track` fails with a transient error
    /// (nothing written).
    pub write_transient: f64,
    /// Probability that a `write_track` is *torn*: a prefix of the block
    /// is applied, then a transient error is reported. A retry that
    /// rewrites the full block heals the track.
    pub torn_write: f64,
    /// Probability (per distinct `(disk, track)` pair, decided once by
    /// hash) that a track is permanently unreadable and unwritable.
    pub permanent: f64,
    /// Probability that an operation additionally sleeps for
    /// [`FaultPlan::spike_us`] before proceeding (latency spike).
    pub latency_spike: f64,
    /// Duration of an injected latency spike, in microseconds.
    pub spike_us: u64,
    /// Optional shared counters observing the injections from outside.
    pub observer: Option<Arc<FaultStats>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            read_transient: 0.0,
            write_transient: 0.0,
            torn_write: 0.0,
            permanent: 0.0,
            latency_spike: 0.0,
            spike_us: 50,
            observer: None,
        }
    }
}

impl FaultPlan {
    /// A plan injecting only transient read/write errors at `rate`.
    pub fn transient(seed: u64, rate: f64) -> Self {
        Self { seed, read_transient: rate, write_transient: rate, ..Self::default() }
    }

    /// Attach shared fault counters (see [`FaultStats`]) so a harness can
    /// read the number of injected faults after a run.
    pub fn with_observer(mut self, stats: Arc<FaultStats>) -> Self {
        self.observer = Some(stats);
        self
    }
}

/// Shared atomic counters of injected faults (see
/// [`FaultPlan::with_observer`]).
#[derive(Debug, Default)]
pub struct FaultStats {
    read_transient: AtomicU64,
    write_transient: AtomicU64,
    torn_writes: AtomicU64,
    permanent_denials: AtomicU64,
    latency_spikes: AtomicU64,
}

/// Point-in-time snapshot of a [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Injected transient read errors.
    pub read_transient: u64,
    /// Injected transient write errors (nothing written).
    pub write_transient: u64,
    /// Injected torn writes (prefix applied, error reported).
    pub torn_writes: u64,
    /// Operations denied because the track is permanently faulted.
    pub permanent_denials: u64,
    /// Injected latency spikes.
    pub latency_spikes: u64,
}

impl FaultCounts {
    /// Total number of injected error returns (spikes excluded — they
    /// delay but do not fail).
    pub fn total_errors(&self) -> u64 {
        self.read_transient + self.write_transient + self.torn_writes + self.permanent_denials
    }

    /// Field-wise sum — aggregates the per-worker injectors of a
    /// parallel run into one total.
    pub fn merged(self, other: FaultCounts) -> FaultCounts {
        FaultCounts {
            read_transient: self.read_transient + other.read_transient,
            write_transient: self.write_transient + other.write_transient,
            torn_writes: self.torn_writes + other.torn_writes,
            permanent_denials: self.permanent_denials + other.permanent_denials,
            latency_spikes: self.latency_spikes + other.latency_spikes,
        }
    }

    /// Field-wise saturating difference (`self - earlier`) — attributes
    /// counts to the window between two snapshots of the same
    /// [`FaultStats`] (e.g. one EM run on a shared observer).
    pub fn diff(self, earlier: FaultCounts) -> FaultCounts {
        FaultCounts {
            read_transient: self.read_transient.saturating_sub(earlier.read_transient),
            write_transient: self.write_transient.saturating_sub(earlier.write_transient),
            torn_writes: self.torn_writes.saturating_sub(earlier.torn_writes),
            permanent_denials: self.permanent_denials.saturating_sub(earlier.permanent_denials),
            latency_spikes: self.latency_spikes.saturating_sub(earlier.latency_spikes),
        }
    }
}

impl FaultStats {
    /// Snapshot the counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            read_transient: self.read_transient.load(Ordering::Relaxed),
            write_transient: self.write_transient.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            permanent_denials: self.permanent_denials.load(Ordering::Relaxed),
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
        }
    }
}

/// splitmix64 finaliser: one 64-bit hash step with full avalanche.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// [`TrackStorage`] wrapper that deterministically injects the faults
/// described by a [`FaultPlan`] into an inner backend.
///
/// Injection decisions are keyed on `(seed, disk, track, per-track op
/// counter)` — so the same plan over the same per-track operation
/// sequence always faults the same operations, no matter how operations
/// on *different* tracks interleave (the pipelined executor reorders
/// exactly that). Permanent faults are keyed on `(seed, disk, track)`
/// alone so a bad track stays bad forever.
pub struct FaultInjector<S> {
    inner: S,
    plan: FaultPlan,
    /// Per-drive map of per-track operation counters (locked per drive
    /// so concurrent drive workers never contend with each other).
    ops: Vec<std::sync::Mutex<std::collections::HashMap<u64, u64>>>,
    stats: Arc<FaultStats>,
}

impl<S: TrackStorage> FaultInjector<S> {
    /// Wrap `inner` (serving `num_disks` drives) with the given plan.
    pub fn new(inner: S, num_disks: usize, plan: FaultPlan) -> Self {
        let stats = plan.observer.clone().unwrap_or_default();
        Self {
            inner,
            plan,
            ops: (0..num_disks).map(|_| std::sync::Mutex::new(Default::default())).collect(),
            stats,
        }
    }

    /// The injected-fault counters of this injector.
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }

    /// Next decision hash for `(disk, track)` (advances that track's op
    /// counter).
    fn next_roll(&self, disk: usize, track: u64) -> u64 {
        let mut ops = self.ops[disk].lock().unwrap();
        let slot = ops.entry(track).or_insert(0);
        let n = *slot;
        *slot += 1;
        mix(self.plan.seed
            ^ mix(disk as u64 + 1)
            ^ mix(track.wrapping_add(0x5151))
            ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Is `(disk, track)` permanently faulted? Pure function of the seed.
    fn is_permanent(&self, disk: usize, track: u64) -> bool {
        self.plan.permanent > 0.0
            && unit(mix(self.plan.seed ^ 0x7065_726D_616E_656E ^ mix(disk as u64) ^ track))
                < self.plan.permanent
    }

    /// Apply a latency spike if this op's hash says so.
    fn maybe_spike(&self, h: u64) {
        if self.plan.latency_spike > 0.0 && unit(mix(h ^ 0x7370_696B)) < self.plan.latency_spike {
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(self.plan.spike_us));
        }
    }

    fn permanent_err(&self, disk: usize, track: u64, what: &str) -> io::Error {
        self.stats.permanent_denials.fetch_add(1, Ordering::Relaxed);
        FaultError {
            kind: IoErrorKind::Permanent,
            disk,
            track,
            detail: format!("injected permanent fault ({what})"),
        }
        .into_io_error()
    }
}

impl<S: TrackStorage> TrackStorage for FaultInjector<S> {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        let h = self.next_roll(disk, track);
        self.maybe_spike(h);
        if self.is_permanent(disk, track) {
            return Err(self.permanent_err(disk, track, "read"));
        }
        if unit(h) < self.plan.read_transient {
            self.stats.read_transient.fetch_add(1, Ordering::Relaxed);
            return Err(FaultError {
                kind: IoErrorKind::Transient,
                disk,
                track,
                detail: "injected transient read error".into(),
            }
            .into_io_error());
        }
        self.inner.read_track(disk, track)
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        let h = self.next_roll(disk, track);
        self.maybe_spike(h);
        if self.is_permanent(disk, track) {
            return Err(self.permanent_err(disk, track, "write"));
        }
        let u = unit(h);
        if u < self.plan.torn_write {
            // Apply a prefix of the block, then report failure: the inner
            // backend zero-pads, so the tail of the track is lost until a
            // retry rewrites the full payload.
            self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
            self.inner.write_track(disk, track, &data[..data.len() / 2])?;
            return Err(FaultError {
                kind: IoErrorKind::Transient,
                disk,
                track,
                detail: "injected torn write (prefix applied)".into(),
            }
            .into_io_error());
        }
        if u < self.plan.torn_write + self.plan.write_transient {
            self.stats.write_transient.fetch_add(1, Ordering::Relaxed);
            return Err(FaultError {
                kind: IoErrorKind::Transient,
                disk,
                track,
                detail: "injected transient write error (nothing written)".into(),
            }
            .into_io_error());
        }
        self.inner.write_track(disk, track, data)
    }

    // read_batch / write_batch use the trait defaults, which route every
    // track through the faultable read_track / write_track above.

    fn prefetch(&self, addrs: &[TrackAddr]) {
        self.inner.prefetch(addrs);
    }

    fn flush(&self, sync: bool) -> io::Result<()> {
        self.inner.flush(sync)
    }

    fn sync_disk(&self, disk: usize) -> io::Result<()> {
        self.inner.sync_disk(disk)
    }

    fn discard(&self, disk: usize, tracks: std::ops::Range<u64>) -> io::Result<bool> {
        // Reclamation is bookkeeping, not a data transfer: it is never
        // faulted or retried, only forwarded.
        self.inner.discard(disk, tracks)
    }

    fn tracks_used(&self) -> Vec<u64> {
        self.inner.tracks_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::DiskGeometry;

    fn mem(d: usize, b: usize) -> MemStorage {
        MemStorage::new(DiskGeometry::new(d, b))
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let inj = FaultInjector::new(mem(2, 4), 2, FaultPlan::default());
        inj.write_track(0, 1, &[1, 2, 3, 4]).unwrap();
        assert_eq!(inj.read_track(0, 1).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(inj.stats().counts().total_errors(), 0);
    }

    #[test]
    fn transient_faults_are_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::new(mem(1, 4), 1, FaultPlan::transient(seed, 0.3));
            (0..200).map(|i| inj.read_track(0, i).is_err()).collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same faults");
        assert_ne!(a, run(8), "different seed, different faults");
        let faults = a.iter().filter(|&&f| f).count();
        assert!((30..90).contains(&faults), "rate ~0.3 expected, got {faults}/200");
    }

    #[test]
    fn transient_error_classifies_and_retry_succeeds() {
        let inj = FaultInjector::new(mem(1, 4), 1, FaultPlan::transient(3, 0.4));
        inj.write_track(0, 0, &[5; 4]).ok();
        // Retry until success: transient faults must eventually clear.
        let mut last = None;
        for _ in 0..64 {
            match inj.read_track(0, 0) {
                Ok(b) => {
                    last = Some(b);
                    break;
                }
                Err(e) => assert_eq!(classify(&e), IoErrorKind::Transient),
            }
        }
        assert!(last.is_some(), "transient faults never cleared in 64 attempts");
    }

    #[test]
    fn torn_write_applies_prefix_and_heals_on_retry() {
        let plan = FaultPlan { seed: 1, torn_write: 1.0, ..FaultPlan::default() };
        let inj = FaultInjector::new(mem(1, 8), 1, plan);
        let data = [9u8; 8];
        let e = inj.write_track(0, 0, &data).unwrap_err();
        assert_eq!(classify(&e), IoErrorKind::Transient);
        // Torn: first half applied, rest zero-padded by the inner backend.
        let mut torn = vec![0u8; 8];
        torn[..4].copy_from_slice(&[9; 4]);
        // Read through the inner path would also roll faults; build a
        // clean injector view by reading via a fresh zero-rate wrapper is
        // not possible here, so check via a plan with reads enabled.
        let inj2 = FaultInjector::new(inj.inner, 1, FaultPlan::default());
        assert_eq!(inj2.read_track(0, 0).unwrap(), torn);
        inj2.write_track(0, 0, &data).unwrap();
        assert_eq!(inj2.read_track(0, 0).unwrap(), data.to_vec());
        assert_eq!(inj.stats.counts().torn_writes, 1);
    }

    #[test]
    fn permanent_fault_sticks_to_its_track() {
        let plan = FaultPlan { seed: 42, permanent: 0.2, ..FaultPlan::default() };
        let inj = FaultInjector::new(mem(1, 4), 1, plan);
        let bad: Vec<u64> = (0..64).filter(|&t| inj.read_track(0, t).is_err()).collect();
        assert!(!bad.is_empty(), "expected some permanently bad tracks at rate 0.2");
        for &t in &bad {
            let e = inj.read_track(0, t).unwrap_err();
            assert_eq!(classify(&e), IoErrorKind::Permanent, "track {t} must stay bad");
            assert!(inj.write_track(0, t, &[1]).is_err());
        }
        let good = (0..64).find(|t| !bad.contains(t)).unwrap();
        inj.write_track(0, good, &[1]).unwrap();
    }

    #[test]
    fn counts_merge_and_diff() {
        let a = FaultCounts {
            read_transient: 3,
            write_transient: 1,
            torn_writes: 2,
            permanent_denials: 0,
            latency_spikes: 4,
        };
        let b = FaultCounts { read_transient: 1, ..FaultCounts::default() };
        let sum = a.merged(b);
        assert_eq!(sum.read_transient, 4);
        assert_eq!(sum.total_errors(), 7);
        assert_eq!(sum.diff(a), b);
        assert_eq!(b.diff(a), FaultCounts::default(), "diff saturates");
    }

    #[test]
    fn classify_falls_back_on_io_error_kind() {
        assert_eq!(
            classify(&io::Error::new(io::ErrorKind::Interrupted, "sig")),
            IoErrorKind::Transient
        );
        assert_eq!(classify(&io::Error::other("disk full")), IoErrorKind::Permanent);
    }
}
