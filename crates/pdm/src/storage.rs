//! Pluggable track storage behind [`crate::DiskArray`].
//!
//! The accounting layer (legality checks, [`crate::IoStats`]) lives in
//! `DiskArray` and is backend-agnostic; a [`TrackStorage`] only moves
//! bytes. Three backends exist:
//!
//! * [`MemStorage`] (here) — tracks in memory, the default,
//! * [`crate::file_backend::FileStorage`] — one file per drive, synchronous,
//! * `cgmio_io::ConcurrentStorage` — per-drive worker threads with
//!   prefetch and write-behind, layered on `FileStorage`.
//!
//! [`TrackRange`] is not a backend but a *namespacing wrapper*: it
//! exposes a bounded per-drive track window of any backend as a storage
//! of its own, which is how the job service multiplexes many runs over
//! one shared engine.
//!
//! All methods take `&self` so a storage can be driven from per-drive
//! worker threads; backends provide their own interior mutability.

use std::collections::HashMap;
use std::io;
use std::ops::Range;
use std::sync::Mutex;

use crate::disk::TrackAddr;
use crate::DiskGeometry;

/// Byte-moving backend for a [`crate::DiskArray`].
///
/// Contract (relied on by the equivalence tests across backends):
///
/// * a track reads back the last data written to it, zero-padded to the
///   block size; never-written tracks read as zeros,
/// * `write_track` is only called with `data.len() <= block_bytes`
///   (`DiskArray` rejects larger payloads before reaching the backend),
/// * [`TrackStorage::read_batch`] / [`TrackStorage::write_batch`] receive
///   at most one track per disk (the PDM legality rule) — backends may
///   exploit this to issue the transfers concurrently,
/// * [`TrackStorage::prefetch`] is a pure hint: it must not change
///   observable contents and completes in the background if at all,
/// * after [`TrackStorage::flush`] returns, every previously submitted
///   write has been applied (and any deferred write error is reported).
///
/// ```
/// use cgmio_pdm::{DiskGeometry, MemStorage, TrackStorage};
/// let s = MemStorage::new(DiskGeometry::new(2, 4));
/// s.write_track(1, 0, &[7, 8]).unwrap();
/// assert_eq!(s.read_track(1, 0).unwrap(), vec![7, 8, 0, 0]); // zero-padded
/// assert_eq!(s.read_track(0, 9).unwrap(), vec![0; 4]); // never written reads as zeros
/// s.flush(false).unwrap(); // synchronous backend: nothing pending
/// ```
pub trait TrackStorage: Send + Sync {
    /// Read one track, zero-filled to the block size.
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>>;

    /// Write one track (short payloads are zero-padded on disk).
    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()>;

    /// Read several tracks — at most one per disk — returning contents in
    /// request order. Backends with real parallelism overlap the
    /// transfers; the default does them sequentially.
    fn read_batch(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        addrs.iter().map(|a| self.read_track(a.disk, a.track)).collect()
    }

    /// Write several tracks, at most one per disk.
    fn write_batch(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        for (a, data) in writes {
            self.write_track(a.disk, a.track, data)?;
        }
        Ok(())
    }

    /// Read an arbitrary scatter list of tracks — any number per disk —
    /// handing each block to `f(request_index, bytes)` in request order.
    ///
    /// This is the zero-copy read entry point: backends that hold blocks
    /// in addressable memory call `f` with a **borrowed** view of the
    /// stored block (no per-block allocation); the default simply loops
    /// [`TrackStorage::read_track`], so wrappers that intercept per-track
    /// reads (fault injection, retry) keep working unmodified.
    fn read_scatter_with(
        &self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        for (i, a) in addrs.iter().enumerate() {
            let data = self.read_track(a.disk, a.track)?;
            f(i, &data);
        }
        Ok(())
    }

    /// Write an arbitrary scatter list of tracks — any number per disk —
    /// as one vectored submission.
    ///
    /// Unlike [`TrackStorage::write_batch`] there is no one-track-per-disk
    /// restriction: a whole compound-superstep write arrives as a single
    /// call, and concurrent backends split it into one submission per
    /// drive instead of per-block sends. The default loops
    /// [`TrackStorage::write_track`].
    fn write_scatter(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        for (a, data) in writes {
            self.write_track(a.disk, a.track, data)?;
        }
        Ok(())
    }

    /// Begin an asynchronous scatter read of `addrs`, returning an
    /// opaque ticket to pass (with the *same* address list) to
    /// [`TrackStorage::read_scatter_wait`]. Asynchronous backends start
    /// the transfers immediately and return; the default — used by every
    /// synchronous backend and by fault/retry wrappers — does nothing
    /// here and performs the whole read at wait time, so split-phase
    /// callers see identical bytes, errors, and per-track operation
    /// order on every backend.
    fn read_scatter_submit(&self, _addrs: &[TrackAddr]) -> io::Result<u64> {
        Ok(0)
    }

    /// Complete a read begun with [`TrackStorage::read_scatter_submit`],
    /// handing each block to `f(request_index, bytes)` in request order.
    /// `addrs` must be the list the ticket was submitted with. Each
    /// ticket must be waited on exactly once.
    fn read_scatter_wait(
        &self,
        _ticket: u64,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        self.read_scatter_with(addrs, f)
    }

    /// Hint that these tracks will be read soon. Never counted as I/O.
    fn prefetch(&self, _addrs: &[TrackAddr]) {}

    /// Wait for all submitted writes to be applied, surfacing any
    /// deferred error; `sync` additionally forces data to stable storage
    /// (fsync) where the backend has such a notion.
    fn flush(&self, _sync: bool) -> io::Result<()> {
        Ok(())
    }

    /// Force one drive's data to stable storage. Lets per-drive worker
    /// threads fsync only their own file; default is a no-op (in-memory
    /// backends have no stable storage).
    fn sync_disk(&self, _disk: usize) -> io::Result<()> {
        Ok(())
    }

    /// Release the tracks of `tracks` on `disk`, returning `Ok(true)`
    /// when the backend reclaimed them. After a successful discard the
    /// tracks read as zeros again — exactly like never-written tracks —
    /// and any backing resources are freed, so a caller that hands the
    /// range to a new tenant preserves the fresh-window contract.
    ///
    /// `Ok(false)` means the backend cannot reclaim (the default):
    /// contents are unchanged and the caller must treat the range as
    /// still occupied. Discards are bookkeeping, never counted as I/O.
    fn discard(&self, _disk: usize, _tracks: Range<u64>) -> io::Result<bool> {
        Ok(false)
    }

    /// Highest allocated track count per drive (diagnostics).
    fn tracks_used(&self) -> Vec<u64>;
}

/// Forwarding impls so wrappers (`FaultInjector`, retry layers) can be
/// composed over type-erased backends. Every method forwards — including
/// the batch defaults, so a backend's concurrent batch implementation is
/// not silently replaced by the sequential default.
macro_rules! forward_track_storage {
    ($ptr:ident) => {
        impl<S: TrackStorage + ?Sized> TrackStorage for $ptr<S> {
            fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
                (**self).read_track(disk, track)
            }
            fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
                (**self).write_track(disk, track, data)
            }
            fn read_batch(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
                (**self).read_batch(addrs)
            }
            fn write_batch(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
                (**self).write_batch(writes)
            }
            fn read_scatter_with(
                &self,
                addrs: &[TrackAddr],
                f: &mut dyn FnMut(usize, &[u8]),
            ) -> io::Result<()> {
                (**self).read_scatter_with(addrs, f)
            }
            fn write_scatter(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
                (**self).write_scatter(writes)
            }
            fn read_scatter_submit(&self, addrs: &[TrackAddr]) -> io::Result<u64> {
                (**self).read_scatter_submit(addrs)
            }
            fn read_scatter_wait(
                &self,
                ticket: u64,
                addrs: &[TrackAddr],
                f: &mut dyn FnMut(usize, &[u8]),
            ) -> io::Result<()> {
                (**self).read_scatter_wait(ticket, addrs, f)
            }
            fn prefetch(&self, addrs: &[TrackAddr]) {
                (**self).prefetch(addrs)
            }
            fn flush(&self, sync: bool) -> io::Result<()> {
                (**self).flush(sync)
            }
            fn sync_disk(&self, disk: usize) -> io::Result<()> {
                (**self).sync_disk(disk)
            }
            fn discard(&self, disk: usize, tracks: std::ops::Range<u64>) -> io::Result<bool> {
                (**self).discard(disk, tracks)
            }
            fn tracks_used(&self) -> Vec<u64> {
                (**self).tracks_used()
            }
        }
    };
}

use std::boxed::Box;
use std::sync::Arc;
forward_track_storage!(Box);
forward_track_storage!(Arc);

/// A contiguous per-drive track window of another storage, exposed as a
/// storage of its own: track `t` of the range is track `base_track + t`
/// of the inner backend, and any access at or past `span_tracks` is
/// rejected with [`io::ErrorKind::InvalidInput`] before it reaches the
/// backend.
///
/// This is the namespacing primitive the multi-tenant job service
/// (`cgmio-svc`) is built on: many jobs share one `Arc`'d concurrent
/// engine, each seeing only its own disjoint window. Because a
/// never-written track reads as zeros in every backend, a fresh window
/// is indistinguishable from a fresh disk array — so a job's bytes,
/// I/O counts, and errors are bit-identical to a solo run (see
/// `tests/service_isolation.rs`).
///
/// All forwarding preserves the inner backend's concurrency: batches,
/// scatter lists, split-phase tickets, and prefetch hints are remapped
/// address-by-address, never serialised.
///
/// ```
/// use cgmio_pdm::{DiskGeometry, MemStorage, TrackRange, TrackStorage};
/// use std::sync::Arc;
/// let pool = Arc::new(MemStorage::new(DiskGeometry::new(2, 4)));
/// let a = TrackRange::new(Arc::clone(&pool), 0, 10);
/// let b = TrackRange::new(Arc::clone(&pool), 10, 10);
/// a.write_track(0, 3, &[7]).unwrap();
/// assert_eq!(b.read_track(0, 3).unwrap(), vec![0; 4]); // b's window is untouched
/// assert_eq!(pool.read_track(0, 3).unwrap(), vec![7, 0, 0, 0]);
/// assert!(b.read_track(0, 10).is_err()); // outside the span
/// ```
pub struct TrackRange<S> {
    inner: S,
    base_track: u64,
    span_tracks: u64,
}

impl<S: TrackStorage> TrackRange<S> {
    /// View tracks `[base_track, base_track + span_tracks)` of every
    /// drive of `inner` as a storage whose tracks start at 0.
    pub fn new(inner: S, base_track: u64, span_tracks: u64) -> Self {
        assert!(span_tracks > 0, "a track range must hold at least one track");
        Self { inner, base_track, span_tracks }
    }

    /// First inner track of the window.
    pub fn base_track(&self) -> u64 {
        self.base_track
    }

    /// Window size in tracks per drive.
    pub fn span_tracks(&self) -> u64 {
        self.span_tracks
    }

    fn map(&self, track: u64) -> io::Result<u64> {
        if track >= self.span_tracks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "track {track} outside namespaced range of {} tracks (base {})",
                    self.span_tracks, self.base_track
                ),
            ));
        }
        Ok(self.base_track + track)
    }

    fn map_addrs(&self, addrs: &[TrackAddr]) -> io::Result<Vec<TrackAddr>> {
        addrs.iter().map(|a| Ok(TrackAddr::new(a.disk, self.map(a.track)?))).collect()
    }
}

impl<S: TrackStorage> TrackStorage for TrackRange<S> {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        self.inner.read_track(disk, self.map(track)?)
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        self.inner.write_track(disk, self.map(track)?, data)
    }

    fn read_batch(&self, addrs: &[TrackAddr]) -> io::Result<Vec<Vec<u8>>> {
        self.inner.read_batch(&self.map_addrs(addrs)?)
    }

    fn write_batch(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        let mapped: Vec<(TrackAddr, &[u8])> = writes
            .iter()
            .map(|(a, d)| Ok((TrackAddr::new(a.disk, self.map(a.track)?), *d)))
            .collect::<io::Result<_>>()?;
        self.inner.write_batch(&mapped)
    }

    fn read_scatter_with(
        &self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        self.inner.read_scatter_with(&self.map_addrs(addrs)?, f)
    }

    fn write_scatter(&self, writes: &[(TrackAddr, &[u8])]) -> io::Result<()> {
        let mapped: Vec<(TrackAddr, &[u8])> = writes
            .iter()
            .map(|(a, d)| Ok((TrackAddr::new(a.disk, self.map(a.track)?), *d)))
            .collect::<io::Result<_>>()?;
        self.inner.write_scatter(&mapped)
    }

    fn read_scatter_submit(&self, addrs: &[TrackAddr]) -> io::Result<u64> {
        self.inner.read_scatter_submit(&self.map_addrs(addrs)?)
    }

    fn read_scatter_wait(
        &self,
        ticket: u64,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        // Submit remapped the same list, so the ticket pairs with the
        // remapped addresses on the inner backend.
        self.inner.read_scatter_wait(ticket, &self.map_addrs(addrs)?, f)
    }

    fn prefetch(&self, addrs: &[TrackAddr]) {
        // Hints must stay hints: silently drop out-of-range addresses
        // rather than error from a method that cannot fail.
        if let Ok(mapped) = self.map_addrs(addrs) {
            self.inner.prefetch(&mapped);
        }
    }

    fn flush(&self, sync: bool) -> io::Result<()> {
        self.inner.flush(sync)
    }

    fn sync_disk(&self, disk: usize) -> io::Result<()> {
        self.inner.sync_disk(disk)
    }

    fn discard(&self, disk: usize, tracks: Range<u64>) -> io::Result<bool> {
        // Validate both bounds against the window before remapping so a
        // range can never leak past the span into a neighbour's tracks.
        if tracks.start > tracks.end || tracks.end > self.span_tracks {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "discard {tracks:?} outside namespaced range of {} tracks (base {})",
                    self.span_tracks, self.base_track
                ),
            ));
        }
        self.inner.discard(disk, self.base_track + tracks.start..self.base_track + tracks.end)
    }

    fn tracks_used(&self) -> Vec<u64> {
        // Report usage window-relative, clamped to the span.
        self.inner
            .tracks_used()
            .into_iter()
            .map(|u| u.saturating_sub(self.base_track).min(self.span_tracks))
            .collect()
    }
}

/// One drive's tracks, allocated on demand (absent tracks read as
/// zeros). Keyed by the full u64 track address — the map is as sparse
/// as the data, so a run that touches a handful of tracks at a huge
/// base offset (a paged context spill, a job window deep in a shared
/// pool) costs memory proportional to the tracks *written*, not to the
/// highest address. The dense `Vec<Option<...>>` this replaces made
/// `MemStorage` the scale blocker: addressing track `t` allocated `t`
/// slots.
type DriveTracks = HashMap<u64, Box<[u8]>>;

/// In-memory [`TrackStorage`]: tracks allocated on demand, absent
/// tracks read as zeros. Per-disk locks keep it `Sync` without
/// serialising disks against each other.
pub struct MemStorage {
    disks: Vec<Mutex<DriveTracks>>,
    block_bytes: usize,
}

impl MemStorage {
    /// Empty storage for `geom.num_disks` drives.
    pub fn new(geom: DiskGeometry) -> Self {
        Self {
            disks: (0..geom.num_disks).map(|_| Mutex::new(HashMap::new())).collect(),
            block_bytes: geom.block_bytes,
        }
    }
}

impl TrackStorage for MemStorage {
    fn read_track(&self, disk: usize, track: u64) -> io::Result<Vec<u8>> {
        let tracks = self.disks[disk].lock().unwrap();
        Ok(tracks.get(&track).map(|t| t.to_vec()).unwrap_or_else(|| vec![0u8; self.block_bytes]))
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> io::Result<()> {
        let mut tracks = self.disks[disk].lock().unwrap();
        let mut block = vec![0u8; self.block_bytes].into_boxed_slice();
        block[..data.len()].copy_from_slice(data);
        tracks.insert(track, block);
        Ok(())
    }

    /// Zero-copy override: hands `f` a borrowed view of each stored
    /// block under the drive lock — no per-block allocation at all.
    fn read_scatter_with(
        &self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> io::Result<()> {
        let mut zeros: Vec<u8> = Vec::new();
        for (i, a) in addrs.iter().enumerate() {
            let tracks = self.disks[a.disk].lock().unwrap();
            match tracks.get(&a.track) {
                Some(t) => f(i, t),
                None => {
                    if zeros.is_empty() {
                        zeros.resize(self.block_bytes, 0);
                    }
                    f(i, &zeros);
                }
            }
        }
        Ok(())
    }

    fn discard(&self, disk: usize, tracks: Range<u64>) -> io::Result<bool> {
        let mut map = self.disks[disk].lock().unwrap();
        map.retain(|t, _| !tracks.contains(t));
        Ok(true)
    }

    fn tracks_used(&self) -> Vec<u64> {
        // High-water mark: one past the highest *live* track, so a full
        // discard of the tail really lowers the mark.
        self.disks.iter().map(|d| d.lock().unwrap().keys().max().map_or(0, |&t| t + 1)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrip_and_zero_fill() {
        let s = MemStorage::new(DiskGeometry::new(2, 4));
        s.write_track(1, 3, &[7, 8]).unwrap();
        assert_eq!(s.read_track(1, 3).unwrap(), vec![7, 8, 0, 0]);
        assert_eq!(s.read_track(0, 0).unwrap(), vec![0; 4]);
        assert_eq!(s.tracks_used(), vec![0, 4]);
    }

    #[test]
    fn batch_defaults_preserve_order() {
        let s = MemStorage::new(DiskGeometry::new(3, 2));
        s.write_batch(&[(TrackAddr::new(2, 0), &[2u8][..]), (TrackAddr::new(0, 0), &[0u8][..])])
            .unwrap();
        let r = s
            .read_batch(&[TrackAddr::new(0, 0), TrackAddr::new(1, 0), TrackAddr::new(2, 0)])
            .unwrap();
        assert_eq!(r, vec![vec![0, 0], vec![0, 0], vec![2, 0]]);
    }

    #[test]
    fn track_range_offsets_and_bounds() {
        let pool = Arc::new(MemStorage::new(DiskGeometry::new(2, 4)));
        let a = TrackRange::new(Arc::clone(&pool), 0, 4);
        let b = TrackRange::new(Arc::clone(&pool), 4, 4);
        a.write_track(0, 0, &[1]).unwrap();
        b.write_track(0, 0, &[2]).unwrap();
        // Same (disk, track) in each namespace, different inner tracks.
        assert_eq!(a.read_track(0, 0).unwrap(), vec![1, 0, 0, 0]);
        assert_eq!(b.read_track(0, 0).unwrap(), vec![2, 0, 0, 0]);
        assert_eq!(pool.read_track(0, 4).unwrap(), vec![2, 0, 0, 0]);
        // Bounds: track 4 of a 4-track window is out of range everywhere.
        assert_eq!(a.read_track(1, 4).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert!(a.write_track(1, 4, &[9]).is_err());
        assert!(a.read_batch(&[TrackAddr::new(0, 9)]).is_err());
        // tracks_used is window-relative and clamped: the pool's disk-0
        // high-water mark (5, set by b's write) clamps to a's full
        // window and lands at offset 1 inside b's.
        assert_eq!(a.tracks_used(), vec![4, 0]);
        assert_eq!(b.tracks_used(), vec![1, 0]);
    }

    #[test]
    fn track_range_scatter_and_batch_remap() {
        let pool = Arc::new(MemStorage::new(DiskGeometry::new(2, 2)));
        let r = TrackRange::new(Arc::clone(&pool), 3, 5);
        let writes: Vec<(TrackAddr, &[u8])> =
            vec![(TrackAddr::new(0, 0), &[1u8][..]), (TrackAddr::new(0, 4), &[2u8][..])];
        r.write_scatter(&writes).unwrap();
        assert_eq!(pool.read_track(0, 3).unwrap(), vec![1, 0]);
        assert_eq!(pool.read_track(0, 7).unwrap(), vec![2, 0]);
        let addrs = [TrackAddr::new(0, 0), TrackAddr::new(0, 4), TrackAddr::new(1, 1)];
        let mut got = Vec::new();
        r.read_scatter_with(&addrs, &mut |i, b| {
            assert_eq!(i, got.len());
            got.push(b.to_vec());
        })
        .unwrap();
        assert_eq!(got, vec![vec![1, 0], vec![2, 0], vec![0, 0]]);
        // Split-phase defaults go through the same remapping.
        let ticket = r.read_scatter_submit(&addrs).unwrap();
        let mut n = 0;
        r.read_scatter_wait(ticket, &addrs, &mut |_, _| n += 1).unwrap();
        assert_eq!(n, 3);
        // Out-of-range prefetch hints are dropped, not errors.
        r.prefetch(&[TrackAddr::new(0, 99)]);
    }

    #[test]
    fn discard_zeroes_and_lowers_high_water() {
        let s = MemStorage::new(DiskGeometry::new(2, 4));
        for t in 0..8u64 {
            s.write_track(0, t, &[t as u8 + 1]).unwrap();
        }
        assert_eq!(s.tracks_used(), vec![8, 0]);
        assert!(s.discard(0, 4..8).unwrap());
        assert_eq!(s.tracks_used(), vec![4, 0], "tail discard lowers the mark");
        assert_eq!(s.read_track(0, 5).unwrap(), vec![0; 4], "discarded tracks read as zeros");
        assert_eq!(s.read_track(0, 3).unwrap(), vec![4, 0, 0, 0], "live tracks untouched");
    }

    #[test]
    fn sparse_tracks_cost_no_dense_backing() {
        // A single write at a huge track address must not allocate a
        // dense table up to it — this is the v=10^6 scale contract.
        let s = MemStorage::new(DiskGeometry::new(1, 4));
        s.write_track(0, u64::from(u32::MAX) * 16, &[9]).unwrap();
        assert_eq!(s.read_track(0, u64::from(u32::MAX) * 16).unwrap(), vec![9, 0, 0, 0]);
        assert_eq!(s.tracks_used(), vec![u64::from(u32::MAX) * 16 + 1]);
    }

    #[test]
    fn track_range_discard_remaps_and_bounds() {
        let pool = Arc::new(MemStorage::new(DiskGeometry::new(1, 4)));
        let a = TrackRange::new(Arc::clone(&pool), 10, 5);
        a.write_track(0, 2, &[7]).unwrap();
        assert!(a.discard(0, 0..5).unwrap());
        assert_eq!(pool.read_track(0, 12).unwrap(), vec![0; 4]);
        // A range reaching past the span is rejected before remapping.
        assert_eq!(a.discard(0, 3..6).unwrap_err().kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn scatter_roundtrip_many_per_disk() {
        let s = MemStorage::new(DiskGeometry::new(2, 2));
        // three tracks on disk 0, one on disk 1 — illegal as a parallel
        // op, fine as a scatter list
        let writes: Vec<(TrackAddr, &[u8])> = vec![
            (TrackAddr::new(0, 0), &[1u8][..]),
            (TrackAddr::new(0, 1), &[2u8, 3][..]),
            (TrackAddr::new(1, 0), &[4u8][..]),
            (TrackAddr::new(0, 2), &[5u8][..]),
        ];
        s.write_scatter(&writes).unwrap();
        let addrs: Vec<TrackAddr> = writes.iter().map(|w| w.0).collect();
        let mut got: Vec<Vec<u8>> = Vec::new();
        s.read_scatter_with(&addrs, &mut |i, b| {
            assert_eq!(i, got.len(), "blocks arrive in request order");
            got.push(b.to_vec());
        })
        .unwrap();
        assert_eq!(got, vec![vec![1, 0], vec![2, 3], vec![4, 0], vec![5, 0]]);
        // unwritten tracks read back as zeros through the scatter path too
        s.read_scatter_with(&[TrackAddr::new(1, 9)], &mut |_, b| assert_eq!(b, &[0, 0][..]))
            .unwrap();
    }
}
