//! Fixed-size binary records.
//!
//! Everything that crosses a disk block or a message boundary in the
//! simulation implements [`Item`]: a `Copy` type with a fixed-width
//! little-endian encoding. Fixed width is essential — the paper's entire
//! layout story (blocked messages, `b′ = ⌈b/B⌉` blocks per message,
//! striped contexts) presumes records of known size.

/// Decode (or encode) failure on fixed-size records.
///
/// Returned by the fallible codec entry points ([`Item::decode_from`],
/// [`Item::encode_into`], [`SpanDecoder::finish`]) instead of panicking:
/// corrupt or truncated **on-disk** bytes are an I/O condition, not a
/// programming error, and the layers above map this into their
/// `Corrupt` fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecError {
    /// Bytes the operation needed.
    pub needed: usize,
    /// Bytes actually available (or provided).
    pub got: usize,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated or corrupt encoding: needed {} bytes, got {}", self.needed, self.got)
    }
}

impl std::error::Error for CodecError {}

/// A fixed-size, plain-old-data record.
pub trait Item: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Encode into `buf` (exactly `SIZE` bytes).
    fn write_to(&self, buf: &mut [u8]);

    /// Decode from `buf` (exactly `SIZE` bytes).
    fn read_from(buf: &[u8]) -> Self;

    /// Encode a slice of items into a fresh byte vector.
    ///
    /// Allocates per call; the disk hot path uses [`Item::encode_into`]
    /// with a pooled buffer instead.
    fn encode_slice(items: &[Self]) -> Vec<u8> {
        let mut out = vec![0u8; items.len() * Self::SIZE];
        Self::encode_into(items, &mut out).expect("sized buffer");
        out
    }

    /// Encode `items` into the front of a caller-owned buffer
    /// (`items.len() * SIZE` bytes are written). Fails if `buf` is too
    /// short; bytes beyond the encoded prefix are left untouched.
    fn encode_into(items: &[Self], buf: &mut [u8]) -> Result<(), CodecError> {
        let needed = items.len() * Self::SIZE;
        if buf.len() < needed {
            return Err(CodecError { needed, got: buf.len() });
        }
        for (it, chunk) in items.iter().zip(buf.chunks_exact_mut(Self::SIZE)) {
            it.write_to(chunk);
        }
        Ok(())
    }

    /// Decode `n` items from the front of `buf`, panicking when `buf` is
    /// too short.
    ///
    /// This is the infallible convenience for in-memory buffers the
    /// caller sized itself; bytes read back from a disk go through
    /// [`Item::decode_from`] (or [`SpanDecoder`]), which reports
    /// truncation as a [`CodecError`] instead of panicking.
    fn decode_slice(buf: &[u8], n: usize) -> Vec<Self> {
        assert!(buf.len() >= n * Self::SIZE, "buffer too short for {n} items");
        Self::decode_from(buf, n).expect("length checked")
    }

    /// Decode `n` items from the front of `buf`, failing on truncation.
    fn decode_from(buf: &[u8], n: usize) -> Result<Vec<Self>, CodecError> {
        let needed =
            n.checked_mul(Self::SIZE).ok_or(CodecError { needed: usize::MAX, got: buf.len() })?;
        if buf.len() < needed {
            return Err(CodecError { needed, got: buf.len() });
        }
        Ok(buf[..needed].chunks_exact(Self::SIZE).map(Self::read_from).collect())
    }
}

/// Streaming decoder over a sequence of byte spans (disk blocks).
///
/// Feeding blocks one at a time lets the caller decode **directly from
/// borrowed block buffers** — no reassembly copy into a contiguous
/// `Vec<u8>` first. Items that straddle a block boundary (when `SIZE`
/// does not divide the block size) are carried over in a small scratch
/// buffer; everything else decodes in place.
///
/// ```
/// use cgmio_pdm::{Item, SpanDecoder};
/// let bytes = u32::encode_slice(&[1, 2, 3]);
/// let mut dec = SpanDecoder::<u32>::new(3);
/// dec.feed(&bytes[..5]); // splits item 2 across spans
/// dec.feed(&bytes[5..]);
/// assert_eq!(dec.finish().unwrap(), vec![1, 2, 3]);
/// ```
pub struct SpanDecoder<T: Item> {
    out: Vec<T>,
    want: usize,
    carry: Vec<u8>,
    fed: usize,
}

impl<T: Item> SpanDecoder<T> {
    /// Decoder expecting exactly `want` items.
    pub fn new(want: usize) -> Self {
        Self { out: Vec::with_capacity(want), want, carry: Vec::new(), fed: 0 }
    }

    /// Feed the next span. Bytes past the `want`-th item (block padding)
    /// are ignored.
    pub fn feed(&mut self, mut span: &[u8]) {
        self.fed += span.len();
        if self.out.len() == self.want {
            return;
        }
        if !self.carry.is_empty() {
            let take = (T::SIZE - self.carry.len()).min(span.len());
            self.carry.extend_from_slice(&span[..take]);
            span = &span[take..];
            if self.carry.len() == T::SIZE {
                self.out.push(T::read_from(&self.carry));
                self.carry.clear();
                if self.out.len() == self.want {
                    return;
                }
            }
        }
        let whole = ((self.want - self.out.len()) * T::SIZE).min(span.len() - span.len() % T::SIZE);
        self.out.extend(span[..whole].chunks_exact(T::SIZE).map(T::read_from));
        if self.out.len() < self.want {
            self.carry.extend_from_slice(&span[whole..]);
        }
    }

    /// Finish, failing if the spans held fewer than `want` items.
    pub fn finish(self) -> Result<Vec<T>, CodecError> {
        if self.out.len() < self.want {
            return Err(CodecError { needed: self.want * T::SIZE, got: self.fed });
        }
        Ok(self.out)
    }
}

macro_rules! impl_item_int {
    ($($t:ty),*) => {$(
        impl Item for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_to(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

impl_item_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Item for f64 {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl<A: Item, B: Item> Item for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (A::read_from(&buf[..A::SIZE]), B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]))
    }
}

impl<A: Item, B: Item, C: Item> Item for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.write_to(&mut buf[A::SIZE + B::SIZE..Self::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (
            A::read_from(&buf[..A::SIZE]),
            B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::read_from(&buf[A::SIZE + B::SIZE..Self::SIZE]),
        )
    }
}

impl<A: Item, B: Item, C: Item, D: Item> Item for (A, B, C, D) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE + D::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.write_to(&mut buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]);
        self.3.write_to(&mut buf[A::SIZE + B::SIZE + C::SIZE..Self::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (
            A::read_from(&buf[..A::SIZE]),
            B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::read_from(&buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]),
            D::read_from(&buf[A::SIZE + B::SIZE + C::SIZE..Self::SIZE]),
        )
    }
}

impl<T: Item, const N: usize> Item for [T; N] {
    const SIZE: usize = T::SIZE * N;
    fn write_to(&self, buf: &mut [u8]) {
        for (i, it) in self.iter().enumerate() {
            it.write_to(&mut buf[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }
    fn read_from(buf: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&buf[i * T::SIZE..(i + 1) * T::SIZE]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64.write_to(&mut buf);
        assert_eq!(u64::read_from(&buf), 0xDEAD_BEEF);
        let mut buf = [0u8; 4];
        (-7i32).write_to(&mut buf);
        assert_eq!(i32::read_from(&buf), -7);
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (u64, i32, u8) = (42, -5, 7);
        let mut buf = [0u8; 13];
        assert_eq!(<(u64, i32, u8)>::SIZE, 13);
        v.write_to(&mut buf);
        assert_eq!(<(u64, i32, u8)>::read_from(&buf), v);
    }

    #[test]
    fn quad_and_array_roundtrip() {
        let v: (u64, u64, u64, u64) = (1, 2, 3, 4);
        let mut buf = [0u8; 32];
        v.write_to(&mut buf);
        assert_eq!(<(u64, u64, u64, u64)>::read_from(&buf), v);

        let a: [i64; 3] = [-1, 0, 9];
        let mut buf = [0u8; 24];
        a.write_to(&mut buf);
        assert_eq!(<[i64; 3]>::read_from(&buf), a);
    }

    #[test]
    fn slice_roundtrip() {
        let xs: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let bytes = u32::encode_slice(&xs);
        assert_eq!(bytes.len(), 400);
        assert_eq!(u32::decode_slice(&bytes, 100), xs);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = [0u8; 8];
        (1.5f64).write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 1.5);
    }

    #[test]
    #[should_panic]
    fn decode_too_short_panics() {
        let bytes = vec![0u8; 7];
        let _ = u64::decode_slice(&bytes, 1);
    }

    #[test]
    fn fallible_codecs_report_truncation() {
        let bytes = vec![0u8; 7];
        assert_eq!(u64::decode_from(&bytes, 1), Err(CodecError { needed: 8, got: 7 }));
        let mut buf = [0u8; 7];
        assert_eq!(u64::encode_into(&[1], &mut buf), Err(CodecError { needed: 8, got: 7 }));
        // overflow-sized counts fail instead of trying to allocate
        assert!(u64::decode_from(&bytes, usize::MAX / 4).is_err());
    }

    #[test]
    fn encode_into_matches_encode_slice() {
        let xs: Vec<u32> = (0..9).map(|i| i * 7 + 1).collect();
        let mut buf = vec![0xAAu8; 4 * 9 + 3];
        u32::encode_into(&xs, &mut buf).unwrap();
        assert_eq!(&buf[..36], &u32::encode_slice(&xs)[..]);
        assert_eq!(&buf[36..], &[0xAA; 3], "tail untouched");
        assert_eq!(u32::decode_from(&buf, 9).unwrap(), xs);
    }

    #[test]
    fn span_decoder_handles_straddles_and_padding() {
        // 13-byte items over 8-byte "blocks": every item straddles
        let xs: Vec<(u64, i32, u8)> = (0..10).map(|i| (i, -(i as i32), i as u8)).collect();
        let mut bytes = <(u64, i32, u8)>::encode_slice(&xs);
        bytes.extend_from_slice(&[0u8; 6]); // trailing block padding
        let mut dec = SpanDecoder::<(u64, i32, u8)>::new(10);
        for chunk in bytes.chunks(8) {
            dec.feed(chunk);
        }
        assert_eq!(dec.finish().unwrap(), xs);

        // truncated input fails instead of panicking
        let mut dec = SpanDecoder::<(u64, i32, u8)>::new(10);
        dec.feed(&bytes[..40]);
        assert!(dec.finish().is_err());

        // zero items succeeds on empty input
        assert_eq!(SpanDecoder::<u64>::new(0).finish().unwrap(), Vec::<u64>::new());
    }
}
