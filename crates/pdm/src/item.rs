//! Fixed-size binary records.
//!
//! Everything that crosses a disk block or a message boundary in the
//! simulation implements [`Item`]: a `Copy` type with a fixed-width
//! little-endian encoding. Fixed width is essential — the paper's entire
//! layout story (blocked messages, `b′ = ⌈b/B⌉` blocks per message,
//! striped contexts) presumes records of known size.

/// A fixed-size, plain-old-data record.
pub trait Item: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Encode into `buf` (exactly `SIZE` bytes).
    fn write_to(&self, buf: &mut [u8]);

    /// Decode from `buf` (exactly `SIZE` bytes).
    fn read_from(buf: &[u8]) -> Self;

    /// Encode a slice of items into a fresh byte vector.
    fn encode_slice(items: &[Self]) -> Vec<u8> {
        let mut out = vec![0u8; items.len() * Self::SIZE];
        for (i, it) in items.iter().enumerate() {
            it.write_to(&mut out[i * Self::SIZE..(i + 1) * Self::SIZE]);
        }
        out
    }

    /// Decode `n` items from the front of `buf`.
    fn decode_slice(buf: &[u8], n: usize) -> Vec<Self> {
        assert!(buf.len() >= n * Self::SIZE, "buffer too short for {n} items");
        (0..n).map(|i| Self::read_from(&buf[i * Self::SIZE..(i + 1) * Self::SIZE])).collect()
    }
}

macro_rules! impl_item_int {
    ($($t:ty),*) => {$(
        impl Item for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            fn write_to(&self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )*};
}

impl_item_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Item for f64 {
    const SIZE: usize = 8;
    fn write_to(&self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl<A: Item, B: Item> Item for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (A::read_from(&buf[..A::SIZE]), B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]))
    }
}

impl<A: Item, B: Item, C: Item> Item for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.write_to(&mut buf[A::SIZE + B::SIZE..Self::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (
            A::read_from(&buf[..A::SIZE]),
            B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::read_from(&buf[A::SIZE + B::SIZE..Self::SIZE]),
        )
    }
}

impl<A: Item, B: Item, C: Item, D: Item> Item for (A, B, C, D) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE + D::SIZE;
    fn write_to(&self, buf: &mut [u8]) {
        self.0.write_to(&mut buf[..A::SIZE]);
        self.1.write_to(&mut buf[A::SIZE..A::SIZE + B::SIZE]);
        self.2.write_to(&mut buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]);
        self.3.write_to(&mut buf[A::SIZE + B::SIZE + C::SIZE..Self::SIZE]);
    }
    fn read_from(buf: &[u8]) -> Self {
        (
            A::read_from(&buf[..A::SIZE]),
            B::read_from(&buf[A::SIZE..A::SIZE + B::SIZE]),
            C::read_from(&buf[A::SIZE + B::SIZE..A::SIZE + B::SIZE + C::SIZE]),
            D::read_from(&buf[A::SIZE + B::SIZE + C::SIZE..Self::SIZE]),
        )
    }
}

impl<T: Item, const N: usize> Item for [T; N] {
    const SIZE: usize = T::SIZE * N;
    fn write_to(&self, buf: &mut [u8]) {
        for (i, it) in self.iter().enumerate() {
            it.write_to(&mut buf[i * T::SIZE..(i + 1) * T::SIZE]);
        }
    }
    fn read_from(buf: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_from(&buf[i * T::SIZE..(i + 1) * T::SIZE]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64.write_to(&mut buf);
        assert_eq!(u64::read_from(&buf), 0xDEAD_BEEF);
        let mut buf = [0u8; 4];
        (-7i32).write_to(&mut buf);
        assert_eq!(i32::read_from(&buf), -7);
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (u64, i32, u8) = (42, -5, 7);
        let mut buf = [0u8; 13];
        assert_eq!(<(u64, i32, u8)>::SIZE, 13);
        v.write_to(&mut buf);
        assert_eq!(<(u64, i32, u8)>::read_from(&buf), v);
    }

    #[test]
    fn quad_and_array_roundtrip() {
        let v: (u64, u64, u64, u64) = (1, 2, 3, 4);
        let mut buf = [0u8; 32];
        v.write_to(&mut buf);
        assert_eq!(<(u64, u64, u64, u64)>::read_from(&buf), v);

        let a: [i64; 3] = [-1, 0, 9];
        let mut buf = [0u8; 24];
        a.write_to(&mut buf);
        assert_eq!(<[i64; 3]>::read_from(&buf), a);
    }

    #[test]
    fn slice_roundtrip() {
        let xs: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let bytes = u32::encode_slice(&xs);
        assert_eq!(bytes.len(), 400);
        assert_eq!(u32::decode_slice(&bytes, 100), xs);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = [0u8; 8];
        (1.5f64).write_to(&mut buf);
        assert_eq!(f64::read_from(&buf), 1.5);
    }

    #[test]
    #[should_panic]
    fn decode_too_short_panics() {
        let bytes = vec![0u8; 7];
        let _ = u64::decode_slice(&bytes, 1);
    }
}
