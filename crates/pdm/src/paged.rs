//! Demand-paged memory simulator.
//!
//! Two of the paper's experiments need a *paging* cost model rather than
//! the explicit blocked I/O of the PDM:
//!
//! * the "CGM algorithm using virtual memory" baseline of **Figure 3** —
//!   the operating system pages contexts and mailboxes in and out in
//!   page-sized single-disk transfers, in whatever order the program
//!   touches memory, and
//! * the **Section 5 cache extension**, where the same two-level analysis
//!   is applied to the cache/main-memory interface.
//!
//! [`PagedStore`] is a flat byte-addressed store backed by `frames`
//! resident page frames with CLOCK (second-chance) replacement — a
//! faithful stand-in for an OS page cache. Every miss counts one *fault*;
//! dirty evictions count one *writeback*. Faults and writebacks are
//! single-page, single-disk transfers, which is exactly why the paged
//! baseline loses to the blocked, `D`-disk-parallel simulation.

use std::collections::HashMap;

/// Counters for a [`PagedStore`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PageStats {
    /// Byte-level accesses (reads + writes).
    pub accesses: u64,
    /// Page touches (one per page spanned by each access).
    pub page_touches: u64,
    /// Page faults (misses that loaded a page).
    pub faults: u64,
    /// Dirty pages written back on eviction.
    pub writebacks: u64,
}

impl PageStats {
    /// Total single-page disk transfers implied by the trace.
    pub fn transfers(&self) -> u64 {
        self.faults + self.writebacks
    }
}

struct Frame {
    page: u64,
    data: Box<[u8]>,
    referenced: bool,
    dirty: bool,
}

/// Byte-addressed store with an LRU-approximating (CLOCK) page cache.
pub struct PagedStore {
    page_bytes: usize,
    max_frames: usize,
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    /// Evicted pages live here ("on disk").
    backing: HashMap<u64, Box<[u8]>>,
    stats: PageStats,
}

impl PagedStore {
    /// Create a store with `max_frames` resident frames of `page_bytes`
    /// each (so resident memory is `max_frames * page_bytes`).
    pub fn new(page_bytes: usize, max_frames: usize) -> Self {
        assert!(page_bytes >= 1 && max_frames >= 1);
        Self {
            page_bytes,
            max_frames,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            backing: HashMap::new(),
            stats: PageStats::default(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &PageStats {
        &self.stats
    }

    /// Reset the counters (contents and cache state are kept).
    pub fn reset_stats(&mut self) {
        self.stats = PageStats::default();
    }

    fn frame_for(&mut self, page: u64) -> usize {
        if let Some(&idx) = self.map.get(&page) {
            self.frames[idx].referenced = true;
            return idx;
        }
        self.stats.faults += 1;
        let data = self
            .backing
            .remove(&page)
            .unwrap_or_else(|| vec![0u8; self.page_bytes].into_boxed_slice());
        if self.frames.len() < self.max_frames {
            let idx = self.frames.len();
            self.frames.push(Frame { page, data, referenced: true, dirty: false });
            self.map.insert(page, idx);
            return idx;
        }
        // CLOCK eviction: sweep, clearing reference bits, until an
        // unreferenced frame is found.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
            } else {
                let old = std::mem::replace(
                    &mut self.frames[idx],
                    Frame { page, data, referenced: true, dirty: false },
                );
                self.map.remove(&old.page);
                if old.dirty {
                    self.stats.writebacks += 1;
                }
                self.backing.insert(old.page, old.data);
                self.map.insert(page, idx);
                return idx;
            }
        }
    }

    /// Read `buf.len()` bytes starting at byte `offset`.
    pub fn read(&mut self, offset: u64, buf: &mut [u8]) {
        self.stats.accesses += 1;
        let pb = self.page_bytes as u64;
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos as u64;
            let page = addr / pb;
            let in_page = (addr % pb) as usize;
            let n = (self.page_bytes - in_page).min(buf.len() - pos);
            self.stats.page_touches += 1;
            let idx = self.frame_for(page);
            buf[pos..pos + n].copy_from_slice(&self.frames[idx].data[in_page..in_page + n]);
            pos += n;
        }
    }

    /// Write `data` starting at byte `offset`.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        self.stats.accesses += 1;
        let pb = self.page_bytes as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos as u64;
            let page = addr / pb;
            let in_page = (addr % pb) as usize;
            let n = (self.page_bytes - in_page).min(data.len() - pos);
            self.stats.page_touches += 1;
            let idx = self.frame_for(page);
            self.frames[idx].data[in_page..in_page + n].copy_from_slice(&data[pos..pos + n]);
            self.frames[idx].dirty = true;
            pos += n;
        }
    }

    /// Convenience: read a `u64` at byte `offset`.
    pub fn read_u64(&mut self, offset: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Convenience: write a `u64` at byte `offset`.
    pub fn write_u64(&mut self, offset: u64, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_cache() {
        let mut s = PagedStore::new(64, 4);
        s.write(10, &[1, 2, 3]);
        let mut b = [0u8; 3];
        s.read(10, &mut b);
        assert_eq!(b, [1, 2, 3]);
        assert_eq!(s.stats().faults, 1); // single page, loaded once
        assert_eq!(s.stats().writebacks, 0);
    }

    #[test]
    fn cross_page_access() {
        let mut s = PagedStore::new(8, 4);
        let data: Vec<u8> = (0..20).collect();
        s.write(4, &data); // spans pages 0,1,2,3 -> wait: bytes 4..24 -> pages 0..2
        let mut b = vec![0u8; 20];
        s.read(4, &mut b);
        assert_eq!(b, data);
        assert_eq!(s.stats().faults, 3); // pages 0,1,2
    }

    #[test]
    fn eviction_preserves_data_and_counts_writebacks() {
        let mut s = PagedStore::new(8, 2);
        for p in 0..5u64 {
            s.write(p * 8, &[p as u8; 8]);
        }
        // re-read everything; evicted pages must come back intact
        for p in 0..5u64 {
            let mut b = [0u8; 8];
            s.read(p * 8, &mut b);
            assert_eq!(b, [p as u8; 8]);
        }
        assert!(s.stats().faults >= 5, "each page faulted at least once");
        assert!(s.stats().writebacks >= 3, "dirty evictions recorded");
    }

    #[test]
    fn sequential_scan_faults_once_per_page() {
        let mut s = PagedStore::new(16, 2);
        let n_pages = 50u64;
        for p in 0..n_pages {
            let mut b = [0u8; 16];
            s.read(p * 16, &mut b);
        }
        assert_eq!(s.stats().faults, n_pages);
        assert_eq!(s.stats().writebacks, 0, "clean pages are dropped silently");
    }

    #[test]
    fn hot_page_stays_resident_under_clock() {
        // Page 0 is touched between every other access; CLOCK's reference
        // bit must keep it resident, so faults stay ~ one per cold page.
        let mut s = PagedStore::new(8, 3);
        s.write(0, &[42; 8]);
        for p in 1..40u64 {
            let mut b = [0u8; 8];
            s.read(p * 8, &mut b);
            s.read(0, &mut b); // re-touch hot page
            assert_eq!(b[0], 42);
        }
        // 1 fault for page 0 + one per cold page; allow slack for CLOCK
        // approximation but page 0 must not thrash.
        assert!(s.stats().faults <= 45, "faults = {}", s.stats().faults);
    }
}
