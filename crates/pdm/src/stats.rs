//! Exact accounting of parallel I/O operations.
//!
//! The PDM cost measure is the **number of parallel I/O operations**; the
//! EM-CGM model charges `G` time units per operation. [`IoStats`] counts
//! operations and blocks separately for reads and writes, and tracks how
//! many operations used every disk (*fully parallel* operations), which is
//! what the paper's staggered layout is designed to maximise.

/// Running counters for a [`crate::DiskArray`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IoStats {
    /// Number of parallel read operations issued.
    pub read_ops: u64,
    /// Number of parallel write operations issued.
    pub write_ops: u64,
    /// Total blocks transferred by reads.
    pub blocks_read: u64,
    /// Total blocks transferred by writes.
    pub blocks_written: u64,
    /// Operations that used all `D` disks.
    pub full_ops: u64,
    /// Per-disk block transfer counts (reads + writes).
    pub per_disk_blocks: Vec<u64>,
}

impl IoStats {
    /// New zeroed stats for an array of `num_disks` drives.
    pub fn new(num_disks: usize) -> Self {
        Self { per_disk_blocks: vec![0; num_disks], ..Self::default() }
    }

    /// Total parallel I/O operations (the PDM cost).
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Total blocks moved in either direction.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// Fraction of operations that used every disk; `1.0` when no
    /// operations were issued (vacuously fully parallel).
    pub fn parallel_efficiency(&self) -> f64 {
        if self.total_ops() == 0 {
            1.0
        } else {
            self.full_ops as f64 / self.total_ops() as f64
        }
    }

    /// Average blocks moved per operation. With `D` disks this is at most
    /// `D`; the closer to `D`, the better the layout.
    pub fn blocks_per_op(&self) -> f64 {
        if self.total_ops() == 0 {
            0.0
        } else {
            self.total_blocks() as f64 / self.total_ops() as f64
        }
    }

    /// Record one parallel read touching `blocks` blocks.
    pub(crate) fn record_read(&mut self, blocks: usize, num_disks: usize) {
        self.read_ops += 1;
        self.blocks_read += blocks as u64;
        if blocks == num_disks {
            self.full_ops += 1;
        }
    }

    /// Record one parallel write touching `blocks` blocks.
    pub(crate) fn record_write(&mut self, blocks: usize, num_disks: usize) {
        self.write_ops += 1;
        self.blocks_written += blocks as u64;
        if blocks == num_disks {
            self.full_ops += 1;
        }
    }

    /// Counters accumulated since `earlier` was captured: every field
    /// of the result is `self - earlier` (saturating, so a mismatched
    /// pair clamps at zero instead of wrapping). `earlier` should be a
    /// snapshot of the *same* counter stream taken before `self` — the
    /// runners use this to attribute I/O to individual supersteps and
    /// phases in run reports.
    ///
    /// ```
    /// use cgmio_pdm::IoStats;
    /// let mut before = IoStats::new(2);
    /// before.per_disk_blocks = vec![1, 1];
    /// before.read_ops = 1;
    /// let mut after = before.clone();
    /// after.read_ops = 3;
    /// after.per_disk_blocks = vec![4, 1];
    /// let delta = after.diff(&before);
    /// assert_eq!(delta.read_ops, 2);
    /// assert_eq!(delta.per_disk_blocks, vec![3, 0]);
    /// ```
    pub fn diff(&self, earlier: &IoStats) -> IoStats {
        let mut per_disk_blocks: Vec<u64> = self.per_disk_blocks.clone();
        for (a, b) in per_disk_blocks.iter_mut().zip(&earlier.per_disk_blocks) {
            *a = a.saturating_sub(*b);
        }
        IoStats {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            full_ops: self.full_ops.saturating_sub(earlier.full_ops),
            per_disk_blocks,
        }
    }

    /// Merge another stats object into this one (e.g. to aggregate the
    /// per-processor disk arrays of a parallel run).
    pub fn merge(&mut self, other: &IoStats) {
        self.read_ops += other.read_ops;
        self.write_ops += other.write_ops;
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.full_ops += other.full_ops;
        if self.per_disk_blocks.len() < other.per_disk_blocks.len() {
            self.per_disk_blocks.resize(other.per_disk_blocks.len(), 0);
        }
        for (a, b) in self.per_disk_blocks.iter_mut().zip(&other.per_disk_blocks) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_efficiency() {
        let mut s = IoStats::new(4);
        s.record_read(4, 4);
        s.record_read(2, 4);
        s.record_write(4, 4);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.blocks_read, 6);
        assert_eq!(s.blocks_written, 4);
        assert_eq!(s.full_ops, 2);
        assert!((s.parallel_efficiency() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.blocks_per_op() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_vacuously_efficient() {
        let s = IoStats::new(2);
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.parallel_efficiency(), 1.0);
        assert_eq!(s.blocks_per_op(), 0.0);
    }

    #[test]
    fn diff_undoes_merge() {
        let mut a = IoStats::new(2);
        a.record_read(2, 2);
        a.per_disk_blocks = vec![3, 4];
        let mut b = a.clone();
        b.record_write(1, 2);
        b.record_read(2, 2);
        b.per_disk_blocks = vec![5, 4];
        let d = b.diff(&a);
        assert_eq!(d.read_ops, 1);
        assert_eq!(d.write_ops, 1);
        assert_eq!(d.blocks_read, 2);
        assert_eq!(d.blocks_written, 1);
        assert_eq!(d.full_ops, 1);
        assert_eq!(d.per_disk_blocks, vec![2, 0]);
        // diff against itself is zero; merging the delta back restores b
        assert_eq!(b.diff(&b).total_ops(), 0);
        let mut restored = a.clone();
        restored.merge(&d);
        assert_eq!(restored, b);
    }

    #[test]
    fn diff_saturates_instead_of_wrapping() {
        let mut newer = IoStats::new(1);
        let mut older = IoStats::new(1);
        newer.read_ops = 1;
        older.read_ops = 5;
        older.per_disk_blocks = vec![9];
        let d = newer.diff(&older);
        assert_eq!(d.read_ops, 0);
        assert_eq!(d.per_disk_blocks, vec![0]);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = IoStats::new(2);
        a.record_read(2, 2);
        a.per_disk_blocks[0] = 1;
        a.per_disk_blocks[1] = 1;
        let mut b = IoStats::new(2);
        b.record_write(1, 2);
        b.per_disk_blocks[1] = 1;
        a.merge(&b);
        assert_eq!(a.total_ops(), 2);
        assert_eq!(a.blocks_written, 1);
        assert_eq!(a.per_disk_blocks, vec![1, 2]);
    }
}
