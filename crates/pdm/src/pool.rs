//! Reusable block buffers for the data path.
//!
//! Every byte that crosses a [`crate::DiskArray`] travels in a
//! track-sized (or message-sized) buffer. Allocating those buffers fresh
//! per transfer is exactly the avoidable data movement the paper's
//! blocked-transfer argument fights for, so the hot path checks them out
//! of a [`BlockPool`] instead: a checkout reuses a previously returned
//! buffer when one is available, and dropping the [`PooledBlock`] returns
//! the buffer to the pool — including from another thread, which is how
//! the concurrent engine's drive workers recycle write-behind payloads.
//!
//! The pool is deliberately dumb: one free list for all sizes (buffers
//! grow to the largest length ever requested and stay), a bounded free
//! list so a burst cannot pin unbounded memory, and two counters so the
//! perf harness can report the reuse rate.
//!
//! ```
//! use cgmio_pdm::BlockPool;
//! let pool = BlockPool::default();
//! let mut b = pool.checkout(4);
//! b.copy_from_slice(&[1, 2, 3, 4]);
//! drop(b); // buffer returns to the pool
//! let b2 = pool.checkout(2); // reuses the same backing buffer
//! assert_eq!(b2.len(), 2);
//! assert_eq!(pool.stats().reused, 1);
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on the number of idle buffers a pool retains.
///
/// Sized for the worst steady-state demand of one compound superstep:
/// one staging buffer per runner plus one in-flight write-behind payload
/// per drive worker, with room to spare.
const DEFAULT_MAX_FREE: usize = 64;

struct PoolShared {
    free: Mutex<Vec<Vec<u8>>>,
    max_free: usize,
    checkouts: AtomicU64,
    reused: AtomicU64,
}

/// Counters describing a pool's reuse behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers handed out in total.
    pub checkouts: u64,
    /// Checkouts that reused a returned buffer (no heap allocation).
    pub reused: u64,
    /// Buffers currently idle in the free list.
    pub idle: u64,
}

/// A shared pool of reusable byte buffers (cheaply cloneable handle).
#[derive(Clone)]
pub struct BlockPool {
    shared: Arc<PoolShared>,
}

impl Default for BlockPool {
    fn default() -> Self {
        Self::with_max_free(DEFAULT_MAX_FREE)
    }
}

impl BlockPool {
    /// Pool retaining at most `max_free` idle buffers.
    pub fn with_max_free(max_free: usize) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                free: Mutex::new(Vec::new()),
                max_free,
                checkouts: AtomicU64::new(0),
                reused: AtomicU64::new(0),
            }),
        }
    }

    /// Check out a buffer of exactly `len` bytes.
    ///
    /// The contents are **not** zeroed beyond what a reused buffer held —
    /// callers own every byte they pass onward. A reused buffer keeps its
    /// capacity, so repeated checkouts of similar sizes stop allocating
    /// once the pool is warm.
    pub fn checkout(&self, len: usize) -> PooledBlock {
        self.shared.checkouts.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.shared.free.lock().unwrap().pop().unwrap_or_default();
        if buf.capacity() > 0 {
            self.shared.reused.fetch_add(1, Ordering::Relaxed);
        }
        buf.resize(len, 0);
        PooledBlock { buf, offset: 0, pool: Arc::clone(&self.shared) }
    }

    /// Check out a buffer of `len` bytes whose first byte sits on an
    /// `align`-byte boundary (`align` must be a power of two).
    ///
    /// This is what O_DIRECT file I/O needs: the kernel rejects
    /// transfers whose user buffer is not sector-aligned. The pool
    /// over-allocates by one alignment granule and the returned
    /// [`PooledBlock`] derefs to the aligned window, so the alignment
    /// survives pooling — a recycled buffer is re-windowed on every
    /// checkout (its allocation may move between uses).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn checkout_aligned(&self, len: usize, align: usize) -> PooledBlock {
        assert!(align.is_power_of_two(), "alignment must be a power of two, got {align}");
        self.shared.checkouts.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.shared.free.lock().unwrap().pop().unwrap_or_default();
        if buf.capacity() > 0 {
            self.shared.reused.fetch_add(1, Ordering::Relaxed);
        }
        // Fix the allocation first (growing may move it), then compute
        // the aligned window against the now-stable pointer; the final
        // resize only shrinks or grows within capacity.
        buf.clear();
        buf.reserve(len + align - 1);
        let offset = buf.as_ptr().align_offset(align);
        debug_assert!(offset < align);
        buf.resize(offset + len, 0);
        PooledBlock { buf, offset, pool: Arc::clone(&self.shared) }
    }

    /// Reuse counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.shared.checkouts.load(Ordering::Relaxed),
            reused: self.shared.reused.load(Ordering::Relaxed),
            idle: self.shared.free.lock().unwrap().len() as u64,
        }
    }
}

/// A byte buffer on loan from a [`BlockPool`]; derefs to `[u8]` and
/// returns itself to the pool on drop (from any thread).
///
/// For [`BlockPool::checkout_aligned`] checkouts the deref window skips
/// the pad bytes in front of the aligned boundary — `len()` is exactly
/// the requested length either way.
pub struct PooledBlock {
    buf: Vec<u8>,
    /// Start of the caller-visible window (0 for unaligned checkouts).
    offset: usize,
    pool: Arc<PoolShared>,
}

impl Deref for PooledBlock {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.offset..]
    }
}

impl DerefMut for PooledBlock {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.offset..]
    }
}

impl std::fmt::Debug for PooledBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBlock({} bytes)", self.buf.len() - self.offset)
    }
}

impl Drop for PooledBlock {
    fn drop(&mut self) {
        let mut free = self.pool.free.lock().unwrap();
        if free.len() < self.pool.max_free {
            free.push(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_sizes_and_reuse() {
        let pool = BlockPool::default();
        let b = pool.checkout(8);
        assert_eq!(&*b, &[0u8; 8]);
        drop(b);
        let mut b = pool.checkout(4);
        assert_eq!(b.len(), 4);
        b[0] = 9;
        drop(b);
        // a reused buffer must read back zeroed within the requested len
        // only where the caller wrote — we overwrite fully in the data
        // path, so here we just check the counters.
        let s = pool.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.reused, 1);
        assert_eq!(s.idle, 1);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BlockPool::with_max_free(2);
        let blocks: Vec<_> = (0..5).map(|_| pool.checkout(16)).collect();
        drop(blocks);
        assert_eq!(pool.stats().idle, 2);
    }

    #[test]
    fn aligned_checkout_honours_alignment_and_length() {
        let pool = BlockPool::default();
        for align in [1usize, 512, 4096] {
            let mut b = pool.checkout_aligned(100, align);
            assert_eq!(b.len(), 100);
            assert_eq!(b.as_ptr() as usize % align, 0, "align {align}");
            b[0] = 7;
            b[99] = 8;
            assert_eq!((b[0], b[99]), (7, 8));
        }
    }

    #[test]
    fn aligned_checkout_survives_pool_recycling() {
        let pool = BlockPool::default();
        drop(pool.checkout(4096)); // seed the free list with a plain buffer
        let b = pool.checkout_aligned(512, 512);
        assert_eq!(b.as_ptr() as usize % 512, 0);
        assert_eq!(b.len(), 512);
        drop(b);
        // and an aligned buffer recycles back into a plain checkout
        assert_eq!(pool.checkout(8).len(), 8);
        assert!(pool.stats().reused >= 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn aligned_checkout_rejects_non_power_of_two() {
        BlockPool::default().checkout_aligned(16, 3);
    }

    #[test]
    fn cross_thread_return() {
        let pool = BlockPool::default();
        let b = pool.checkout(32);
        std::thread::spawn(move || drop(b)).join().unwrap();
        assert_eq!(pool.stats().idle, 1);
        assert_eq!(pool.checkout(32).len(), 32);
    }
}
