//! The simulated disk array.
//!
//! [`DiskArray`] models the `D` drives of one EM-CGM processor. The
//! central invariant, enforced on every operation, is the PDM rule that a
//! single parallel I/O may access **at most one track per disk**. Any
//! violation is a programming error in the layer above and is reported as
//! an [`IoError`] rather than silently serialised, so layout bugs (the
//! kind the paper's staggered format exists to prevent) cannot hide.

use crate::file_backend::FileStorage;
use crate::pool::BlockPool;
use crate::stats::IoStats;
use crate::storage::{MemStorage, TrackStorage};
use crate::DiskGeometry;

/// Address of one block: drive index plus track number on that drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackAddr {
    /// Drive index, `0 ≤ disk < D`.
    pub disk: usize,
    /// Track number on that drive.
    pub track: u64,
}

impl TrackAddr {
    /// Convenience constructor.
    pub fn new(disk: usize, track: u64) -> Self {
        Self { disk, track }
    }
}

/// A single block transfer request (used by the FIFO write scheduler).
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Where the block goes.
    pub addr: TrackAddr,
    /// Block payload; at most `block_bytes` long (shorter payloads are
    /// zero-padded on disk).
    pub data: Vec<u8>,
}

/// Errors surfaced by the disk array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Two requests in one parallel operation addressed the same disk.
    DiskConflict {
        /// The drive that was addressed twice.
        disk: usize,
    },
    /// A request addressed a drive `>= D`.
    NoSuchDisk {
        /// The offending drive index.
        disk: usize,
        /// Number of drives in the array.
        num_disks: usize,
    },
    /// A write payload exceeded the block size.
    BlockTooLarge {
        /// Payload length in bytes.
        len: usize,
        /// Configured block size in bytes.
        block_bytes: usize,
    },
    /// A typed storage fault (see [`crate::fault`]) survived the
    /// backend's recovery machinery and reached the array.
    Fault {
        /// Taxonomy class ([`crate::IoErrorKind`]).
        kind: crate::fault::IoErrorKind,
        /// Drive the faulting operation addressed.
        disk: usize,
        /// Track the faulting operation addressed.
        track: u64,
        /// Human-readable fault description.
        detail: String,
    },
    /// Underlying file backend failed (untyped).
    Backend(String),
}

impl From<std::io::Error> for IoError {
    /// Backend errors carrying a [`crate::fault::FaultError`] payload map
    /// to the typed [`IoError::Fault`]; anything else stays untyped.
    fn from(e: std::io::Error) -> Self {
        match e.get_ref().and_then(|r| r.downcast_ref::<crate::fault::FaultError>()) {
            Some(fe) => IoError::Fault {
                kind: fe.kind,
                disk: fe.disk,
                track: fe.track,
                detail: fe.detail.clone(),
            },
            None => IoError::Backend(e.to_string()),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::DiskConflict { disk } => {
                write!(f, "parallel I/O touches disk {disk} more than once")
            }
            IoError::NoSuchDisk { disk, num_disks } => {
                write!(f, "disk {disk} out of range (array has {num_disks})")
            }
            IoError::BlockTooLarge { len, block_bytes } => {
                write!(f, "payload of {len} bytes exceeds block size {block_bytes}")
            }
            IoError::Fault { kind, disk, track, detail } => {
                write!(f, "{kind} fault on disk {disk} track {track}: {detail}")
            }
            IoError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A `D`-drive disk array with exact parallel-I/O accounting.
///
/// ```
/// use cgmio_pdm::{DiskArray, DiskGeometry, TrackAddr};
/// let mut arr = DiskArray::new(DiskGeometry::new(2, 8));
/// arr.parallel_write(&[
///     (TrackAddr::new(0, 0), &[1u8; 8][..]),
///     (TrackAddr::new(1, 0), &[2u8; 8][..]),
/// ]).unwrap();
/// let blocks = arr.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(1, 0)]).unwrap();
/// assert_eq!(blocks[0], vec![1u8; 8]);
/// assert_eq!(arr.stats().total_ops(), 2);
/// assert_eq!(arr.stats().full_ops, 2);
/// ```
pub struct DiskArray {
    geom: DiskGeometry,
    storage: Box<dyn TrackStorage>,
    stats: IoStats,
    pool: BlockPool,
}

impl DiskArray {
    /// Create an in-memory disk array.
    pub fn new(geom: DiskGeometry) -> Self {
        Self::with_storage(geom, Box::new(MemStorage::new(geom)))
    }

    /// Create a disk array backed by real files in `dir` (one file per
    /// drive). I/O accounting is identical to the in-memory backend.
    pub fn new_file_backed(geom: DiskGeometry, dir: &std::path::Path) -> Result<Self, IoError> {
        let fs = FileStorage::open(dir, geom).map_err(|e| IoError::Backend(e.to_string()))?;
        Ok(Self::with_storage(geom, Box::new(fs)))
    }

    /// Create a disk array over an arbitrary [`TrackStorage`] backend
    /// (e.g. `cgmio_io::ConcurrentStorage`). The accounting and legality
    /// layer is identical for every backend.
    pub fn with_storage(geom: DiskGeometry, storage: Box<dyn TrackStorage>) -> Self {
        Self { storage, stats: IoStats::new(geom.num_disks), geom, pool: BlockPool::default() }
    }

    /// The array's buffer pool. Layers staging bytes for a gather write
    /// check their buffer out here so it is recycled instead of
    /// reallocated every superstep.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// The array geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.geom
    }

    /// I/O counters accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reset the I/O counters (the disk contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::new(self.geom.num_disks);
    }

    /// Highest allocated track per disk (diagnostics / disk-space audit).
    pub fn tracks_used(&self) -> Vec<u64> {
        self.storage.tracks_used()
    }

    /// Hint that these tracks will be read soon. Free in the cost model
    /// (no [`IoStats`] change) and a no-op on synchronous backends; the
    /// concurrent backend starts fetching them in the background.
    pub fn prefetch(&self, addrs: &[TrackAddr]) {
        self.storage.prefetch(addrs);
    }

    /// Drain the backend's write pipeline, surfacing any deferred write
    /// error; with `sync` also force data to stable storage. Free in the
    /// cost model — write-behind I/Os were already counted when issued.
    pub fn flush(&self, sync: bool) -> Result<(), IoError> {
        self.storage.flush(sync).map_err(IoError::from)
    }

    fn check_op(&self, addrs: impl Iterator<Item = TrackAddr>) -> Result<usize, IoError> {
        let mut seen = vec![false; self.geom.num_disks];
        let mut n = 0;
        for a in addrs {
            if a.disk >= self.geom.num_disks {
                return Err(IoError::NoSuchDisk { disk: a.disk, num_disks: self.geom.num_disks });
            }
            if seen[a.disk] {
                return Err(IoError::DiskConflict { disk: a.disk });
            }
            seen[a.disk] = true;
            n += 1;
        }
        Ok(n)
    }

    /// One parallel read of up to `D` blocks (distinct disks). Returns the
    /// block contents in request order; unwritten tracks read as zeros.
    pub fn parallel_read(&mut self, addrs: &[TrackAddr]) -> Result<Vec<Vec<u8>>, IoError> {
        let n = self.check_op(addrs.iter().copied())?;
        if n == 0 {
            return Ok(Vec::new());
        }
        // Legality established above: ≤ 1 track per disk, so the backend
        // may issue the transfers of this operation concurrently.
        let out = self.storage.read_batch(addrs).map_err(IoError::from)?;
        for a in addrs {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        self.stats.record_read(n, self.geom.num_disks);
        Ok(out)
    }

    /// One parallel write of up to `D` blocks (distinct disks). Payloads
    /// shorter than a block are zero-padded.
    pub fn parallel_write(&mut self, writes: &[(TrackAddr, &[u8])]) -> Result<(), IoError> {
        let n = self.check_op(writes.iter().map(|(a, _)| *a))?;
        if n == 0 {
            return Ok(());
        }
        let bb = self.geom.block_bytes;
        for (_, data) in writes {
            if data.len() > bb {
                return Err(IoError::BlockTooLarge { len: data.len(), block_bytes: bb });
            }
        }
        self.storage.write_batch(writes).map_err(IoError::from)?;
        for (a, _) in writes {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        self.stats.record_write(n, self.geom.num_disks);
        Ok(())
    }

    /// FIFO packing arithmetic shared by the gather paths: walk the
    /// addresses in order, close the current parallel operation as soon
    /// as a disk repeats (or all `D` disks are used), and return the size
    /// of each operation. This is exactly the paper's `DiskWrite`
    /// scheduling rule, computed *as counters* — the actual bytes move in
    /// one scatter submission, but the [`IoStats`] cost model charges the
    /// same operations it always did.
    fn fifo_cycle_sizes<'a>(
        &self,
        addrs: impl Iterator<Item = &'a TrackAddr>,
    ) -> Result<Vec<usize>, IoError> {
        let mut sizes = Vec::new();
        let mut used = vec![false; self.geom.num_disks];
        let mut cur = 0usize;
        for a in addrs {
            if a.disk >= self.geom.num_disks {
                return Err(IoError::NoSuchDisk { disk: a.disk, num_disks: self.geom.num_disks });
            }
            if used[a.disk] || cur == self.geom.num_disks {
                sizes.push(cur);
                cur = 0;
                used.iter_mut().for_each(|u| *u = false);
            }
            used[a.disk] = true;
            cur += 1;
        }
        if cur > 0 {
            sizes.push(cur);
        }
        Ok(sizes)
    }

    /// Write an arbitrary list of blocks — any number per disk — as
    /// **one** vectored submission to the backend, charged to the cost
    /// model as if serviced by the paper's FIFO scheduler
    /// (see [`Self::write_fifo`], which is this plus per-request `Vec`s).
    ///
    /// Returns the number of parallel operations charged.
    pub fn write_gather(&mut self, writes: &[(TrackAddr, &[u8])]) -> Result<usize, IoError> {
        let sizes = self.fifo_cycle_sizes(writes.iter().map(|(a, _)| a))?;
        let bb = self.geom.block_bytes;
        for (_, data) in writes {
            if data.len() > bb {
                return Err(IoError::BlockTooLarge { len: data.len(), block_bytes: bb });
            }
        }
        if writes.is_empty() {
            return Ok(0);
        }
        self.storage.write_scatter(writes).map_err(IoError::from)?;
        for (a, _) in writes {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        for n in &sizes {
            self.stats.record_write(*n, self.geom.num_disks);
        }
        Ok(sizes.len())
    }

    /// Read an arbitrary list of blocks — any number per disk — in one
    /// scatter submission, handing each block to `f(request_index,
    /// bytes)` in request order. On in-memory backends the bytes are
    /// **borrowed from storage** (zero-copy); the cost model charges the
    /// FIFO-packed operations exactly as [`Self::read_fifo`] does.
    ///
    /// Returns the number of parallel operations charged.
    pub fn read_gather_with(
        &mut self,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> Result<usize, IoError> {
        let sizes = self.fifo_cycle_sizes(addrs.iter())?;
        if addrs.is_empty() {
            return Ok(0);
        }
        self.storage.read_scatter_with(addrs, f).map_err(IoError::from)?;
        for a in addrs {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        for n in &sizes {
            self.stats.record_read(*n, self.geom.num_disks);
        }
        Ok(sizes.len())
    }

    /// Begin an asynchronous gather read of `addrs`, charging the cost
    /// model **now** — the same FIFO-packed operations and per-disk
    /// block counts [`Self::read_gather_with`] charges — and returning a
    /// ticket to redeem with [`Self::read_gather_finish`] (passing the
    /// same address list). On asynchronous backends the transfers start
    /// immediately and overlap the caller's compute; on synchronous
    /// backends nothing moves until finish. Either way the [`IoStats`]
    /// are identical to a blocking `read_gather_with` at the same point
    /// in the program: the pipeline changes *when* bytes move on the
    /// wall clock, never what the cost model counts.
    pub fn read_gather_submit(&mut self, addrs: &[TrackAddr]) -> Result<u64, IoError> {
        let sizes = self.fifo_cycle_sizes(addrs.iter())?;
        if addrs.is_empty() {
            return Ok(0);
        }
        let ticket = self.storage.read_scatter_submit(addrs).map_err(IoError::from)?;
        for a in addrs {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        for n in &sizes {
            self.stats.record_read(*n, self.geom.num_disks);
        }
        Ok(ticket)
    }

    /// Complete a read begun with [`Self::read_gather_submit`], handing
    /// each block to `f(request_index, bytes)` in request order. `addrs`
    /// must be the list the ticket was submitted with. Charges nothing —
    /// the submit already did.
    pub fn read_gather_finish(
        &mut self,
        ticket: u64,
        addrs: &[TrackAddr],
        f: &mut dyn FnMut(usize, &[u8]),
    ) -> Result<(), IoError> {
        if addrs.is_empty() {
            return Ok(());
        }
        self.storage.read_scatter_wait(ticket, addrs, f).map_err(IoError::from)
    }

    /// The paper's `DiskWrite` procedure: service a FIFO queue of block
    /// writes, packing blocks into parallel operations **strictly in FIFO
    /// order** and closing the current operation as soon as a block's disk
    /// conflicts with an earlier block in the same cycle.
    ///
    /// Returns the number of parallel operations used. With a staggered
    /// layout this is `ceil(len/D)`; with a naive layout it degrades — the
    /// difference is what the paper's Figure 2 illustrates, and what the
    /// `ablation` benches measure.
    ///
    /// This is [`Self::write_gather`] over owned per-request buffers; the
    /// hot path stages into one pooled buffer and calls `write_gather`
    /// directly.
    pub fn write_fifo(&mut self, queue: &[IoRequest]) -> Result<usize, IoError> {
        let writes: Vec<(TrackAddr, &[u8])> =
            queue.iter().map(|r| (r.addr, r.data.as_slice())).collect();
        self.write_gather(&writes)
    }

    /// Read the blocks produced by `addrs`, chunked greedily into legal
    /// parallel operations (FIFO order, one operation per disk conflict —
    /// mirror of [`Self::write_fifo`]), returning an owned copy of each
    /// block. The hot path uses [`Self::read_gather_with`] to decode
    /// straight from the storage-owned bytes instead.
    pub fn read_fifo(
        &mut self,
        addrs: impl Iterator<Item = TrackAddr>,
    ) -> Result<Vec<Vec<u8>>, IoError> {
        let addrs: Vec<TrackAddr> = addrs.collect();
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(addrs.len());
        self.read_gather_with(&addrs, &mut |_, b| out.push(b.to_vec()))?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(d: usize, b: usize) -> DiskArray {
        DiskArray::new(DiskGeometry::new(d, b))
    }

    #[test]
    fn roundtrip_and_zero_fill() {
        let mut a = arr(3, 4);
        a.parallel_write(&[(TrackAddr::new(1, 5), &[9, 9][..])]).unwrap();
        let r = a
            .parallel_read(&[TrackAddr::new(0, 5), TrackAddr::new(1, 5), TrackAddr::new(2, 0)])
            .unwrap();
        assert_eq!(r[0], vec![0; 4]);
        assert_eq!(r[1], vec![9, 9, 0, 0]);
        assert_eq!(r[2], vec![0; 4]);
    }

    #[test]
    fn conflict_detected() {
        let mut a = arr(2, 4);
        let e = a.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(0, 1)]).unwrap_err();
        assert_eq!(e, IoError::DiskConflict { disk: 0 });
    }

    #[test]
    fn out_of_range_disk_detected() {
        let mut a = arr(2, 4);
        let e = a.parallel_read(&[TrackAddr::new(2, 0)]).unwrap_err();
        assert_eq!(e, IoError::NoSuchDisk { disk: 2, num_disks: 2 });
    }

    #[test]
    fn oversized_block_rejected() {
        let mut a = arr(1, 4);
        let e = a.parallel_write(&[(TrackAddr::new(0, 0), &[0u8; 5][..])]).unwrap_err();
        assert_eq!(e, IoError::BlockTooLarge { len: 5, block_bytes: 4 });
    }

    #[test]
    fn empty_ops_are_free() {
        let mut a = arr(2, 4);
        a.parallel_read(&[]).unwrap();
        a.parallel_write(&[]).unwrap();
        assert_eq!(a.stats().total_ops(), 0);
    }

    #[test]
    fn fifo_write_packs_until_conflict() {
        let mut a = arr(2, 4);
        // disks 0,1,0,1 -> two fully parallel ops
        let q: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest { addr: TrackAddr::new(i % 2, (i / 2) as u64), data: vec![i as u8] })
            .collect();
        assert_eq!(a.write_fifo(&q).unwrap(), 2);
        assert_eq!(a.stats().full_ops, 2);

        // all on disk 0 -> four serial ops
        let mut a = arr(2, 4);
        let q: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest { addr: TrackAddr::new(0, i as u64), data: vec![i as u8] })
            .collect();
        assert_eq!(a.write_fifo(&q).unwrap(), 4);
        assert_eq!(a.stats().full_ops, 0);
    }

    #[test]
    fn fifo_read_matches_write_order() {
        let mut a = arr(3, 2);
        let addrs: Vec<TrackAddr> = (0..7).map(|i| TrackAddr::new(i % 3, (i / 3) as u64)).collect();
        for (i, &ad) in addrs.iter().enumerate() {
            a.parallel_write(&[(ad, &[i as u8, 0][..])]).unwrap();
        }
        let blocks = a.read_fifo(addrs.iter().copied()).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b[0], i as u8);
        }
        // 7 blocks over 3 disks, round-robin -> 3 ops
        assert_eq!(a.stats().read_ops, 3);
    }

    #[test]
    fn per_disk_accounting() {
        let mut a = arr(2, 4);
        a.parallel_write(&[(TrackAddr::new(0, 0), &[1][..]), (TrackAddr::new(1, 0), &[2][..])])
            .unwrap();
        a.parallel_read(&[TrackAddr::new(0, 0)]).unwrap();
        assert_eq!(a.stats().per_disk_blocks, vec![2, 1]);
    }

    #[test]
    fn gather_counts_like_fifo() {
        // 7 blocks round-robin over 3 disks: the FIFO scheduler and the
        // gather path must charge the identical 3 read + 3 write ops.
        let addrs: Vec<TrackAddr> = (0..7).map(|i| TrackAddr::new(i % 3, (i / 3) as u64)).collect();
        let payloads: Vec<Vec<u8>> = (0..7).map(|i| vec![i as u8, 7]).collect();

        let mut fifo = arr(3, 2);
        let q: Vec<IoRequest> = addrs
            .iter()
            .zip(&payloads)
            .map(|(&addr, data)| IoRequest { addr, data: data.clone() })
            .collect();
        fifo.write_fifo(&q).unwrap();
        let fifo_blocks = fifo.read_fifo(addrs.iter().copied()).unwrap();

        let mut gather = arr(3, 2);
        let writes: Vec<(TrackAddr, &[u8])> =
            addrs.iter().zip(&payloads).map(|(&a, d)| (a, d.as_slice())).collect();
        assert_eq!(gather.write_gather(&writes).unwrap(), 3);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let ops = gather.read_gather_with(&addrs, &mut |i, b| {
            assert_eq!(i, got.len());
            got.push(b.to_vec());
        });
        assert_eq!(ops.unwrap(), 3);

        assert_eq!(got, fifo_blocks);
        assert_eq!(gather.stats(), fifo.stats(), "gather and FIFO accounting must be identical");
    }

    #[test]
    fn gather_rejects_bad_requests_and_empty_is_free() {
        let mut a = arr(2, 4);
        assert_eq!(a.write_gather(&[]).unwrap(), 0);
        assert_eq!(a.read_gather_with(&[], &mut |_, _| panic!("no blocks")).unwrap(), 0);
        assert_eq!(a.stats().total_ops(), 0);
        let e = a.write_gather(&[(TrackAddr::new(5, 0), &[1][..])]).unwrap_err();
        assert_eq!(e, IoError::NoSuchDisk { disk: 5, num_disks: 2 });
        let e = a.write_gather(&[(TrackAddr::new(0, 0), &[1u8; 9][..])]).unwrap_err();
        assert_eq!(e, IoError::BlockTooLarge { len: 9, block_bytes: 4 });
        assert_eq!(a.stats().total_ops(), 0, "failed gathers charge nothing");
    }

    #[test]
    fn pool_recycles_staging_buffers() {
        let a = arr(2, 4);
        let b = a.pool().checkout(8);
        drop(b);
        let _b2 = a.pool().checkout(4);
        assert_eq!(a.pool().stats().reused, 1);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut a = arr(1, 4);
        a.parallel_write(&[(TrackAddr::new(0, 0), &[1, 2, 3, 4][..])]).unwrap();
        a.parallel_write(&[(TrackAddr::new(0, 0), &[9][..])]).unwrap();
        let r = a.parallel_read(&[TrackAddr::new(0, 0)]).unwrap();
        assert_eq!(r[0], vec![9, 0, 0, 0]);
    }
}
