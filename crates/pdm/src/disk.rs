//! The simulated disk array.
//!
//! [`DiskArray`] models the `D` drives of one EM-CGM processor. The
//! central invariant, enforced on every operation, is the PDM rule that a
//! single parallel I/O may access **at most one track per disk**. Any
//! violation is a programming error in the layer above and is reported as
//! an [`IoError`] rather than silently serialised, so layout bugs (the
//! kind the paper's staggered format exists to prevent) cannot hide.

use crate::file_backend::FileStorage;
use crate::stats::IoStats;
use crate::storage::{MemStorage, TrackStorage};
use crate::DiskGeometry;

/// Address of one block: drive index plus track number on that drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackAddr {
    /// Drive index, `0 ≤ disk < D`.
    pub disk: usize,
    /// Track number on that drive.
    pub track: u64,
}

impl TrackAddr {
    /// Convenience constructor.
    pub fn new(disk: usize, track: u64) -> Self {
        Self { disk, track }
    }
}

/// A single block transfer request (used by the FIFO write scheduler).
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Where the block goes.
    pub addr: TrackAddr,
    /// Block payload; at most `block_bytes` long (shorter payloads are
    /// zero-padded on disk).
    pub data: Vec<u8>,
}

/// Errors surfaced by the disk array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Two requests in one parallel operation addressed the same disk.
    DiskConflict {
        /// The drive that was addressed twice.
        disk: usize,
    },
    /// A request addressed a drive `>= D`.
    NoSuchDisk {
        /// The offending drive index.
        disk: usize,
        /// Number of drives in the array.
        num_disks: usize,
    },
    /// A write payload exceeded the block size.
    BlockTooLarge {
        /// Payload length in bytes.
        len: usize,
        /// Configured block size in bytes.
        block_bytes: usize,
    },
    /// A typed storage fault (see [`crate::fault`]) survived the
    /// backend's recovery machinery and reached the array.
    Fault {
        /// Taxonomy class ([`crate::IoErrorKind`]).
        kind: crate::fault::IoErrorKind,
        /// Drive the faulting operation addressed.
        disk: usize,
        /// Track the faulting operation addressed.
        track: u64,
        /// Human-readable fault description.
        detail: String,
    },
    /// Underlying file backend failed (untyped).
    Backend(String),
}

impl From<std::io::Error> for IoError {
    /// Backend errors carrying a [`crate::fault::FaultError`] payload map
    /// to the typed [`IoError::Fault`]; anything else stays untyped.
    fn from(e: std::io::Error) -> Self {
        match e.get_ref().and_then(|r| r.downcast_ref::<crate::fault::FaultError>()) {
            Some(fe) => IoError::Fault {
                kind: fe.kind,
                disk: fe.disk,
                track: fe.track,
                detail: fe.detail.clone(),
            },
            None => IoError::Backend(e.to_string()),
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::DiskConflict { disk } => {
                write!(f, "parallel I/O touches disk {disk} more than once")
            }
            IoError::NoSuchDisk { disk, num_disks } => {
                write!(f, "disk {disk} out of range (array has {num_disks})")
            }
            IoError::BlockTooLarge { len, block_bytes } => {
                write!(f, "payload of {len} bytes exceeds block size {block_bytes}")
            }
            IoError::Fault { kind, disk, track, detail } => {
                write!(f, "{kind} fault on disk {disk} track {track}: {detail}")
            }
            IoError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A `D`-drive disk array with exact parallel-I/O accounting.
///
/// ```
/// use cgmio_pdm::{DiskArray, DiskGeometry, TrackAddr};
/// let mut arr = DiskArray::new(DiskGeometry::new(2, 8));
/// arr.parallel_write(&[
///     (TrackAddr::new(0, 0), &[1u8; 8][..]),
///     (TrackAddr::new(1, 0), &[2u8; 8][..]),
/// ]).unwrap();
/// let blocks = arr.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(1, 0)]).unwrap();
/// assert_eq!(blocks[0], vec![1u8; 8]);
/// assert_eq!(arr.stats().total_ops(), 2);
/// assert_eq!(arr.stats().full_ops, 2);
/// ```
pub struct DiskArray {
    geom: DiskGeometry,
    storage: Box<dyn TrackStorage>,
    stats: IoStats,
}

impl DiskArray {
    /// Create an in-memory disk array.
    pub fn new(geom: DiskGeometry) -> Self {
        Self::with_storage(geom, Box::new(MemStorage::new(geom)))
    }

    /// Create a disk array backed by real files in `dir` (one file per
    /// drive). I/O accounting is identical to the in-memory backend.
    pub fn new_file_backed(geom: DiskGeometry, dir: &std::path::Path) -> Result<Self, IoError> {
        let fs = FileStorage::open(dir, geom).map_err(|e| IoError::Backend(e.to_string()))?;
        Ok(Self::with_storage(geom, Box::new(fs)))
    }

    /// Create a disk array over an arbitrary [`TrackStorage`] backend
    /// (e.g. `cgmio_io::ConcurrentStorage`). The accounting and legality
    /// layer is identical for every backend.
    pub fn with_storage(geom: DiskGeometry, storage: Box<dyn TrackStorage>) -> Self {
        Self { storage, stats: IoStats::new(geom.num_disks), geom }
    }

    /// The array geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.geom
    }

    /// I/O counters accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reset the I/O counters (the disk contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::new(self.geom.num_disks);
    }

    /// Highest allocated track per disk (diagnostics / disk-space audit).
    pub fn tracks_used(&self) -> Vec<u64> {
        self.storage.tracks_used()
    }

    /// Hint that these tracks will be read soon. Free in the cost model
    /// (no [`IoStats`] change) and a no-op on synchronous backends; the
    /// concurrent backend starts fetching them in the background.
    pub fn prefetch(&self, addrs: &[TrackAddr]) {
        self.storage.prefetch(addrs);
    }

    /// Drain the backend's write pipeline, surfacing any deferred write
    /// error; with `sync` also force data to stable storage. Free in the
    /// cost model — write-behind I/Os were already counted when issued.
    pub fn flush(&self, sync: bool) -> Result<(), IoError> {
        self.storage.flush(sync).map_err(IoError::from)
    }

    fn check_op(&self, addrs: impl Iterator<Item = TrackAddr>) -> Result<usize, IoError> {
        let mut seen = vec![false; self.geom.num_disks];
        let mut n = 0;
        for a in addrs {
            if a.disk >= self.geom.num_disks {
                return Err(IoError::NoSuchDisk { disk: a.disk, num_disks: self.geom.num_disks });
            }
            if seen[a.disk] {
                return Err(IoError::DiskConflict { disk: a.disk });
            }
            seen[a.disk] = true;
            n += 1;
        }
        Ok(n)
    }

    /// One parallel read of up to `D` blocks (distinct disks). Returns the
    /// block contents in request order; unwritten tracks read as zeros.
    pub fn parallel_read(&mut self, addrs: &[TrackAddr]) -> Result<Vec<Vec<u8>>, IoError> {
        let n = self.check_op(addrs.iter().copied())?;
        if n == 0 {
            return Ok(Vec::new());
        }
        // Legality established above: ≤ 1 track per disk, so the backend
        // may issue the transfers of this operation concurrently.
        let out = self.storage.read_batch(addrs).map_err(IoError::from)?;
        for a in addrs {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        self.stats.record_read(n, self.geom.num_disks);
        Ok(out)
    }

    /// One parallel write of up to `D` blocks (distinct disks). Payloads
    /// shorter than a block are zero-padded.
    pub fn parallel_write(&mut self, writes: &[(TrackAddr, &[u8])]) -> Result<(), IoError> {
        let n = self.check_op(writes.iter().map(|(a, _)| *a))?;
        if n == 0 {
            return Ok(());
        }
        let bb = self.geom.block_bytes;
        for (_, data) in writes {
            if data.len() > bb {
                return Err(IoError::BlockTooLarge { len: data.len(), block_bytes: bb });
            }
        }
        self.storage.write_batch(writes).map_err(IoError::from)?;
        for (a, _) in writes {
            self.stats.per_disk_blocks[a.disk] += 1;
        }
        self.stats.record_write(n, self.geom.num_disks);
        Ok(())
    }

    /// The paper's `DiskWrite` procedure: service a FIFO queue of block
    /// writes, packing blocks into parallel operations **strictly in FIFO
    /// order** and closing the current operation as soon as a block's disk
    /// conflicts with an earlier block in the same cycle.
    ///
    /// Returns the number of parallel operations used. With a staggered
    /// layout this is `ceil(len/D)`; with a naive layout it degrades — the
    /// difference is what the paper's Figure 2 illustrates, and what the
    /// `ablation` benches measure.
    pub fn write_fifo(&mut self, queue: &[IoRequest]) -> Result<usize, IoError> {
        let mut ops = 0;
        let mut cycle: Vec<(TrackAddr, &[u8])> = Vec::with_capacity(self.geom.num_disks);
        let mut used = vec![false; self.geom.num_disks];
        for req in queue {
            if req.addr.disk >= self.geom.num_disks {
                return Err(IoError::NoSuchDisk {
                    disk: req.addr.disk,
                    num_disks: self.geom.num_disks,
                });
            }
            if used[req.addr.disk] || cycle.len() == self.geom.num_disks {
                self.parallel_write(&cycle)?;
                ops += 1;
                cycle.clear();
                used.iter_mut().for_each(|u| *u = false);
            }
            used[req.addr.disk] = true;
            cycle.push((req.addr, &req.data));
        }
        if !cycle.is_empty() {
            self.parallel_write(&cycle)?;
            ops += 1;
        }
        Ok(ops)
    }

    /// Read `nblocks` blocks whose addresses are produced by `addrs`,
    /// chunked greedily into legal parallel operations (FIFO order, one
    /// operation per disk conflict — mirror of [`Self::write_fifo`]).
    pub fn read_fifo(
        &mut self,
        addrs: impl Iterator<Item = TrackAddr>,
    ) -> Result<Vec<Vec<u8>>, IoError> {
        let mut out = Vec::new();
        let mut cycle: Vec<TrackAddr> = Vec::with_capacity(self.geom.num_disks);
        let mut used = vec![false; self.geom.num_disks];
        for a in addrs {
            if a.disk >= self.geom.num_disks {
                return Err(IoError::NoSuchDisk { disk: a.disk, num_disks: self.geom.num_disks });
            }
            if used[a.disk] || cycle.len() == self.geom.num_disks {
                out.extend(self.parallel_read(&cycle)?);
                cycle.clear();
                used.iter_mut().for_each(|u| *u = false);
            }
            used[a.disk] = true;
            cycle.push(a);
        }
        if !cycle.is_empty() {
            out.extend(self.parallel_read(&cycle)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(d: usize, b: usize) -> DiskArray {
        DiskArray::new(DiskGeometry::new(d, b))
    }

    #[test]
    fn roundtrip_and_zero_fill() {
        let mut a = arr(3, 4);
        a.parallel_write(&[(TrackAddr::new(1, 5), &[9, 9][..])]).unwrap();
        let r = a
            .parallel_read(&[TrackAddr::new(0, 5), TrackAddr::new(1, 5), TrackAddr::new(2, 0)])
            .unwrap();
        assert_eq!(r[0], vec![0; 4]);
        assert_eq!(r[1], vec![9, 9, 0, 0]);
        assert_eq!(r[2], vec![0; 4]);
    }

    #[test]
    fn conflict_detected() {
        let mut a = arr(2, 4);
        let e = a.parallel_read(&[TrackAddr::new(0, 0), TrackAddr::new(0, 1)]).unwrap_err();
        assert_eq!(e, IoError::DiskConflict { disk: 0 });
    }

    #[test]
    fn out_of_range_disk_detected() {
        let mut a = arr(2, 4);
        let e = a.parallel_read(&[TrackAddr::new(2, 0)]).unwrap_err();
        assert_eq!(e, IoError::NoSuchDisk { disk: 2, num_disks: 2 });
    }

    #[test]
    fn oversized_block_rejected() {
        let mut a = arr(1, 4);
        let e = a.parallel_write(&[(TrackAddr::new(0, 0), &[0u8; 5][..])]).unwrap_err();
        assert_eq!(e, IoError::BlockTooLarge { len: 5, block_bytes: 4 });
    }

    #[test]
    fn empty_ops_are_free() {
        let mut a = arr(2, 4);
        a.parallel_read(&[]).unwrap();
        a.parallel_write(&[]).unwrap();
        assert_eq!(a.stats().total_ops(), 0);
    }

    #[test]
    fn fifo_write_packs_until_conflict() {
        let mut a = arr(2, 4);
        // disks 0,1,0,1 -> two fully parallel ops
        let q: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest { addr: TrackAddr::new(i % 2, (i / 2) as u64), data: vec![i as u8] })
            .collect();
        assert_eq!(a.write_fifo(&q).unwrap(), 2);
        assert_eq!(a.stats().full_ops, 2);

        // all on disk 0 -> four serial ops
        let mut a = arr(2, 4);
        let q: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest { addr: TrackAddr::new(0, i as u64), data: vec![i as u8] })
            .collect();
        assert_eq!(a.write_fifo(&q).unwrap(), 4);
        assert_eq!(a.stats().full_ops, 0);
    }

    #[test]
    fn fifo_read_matches_write_order() {
        let mut a = arr(3, 2);
        let addrs: Vec<TrackAddr> = (0..7).map(|i| TrackAddr::new(i % 3, (i / 3) as u64)).collect();
        for (i, &ad) in addrs.iter().enumerate() {
            a.parallel_write(&[(ad, &[i as u8, 0][..])]).unwrap();
        }
        let blocks = a.read_fifo(addrs.iter().copied()).unwrap();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b[0], i as u8);
        }
        // 7 blocks over 3 disks, round-robin -> 3 ops
        assert_eq!(a.stats().read_ops, 3);
    }

    #[test]
    fn per_disk_accounting() {
        let mut a = arr(2, 4);
        a.parallel_write(&[(TrackAddr::new(0, 0), &[1][..]), (TrackAddr::new(1, 0), &[2][..])])
            .unwrap();
        a.parallel_read(&[TrackAddr::new(0, 0)]).unwrap();
        assert_eq!(a.stats().per_disk_blocks, vec![2, 1]);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut a = arr(1, 4);
        a.parallel_write(&[(TrackAddr::new(0, 0), &[1, 2, 3, 4][..])]).unwrap();
        a.parallel_write(&[(TrackAddr::new(0, 0), &[9][..])]).unwrap();
        let r = a.parallel_read(&[TrackAddr::new(0, 0)]).unwrap();
        assert_eq!(r[0], vec![9, 0, 0, 0]);
    }
}
