//! Disk timing model.
//!
//! The PDM charges one unit per parallel I/O; to reproduce the *wall
//! clock* figures of the paper (Figures 3, 4 and 8) we additionally model
//! each operation as a fixed positioning overhead (seek + rotational
//! latency) followed by a sequential transfer of one block per
//! participating disk — with all participating disks overlapping, so an
//! operation's latency is that of a single block regardless of how many
//! drives take part. This is exactly the incentive structure the paper's
//! model encodes: blocked access amortises positioning, parallel disks
//! multiply bandwidth for free.

use crate::{DiskGeometry, IoStats};

/// Seek + transfer cost model for one drive.
#[derive(Debug, Clone, Copy)]
pub struct DiskTimingModel {
    /// Average positioning overhead per operation, microseconds
    /// (seek + rotational latency).
    pub position_us: f64,
    /// Sequential transfer bandwidth, bytes per microsecond
    /// (1.0 = ~1 MB/s, 50.0 = ~50 MB/s).
    pub bandwidth_bytes_per_us: f64,
}

impl DiskTimingModel {
    /// A model shaped like the late-90s commodity drives the paper used:
    /// ~12 ms positioning, ~8 MB/s sequential transfer.
    pub fn nineties_disk() -> Self {
        Self { position_us: 12_000.0, bandwidth_bytes_per_us: 8.0 }
    }

    /// A model shaped like a modern SATA HDD: ~8 ms positioning,
    /// ~150 MB/s transfer.
    pub fn modern_hdd() -> Self {
        Self { position_us: 8_000.0, bandwidth_bytes_per_us: 150.0 }
    }

    /// Latency of one parallel operation transferring one block of
    /// `block_bytes` per participating disk (disks overlap).
    pub fn op_time_us(&self, block_bytes: usize) -> f64 {
        self.position_us + block_bytes as f64 / self.bandwidth_bytes_per_us
    }

    /// Wall-clock estimate for an I/O trace: every parallel operation
    /// costs [`Self::op_time_us`] once.
    pub fn time_for_us(&self, stats: &IoStats, geom: DiskGeometry) -> f64 {
        stats.total_ops() as f64 * self.op_time_us(geom.block_bytes)
    }

    /// Effective throughput (bytes per second) when reading/writing with
    /// blocks of `block_bytes` on a single drive. This is the quantity
    /// Stevens measured in the paper's Figure 8: tiny blocks are
    /// overhead-dominated, large blocks approach raw bandwidth.
    pub fn throughput_bytes_per_s(&self, block_bytes: usize) -> f64 {
        block_bytes as f64 / self.op_time_us(block_bytes) * 1e6
    }

    /// Block size (bytes) beyond which at least `frac` (e.g. 0.9) of raw
    /// bandwidth is achieved — the "knee" of the Figure 8 curve.
    pub fn knee_block_bytes(&self, frac: f64) -> usize {
        assert!((0.0..1.0).contains(&frac));
        // throughput = b / (pos + b/bw) >= frac*bw  <=>  b >= frac/(1-frac)*pos*bw
        (frac / (1.0 - frac) * self.position_us * self.bandwidth_bytes_per_us).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_time_is_overhead_plus_transfer() {
        let m = DiskTimingModel { position_us: 100.0, bandwidth_bytes_per_us: 10.0 };
        assert!((m.op_time_us(1000) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_monotone_in_block_size() {
        let m = DiskTimingModel::nineties_disk();
        let mut last = 0.0;
        for b in [512, 4096, 65536, 1 << 20, 8 << 20] {
            let t = m.throughput_bytes_per_s(b);
            assert!(t > last, "throughput must rise with block size");
            last = t;
        }
        // and saturates below raw bandwidth
        assert!(last < m.bandwidth_bytes_per_us * 1e6);
    }

    #[test]
    fn knee_achieves_requested_fraction() {
        let m = DiskTimingModel::nineties_disk();
        let b = m.knee_block_bytes(0.9);
        let raw = m.bandwidth_bytes_per_us * 1e6;
        assert!(m.throughput_bytes_per_s(b) >= 0.9 * raw * 0.999);
        assert!(m.throughput_bytes_per_s(b / 4) < 0.9 * raw);
    }

    #[test]
    fn trace_time_counts_ops() {
        let m = DiskTimingModel { position_us: 10.0, bandwidth_bytes_per_us: 1.0 };
        let geom = DiskGeometry::new(2, 90);
        let mut s = IoStats::new(2);
        s.record_read(2, 2);
        s.record_write(1, 2);
        // 2 ops * (10 + 90) us
        assert!((m.time_for_us(&s, geom) - 200.0).abs() < 1e-9);
    }
}
