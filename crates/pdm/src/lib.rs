//! # cgmio-pdm — Parallel Disk Model substrate
//!
//! This crate implements the *Parallel Disk Model* (PDM) of Vitter and
//! Shriver as used by Dehne, Dittrich, Hutchinson and Maheshwari in
//! *"Reducing I/O Complexity by Simulating Coarse Grained Parallel
//! Algorithms"* (IPPS 1999).
//!
//! A [`DiskArray`] models `D` independent disk drives attached to one
//! processor. Each drive is a sequence of fixed-size *tracks*; a track
//! stores exactly one *block* of `B` bytes. A single **parallel I/O
//! operation** may touch **at most one track per disk** (but any subset of
//! the disks), and costs one unit (`G` in the paper's EM-CGM model)
//! regardless of how many disks participate — so the model rewards fully
//! parallel, blocked access, exactly as the paper describes.
//!
//! The crate provides:
//!
//! * [`DiskArray`] — the simulated drive array with strict legality
//!   checking and exact [`IoStats`] accounting,
//! * [`layout`] — the paper's *consecutive* and *staggered* disk formats
//!   (its Section 2.1 and Figure 2) as pure address arithmetic,
//! * [`Item`] — fixed-size binary encoding for the records that flow
//!   through disks and messages,
//! * [`timing`] — a seek + transfer disk timing model used to convert I/O
//!   counts into wall-clock estimates (and to reproduce the paper's
//!   Figure 8 block-size curve),
//! * [`paged`] — an LRU demand-paging simulator standing in for the
//!   "virtual memory" baseline of the paper's Figure 3 and for the cache
//!   extension of its Section 5,
//! * [`pool`] — reusable block buffers ([`BlockPool`]) backing the
//!   zero-copy scatter-gather data path,
//! * [`storage`] — the [`TrackStorage`] trait the array's byte-moving is
//!   delegated to, with the in-memory backend; the concurrent engine in
//!   the `cgmio-io` crate plugs in through the same trait,
//! * [`file_backend`] — an optional real-file backend so the same code
//!   paths can be exercised against a filesystem,
//! * [`fault`] — a deterministic, seeded fault injector wrapping any
//!   [`TrackStorage`], plus the `Transient`/`Corrupt`/`Permanent` error
//!   taxonomy the recovery layers above are built on.

#![deny(missing_docs)]

pub mod disk;
pub mod fault;
pub mod file_backend;
pub mod item;
pub mod layout;
pub mod paged;
pub mod pool;
pub mod stats;
pub mod storage;
pub mod testutil;
pub mod timing;

pub use disk::{DiskArray, IoError, IoRequest, TrackAddr};
pub use fault::{
    classify, FaultCounts, FaultError, FaultInjector, FaultPlan, FaultStats, IoErrorKind,
};
pub use file_backend::FileStorage;
pub use item::{CodecError, Item, SpanDecoder};
pub use layout::{consecutive_addr, staggered_addr, Layout, MessageMatrixLayout};
pub use paged::PagedStore;
pub use pool::{BlockPool, PoolStats, PooledBlock};
pub use stats::IoStats;
pub use storage::{MemStorage, TrackRange, TrackStorage};
pub use timing::DiskTimingModel;

/// Geometry of a disk array: number of drives and block size.
///
/// All sizes are in **bytes**; higher layers that think in "items"
/// convert via [`Item::SIZE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Number of disk drives (`D` in the paper).
    pub num_disks: usize,
    /// Block (track) size in bytes (`B·sizeof(item)` in the paper).
    pub block_bytes: usize,
}

impl DiskGeometry {
    /// Create a geometry, panicking on degenerate values.
    pub fn new(num_disks: usize, block_bytes: usize) -> Self {
        assert!(num_disks >= 1, "need at least one disk");
        assert!(block_bytes >= 1, "block size must be positive");
        Self { num_disks, block_bytes }
    }

    /// Number of blocks needed to hold `bytes` bytes.
    pub fn blocks_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.block_bytes)
    }

    /// Number of parallel I/O operations needed to move `nblocks` blocks
    /// at full parallelism.
    pub fn ops_for_blocks(&self, nblocks: usize) -> usize {
        nblocks.div_ceil(self.num_disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_block_math() {
        let g = DiskGeometry::new(4, 512);
        assert_eq!(g.blocks_for(0), 0);
        assert_eq!(g.blocks_for(1), 1);
        assert_eq!(g.blocks_for(512), 1);
        assert_eq!(g.blocks_for(513), 2);
        assert_eq!(g.ops_for_blocks(0), 0);
        assert_eq!(g.ops_for_blocks(4), 1);
        assert_eq!(g.ops_for_blocks(5), 2);
    }

    #[test]
    #[should_panic]
    fn geometry_rejects_zero_disks() {
        let _ = DiskGeometry::new(0, 512);
    }

    #[test]
    #[should_panic]
    fn geometry_rejects_zero_block() {
        let _ = DiskGeometry::new(1, 0);
    }
}
