//! Real-file storage backend: one file per simulated drive.
//!
//! The accounting layer in [`crate::DiskArray`] is backend-agnostic; this
//! backend exists so the same simulation code paths can be exercised
//! against a real filesystem (the paper's prototype ran on physical
//! disks). Tracks map to file offsets `track * block_bytes`.
//!
//! All I/O uses position-independent [`FileExt::read_at`] /
//! [`FileExt::write_at`], so a `FileStorage` is `Sync` and can serve
//! several drives' worker threads concurrently without seek races —
//! which is what `cgmio_io::ConcurrentStorage` layers on top of.

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;

use crate::storage::TrackStorage;
use crate::DiskGeometry;

/// File-backed track storage for a disk array.
pub struct FileStorage {
    files: Vec<File>,
    block_bytes: usize,
    /// One block of zeros, allocated once and shared by every short
    /// write's tail padding (writes never exceed a block).
    zeros: Box<[u8]>,
}

impl FileStorage {
    /// Open (creating if needed) one backing file per drive inside `dir`.
    pub fn open(dir: &Path, geom: DiskGeometry) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(geom.num_disks);
        for d in 0..geom.num_disks {
            let path = dir.join(format!("disk{d}.dat"));
            // keep existing contents: reopening an array must see the
            // previously written tracks
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            files.push(f);
        }
        Ok(Self {
            files,
            block_bytes: geom.block_bytes,
            zeros: vec![0u8; geom.block_bytes].into_boxed_slice(),
        })
    }

    /// Read one track; short reads (past EOF) are zero-filled, matching
    /// the in-memory backend's fresh-disk semantics.
    pub fn read_track(&self, disk: usize, track: u64) -> std::io::Result<Vec<u8>> {
        let f = &self.files[disk];
        let off = track * self.block_bytes as u64;
        let mut buf = vec![0u8; self.block_bytes];
        let mut read = 0;
        while read < buf.len() {
            match f.read_at(&mut buf[read..], off + read as u64)? {
                0 => break,
                n => read += n,
            }
        }
        Ok(buf)
    }

    /// Write one track (zero-padding short payloads).
    pub fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> std::io::Result<()> {
        let f = &self.files[disk];
        let off = track * self.block_bytes as u64;
        f.write_all_at(data, off)?;
        if data.len() < self.block_bytes {
            f.write_all_at(&self.zeros[data.len()..], off + data.len() as u64)?;
        }
        Ok(())
    }

    /// Force one drive's data to stable storage.
    pub fn sync_disk(&self, disk: usize) -> std::io::Result<()> {
        self.files[disk].sync_all()
    }

    /// Allocated track count per drive, derived from file lengths.
    pub fn tracks_used(&self) -> Vec<u64> {
        self.files
            .iter()
            .map(|f| f.metadata().map(|m| m.len() / self.block_bytes as u64).unwrap_or(0))
            .collect()
    }
}

impl TrackStorage for FileStorage {
    fn read_track(&self, disk: usize, track: u64) -> std::io::Result<Vec<u8>> {
        FileStorage::read_track(self, disk, track)
    }

    fn write_track(&self, disk: usize, track: u64, data: &[u8]) -> std::io::Result<()> {
        FileStorage::write_track(self, disk, track, data)
    }

    fn flush(&self, sync: bool) -> std::io::Result<()> {
        if sync {
            for d in 0..self.files.len() {
                self.sync_disk(d)?;
            }
        }
        Ok(())
    }

    fn sync_disk(&self, disk: usize) -> std::io::Result<()> {
        FileStorage::sync_disk(self, disk)
    }

    fn tracks_used(&self) -> Vec<u64> {
        FileStorage::tracks_used(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::{DiskArray, TrackAddr};

    #[test]
    fn file_backed_roundtrip() {
        let dir = TempDir::new("cgmio-fb");
        let geom = DiskGeometry::new(2, 16);
        let mut a = DiskArray::new_file_backed(geom, dir.path()).unwrap();
        a.parallel_write(&[
            (TrackAddr::new(0, 3), &[7u8; 16][..]),
            (TrackAddr::new(1, 0), &[8u8; 8][..]),
        ])
        .unwrap();
        let r = a.parallel_read(&[TrackAddr::new(0, 3), TrackAddr::new(1, 0)]).unwrap();
        assert_eq!(r[0], vec![7u8; 16]);
        assert_eq!(&r[1][..8], &[8u8; 8]);
        assert_eq!(&r[1][8..], &[0u8; 8]);
        // unwritten track reads as zeros
        let r = a.parallel_read(&[TrackAddr::new(0, 100)]).unwrap();
        assert_eq!(r[0], vec![0u8; 16]);
        assert_eq!(a.stats().total_ops(), 3);
    }

    #[test]
    fn reopen_preserves_data() {
        let dir = TempDir::new("cgmio-fb2");
        let geom = DiskGeometry::new(1, 8);
        {
            let mut a = DiskArray::new_file_backed(geom, dir.path()).unwrap();
            a.parallel_write(&[(TrackAddr::new(0, 1), &[5u8; 8][..])]).unwrap();
        }
        let mut b = DiskArray::new_file_backed(geom, dir.path()).unwrap();
        let r = b.parallel_read(&[TrackAddr::new(0, 1)]).unwrap();
        assert_eq!(r[0], vec![5u8; 8]);
        assert_eq!(b.tracks_used(), vec![2]);
    }

    #[test]
    fn overwrite_pads_stale_tail_with_zeros() {
        let dir = TempDir::new("cgmio-fb3");
        let s = FileStorage::open(dir.path(), DiskGeometry::new(1, 8)).unwrap();
        s.write_track(0, 0, &[0xFF; 8]).unwrap();
        s.write_track(0, 0, &[1, 2]).unwrap();
        assert_eq!(s.read_track(0, 0).unwrap(), vec![1, 2, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn concurrent_positioned_io_has_no_seek_races() {
        let dir = TempDir::new("cgmio-fb4");
        let s =
            std::sync::Arc::new(FileStorage::open(dir.path(), DiskGeometry::new(1, 8)).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        s.write_track(0, t, &[t as u8; 8]).unwrap();
                        assert_eq!(s.read_track(0, t).unwrap(), vec![t as u8; 8]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
