//! Real-file storage backend: one file per simulated drive.
//!
//! The accounting layer in [`crate::DiskArray`] is backend-agnostic; this
//! backend exists so the same simulation code paths can be exercised
//! against a real filesystem (the paper's prototype ran on physical
//! disks). Tracks map to file offsets `track * block_bytes`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::DiskGeometry;

/// File-backed track storage for a disk array.
pub struct FileStorage {
    files: Vec<File>,
    block_bytes: usize,
}

impl FileStorage {
    /// Open (creating if needed) one backing file per drive inside `dir`.
    pub fn open(dir: &Path, geom: DiskGeometry) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(geom.num_disks);
        for d in 0..geom.num_disks {
            let path = dir.join(format!("disk{d}.dat"));
            // keep existing contents: reopening an array must see the
            // previously written tracks
            let f = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
            files.push(f);
        }
        Ok(Self { files, block_bytes: geom.block_bytes })
    }

    /// Read one track; short reads (past EOF) are zero-filled, matching
    /// the in-memory backend's fresh-disk semantics.
    pub fn read_track(&mut self, disk: usize, track: u64) -> std::io::Result<Vec<u8>> {
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start(track * self.block_bytes as u64))?;
        let mut buf = vec![0u8; self.block_bytes];
        let mut read = 0;
        while read < buf.len() {
            match f.read(&mut buf[read..])? {
                0 => break,
                n => read += n,
            }
        }
        Ok(buf)
    }

    /// Write one track (zero-padding short payloads).
    pub fn write_track(&mut self, disk: usize, track: u64, data: &[u8]) -> std::io::Result<()> {
        let f = &mut self.files[disk];
        f.seek(SeekFrom::Start(track * self.block_bytes as u64))?;
        f.write_all(data)?;
        if data.len() < self.block_bytes {
            let pad = vec![0u8; self.block_bytes - data.len()];
            f.write_all(&pad)?;
        }
        Ok(())
    }

    /// Allocated track count per drive, derived from file lengths.
    pub fn tracks_used(&self) -> Vec<u64> {
        self.files
            .iter()
            .map(|f| f.metadata().map(|m| m.len() / self.block_bytes as u64).unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskArray, TrackAddr};

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cgmio-fb-{}", std::process::id()));
        let geom = DiskGeometry::new(2, 16);
        let mut a = DiskArray::new_file_backed(geom, &dir).unwrap();
        a.parallel_write(&[
            (TrackAddr::new(0, 3), &[7u8; 16][..]),
            (TrackAddr::new(1, 0), &[8u8; 8][..]),
        ])
        .unwrap();
        let r = a.parallel_read(&[TrackAddr::new(0, 3), TrackAddr::new(1, 0)]).unwrap();
        assert_eq!(r[0], vec![7u8; 16]);
        assert_eq!(&r[1][..8], &[8u8; 8]);
        assert_eq!(&r[1][8..], &[0u8; 8]);
        // unwritten track reads as zeros
        let r = a.parallel_read(&[TrackAddr::new(0, 100)]).unwrap();
        assert_eq!(r[0], vec![0u8; 16]);
        assert_eq!(a.stats().total_ops(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_preserves_data() {
        let dir = std::env::temp_dir().join(format!("cgmio-fb2-{}", std::process::id()));
        let geom = DiskGeometry::new(1, 8);
        {
            let mut a = DiskArray::new_file_backed(geom, &dir).unwrap();
            a.parallel_write(&[(TrackAddr::new(0, 1), &[5u8; 8][..])]).unwrap();
        }
        let mut b = DiskArray::new_file_backed(geom, &dir).unwrap();
        let r = b.parallel_read(&[TrackAddr::new(0, 1)]).unwrap();
        assert_eq!(r[0], vec![5u8; 8]);
        assert_eq!(b.tracks_used(), vec![2]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
