//! The paper's *consecutive* and *staggered* disk formats (Section 2.1,
//! Figure 2 and the appendix of the paper) as pure address arithmetic.
//!
//! Both formats place a logical stream of blocks onto the `D` drives in
//! round-robin order starting from some *disk offset*; the staggered
//! message-matrix format additionally chooses a different disk offset for
//! each destination band so that **writers (iterating over destinations)
//! and readers (iterating over sources) both see a perfect round-robin
//! disk sequence** — which is exactly the property that makes every
//! parallel I/O operation use all `D` disks.

use crate::disk::TrackAddr;

/// The consecutive format of the paper:
/// the `q`-th block of a stream is placed on disk `(d + q) mod D`, track
/// `T0 + (d + q) / D`, where `T0` is the base track and `d` the disk
/// offset of the stream's first block.
pub fn consecutive_addr(
    num_disks: usize,
    base_track: u64,
    disk_offset: usize,
    q: u64,
) -> TrackAddr {
    let idx = disk_offset as u64 + q;
    TrackAddr {
        disk: (idx % num_disks as u64) as usize,
        track: base_track + idx / num_disks as u64,
    }
}

/// The staggered format: identical arithmetic to [`consecutive_addr`] but
/// with a caller-chosen per-band disk offset (the paper staggers band `j`
/// by `j·b′ mod D`). Provided as a named alias for readability at call
/// sites that deal with the message matrix.
pub fn staggered_addr(
    num_disks: usize,
    base_track: u64,
    band_disk_offset: usize,
    q: u64,
) -> TrackAddr {
    consecutive_addr(num_disks, base_track, band_disk_offset, q)
}

/// A consecutive-format region of the disk array: a logical stream of
/// blocks striped round-robin across all drives starting at `base_track`,
/// disk 0.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Number of drives in the array.
    pub num_disks: usize,
    /// First track of the region (same on every drive).
    pub base_track: u64,
}

impl Layout {
    /// Address of the `q`-th block of the stream.
    pub fn addr(&self, q: u64) -> TrackAddr {
        consecutive_addr(self.num_disks, self.base_track, 0, q)
    }

    /// Tracks consumed per drive by an `nblocks`-block stream.
    pub fn tracks_for(&self, nblocks: u64) -> u64 {
        nblocks.div_ceil(self.num_disks as u64)
    }
}

/// The paper's **message matrix** (appendix, "Details of Step (d)" and
/// Figure 2).
///
/// All `v × v` messages of one superstep, each occupying exactly
/// `blocks_per_msg = b′` blocks, are stored in `v` *destination bands*.
/// Band `j` holds `msg(0,j) … msg(v−1,j)` consecutively, starts at track
/// `base_track + j · tracks_per_band` and is staggered by disk offset
/// `d_j = (j · b′) mod D`.
///
/// Within band `j`, the global block index of block `q` of `msg(i,j)` is
/// `g = i·b′ + q` and its address is disk `(d_j + g) mod D`, track
/// `T_j + (d_j + g) / D`.
///
/// Two round-robin properties follow (tested below and relied upon by the
/// simulation engine):
///
/// * a **writer** (virtual processor `i`) emitting all its messages in
///   destination order `j = 0, 1, …` produces the disk sequence
///   `((i+j)·b′ + q) mod D`, which advances by exactly one disk per
///   block, and
/// * a **reader** (virtual processor `j`) consuming its band in source
///   order produces `(d_j + i·b′ + q) mod D`, which also advances by one
///   disk per block.
#[derive(Debug, Clone, Copy)]
pub struct MessageMatrixLayout {
    /// Number of drives.
    pub num_disks: usize,
    /// Number of virtual processors `v` (so the matrix is `v × v`).
    pub v: usize,
    /// Fixed message size in blocks (`b′ = ⌈b/B⌉`).
    pub blocks_per_msg: u64,
    /// First track of the matrix.
    pub base_track: u64,
}

impl MessageMatrixLayout {
    /// Tracks reserved per destination band. The `+ (D − 1)` term wastes
    /// at most one track per band, paying for the band's disk offset —
    /// the paper's "at most one track is wasted for each virtual
    /// processor".
    pub fn tracks_per_band(&self) -> u64 {
        (self.v as u64 * self.blocks_per_msg + self.num_disks as u64 - 1)
            .div_ceil(self.num_disks as u64)
    }

    /// Total tracks occupied by the matrix on each drive.
    pub fn total_tracks(&self) -> u64 {
        self.tracks_per_band() * self.v as u64
    }

    /// Disk offset `d_j` of destination band `j`.
    pub fn band_disk_offset(&self, dst: usize) -> usize {
        ((dst as u64 * self.blocks_per_msg) % self.num_disks as u64) as usize
    }

    /// Address of block `q` of the message from `src` to `dst`.
    pub fn addr(&self, src: usize, dst: usize, q: u64) -> TrackAddr {
        debug_assert!(src < self.v && dst < self.v && q < self.blocks_per_msg);
        let band_track = self.base_track + dst as u64 * self.tracks_per_band();
        let g = src as u64 * self.blocks_per_msg + q;
        staggered_addr(self.num_disks, band_track, self.band_disk_offset(dst), g)
    }

    /// The block addresses written by source `src`, in the order it emits
    /// them (destination 0 first, `b′` blocks each).
    pub fn write_order_for_src(&self, src: usize) -> impl Iterator<Item = TrackAddr> + '_ {
        (0..self.v)
            .flat_map(move |dst| (0..self.blocks_per_msg).map(move |q| self.addr(src, dst, q)))
    }

    /// The block addresses read by destination `dst`, in source order.
    pub fn read_order_for_dst(&self, dst: usize) -> impl Iterator<Item = TrackAddr> + '_ {
        (0..self.v)
            .flat_map(move |src| (0..self.blocks_per_msg).map(move |q| self.addr(src, dst, q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn consecutive_wraps_disks() {
        // D = 3, offset 2: blocks land on disks 2,0,1,2,... tracks 0,1,1,1,2...
        let a: Vec<TrackAddr> = (0..5).map(|q| consecutive_addr(3, 10, 2, q)).collect();
        assert_eq!(a[0], TrackAddr::new(2, 10));
        assert_eq!(a[1], TrackAddr::new(0, 11));
        assert_eq!(a[2], TrackAddr::new(1, 11));
        assert_eq!(a[3], TrackAddr::new(2, 11));
        assert_eq!(a[4], TrackAddr::new(0, 12));
    }

    fn round_robin(addrs: &[TrackAddr], d: usize) -> bool {
        addrs.windows(2).all(|w| w[1].disk == (w[0].disk + 1) % d)
    }

    #[test]
    fn writer_sequences_are_round_robin() {
        for d in [1usize, 2, 3, 4, 5, 8] {
            for bpm in [1u64, 2, 3, 7] {
                let m =
                    MessageMatrixLayout { num_disks: d, v: 6, blocks_per_msg: bpm, base_track: 4 };
                for src in 0..6 {
                    let addrs: Vec<_> = m.write_order_for_src(src).collect();
                    assert!(round_robin(&addrs, d), "D={d} b'={bpm} src={src}");
                }
            }
        }
    }

    #[test]
    fn reader_sequences_are_round_robin() {
        for d in [1usize, 2, 3, 4, 5, 8] {
            for bpm in [1u64, 2, 3, 7] {
                let m =
                    MessageMatrixLayout { num_disks: d, v: 6, blocks_per_msg: bpm, base_track: 0 };
                for dst in 0..6 {
                    let addrs: Vec<_> = m.read_order_for_dst(dst).collect();
                    assert!(round_robin(&addrs, d), "D={d} b'={bpm} dst={dst}");
                }
            }
        }
    }

    #[test]
    fn all_blocks_have_distinct_addresses() {
        let m = MessageMatrixLayout { num_disks: 4, v: 5, blocks_per_msg: 3, base_track: 7 };
        let mut seen = HashSet::new();
        for src in 0..5 {
            for dst in 0..5 {
                for q in 0..3 {
                    assert!(seen.insert(m.addr(src, dst, q)), "collision at ({src},{dst},{q})");
                }
            }
        }
        // and the matrix stays within its declared footprint
        let max_track = seen.iter().map(|a| a.track).max().unwrap();
        assert!(max_track < 7 + m.total_tracks());
    }

    #[test]
    fn bands_do_not_overlap() {
        let m = MessageMatrixLayout { num_disks: 3, v: 4, blocks_per_msg: 2, base_track: 0 };
        for dst in 0..4usize {
            let band_start = dst as u64 * m.tracks_per_band();
            let band_end = band_start + m.tracks_per_band();
            for src in 0..4 {
                for q in 0..2 {
                    let a = m.addr(src, dst, q);
                    assert!(a.track >= band_start && a.track < band_end);
                }
            }
        }
    }

    #[test]
    fn single_disk_degenerates_gracefully() {
        let m = MessageMatrixLayout { num_disks: 1, v: 3, blocks_per_msg: 2, base_track: 0 };
        let addrs: Vec<_> = m.write_order_for_src(0).collect();
        assert!(addrs.iter().all(|a| a.disk == 0));
        let set: HashSet<_> = addrs.iter().map(|a| a.track).collect();
        assert_eq!(set.len(), addrs.len());
    }
}
