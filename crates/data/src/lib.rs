//! # cgmio-data — deterministic workload generators
//!
//! Every experiment in the workspace draws its input from here, always
//! through a caller-supplied seed, so runs are reproducible bit-for-bit.
//! Generators cover the workloads of the paper's Figure 5: key sequences
//! and permutations (Group A), planar point/segment/rectangle sets
//! (Group B), and lists, trees and graphs (Group C).

#![warn(missing_docs)]

pub mod geomgen;
pub mod graphgen;
pub mod keys;
pub mod split;

pub use geomgen::{grid_points, random_points, random_rects, random_segments, Rect, Seg};
pub use graphgen::{
    gnm_edges, random_expression, random_forest_parents, random_list, random_tree_parents,
    ExprNode, Op,
};
pub use keys::{
    almost_sorted_u64, few_distinct_u64, random_permutation, reverse_sorted_u64, sorted_u64,
    uniform_u64, zipf_like_u64,
};
pub use split::{block_split, block_split_ranges};
