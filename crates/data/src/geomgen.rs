//! Planar workloads: point sets, non-crossing segment sets, rectangles.
//!
//! All coordinates are integers (`i64`) so the geometry substrate can use
//! exact predicates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A segment between two integer points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Left endpoint (`ax <= bx`).
    pub ax: i64,
    /// Left endpoint y.
    pub ay: i64,
    /// Right endpoint x.
    pub bx: i64,
    /// Right endpoint y.
    pub by: i64,
}

/// An axis-aligned rectangle `[x1, x2] × [y1, y2]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Left edge.
    pub x1: i64,
    /// Bottom edge.
    pub y1: i64,
    /// Right edge (`> x1`).
    pub x2: i64,
    /// Top edge (`> y1`).
    pub y2: i64,
}

/// `n` distinct random points with coordinates in `[0, scale)`.
/// Distinctness is guaranteed by rejection; requires `scale² ≥ 4n`.
pub fn random_points(n: usize, scale: i64, seed: u64) -> Vec<(i64, i64)> {
    assert!(scale > 1 && (scale as i128) * (scale as i128) >= 4 * n as i128);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let p = (rng.gen_range(0..scale), rng.gen_range(0..scale));
        if seen.insert(p) {
            out.push(p);
        }
    }
    out
}

/// Points on a jittered grid — distinct by construction, useful for
/// Delaunay stress tests (many cocircular-ish configurations).
pub fn grid_points(side: usize, spacing: i64, jitter: i64, seed: u64) -> Vec<(i64, i64)> {
    assert!(jitter * 2 < spacing, "jitter must keep points distinct");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(side * side);
    for i in 0..side {
        for j in 0..side {
            let dx = if jitter > 0 { rng.gen_range(-jitter..=jitter) } else { 0 };
            let dy = if jitter > 0 { rng.gen_range(-jitter..=jitter) } else { 0 };
            out.push((i as i64 * spacing + dx, j as i64 * spacing + dy));
        }
    }
    out
}

/// `n` pairwise non-crossing segments: segment `k` lives at its own
/// integer elevation band (distinct `y` ranges), with random horizontal
/// extent — non-intersecting by construction, arbitrary x-overlaps.
pub fn random_segments(n: usize, width: i64, seed: u64) -> Vec<Seg> {
    assert!(width > 2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let y = 10 * k as i64;
            let x1 = rng.gen_range(0..width - 1);
            let x2 = rng.gen_range(x1 + 1..width);
            // small slope within the band keeps segments non-horizontal
            // sometimes, still non-crossing (bands are 10 apart, slopes
            // bounded by ±4).
            let dy1 = rng.gen_range(-4i64..=4);
            let dy2 = rng.gen_range(-4i64..=4);
            Seg { ax: x1, ay: y + dy1, bx: x2, by: y + dy2 }
        })
        .collect()
}

/// `n` random rectangles inside `[0, scale)²` with positive area.
pub fn random_rects(n: usize, scale: i64, seed: u64) -> Vec<Rect> {
    assert!(scale > 2);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x1 = rng.gen_range(0..scale - 1);
            let x2 = rng.gen_range(x1 + 1..scale);
            let y1 = rng.gen_range(0..scale - 1);
            let y2 = rng.gen_range(y1 + 1..scale);
            Rect { x1, y1, x2, y2 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_distinct() {
        let pts = random_points(2000, 1_000_000, 11);
        let mut s = pts.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 2000);
    }

    #[test]
    fn grid_points_distinct_and_counted() {
        let pts = grid_points(10, 100, 20, 5);
        assert_eq!(pts.len(), 100);
        let mut s = pts.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 100);
    }

    fn orient(ax: i64, ay: i64, bx: i64, by: i64, cx: i64, cy: i64) -> i128 {
        (bx - ax) as i128 * (cy - ay) as i128 - (by - ay) as i128 * (cx - ax) as i128
    }

    fn segs_cross(s: &Seg, t: &Seg) -> bool {
        let d1 = orient(s.ax, s.ay, s.bx, s.by, t.ax, t.ay);
        let d2 = orient(s.ax, s.ay, s.bx, s.by, t.bx, t.by);
        let d3 = orient(t.ax, t.ay, t.bx, t.by, s.ax, s.ay);
        let d4 = orient(t.ax, t.ay, t.bx, t.by, s.bx, s.by);
        ((d1 > 0) != (d2 > 0)) && ((d3 > 0) != (d4 > 0)) && d1 != 0 && d2 != 0 && d3 != 0 && d4 != 0
    }

    #[test]
    fn segments_do_not_cross() {
        let segs = random_segments(100, 1000, 3);
        for i in 0..segs.len() {
            for j in i + 1..segs.len() {
                assert!(!segs_cross(&segs[i], &segs[j]), "{i} x {j}");
            }
        }
    }

    #[test]
    fn segments_are_left_to_right() {
        for s in random_segments(200, 500, 9) {
            assert!(s.ax < s.bx);
        }
    }

    #[test]
    fn rects_have_positive_area() {
        for r in random_rects(300, 1000, 2) {
            assert!(r.x2 > r.x1 && r.y2 > r.y1);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_points(50, 1000, 1), random_points(50, 1000, 1));
        assert_eq!(random_rects(50, 1000, 1), random_rects(50, 1000, 1));
    }
}
