//! Block distribution of a global input across `v` virtual processors —
//! the standard CGM input convention (processor `i` holds items
//! `i·N/v .. (i+1)·N/v`).

/// Split `items` into `v` contiguous blocks whose sizes differ by at
/// most one (first `n mod v` blocks get the extra item).
pub fn block_split<T>(items: Vec<T>, v: usize) -> Vec<Vec<T>> {
    assert!(v >= 1);
    let n = items.len();
    let mut out = Vec::with_capacity(v);
    let mut it = items.into_iter();
    for t in 0..v {
        let r = block_split_ranges(n, v, t);
        out.push(it.by_ref().take(r.len()).collect());
    }
    out
}

/// The index range of block `t` under [`block_split`].
pub fn block_split_ranges(n: usize, v: usize, t: usize) -> std::ops::Range<usize> {
    let base = n / v;
    let extra = n % v;
    let start = t * base + t.min(extra);
    start..start + base + usize::from(t < extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        let items: Vec<u32> = (0..23).collect();
        let blocks = block_split(items.clone(), 5);
        assert_eq!(blocks.len(), 5);
        let flat: Vec<u32> = blocks.iter().flatten().copied().collect();
        assert_eq!(flat, items);
        // sizes differ by at most 1
        let sizes: Vec<usize> = blocks.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![5, 5, 5, 4, 4]);
    }

    #[test]
    fn ranges_match_split() {
        let n = 23;
        let v = 5;
        let blocks = block_split((0..n as u32).collect::<Vec<_>>(), v);
        for (t, block) in blocks.iter().enumerate() {
            let r = block_split_ranges(n, v, t);
            assert_eq!(block.len(), r.len());
            assert_eq!(block.first().copied(), r.clone().next().map(|x| x as u32));
        }
    }

    #[test]
    fn more_blocks_than_items() {
        let blocks = block_split(vec![1, 2], 4);
        assert_eq!(blocks, vec![vec![1], vec![2], vec![], vec![]]);
    }
}
